"""Unit constants and conversion helpers.

The memory industry mixes decimal (GB = 1e9) and binary (GiB = 2**30) units
freely; the paper does too (e.g. "326 GB" for GPT-3.5 is 175e9 params x 2
bytes expressed in GiB).  This module pins down one explicit constant per
unit so the rest of the library never multiplies bare powers of ten.

All bandwidths in this library are bytes/second, all capacities bytes, all
times seconds, all energies joules, unless a name says otherwise.
"""

from __future__ import annotations

# Decimal (SI) byte units -- used for bandwidth and marketing capacities.
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# Binary byte units -- used for real storage footprints.
KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

# Bit-rate units.
Kbps = 10**3
Mbps = 10**6
Gbps = 10**9

# Time units (seconds).
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9

# Frequency units (hertz).
MHZ = 10**6
GHZ = 10**9

# Power/energy helpers.
WATT = 1.0
KILOWATT = 10**3
JOULE = 1.0
KILOWATT_HOUR = 3.6e6  # joules per kWh

SECONDS_PER_DAY = 86_400.0


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert a per-pin data rate in Gbit/s to bytes/second."""
    return gbps * Gbps / 8.0


def bytes_to_gib(num_bytes: float) -> float:
    """Express a byte count in binary gibibytes (GiB)."""
    return num_bytes / GiB


def bytes_to_gb(num_bytes: float) -> float:
    """Express a byte count in decimal gigabytes (GB)."""
    return num_bytes / GB


def bytes_per_s_to_gb_per_s(rate: float) -> float:
    """Express a bandwidth in decimal GB/s."""
    return rate / GB


def bytes_per_s_to_tb_per_s(rate: float) -> float:
    """Express a bandwidth in decimal TB/s."""
    return rate / TB


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / KILOWATT_HOUR
