"""Unit constants and conversion helpers.

The memory industry mixes decimal (GB = 1e9) and binary (GiB = 2**30) units
freely; the paper does too (e.g. "326 GB" for GPT-3.5 is 175e9 params x 2
bytes expressed in GiB).  This module pins down one explicit constant per
unit so the rest of the library never multiplies bare powers of ten.

All bandwidths in this library are bytes/second, all capacities bytes, all
times seconds, all energies joules, unless a name says otherwise.
"""

from __future__ import annotations

# Dimensionless SI magnitude prefixes -- for scaled *readouts* of a
# quantity that stays in base units (TFLOPS, billions of parameters).
# When the number has a dimension, prefer the dimensioned constant
# below (GB, GHZ, Gbps) so the name says what is being scaled.
KILO = 10**3
MEGA = 10**6
GIGA = 10**9
TERA = 10**12

# Decimal (SI) byte units -- used for bandwidth and marketing capacities.
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# Binary byte units -- used for real storage footprints.
KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

# Bit-rate units.
Kbps = 10**3
Mbps = 10**6
Gbps = 10**9

# Time units (seconds).
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9

# Frequency units (hertz).
MHZ = 10**6
GHZ = 10**9

# Power/energy helpers.
WATT = 1.0
KILOWATT = 10**3
JOULE = 1.0
KILOWATT_HOUR = 3.6e6  # joules per kWh

SECONDS_PER_DAY = 86_400.0


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert a per-pin data rate in Gbit/s to bytes/second."""
    return gbps * Gbps / 8.0


def ns_to_s(time_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return time_ns * NANOSECOND


def us_to_s(time_us: float) -> float:
    """Convert microseconds to seconds."""
    return time_us * MICROSECOND


def ms_to_s(time_ms: float) -> float:
    """Convert milliseconds to seconds."""
    return time_ms * MILLISECOND


def s_to_ns(time_s: float) -> float:
    """Express a time in nanoseconds (exact: multiplies by 10**9)."""
    return time_s * GIGA


def s_to_us(time_s: float) -> float:
    """Express a time in microseconds (exact: multiplies by 10**6)."""
    return time_s * MEGA


def s_to_ms(time_s: float) -> float:
    """Express a time in milliseconds (exact: multiplies by 10**3)."""
    return time_s * KILO


def tokens_per_s(tokens: float, elapsed_s: float) -> float:
    """Normalize a token count over an elapsed simulated time.

    Zero elapsed time reports zero rate (idle interval), matching the
    library's stats conventions.
    """
    return tokens / elapsed_s if elapsed_s else 0.0


def bytes_to_gib(num_bytes: float) -> float:
    """Express a byte count in binary gibibytes (GiB)."""
    return num_bytes / GiB


def bytes_to_gb(num_bytes: float) -> float:
    """Express a byte count in decimal gigabytes (GB)."""
    return num_bytes / GB


def bytes_per_s_to_gb_per_s(rate: float) -> float:
    """Express a bandwidth in decimal GB/s."""
    return rate / GB


def bytes_per_s_to_tb_per_s(rate: float) -> float:
    """Express a bandwidth in decimal TB/s."""
    return rate / TB


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / KILOWATT_HOUR
