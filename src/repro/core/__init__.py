"""The paper's primary contribution, as one coherent API.

``repro.core`` is the front door: :class:`CxlPnmPlatform` composes the
LPDDR5X CXL memory module (§IV), the CXL-PNM controller + LLM accelerator
(§V), and the software stack (§VI) into the platform the paper describes,
with both a *functional* face (generate real tokens on the simulated
device) and a *modelled-performance* face (latency/throughput/energy of
the 7 nm ASIC target).
"""

from repro.core.platform import CxlPnmPlatform, PlatformReport

__all__ = ["CxlPnmPlatform", "PlatformReport"]
