"""The CXL-PNM platform facade.

Ties the substrates into the deliverable the paper ships: a drop-in
acceleration platform for Python LLM inference.  A platform object owns
one modelled device; ``session`` opens a functional inference session for
a (small) model, ``estimate`` prices a (large) model's inference on the
ASIC target, and ``report`` summarizes the platform the way Tables I/II
describe it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.accelerator.device import CXLPNMDevice
from repro.appliance.cluster import PnmAppliance
from repro.appliance.parallelism import ParallelismPlan
from repro.errors import CapacityError
from repro.llm.config import LLMConfig
from repro.llm.reference import ModelWeights, random_weights
from repro.perf.analytical import InferenceTimer, PnmPerfModel
from repro.perf.metrics import ApplianceResult, InferenceResult
from repro.runtime.session import InferenceSession
from repro.units import GB, TB, TERA


@dataclass(frozen=True)
class PlatformReport:
    """Summary of the platform's capacity, bandwidth, and power."""

    memory_capacity_gb: float
    peak_bandwidth_tb_s: float
    effective_bandwidth_tb_s: float
    peak_gemm_tflops: float
    peak_gemv_tflops: float
    platform_max_watts: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "memory_capacity_gb": self.memory_capacity_gb,
            "peak_bandwidth_tb_s": self.peak_bandwidth_tb_s,
            "effective_bandwidth_tb_s": self.effective_bandwidth_tb_s,
            "peak_gemm_tflops": self.peak_gemm_tflops,
            "peak_gemv_tflops": self.peak_gemv_tflops,
            "platform_max_watts": self.platform_max_watts,
        }


@dataclass
class CxlPnmPlatform:
    """One CXL-PNM device, usable functionally and analytically."""

    device: CXLPNMDevice = field(default_factory=CXLPNMDevice)

    def report(self) -> PlatformReport:
        spec = self.device.spec
        return PlatformReport(
            memory_capacity_gb=self.device.memory_capacity / GB,
            peak_bandwidth_tb_s=self.device.peak_memory_bandwidth / TB,
            effective_bandwidth_tb_s=(
                self.device.effective_memory_bandwidth / TB),
            peak_gemm_tflops=spec.peak_gemm_flops / TERA,
            peak_gemv_tflops=spec.peak_gemv_flops / TERA,
            platform_max_watts=spec.platform_max_watts,
        )

    def fits(self, config: LLMConfig) -> bool:
        """Whether a model's FP16 parameters fit in device memory."""
        return config.param_bytes <= self.device.memory_capacity

    def session(self, weights: Optional[ModelWeights] = None,
                config: Optional[LLMConfig] = None,
                seed: int = 0,
                quantize: Optional[str] = None) -> InferenceSession:
        """Open a functional inference session (small models only).

        Pass trained ``weights``, or a ``config`` to initialize random
        parameters — the paper's platform loads real checkpoints; the
        reproduction's functional path targets miniature models.
        ``quantize="int8"`` loads per-channel-quantized weights and runs
        the int8 GEMV/GEMM path.
        """
        if weights is None:
            if config is None:
                raise CapacityError("session needs weights or a config")
            weights = random_weights(config, seed=seed)
        return InferenceSession(weights, device=self.device,
                                quantize=quantize)

    def tensor_parallel_session(self, weights: Optional[ModelWeights] = None,
                                config: Optional[LLMConfig] = None,
                                degree: int = 2, seed: int = 0):
        """Open a functional multi-device session (host-orchestrated TP).

        Shards the model across ``degree`` simulated devices; generation
        is token-exact with the single-device reference (§V-C made
        functional).
        """
        from repro.runtime.tensor_parallel import TensorParallelSession
        if weights is None:
            if config is None:
                raise CapacityError(
                    "tensor_parallel_session needs weights or a config")
            weights = random_weights(config, seed=seed)
        return TensorParallelSession(weights, degree=degree)

    def estimate(self, config: LLMConfig, input_len: int, output_len: int
                 ) -> InferenceResult:
        """Modelled single-device latency/energy on the ASIC target."""
        if not self.fits(config):
            raise CapacityError(
                f"{config.name} ({config.param_bytes / GB:.0f} GB) exceeds "
                f"the {self.device.memory_capacity / GB:.0f} GB module")
        timer = InferenceTimer(config=config,
                               model=PnmPerfModel(self.device))
        return timer.run(input_len, output_len)

    def estimate_appliance(self, config: LLMConfig, plan: ParallelismPlan,
                           input_len: int, output_len: int,
                           num_devices: int = 8) -> ApplianceResult:
        """Modelled appliance behaviour under a DP x MP plan."""
        appliance = PnmAppliance(device=self.device,
                                 num_devices=num_devices)
        return appliance.run(config, plan, input_len, output_len)
