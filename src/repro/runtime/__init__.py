"""The CXL-PNM software stack: driver, Python library, sessions."""

from repro.runtime.driver import (
    CompletionMode,
    CxlPnmDriver,
    InterruptController,
)
from repro.runtime.library import CxlPnmLibrary, PnmTensor
from repro.runtime.session import GenerationTrace, InferenceSession
from repro.runtime.tensor_parallel import TensorParallelSession

__all__ = [
    "CompletionMode",
    "CxlPnmDriver",
    "CxlPnmLibrary",
    "GenerationTrace",
    "InferenceSession",
    "InterruptController",
    "PnmTensor",
    "TensorParallelSession",
]
