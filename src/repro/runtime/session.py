"""End-to-end inference sessions on the simulated CXL-PNM device.

An :class:`InferenceSession` is the user experience the paper's software
stack promises: load a Python-defined model into CXL memory once, then
call ``generate`` — each stage compiles to acceleration code, runs
through the driver (instruction buffer, launch, interrupt/poll, output
buffer), and optionally accumulates *simulated device time* from the
timing simulator, so a session reports both the generated tokens and the
latency the real card would have taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.accelerator.compiler import (ModelLayout, ProgramCache,
                                        StageCompiler, load_model)
from repro.accelerator.device import CXLPNMDevice
from repro.accelerator.memory import DeviceMemory
from repro.errors import (CapacityError, ConfigurationError,
                          DeviceLostError, TransientDeviceError)
from repro.faults.context import get_faults
from repro.llm.reference import ModelWeights
from repro.memory.reliable import ReliableRegion
from repro.obs.context import get_metrics, get_tracer
from repro.perf.simulator import AcceleratorSimulator
from repro.runtime.driver import CompletionMode, CxlPnmDriver
from repro.units import MiB, s_to_us


@dataclass
class GenerationTrace:
    """What one ``generate`` call did and how long the device would take.

    Timing convention: ``stage_times_s`` holds one entry per executed
    stage (the sum stage first, then each gen stage) **only when the
    session simulates timing**.  A session constructed with
    ``simulate_timing=False`` leaves it empty, and every derived time
    (``sum_time_s``, ``gen_time_s``, ``total_time_s``) reports ``0.0``
    rather than raising — check :attr:`has_timing` to distinguish "took
    no time" from "timing was disabled".
    """

    tokens: List[int] = field(default_factory=list)
    stage_times_s: List[float] = field(default_factory=list)
    instructions: int = 0

    @property
    def has_timing(self) -> bool:
        """True when the session recorded simulated stage times."""
        return bool(self.stage_times_s)

    @property
    def sum_time_s(self) -> float:
        """Simulated sum-stage time; 0.0 when timing was disabled."""
        return self.stage_times_s[0] if self.stage_times_s else 0.0

    @property
    def gen_time_s(self) -> float:
        """Simulated total gen-stage time; 0.0 when timing was disabled."""
        return sum(self.stage_times_s[1:]) if self.stage_times_s else 0.0

    @property
    def total_time_s(self) -> float:
        """Simulated end-to-end time; 0.0 when timing was disabled."""
        return sum(self.stage_times_s) if self.stage_times_s else 0.0


class InferenceSession:
    """Generate text with a model resident in CXL-PNM device memory."""

    def __init__(self, weights: ModelWeights,
                 memory_bytes: Optional[int] = None,
                 completion_mode: CompletionMode = CompletionMode.INTERRUPT,
                 simulate_timing: bool = True,
                 device: Optional[CXLPNMDevice] = None,
                 tracer=None, metrics=None, fast_path: bool = True,
                 verify_static: bool = False,
                 quantize: Optional[str] = None):
        config = weights.config
        if memory_bytes is None:
            # Parameters + caches + buffers, with fp32 functional storage
            # and allocator slack.
            need = (config.param_bytes * 2
                    + 2 * config.num_layers * config.max_seq_len
                    * config.d_model * 4
                    + config.max_seq_len * config.d_model * 4)
            memory_bytes = int(need * 1.25) + 4 * MiB
        self.config = config
        self.memory = DeviceMemory(memory_bytes)
        self._tracer = tracer
        self._metrics = metrics
        self.fast_path = fast_path
        self.driver = CxlPnmDriver(self.memory,
                                   completion_mode=completion_mode,
                                   tracer=tracer, metrics=metrics,
                                   fast_path=fast_path)
        self.layout: ModelLayout = load_model(self.memory, weights,
                                              quantize=quantize)
        self.compiler = StageCompiler(self.layout)
        self.program_cache = ProgramCache(
            self.compiler, verify_static=verify_static) \
            if fast_path else None
        self._device = device or CXLPNMDevice()
        self.simulator = AcceleratorSimulator(
            self._device, tracer=tracer, metrics=metrics,
            memoize=fast_path) \
            if simulate_timing else None
        self._sim_clock_s = 0.0
        self._context_len = 0
        self._interrupts_seen = 0
        self.driver.interrupts.register_isr(self._on_interrupt)
        # Fault-injection hookup (repro.faults): when an ambient plan
        # with memory faults is active at construction time, a small
        # SECDED guard region is carved out of device memory and ticked
        # after every stage — single-bit upsets correct transparently,
        # double-bit upsets abort the generation.  With no plan, the
        # session carries a None and pays nothing.
        self._faults = get_faults()
        self._guard = None
        if self._faults is not None and self._faults.plan.memory.enabled:
            words = self._faults.plan.memory.guard_words
            self._guard = ReliableRegion(self.memory, "ras.guard", words)
            self._guard.write_array(
                np.arange(words, dtype=np.uint64) * 0x9E37_79B9)

    def _on_interrupt(self) -> None:
        self._interrupts_seen += 1

    @property
    def context_len(self) -> int:
        """Tokens currently held in the device-side KV cache.

        Counts every token *processed* by a stage; the final token of a
        generation is emitted but not fed back, so it is not cached.
        """
        return self._context_len

    @property
    def interrupts_seen(self) -> int:
        return self._interrupts_seen

    def reset(self) -> None:
        """Forget the conversation (KV cache is overwritten next time)."""
        self._context_len = 0

    def _run_stage(self, code, trace: GenerationTrace,
                   stage: str = "stage") -> int:
        tracer = get_tracer(self._tracer)
        metrics = get_metrics(self._metrics)
        with tracer.span(f"session.{stage}", category="runtime",
                         instructions=len(code)) as span:
            self.driver.program(code)
            self._launch_with_retry(metrics)
            if self.driver.completion_mode is CompletionMode.POLLING:
                self.driver.wait()
            self.driver.acknowledge()
            if self._guard is not None:
                self._faults.memory_tick(self._guard)
            trace.instructions += len(code)
            if self.simulator is not None:
                stage_time = self.simulator.run(
                    code, trace_offset_s=self._sim_clock_s).total_time_s
                trace.stage_times_s.append(stage_time)
                if tracer.enabled:
                    tracer.sim_span(
                        f"session.{stage}", start_s=self._sim_clock_s,
                        dur_s=stage_time, track="session",
                        category="runtime",
                        args={"instructions": len(code)})
                    span.set(device_time_us=s_to_us(stage_time))
                self._sim_clock_s += stage_time
                self._trace_host_readback(tracer, metrics)
            token = int(self.memory.read_tensor(
                self.layout.output_region.addr, (1,))[0])
        if metrics.enabled:
            metrics.counter("session.stages", stage=stage).inc()
            metrics.counter("session.tokens").inc()
        return token

    def _launch_with_retry(self, metrics) -> None:
        """Launch, retrying recoverable device faults (paper §IX).

        A :class:`~repro.errors.TransientDeviceError` from the driver is
        retried up to the plan's ``max_retries`` with exponential
        backoff charged to the simulated clock; exhausting the budget
        escalates to :class:`~repro.errors.DeviceLostError`.  Permanent
        failures propagate immediately.  With no fault plan active the
        driver cannot raise either error, so this is a plain launch.
        """
        if self._faults is None:
            self.driver.launch()
            return
        launch = self._faults.plan.launch
        attempts = 0
        while True:
            try:
                self.driver.launch()
                return
            except TransientDeviceError:
                attempts += 1
                if attempts > launch.max_retries:
                    raise DeviceLostError(
                        f"device unresponsive after {attempts} transient "
                        f"launch failures") from None
                self._faults.note_launch_retry()
                if metrics.enabled:
                    metrics.counter("session.launch_retries").inc()
                self._sim_clock_s += (launch.retry_backoff_s
                                      * 2 ** (attempts - 1))

    def _trace_host_readback(self, tracer, metrics) -> None:
        """Account the host's CXL.mem read of the output token.

        The modelled link time advances the trace-placement clock
        unconditionally — ``_sim_clock_s`` must not depend on whether
        observability is on (the purity lint's PUR303 guarantee) — but
        it is never added to the stage times a trace reports.  Only the
        span emission and the byte counter sit behind the guards.
        """
        nbytes = 4  # one fp32 token slot in the output buffer
        link_s = self._device.link.transfer_time(nbytes)
        if metrics.enabled:
            metrics.counter("session.host_readback_bytes").inc(nbytes)
        if tracer.enabled:
            tracer.sim_span("host_token_read", start_s=self._sim_clock_s,
                            dur_s=link_s, track="cxl.link",
                            category="cxl",
                            args={"bytes": nbytes})
        self._sim_clock_s += link_s

    def generate(self, prompt: Sequence[int], num_tokens: int
                 ) -> GenerationTrace:
        """Greedy-decode ``num_tokens`` tokens after ``prompt``.

        Runs one sum stage over the prompt and ``num_tokens - 1`` gen
        stages, mirroring :meth:`repro.llm.reference.ReferenceModel.
        generate` exactly (tests assert token equality).
        """
        self.reset()
        return self.extend(prompt, num_tokens)

    def extend(self, prompt: Sequence[int], num_tokens: int
               ) -> GenerationTrace:
        """Continue the conversation: append ``prompt`` to the live KV
        context (a multi-token stage) and greedy-decode ``num_tokens``.

        This is the multi-turn chat path: the device-side KV cache from
        earlier turns stays resident in CXL memory, so each turn only
        processes its new tokens — the capacity advantage §II-A promises.
        """
        if num_tokens <= 0:
            raise ConfigurationError("num_tokens must be positive")
        if not prompt:
            raise ConfigurationError("prompt must be non-empty")
        total = self._context_len + len(prompt) + num_tokens
        if total > self.config.max_seq_len:
            raise CapacityError(
                f"{self._context_len} cached + {len(prompt)} prompt + "
                f"{num_tokens} generated tokens exceed max_seq_len="
                f"{self.config.max_seq_len}")
        trace = GenerationTrace()
        cache = self.program_cache
        if cache is not None:
            code = cache.stage(prompt, ctx_prev=self._context_len)
        else:
            code = self.compiler.compile_stage(list(prompt),
                                               ctx_prev=self._context_len)
        token = self._run_stage(code, trace, stage="sum_stage")
        trace.tokens.append(token)
        self._context_len += len(prompt)
        for _ in range(num_tokens - 1):
            self._context_len += 1
            if cache is not None:
                code = cache.gen_stage(trace.tokens[-1],
                                       context_len=self._context_len)
            else:
                code = self.compiler.compile_gen_stage(
                    trace.tokens[-1], context_len=self._context_len)
            token = self._run_stage(code, trace, stage="gen_stage")
            trace.tokens.append(token)
        # context_len counts KV-cache rows: every processed token.  The
        # final generated token was never fed back, so it is not cached;
        # include it in the next turn's prompt if it belongs to the
        # conversation.
        return trace
