"""The CXL-PNM Python library (paper §VI, Fig. 9).

User-facing tensor and layer-function APIs that mirror what the paper's
library offers: memory allocation and model loading into CXL memory, and
accelerated layer functions — ``LayerNorm``, ``Conv1D``, ``Conv2D``,
``MaskedMM``, ``Softmax``, ``GELU`` — each of which programs the
accelerator's instruction buffer with a short acceleration-code sequence
and retrieves the result through the driver (steps 1-4 in §VI).

Because the host can load/store CXL memory directly, ``from_numpy`` /
``to_numpy`` are plain memory writes/reads — no staging copies, which is
the CXL.mem advantage over PCIe accelerators the paper emphasizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.accelerator import isa
from repro.accelerator.memory import DeviceMemory, Region
from repro.errors import ConfigurationError
from repro.runtime.driver import CxlPnmDriver


@dataclass(frozen=True)
class PnmTensor:
    """A tensor resident in CXL-PNM device memory."""

    name: str
    shape: Tuple[int, ...]
    region: Region

    @property
    def addr(self) -> int:
        return self.region.addr

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n


class CxlPnmLibrary:
    """Layer-function API over one CXL-PNM device."""

    def __init__(self, driver: CxlPnmDriver):
        self.driver = driver
        self._counter = itertools.count()

    @property
    def memory(self) -> DeviceMemory:
        return self.driver.memory

    # -- memory management -------------------------------------------------

    def _fresh_name(self, hint: str) -> str:
        return f"{hint}#{next(self._counter)}"

    def alloc(self, shape: Tuple[int, ...], hint: str = "tensor"
              ) -> PnmTensor:
        """Allocate an uninitialized device tensor."""
        name = self._fresh_name(hint)
        region = self.memory.alloc_tensor(name, shape)
        return PnmTensor(name=name, shape=shape, region=region)

    def from_numpy(self, array: np.ndarray, hint: str = "tensor"
                   ) -> PnmTensor:
        """Copy a host array into CXL memory (a direct store, no DMA)."""
        tensor = self.alloc(tuple(array.shape), hint)
        self.memory.write_tensor(tensor.addr, array)
        return tensor

    def to_numpy(self, tensor: PnmTensor) -> np.ndarray:
        """Read a device tensor back to the host (a direct load)."""
        return self.memory.read_tensor(tensor.addr, tensor.shape)

    # -- execution plumbing --------------------------------------------------

    def _run(self, code: Tuple[isa.Instruction, ...], out: PnmTensor
             ) -> PnmTensor:
        self.driver.program(code)
        self.driver.launch()
        self.driver.acknowledge()
        return out

    @staticmethod
    def _rows_cols(tensor: PnmTensor) -> Tuple[int, int]:
        if len(tensor.shape) == 1:
            return 1, tensor.shape[0]
        if len(tensor.shape) == 2:
            return tensor.shape
        raise ConfigurationError(
            f"{tensor.name}: expected 1-D/2-D, got shape {tensor.shape}")

    # -- accelerated layer functions (the paper's API list) -----------------

    def layernorm(self, x: PnmTensor, gamma: PnmTensor, beta: PnmTensor,
                  eps: float = 1e-5) -> PnmTensor:
        """LayerNorm over the last axis with learned scale/bias."""
        rows, cols = self._rows_cols(x)
        if gamma.shape != (cols,) or beta.shape != (cols,):
            raise ConfigurationError("gamma/beta must match the last axis")
        out = self.alloc((rows, cols), "layernorm")
        code = (
            isa.DmaLoad(dst="m0", addr=x.addr, shape=(rows, cols)),
            isa.VpuLayerNorm(dst="m1", src="m0", gamma_addr=gamma.addr,
                             beta_addr=beta.addr, n=cols, eps=eps),
            isa.DmaStore(src="m1", addr=out.addr, shape=(rows, cols)),
            isa.Free(regs=("m0", "m1")),
        )
        return self._run(code, out)

    def gelu(self, x: PnmTensor) -> PnmTensor:
        """Tanh-approximated GELU."""
        rows, cols = self._rows_cols(x)
        out = self.alloc((rows, cols), "gelu")
        code = (
            isa.DmaLoad(dst="m0", addr=x.addr, shape=(rows, cols)),
            isa.VpuGelu(dst="m1", src="m0"),
            isa.DmaStore(src="m1", addr=out.addr, shape=(rows, cols)),
            isa.Free(regs=("m0", "m1")),
        )
        return self._run(code, out)

    def softmax(self, x: PnmTensor) -> PnmTensor:
        """Row-wise numerically stable softmax."""
        rows, cols = self._rows_cols(x)
        out = self.alloc((rows, cols), "softmax")
        code = (
            isa.DmaLoad(dst="m0", addr=x.addr, shape=(rows, cols)),
            isa.VpuSoftmax(dst="m1", src="m0"),
            isa.DmaStore(src="m1", addr=out.addr, shape=(rows, cols)),
            isa.Free(regs=("m0", "m1")),
        )
        return self._run(code, out)

    def conv1d(self, x: PnmTensor, weight: PnmTensor,
               bias: Optional[PnmTensor] = None) -> PnmTensor:
        """GPT-style Conv1D: ``x @ W + b`` (a matmul with weights in
        memory, as HuggingFace's Conv1D layer computes)."""
        rows, k = self._rows_cols(x)
        wk, n = self._rows_cols(weight)
        if wk != k:
            raise ConfigurationError(
                f"conv1d: inner dims differ ({k} vs {wk})")
        out = self.alloc((rows, n), "conv1d")
        code = [isa.DmaLoad(dst="m0", addr=x.addr, shape=(rows, k))]
        if rows > 1:
            code.append(isa.MpuMmPea(dst="m1", act="m0",
                                     weight_addr=weight.addr,
                                     m=rows, k=k, n=n))
        else:
            code.append(isa.MpuMv(dst="m1", act="m0",
                                  weight_addr=weight.addr, k=k, n=n))
        if bias is not None:
            if bias.shape != (n,):
                raise ConfigurationError("conv1d: bias must be [n]")
            code.append(isa.VpuBias(dst="m1", src="m1",
                                    bias_addr=bias.addr, n=n))
        code.append(isa.DmaStore(src="m1", addr=out.addr, shape=(rows, n)))
        code.append(isa.Free(regs=("m0", "m1")))
        return self._run(tuple(code), out)

    def matmul(self, x: PnmTensor, weight: PnmTensor) -> PnmTensor:
        """Plain matmul (Conv1D without bias)."""
        return self.conv1d(x, weight, bias=None)

    def masked_mm(self, q: PnmTensor, k: PnmTensor, scale: float = 1.0,
                  mask_offset: int = 0) -> PnmTensor:
        """Causally masked, scaled ``q @ k.T`` — the MaskedMM layer API.

        ``q`` is ``[m, d]``, ``k`` is ``[ctx, d]``; result ``[m, ctx]``
        with row ``i`` masked beyond column ``i + mask_offset``.
        """
        m, d = self._rows_cols(q)
        ctx, dk = self._rows_cols(k)
        if dk != d:
            raise ConfigurationError(f"masked_mm: dims differ ({d} vs {dk})")
        out = self.alloc((m, ctx), "masked_mm")
        code = (
            isa.DmaLoad(dst="m0", addr=q.addr, shape=(m, d)),
            isa.MpuMaskedMm(dst="m1", q="m0", k_addr=k.addr, heads=1,
                            head_dim=d, ctx=ctx, m=m, scale=scale,
                            mask_offset=mask_offset),
            # Result register holds [1, m, ctx]; store row-major == [m,ctx].
            isa.DmaStore(src="m1", addr=out.addr, shape=(m, ctx)),
            isa.Free(regs=("m0", "m1")),
        )
        return self._run(code, out)

    def conv2d(self, x: PnmTensor, weight: PnmTensor, stride: int = 1,
               fuse_gelu: bool = False) -> PnmTensor:
        """2-D convolution (valid padding) on the PE array via im2col."""
        if len(x.shape) != 3 or len(weight.shape) != 4:
            raise ConfigurationError(
                "conv2d expects x=[C,H,W], weight=[O,C,kh,kw]")
        in_ch, h, w = x.shape
        out_ch, wc, kh, kw = weight.shape
        if wc != in_ch:
            raise ConfigurationError(
                f"conv2d: channel mismatch ({in_ch} vs {wc})")
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
        out = self.alloc((out_ch, oh, ow), "conv2d")
        code = (
            isa.DmaLoad(dst="m0", addr=x.addr, shape=(in_ch, h, w)),
            isa.MpuConv2d(dst="m1", act="m0", weight_addr=weight.addr,
                          in_ch=in_ch, out_ch=out_ch, kh=kh, kw=kw, h=h,
                          w=w, stride=stride, gelu=fuse_gelu),
            isa.DmaStore(src="m1", addr=out.addr, shape=(out_ch, oh, ow)),
            isa.Free(regs=("m0", "m1")),
        )
        return self._run(code, out)

    def add(self, a: PnmTensor, b: PnmTensor) -> PnmTensor:
        """Elementwise add (residual connections)."""
        if a.shape != b.shape:
            raise ConfigurationError(
                f"add: shapes differ ({a.shape} vs {b.shape})")
        out = self.alloc(a.shape, "add")
        code = (
            isa.DmaLoad(dst="m0", addr=a.addr, shape=a.shape),
            isa.DmaLoad(dst="m1", addr=b.addr, shape=b.shape),
            isa.VpuAdd(dst="m2", a="m0", b="m1"),
            isa.DmaStore(src="m2", addr=out.addr, shape=a.shape),
            isa.Free(regs=("m0", "m1", "m2")),
        )
        return self._run(code, out)
