"""Functional tensor-parallel inference across multiple CXL-PNM devices.

The paper removed DFX's device-to-device router and instead lets *the
host* orchestrate inter-device communication through the unified CXL
address space (§V-C).  This module makes that concrete and functional:

* each device holds a Megatron-style shard of every layer (its slice of
  the attention heads and FFN columns) plus its shard of the KV cache;
* per half-layer, the host writes the normalized activations into every
  device's input buffer **over CXL.mem line writes**, launches each
  device's acceleration code through its driver, reads the partial
  results back over CXL.mem, and reduces them in host software —
  exactly the "host CPU orchestrates the device-to-device
  communications" flow;
* the host-side glue (LayerNorm, residuals, reduction, LM head) uses the
  same float32 primitives as the golden model.

Integration tests drive a 2- and 4-way sharded tiny GPT and assert the
generated tokens match the single-device reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.accelerator import isa
from repro.accelerator.memory import DeviceMemory, Region
from repro.cxl.memdev import FunctionalCxlDevice
from repro.errors import ConfigurationError, ParallelismError
from repro.llm.config import LLMConfig
from repro.llm.reference import LN_EPS, ModelWeights, layernorm
from repro.runtime.driver import CxlPnmDriver
from repro.units import MiB


def _shard_cols(d: int, rank: int, degree: int) -> slice:
    width = d // degree
    return slice(rank * width, (rank + 1) * width)


@dataclass
class _DeviceShard:
    """One device's state: memory, driver, CXL front end, and layout."""

    memory: DeviceMemory
    driver: CxlPnmDriver
    cxl: FunctionalCxlDevice
    regions: Dict[str, Region]

    def addr(self, name: str) -> int:
        return self.regions[name].addr


class TensorParallelSession:
    """Generate tokens with one model sharded across N simulated devices.

    Attributes:
        config: The (dense) model architecture.
        degree: Tensor-parallel ways; must divide heads and d_ff.
    """

    def __init__(self, weights: ModelWeights, degree: int,
                 memory_bytes: int = 0):
        config = weights.config
        if degree < 1:
            raise ParallelismError("degree must be >= 1")
        if config.num_heads % degree or config.d_ff % degree:
            raise ParallelismError(
                f"{config.name} does not shard {degree} ways")
        self.config = config
        self.degree = degree
        self.weights = weights
        self._d_local = config.d_model // degree
        self._dff_local = config.d_ff // degree
        self._heads_local = config.num_heads // degree
        if memory_bytes == 0:
            per_device = (config.param_bytes * 2 // degree
                          + 4 * config.max_seq_len * config.d_model * 4
                          + 8 * MiB)
            memory_bytes = int(per_device * 1.5)
        self.devices = [self._build_shard(rank, memory_bytes)
                        for rank in range(degree)]
        self._context_len = 0
        self.host_cxl_writes = 0
        self.host_cxl_reads = 0

    # -- shard construction ---------------------------------------------------

    def _build_shard(self, rank: int, memory_bytes: int) -> _DeviceShard:
        cfg, w = self.config, self.weights
        d = cfg.d_model
        memory = DeviceMemory(memory_bytes)
        regions: Dict[str, Region] = {}

        def put(name: str, tensor: np.ndarray) -> None:
            regions[name] = memory.store_named(name, tensor)

        for i, layer in enumerate(w.layers):
            prefix = f"layer{i}."
            heads = _shard_cols(cfg.num_heads, rank, self.degree)
            hd = cfg.head_dim
            col0, col1 = heads.start * hd, heads.stop * hd
            qkv_cols = np.r_[col0:col1, d + col0:d + col1,
                             2 * d + col0:2 * d + col1]
            put(prefix + "w_qkv", layer.w_qkv[:, qkv_cols])
            put(prefix + "b_qkv", layer.b_qkv[qkv_cols])
            put(prefix + "w_proj", layer.w_proj[col0:col1, :])
            ff = _shard_cols(cfg.d_ff, rank, self.degree)
            put(prefix + "w_fc1", layer.w_fc1[:, ff])
            put(prefix + "b_fc1", layer.b_fc1[ff])
            put(prefix + "w_fc2", layer.w_fc2[ff, :])
            regions[prefix + "kcache"] = memory.alloc_tensor(
                prefix + "kcache", (cfg.max_seq_len, self._d_local))
            regions[prefix + "vcache"] = memory.alloc_tensor(
                prefix + "vcache", (cfg.max_seq_len, self._d_local))
        regions["input_buffer"] = memory.alloc_tensor(
            "input_buffer", (cfg.max_seq_len, d))
        regions["partial_buffer"] = memory.alloc_tensor(
            "partial_buffer", (cfg.max_seq_len, max(d, self._dff_local)))
        driver = CxlPnmDriver(memory)
        cxl = FunctionalCxlDevice(memory, control=driver.control)
        return _DeviceShard(memory=memory, driver=driver, cxl=cxl,
                            regions=regions)

    # -- host orchestration ----------------------------------------------------

    @property
    def context_len(self) -> int:
        return self._context_len

    def _broadcast(self, tensor: np.ndarray) -> None:
        """Host writes activations into every device over CXL.mem."""
        for shard in self.devices:
            self.host_cxl_writes += shard.cxl.host_store_tensor(
                shard.addr("input_buffer"), tensor)

    def _launch(self, shard: _DeviceShard,
                code: Sequence[isa.Instruction]) -> None:
        shard.driver.program(tuple(code))
        shard.driver.launch()
        shard.driver.acknowledge()

    def _gather_partials(self, m: int, cols: int) -> np.ndarray:
        """Host reads each device's partial and reduces (the 'all-reduce'
        of §V-C, performed by the host through the unified map)."""
        total = np.zeros((m, cols), dtype=np.float32)
        for shard in self.devices:
            partial = shard.cxl.host_load_tensor(
                shard.addr("partial_buffer"), (m, cols))
            self.host_cxl_reads += -(-partial.nbytes // 64)
            total = total + partial
        return total

    def _attention_half_layer(self, layer: int, h: np.ndarray,
                              ctx_prev: int) -> np.ndarray:
        cfg = self.config
        m, d = h.shape
        ctx = ctx_prev + m
        self._broadcast(h)
        for shard in self.devices:
            prefix = f"layer{layer}."
            dl = self._d_local
            row_bytes = dl * 4
            code: List[isa.Instruction] = [
                isa.DmaLoad(dst="m0", addr=shard.addr("input_buffer"),
                            shape=(m, d)),
            ]
            if m > 1:
                code.append(isa.MpuMmPea(
                    dst="m1", act="m0",
                    weight_addr=shard.addr(prefix + "w_qkv"),
                    m=m, k=d, n=3 * dl))
            else:
                code.append(isa.MpuMv(
                    dst="m1", act="m0",
                    weight_addr=shard.addr(prefix + "w_qkv"),
                    k=d, n=3 * dl))
            code.extend([
                isa.VpuBias(dst="m1", src="m1",
                            bias_addr=shard.addr(prefix + "b_qkv"),
                            n=3 * dl),
                isa.VpuSlice(dst="m2", src="m1", start=0, stop=dl),
                isa.VpuSlice(dst="m3", src="m1", start=dl, stop=2 * dl),
                isa.VpuSlice(dst="m4", src="m1", start=2 * dl,
                             stop=3 * dl),
                isa.DmaStore(src="m3",
                             addr=shard.addr(prefix + "kcache")
                             + ctx_prev * row_bytes, shape=(m, dl)),
                isa.DmaStore(src="m4",
                             addr=shard.addr(prefix + "vcache")
                             + ctx_prev * row_bytes, shape=(m, dl)),
                isa.MpuMaskedMm(dst="m5", q="m2",
                                k_addr=shard.addr(prefix + "kcache"),
                                heads=self._heads_local,
                                head_dim=cfg.head_dim, ctx=ctx, m=m,
                                scale=1.0 / math.sqrt(cfg.head_dim),
                                mask_offset=ctx_prev, rowmax_dst="v0"),
                isa.VpuSoftmax(dst="m6", src="m5", rowmax="v0"),
                isa.MpuAttnContext(dst="m7", probs="m6",
                                   v_addr=shard.addr(prefix + "vcache"),
                                   heads=self._heads_local,
                                   head_dim=cfg.head_dim, ctx=ctx, m=m),
            ])
            if m > 1:
                code.append(isa.MpuMmPea(
                    dst="m8", act="m7",
                    weight_addr=shard.addr(prefix + "w_proj"),
                    m=m, k=dl, n=d))
            else:
                code.append(isa.MpuMv(
                    dst="m8", act="m7",
                    weight_addr=shard.addr(prefix + "w_proj"),
                    k=dl, n=d))
            code.append(isa.DmaStore(src="m8",
                                     addr=shard.addr("partial_buffer"),
                                     shape=(m, d)))
            code.append(isa.Free(regs=("m0", "m1", "m2", "m3", "m4", "m5",
                                       "m6", "m7", "m8", "v0")))
            self._launch(shard, code)
        reduced = self._gather_partials(m, d)
        return reduced + self.weights.layers[layer].b_proj

    def _ffn_half_layer(self, layer: int, h: np.ndarray) -> np.ndarray:
        cfg = self.config
        m, d = h.shape
        self._broadcast(h)
        for shard in self.devices:
            prefix = f"layer{layer}."
            dffl = self._dff_local
            code: List[isa.Instruction] = [
                isa.DmaLoad(dst="m0", addr=shard.addr("input_buffer"),
                            shape=(m, d)),
            ]
            if m > 1:
                code.append(isa.MpuMmPea(
                    dst="m1", act="m0",
                    weight_addr=shard.addr(prefix + "w_fc1"),
                    m=m, k=d, n=dffl))
            else:
                code.append(isa.MpuMv(
                    dst="m1", act="m0",
                    weight_addr=shard.addr(prefix + "w_fc1"),
                    k=d, n=dffl))
            code.extend([
                isa.VpuBias(dst="m1", src="m1",
                            bias_addr=shard.addr(prefix + "b_fc1"),
                            n=dffl),
                isa.VpuGelu(dst="m2", src="m1"),
            ])
            if m > 1:
                code.append(isa.MpuMmPea(
                    dst="m3", act="m2",
                    weight_addr=shard.addr(prefix + "w_fc2"),
                    m=m, k=dffl, n=d))
            else:
                code.append(isa.MpuMv(
                    dst="m3", act="m2",
                    weight_addr=shard.addr(prefix + "w_fc2"),
                    k=dffl, n=d))
            code.append(isa.DmaStore(src="m3",
                                     addr=shard.addr("partial_buffer"),
                                     shape=(m, d)))
            code.append(isa.Free(regs=("m0", "m1", "m2", "m3")))
            self._launch(shard, code)
        reduced = self._gather_partials(m, d)
        return reduced + self.weights.layers[layer].b_fc2

    def _stage(self, tokens: Sequence[int], ctx_prev: int) -> int:
        cfg, w = self.config, self.weights
        for t in tokens:
            if not 0 <= t < cfg.vocab_size:
                raise ConfigurationError(f"token {t} outside vocabulary")
        tok = w.token_embedding[np.asarray(tokens, dtype=np.int64)]
        pos = w.position_embedding[ctx_prev:ctx_prev + len(tokens)]
        x = (tok + pos).astype(np.float32)
        for i, layer in enumerate(w.layers):
            h = layernorm(x, layer.ln1_gamma, layer.ln1_beta, eps=LN_EPS)
            x = x + self._attention_half_layer(i, h, ctx_prev)
            h = layernorm(x, layer.ln2_gamma, layer.ln2_beta, eps=LN_EPS)
            x = x + self._ffn_half_layer(i, h)
        final = layernorm(x[-1:], w.ln_f_gamma, w.ln_f_beta, eps=LN_EPS)
        logits = (final @ w.lm_head)[0]
        return int(np.argmax(logits))

    def generate(self, prompt: Sequence[int], num_tokens: int) -> List[int]:
        """Greedy-decode across the device group; tokens must match the
        single-device reference exactly (asserted by tests)."""
        if num_tokens <= 0:
            raise ConfigurationError("num_tokens must be positive")
        if not prompt:
            raise ConfigurationError("prompt must be non-empty")
        if len(prompt) + num_tokens > self.config.max_seq_len:
            raise ConfigurationError("sequence exceeds max_seq_len")
        self._context_len = 0
        tokens = [self._stage(list(prompt), ctx_prev=0)]
        self._context_len = len(prompt)
        for _ in range(num_tokens - 1):
            tokens.append(self._stage([tokens[-1]],
                                      ctx_prev=self._context_len))
            self._context_len += 1
        return tokens
