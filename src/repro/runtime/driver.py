"""Simulated CXL-PNM device driver (paper §VI, Fig. 9).

Reproduces the driver's observable behaviour:

* registers the device's CXL.mem region (model parameters, I/O buffers)
  and CXL.io register region, like the DAX/``/dev/mem`` mappings;
* lets user space configure the ten control registers and program the
  instruction buffer over CXL.io;
* launches acceleration code and delivers completion either through an
  MSI-X-style interrupt callback (ISR) or a polling loop on the STATUS
  register — both mechanisms the paper implements.

The "hardware" behind the driver is the functional executor: launching a
program really runs it against device memory, so everything above the
driver (the Python library, sessions) observes real results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.accelerator import isa
from repro.accelerator.control import ControlRegister, ControlUnit, Status
from repro.accelerator.engine import ExecutionStats, Executor
from repro.accelerator.memory import DeviceMemory
from repro.errors import DriverError
from repro.faults.context import get_faults
from repro.obs.context import get_metrics, get_tracer


class CompletionMode(enum.Enum):
    """How the host learns that acceleration code finished (§VI)."""

    INTERRUPT = "msi-x"
    POLLING = "polling"


@dataclass
class InterruptController:
    """MSI-X-style interrupt delivery to registered service routines."""

    _isrs: List[Callable[[], None]] = field(default_factory=list)
    delivered: int = 0

    def register_isr(self, isr: Callable[[], None]) -> None:
        self._isrs.append(isr)

    def assert_interrupt(self) -> None:
        self.delivered += 1
        for isr in self._isrs:
            isr()


class CxlPnmDriver:
    """User-space-facing driver API for one CXL-PNM device.

    Attributes:
        memory: The device's CXL.mem-visible memory (host load/store
            reachable — the key CXL-PNM property, §VI).
        control: The accelerator's CXL.io register file.
        interrupts: The MSI-X delivery path.
    """

    def __init__(self, memory: DeviceMemory,
                 completion_mode: CompletionMode = CompletionMode.INTERRUPT,
                 tracer=None, metrics=None, fast_path: bool = True):
        self.memory = memory
        self.control = ControlUnit()
        self.interrupts = InterruptController()
        self.completion_mode = completion_mode
        self._tracer = tracer
        self._metrics = metrics
        self._executor = Executor(memory, tracer=tracer, metrics=metrics,
                                  vectorized=fast_path,
                                  cache_reads=fast_path)
        self._launches = 0
        self._poll_count = 0
        self.control.write_register(
            ControlRegister.INTERRUPT_ENABLE,
            1 if completion_mode is CompletionMode.INTERRUPT else 0)

    # -- configuration (CXL.io side-band, §V-B) ---------------------------

    def configure(self, reg: ControlRegister, value: int) -> None:
        """Write one control register."""
        self.control.write_register(reg, value)

    def read_register(self, reg: ControlRegister) -> int:
        return self.control.read_register(reg)

    def program(self, code: Tuple[isa.Instruction, ...]) -> None:
        """Write acceleration code into the instruction buffer (step 1)."""
        self.control.program(code)

    # -- execution ----------------------------------------------------------

    def launch(self) -> ExecutionStats:
        """Kick the accelerator (step 2) and run to completion (step 3).

        The functional model executes synchronously; completion is then
        signalled by interrupt or left for :meth:`poll` depending on the
        configured mode.

        When a fault plan with launch faults is active, a launch may
        fail *before* executing anything: transiently (a
        :class:`~repro.errors.TransientDeviceError` the session retries
        with bounded backoff) or permanently
        (:class:`~repro.errors.DeviceLostError`).  Either way the
        STATUS register reads ERROR, exactly as the except path below
        leaves it, so a retry is a plain re-launch.
        """
        if self.control.status is Status.RUNNING:
            raise DriverError("accelerator already running")
        code = self.control.instruction_buffer
        tracer = get_tracer(self._tracer)
        metrics = get_metrics(self._metrics)
        faults = get_faults()
        if faults is not None:
            fault = faults.launch_fault()
            if fault is not None:
                self.control.set_status(Status.ERROR)
                metrics.counter("driver.errors").inc()
                raise fault
        self.control.set_status(Status.RUNNING)
        with tracer.span("driver.launch", category="runtime",
                         instructions=len(code),
                         mode=self.completion_mode.value):
            try:
                stats = self._executor.execute(code)
            except Exception:
                self.control.set_status(Status.ERROR)
                metrics.counter("driver.errors").inc()
                raise
        self.control.set_status(Status.DONE)
        self._launches += 1
        metrics.counter("driver.launches").inc()
        if self.completion_mode is CompletionMode.INTERRUPT:
            self.interrupts.assert_interrupt()
            metrics.counter("driver.interrupts").inc()
        return stats

    def poll(self) -> bool:
        """One polling-mode status check; True when the code completed."""
        if self.completion_mode is not CompletionMode.POLLING:
            raise DriverError("device is configured for interrupts")
        self._poll_count += 1
        get_metrics(self._metrics).counter("driver.polls").inc()
        return self.control.status is Status.DONE

    def wait(self, max_polls: int = 1_000_000) -> None:
        """Poll until completion (bounded, to fail loudly on bugs)."""
        for _ in range(max_polls):
            if self.poll():
                return
        raise DriverError("acceleration code did not complete")

    def acknowledge(self) -> None:
        """Clear DONE back to IDLE after the host consumed the result."""
        if self.control.status is not Status.DONE:
            raise DriverError(
                f"acknowledge in state {self.control.status.name}")
        self.control.set_status(Status.IDLE)

    # -- introspection ------------------------------------------------------

    @property
    def launches(self) -> int:
        return self._launches

    @property
    def poll_count(self) -> int:
        return self._poll_count

    @property
    def executor_stats(self) -> ExecutionStats:
        return self._executor.stats
