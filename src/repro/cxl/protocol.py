"""CXL protocol message model (CXL.io / CXL.mem, transaction level).

The CXL standard layers three protocols over the PCIe PHY (§II-A):
``CXL.io`` (configuration/initialization, PCIe-semantics), ``CXL.cache``
(not used by Type-3 devices), and ``CXL.mem`` (load/store access to
host-managed device memory).  We model the transaction level: master-to-
subordinate (M2S) requests and subordinate-to-master (S2M) responses in
64-byte granules, which is what the arbiter, link, and device models
consume.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ProtocolError

#: CXL.mem transfers are cacheline-granular.
CACHELINE_BYTES = 64


class Protocol(enum.Enum):
    """Which CXL sub-protocol a message travels on."""

    IO = "cxl.io"
    MEM = "cxl.mem"


class Opcode(enum.Enum):
    """Transaction opcodes (simplified M2S/S2M vocabulary)."""

    MEM_RD = "MemRd"          # M2S request: read one cacheline
    MEM_WR = "MemWr"          # M2S request with data: write one cacheline
    MEM_RD_DATA = "MemData"   # S2M data response
    CMP = "Cmp"               # S2M completion (for writes)
    CFG_RD = "CfgRd"          # CXL.io config/register read
    CFG_WR = "CfgWr"          # CXL.io config/register write
    CFG_CMP = "CfgCmp"        # CXL.io completion (with data for reads)

    @property
    def is_request(self) -> bool:
        return self in (Opcode.MEM_RD, Opcode.MEM_WR, Opcode.CFG_RD,
                        Opcode.CFG_WR)

    @property
    def protocol(self) -> Protocol:
        if self in (Opcode.CFG_RD, Opcode.CFG_WR, Opcode.CFG_CMP):
            return Protocol.IO
        return Protocol.MEM

    @property
    def carries_data(self) -> bool:
        return self in (Opcode.MEM_WR, Opcode.MEM_RD_DATA, Opcode.CFG_WR)


class Source(enum.Enum):
    """Who issued a memory request — the host CPU or the PNM accelerator."""

    HOST = "host"
    PNM = "pnm"


_tag_counter = itertools.count()


@dataclass(frozen=True)
class Transaction:
    """One transaction-layer message.

    Attributes:
        opcode: Message type.
        addr: Target physical address; cacheline-aligned for CXL.mem.
        size: Payload bytes (``CACHELINE_BYTES`` for CXL.mem data).
        source: Issuer, used by the arbiter.
        tag: Request/response matching tag, auto-assigned.
    """

    opcode: Opcode
    addr: int
    size: int = CACHELINE_BYTES
    source: Source = Source.HOST
    tag: int = field(default_factory=lambda: next(_tag_counter))

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ProtocolError(f"negative address {self.addr:#x}")
        if self.size <= 0:
            raise ProtocolError(f"non-positive size {self.size}")
        if self.opcode.protocol is Protocol.MEM:
            if self.addr % CACHELINE_BYTES:
                raise ProtocolError(
                    f"CXL.mem address {self.addr:#x} not 64B-aligned")
            if self.size != CACHELINE_BYTES:
                raise ProtocolError(
                    f"CXL.mem transfers are {CACHELINE_BYTES}B, got "
                    f"{self.size}")

    def response(self) -> "Transaction":
        """Build the matching S2M response for a request, preserving the tag."""
        if not self.opcode.is_request:
            raise ProtocolError(f"{self.opcode} is not a request")
        if self.opcode is Opcode.MEM_RD:
            op = Opcode.MEM_RD_DATA
        elif self.opcode is Opcode.MEM_WR:
            op = Opcode.CMP
        else:
            op = Opcode.CFG_CMP
        return Transaction(opcode=op, addr=self.addr, size=self.size,
                           source=self.source, tag=self.tag)


def read_burst(base: int, length: int,
               source: Source = Source.HOST) -> list:
    """Expand a byte range into cacheline MemRd transactions."""
    if length <= 0:
        raise ProtocolError("burst length must be positive")
    start = base - base % CACHELINE_BYTES
    end = base + length
    lines = []
    addr = start
    while addr < end:
        lines.append(Transaction(opcode=Opcode.MEM_RD, addr=addr,
                                 source=source))
        addr += CACHELINE_BYTES
    return lines
