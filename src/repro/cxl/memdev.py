"""Functional CXL Type-3 device: transactions against real storage.

Binds the transaction model of :mod:`repro.cxl.protocol` to a
:class:`~repro.accelerator.memory.DeviceMemory`: the host reads and
writes the device's DRAM with 64-byte ``MemRd``/``MemWr`` transactions
(the load/store path §II-A highlights — no staging copies, unlike PCIe
accelerators) and reaches the accelerator's control registers through
``CfgRd``/``CfgWr`` on the CXL.io window.

This is what makes the paper's §VI driver story concrete: the CXL-PNM
Python library's ``from_numpy`` is *literally* a sequence of MemWr lines
into the same memory the accelerator computes on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.accelerator.control import ControlRegister, ControlUnit
from repro.accelerator.memory import DeviceMemory
from repro.cxl.link import CXLLink, GEN5_X16
from repro.cxl.protocol import (
    CACHELINE_BYTES,
    Opcode,
    Source,
    Transaction,
)
from repro.errors import AddressError, ProtocolError


@dataclass
class AccessCounters:
    """Per-source transaction accounting (feeds the arbiter studies)."""

    reads: Dict[Source, int] = field(
        default_factory=lambda: {s: 0 for s in Source})
    writes: Dict[Source, int] = field(
        default_factory=lambda: {s: 0 for s in Source})

    def bytes_read(self, source: Source) -> int:
        return self.reads[source] * CACHELINE_BYTES

    def bytes_written(self, source: Source) -> int:
        return self.writes[source] * CACHELINE_BYTES


class FunctionalCxlDevice:
    """A CXL Type-3 memory device that actually stores data.

    Attributes:
        memory: The backing device memory (shared with the accelerator).
        control: The accelerator's CXL.io register file.
        link: The CXL port (used for transfer-time estimates).
    """

    def __init__(self, memory: DeviceMemory,
                 control: Optional[ControlUnit] = None,
                 link: CXLLink = GEN5_X16):
        self.memory = memory
        self.control = control or ControlUnit()
        self.link = link
        self.counters = AccessCounters()

    # -- CXL.mem ------------------------------------------------------------

    def submit(self, txn: Transaction) -> Transaction:
        """Service one transaction and return its response.

        ``MemRd`` responses carry the line's data in ``.payload`` (an
        attribute added to the returned transaction object path below);
        ``CfgRd`` responses carry the register value.
        """
        if txn.opcode is Opcode.MEM_RD:
            data = self._read_line(txn.addr)
            self.counters.reads[txn.source] += 1
            response = txn.response()
            object.__setattr__(response, "payload", data)
            return response
        if txn.opcode is Opcode.MEM_WR:
            raise ProtocolError(
                "MemWr needs data; use write_line(txn, data)")
        if txn.opcode in (Opcode.CFG_RD, Opcode.CFG_WR):
            raise ProtocolError(
                "config transactions go through cfg_read/cfg_write")
        raise ProtocolError(f"device cannot service {txn.opcode}")

    def write_line(self, txn: Transaction, data: np.ndarray) -> Transaction:
        """Service a MemWr carrying one cacheline of data."""
        if txn.opcode is not Opcode.MEM_WR:
            raise ProtocolError(f"write_line needs MemWr, got {txn.opcode}")
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if data.nbytes != CACHELINE_BYTES:
            raise ProtocolError(
                f"MemWr payload must be {CACHELINE_BYTES} B, got "
                f"{data.nbytes}")
        self._write_line(txn.addr, data)
        self.counters.writes[txn.source] += 1
        return txn.response()

    def _read_line(self, addr: int) -> np.ndarray:
        if addr % CACHELINE_BYTES:
            raise AddressError(f"unaligned line read {addr:#x}")
        raw = self.memory._buffer[addr:addr + CACHELINE_BYTES]
        if raw.size != CACHELINE_BYTES:
            raise AddressError(f"line read {addr:#x} beyond device memory")
        return raw.copy()

    def _write_line(self, addr: int, data: np.ndarray) -> None:
        if addr % CACHELINE_BYTES:
            raise AddressError(f"unaligned line write {addr:#x}")
        if addr + CACHELINE_BYTES > self.memory.capacity:
            raise AddressError(f"line write {addr:#x} beyond device memory")
        # Through the version-bumping store path so executors that cache
        # reads observe host-side writes (e.g. tensor-parallel broadcast).
        self.memory.write_bytes(addr, data)

    # -- CXL.io (side-band register access, Fig. 6) --------------------------

    def cfg_read(self, register: ControlRegister) -> int:
        self.counters.reads[Source.HOST] += 1
        return self.control.read_register(register)

    def cfg_write(self, register: ControlRegister, value: int) -> None:
        self.counters.writes[Source.HOST] += 1
        self.control.write_register(register, value)

    # -- host convenience: load/store a tensor over CXL.mem ------------------

    def host_store_tensor(self, addr: int, tensor: np.ndarray) -> int:
        """Write a float32 tensor as a stream of MemWr lines.

        Returns the number of transactions issued.  ``addr`` must be
        line-aligned; the tail line is read-modify-written.
        """
        data = np.ascontiguousarray(tensor, dtype=np.float32) \
            .view(np.uint8).reshape(-1)
        if addr % CACHELINE_BYTES:
            raise AddressError(f"tensor store at unaligned {addr:#x}")
        issued = 0
        offset = 0
        while offset < data.size:
            line_addr = addr + offset
            chunk = data[offset:offset + CACHELINE_BYTES]
            if chunk.size < CACHELINE_BYTES:
                line = self._read_line(line_addr)
                line[:chunk.size] = chunk
                chunk = line
            txn = Transaction(opcode=Opcode.MEM_WR, addr=line_addr,
                              source=Source.HOST)
            self.write_line(txn, chunk)
            issued += 1
            offset += CACHELINE_BYTES
        return issued

    def host_load_tensor(self, addr: int, shape) -> np.ndarray:
        """Read a float32 tensor back as a stream of MemRd lines."""
        nbytes = int(np.prod(shape)) * 4
        if addr % CACHELINE_BYTES:
            raise AddressError(f"tensor load at unaligned {addr:#x}")
        chunks = []
        offset = 0
        while offset < nbytes:
            txn = Transaction(opcode=Opcode.MEM_RD, addr=addr + offset,
                              source=Source.HOST)
            chunks.append(self.submit(txn).payload)
            offset += CACHELINE_BYTES
        raw = np.concatenate(chunks)[:nbytes]
        return raw.view(np.float32).reshape(shape).copy()

    def host_transfer_time(self, nbytes: int) -> float:
        """Modelled wall time for the host to move ``nbytes`` over CXL."""
        return self.link.transfer_time(nbytes)
