"""Host/PNM memory-request arbitration (paper §V-A D3, §V-B).

A PNM device's memory is shared between the host CPU (over CXL.mem) and
the on-device accelerator.  DIMM-based PNM cannot arbitrate in hardware —
the JEDEC DDR interface leaves no timing slack and no interrupt pin — so
AxDIMM-style devices must *block* host traffic for the whole acceleration
task while the host polls a mailbox address (D3).  CXL tolerates variable
device-side latency, so the CXL-PNM controller inserts a hardware arbiter
between the CXL.mem IP and the memory controllers (Fig. 6) and interleaves
both streams cycle by cycle.

:func:`simulate` plays both policies over synthetic request streams and
reports per-source service statistics; the D3 benchmark uses it to show
the host-visible stall difference quantitatively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cxl.protocol import CACHELINE_BYTES, Source
from repro.errors import ConfigurationError
from repro.obs.context import get_metrics, get_tracer
from repro.units import bytes_to_gb, s_to_us

#: Blocking-poll task windows traced per ``simulate`` call; long
#: intervals contain thousands of identical windows, so the trace keeps
#: the first few and notes the truncation in the span args.
MAX_TRACED_TASK_WINDOWS = 128


class ArbitrationPolicy(enum.Enum):
    """How concurrent host and PNM request streams share the memory."""

    #: CXL-PNM: hardware weighted round-robin between the two streams.
    HARDWARE_WRR = "hardware-wrr"
    #: DIMM-PNM: the PNM task owns the channel; host requests stall until
    #: task completion and a polled mailbox flips.
    BLOCKING_POLL = "blocking-poll"


@dataclass(frozen=True)
class RequestStream:
    """A constant-rate stream of cacheline requests from one source."""

    source: Source
    requests_per_s: float

    def __post_init__(self) -> None:
        if self.requests_per_s < 0:
            raise ConfigurationError("negative request rate")

    @property
    def bandwidth(self) -> float:
        return self.requests_per_s * CACHELINE_BYTES


@dataclass
class ArbiterStats:
    """Service statistics for one simulated interval."""

    served_bytes: Dict[Source, float] = field(default_factory=dict)
    mean_wait_s: Dict[Source, float] = field(default_factory=dict)
    host_blocked_s: float = 0.0

    def bandwidth(self, source: Source, interval_s: float) -> float:
        return self.served_bytes.get(source, 0.0) / interval_s

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready flat view, for exporters and benchmarks."""
        out: Dict[str, float] = {"host_blocked_s": self.host_blocked_s}
        for source, nbytes in self.served_bytes.items():
            out[f"served_bytes.{source.name}"] = nbytes
        for source, wait in self.mean_wait_s.items():
            out[f"mean_wait_s.{source.name}"] = wait
        return out


@dataclass(frozen=True)
class Arbiter:
    """Fluid-model arbiter over a memory system of fixed bandwidth.

    Attributes:
        memory_bandwidth: Device memory bandwidth in bytes/s.
        pnm_weight: WRR weight for the accelerator (host gets
            ``1 - pnm_weight``) when both streams are backlogged.
        poll_interval_s: Host mailbox polling period for the blocking
            policy (the host learns of completion only at the next poll).
    """

    memory_bandwidth: float
    pnm_weight: float = 0.5
    poll_interval_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.memory_bandwidth <= 0:
            raise ConfigurationError("memory bandwidth must be positive")
        if not 0.0 < self.pnm_weight < 1.0:
            raise ConfigurationError("pnm_weight must be in (0, 1)")

    def _blocking_windows(self, pnm_task_s: float, interval_s: float
                          ) -> Tuple[int, float, float, float]:
        """Blocking-poll task accounting over one interval.

        Returns ``(full_tasks, tail_task_s, pnm_time, blocked)`` where
        ``tail_task_s`` is the trailing *partial* task truncated by the
        end of the interval.  Tasks are back-to-back (each poll that
        observes completion immediately launches the next task), so the
        tail window is still blocked for the host: either its task runs
        to the interval end, or it completes with less than one poll
        residue remaining.  Flooring the task count — the old behaviour —
        under-counted both PNM served bytes and ``host_blocked_s`` for
        intervals that are not near-multiples of the cycle.
        """
        cycle = pnm_task_s + self.poll_interval_s / 2.0
        full_tasks = int(interval_s // cycle)
        tail_s = interval_s - full_tasks * cycle
        tail_task_s = min(tail_s, pnm_task_s)
        pnm_time = full_tasks * pnm_task_s + tail_task_s
        blocked = min(interval_s, full_tasks * cycle + tail_s)
        return full_tasks, tail_task_s, pnm_time, blocked

    def _wrr_share(self, demand: Dict[Source, float]
                   ) -> Dict[Source, float]:
        """Allocate bandwidth: weights bind only under contention."""
        total = sum(demand.values())
        if total <= self.memory_bandwidth:
            return dict(demand)
        weights = {Source.PNM: self.pnm_weight,
                   Source.HOST: 1.0 - self.pnm_weight}
        grant = {s: self.memory_bandwidth * weights[s] for s in demand}
        # Redistribute slack from under-demanding sources.
        for s in demand:
            if demand[s] < grant[s]:
                slack = grant[s] - demand[s]
                grant[s] = demand[s]
                other = (Source.HOST if s is Source.PNM else Source.PNM)
                if other in grant:
                    grant[other] = min(demand[other], grant[other] + slack)
        return grant

    def _observe(self, policy: ArbitrationPolicy, stats: ArbiterStats,
                 pnm_task_s: float, interval_s: float) -> None:
        """Record queue waits, served bytes, and service-window spans.

        Observability only — called after ``stats`` is final, so results
        are identical whether or not a tracer/registry is installed.
        """
        metrics = get_metrics()
        if metrics.enabled:
            for source, nbytes in stats.served_bytes.items():
                metrics.counter("cxl.arbiter.served_bytes",
                                source=source.name,
                                policy=policy.value).inc(nbytes)
            for source, wait in stats.mean_wait_s.items():
                metrics.histogram("cxl.arbiter.wait_s",
                                  source=source.name,
                                  policy=policy.value).observe(wait)
            metrics.counter("cxl.arbiter.host_blocked_s",
                            policy=policy.value).inc(stats.host_blocked_s)
        tracer = get_tracer()
        if not tracer.enabled:
            return
        if policy is ArbitrationPolicy.HARDWARE_WRR:
            for source, nbytes in stats.served_bytes.items():
                tracer.sim_span(
                    f"wrr.{source.name.lower()}", start_s=0.0,
                    dur_s=interval_s, track="cxl.arbiter",
                    category="cxl",
                    args={"served_GB": bytes_to_gb(nbytes),
                          "mean_wait_us":
                              s_to_us(stats.mean_wait_s[source])})
            return
        cycle = pnm_task_s + self.poll_interval_s / 2.0
        full_tasks, tail_task_s, _pnm_time, _blocked = \
            self._blocking_windows(pnm_task_s, interval_s)
        tasks = full_tasks + (1 if tail_task_s > 0.0 else 0)
        traced = min(tasks, MAX_TRACED_TASK_WINDOWS)
        for i in range(traced):
            # The last task window may be the partial one truncated by
            # the end of the interval.
            dur = pnm_task_s if i < full_tasks else tail_task_s
            tracer.sim_span(
                "pnm_task(host blocked)", start_s=i * cycle,
                dur_s=dur, track="cxl.arbiter", category="cxl",
                args=({"tasks_total": tasks, "tasks_traced": traced}
                      if i == 0 else None))

    def simulate(self, policy: ArbitrationPolicy,
                 host: RequestStream, pnm: RequestStream,
                 pnm_task_s: float, interval_s: float) -> ArbiterStats:
        """Serve both streams for ``interval_s`` seconds.

        ``pnm_task_s`` is the duration of one acceleration task; under the
        blocking policy the PNM owns the memory for each task and the host
        resumes only at the next poll boundary after completion.
        """
        if interval_s <= 0 or pnm_task_s <= 0:
            raise ConfigurationError("durations must be positive")
        stats = ArbiterStats()
        if policy is ArbitrationPolicy.HARDWARE_WRR:
            demand = {Source.HOST: host.bandwidth, Source.PNM: pnm.bandwidth}
            grant = self._wrr_share(demand)
            for source, bw in grant.items():
                stats.served_bytes[source] = bw * interval_s
                # M/D/1-flavoured wait estimate under utilization rho.
                rho = min(0.999, sum(grant.values())
                          / self.memory_bandwidth)
                service = CACHELINE_BYTES / self.memory_bandwidth
                stats.mean_wait_s[source] = service * (
                    1.0 + rho / (2.0 * (1.0 - rho)))
            stats.host_blocked_s = 0.0
            self._observe(policy, stats, pnm_task_s, interval_s)
            return stats

        # Blocking-poll: back-to-back tasks with poll-delayed handovers,
        # including the trailing partial task window (see
        # :meth:`_blocking_windows` for why the tail counts as blocked).
        _full, _tail, pnm_time, blocked = self._blocking_windows(
            pnm_task_s, interval_s)
        host_time = max(0.0, interval_s - blocked)
        stats.served_bytes[Source.PNM] = min(
            pnm.bandwidth * interval_s, self.memory_bandwidth * pnm_time)
        stats.served_bytes[Source.HOST] = min(
            host.bandwidth * interval_s, self.memory_bandwidth * host_time)
        stats.host_blocked_s = min(blocked, interval_s)
        # Host requests arriving during a task wait half a task on average
        # plus half a poll interval before service resumes.
        frac_blocked = stats.host_blocked_s / interval_s
        stats.mean_wait_s[Source.HOST] = frac_blocked * (
            pnm_task_s / 2.0 + self.poll_interval_s / 2.0)
        stats.mean_wait_s[Source.PNM] = (
            CACHELINE_BYTES / self.memory_bandwidth)
        self._observe(policy, stats, pnm_task_s, interval_s)
        return stats


def compare_policies(memory_bandwidth: float, host_rate: float,
                     pnm_rate: float, pnm_task_s: float,
                     interval_s: float = 1.0
                     ) -> Dict[str, ArbiterStats]:
    """Run both policies on identical streams — the D3 demonstration."""
    arbiter = Arbiter(memory_bandwidth=memory_bandwidth)
    host = RequestStream(Source.HOST, host_rate)
    pnm = RequestStream(Source.PNM, pnm_rate)
    return {
        policy.value: arbiter.simulate(policy, host, pnm, pnm_task_s,
                                       interval_s)
        for policy in ArbitrationPolicy
    }
