"""CXL protocol substrate: transactions, links, arbitration, topology."""

from repro.cxl.arbiter import (
    Arbiter,
    ArbiterStats,
    ArbitrationPolicy,
    RequestStream,
    compare_policies,
)
from repro.cxl.memdev import AccessCounters, FunctionalCxlDevice
from repro.cxl.device import CXLType3Device, RegisterRegion
from repro.cxl.link import FLIT_BYTES, FLIT_PAYLOAD_BYTES, GEN4_X16, GEN5_X16, CXLLink
from repro.cxl.protocol import (
    CACHELINE_BYTES,
    Opcode,
    Protocol,
    Source,
    Transaction,
    read_burst,
)
from repro.cxl.topology import CXLTopology, build_topology

__all__ = [
    "AccessCounters",
    "FunctionalCxlDevice",
    "Arbiter",
    "ArbiterStats",
    "ArbitrationPolicy",
    "CACHELINE_BYTES",
    "CXLLink",
    "CXLTopology",
    "CXLType3Device",
    "FLIT_BYTES",
    "FLIT_PAYLOAD_BYTES",
    "GEN4_X16",
    "GEN5_X16",
    "Opcode",
    "Protocol",
    "RegisterRegion",
    "RequestStream",
    "Source",
    "Transaction",
    "build_topology",
    "compare_policies",
    "read_burst",
]
