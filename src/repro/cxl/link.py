"""CXL link model: PCIe Gen5 PHY, 68-byte flits, bandwidth and latency.

CXL 2.0 runs over the PCIe 5.0 electrical layer (32 GT/s per lane) and
packs protocol messages into 68-byte flits: 64 bytes of slots plus a
4-byte CRC/header.  A 64-byte data transfer additionally spends slot space
on the request/response headers, so the achievable payload efficiency for
streaming CXL.mem traffic lands near 80-90% of the raw link rate.

The latency model follows published CXL memory measurements (§II-A [47]):
a loaded CXL.mem read round-trip costs ~200-250 ns beyond local DRAM, from
PHY serialization, link-layer retry buffers, and the transaction layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ProtocolError
from repro.faults.context import get_faults
from repro.obs.context import get_metrics
from repro.units import Gbps, NANOSECOND

FLIT_BYTES = 68
FLIT_PAYLOAD_BYTES = 64

#: PCIe encoding overhead at Gen5 (128b/130b).
PCIE_ENCODING_EFFICIENCY = 128.0 / 130.0

#: Fraction of flit slots carrying data payload for streaming CXL.mem
#: (the remainder carries request/response headers and credits).
SLOT_PAYLOAD_EFFICIENCY = 0.85


@dataclass(frozen=True)
class CXLLink:
    """A CXL port: lane count, rate, and latency parameters.

    Attributes:
        lanes: PCIe lane count (x16 for the FHHL card).
        gt_per_s: Transfer rate per lane in GT/s (32 for Gen5).
        port_latency_ns: One-way port+retimer latency added per traversal.
        dram_access_ns: Device-side memory access latency for loaded reads.
    """

    lanes: int = 16
    gt_per_s: float = 32.0
    port_latency_ns: float = 35.0
    dram_access_ns: float = 90.0

    def __post_init__(self) -> None:
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ConfigurationError(f"invalid lane count {self.lanes}")
        if self.gt_per_s <= 0:
            raise ConfigurationError("link rate must be positive")

    @property
    def raw_bandwidth(self) -> float:
        """Raw unidirectional link bandwidth in bytes/s."""
        return (self.lanes * self.gt_per_s * Gbps / 8.0
                * PCIE_ENCODING_EFFICIENCY)

    @property
    def effective_bandwidth(self) -> float:
        """Payload bandwidth after flit framing and slot headers."""
        flit_eff = FLIT_PAYLOAD_BYTES / FLIT_BYTES
        return self.raw_bandwidth * flit_eff * SLOT_PAYLOAD_EFFICIENCY

    @property
    def read_latency_s(self) -> float:
        """Loaded round-trip latency of one CXL.mem read (seconds)."""
        round_trip_ports = 2 * 2 * self.port_latency_ns  # req + resp
        return (round_trip_ports + self.dram_access_ns) * NANOSECOND

    def num_flits(self, payload_bytes: int) -> int:
        """Flits needed to carry ``payload_bytes`` of data."""
        if payload_bytes < 0:
            raise ProtocolError("negative payload")
        full, rem = divmod(payload_bytes, FLIT_PAYLOAD_BYTES)
        return full + (1 if rem else 0)

    def transfer_time(self, num_bytes: float, pipelined: bool = True
                      ) -> float:
        """Seconds to move ``num_bytes`` across the link.

        Pipelined transfers (DMA bursts) pay one round-trip of latency and
        stream at effective bandwidth; non-pipelined (dependent loads) pay
        the round-trip per cacheline, which is why host software avoids
        pointer-chasing into CXL memory.

        When a fault plan with link errors is active (``repro.faults``),
        each flit may suffer a CRC error and pay link-layer replay
        latency with exponential backoff; the penalty is added to the
        returned time and counted in the metrics registry.  With no
        plan (or an empty one) this path is untouched.
        """
        if num_bytes < 0:
            raise ConfigurationError("cannot transfer negative bytes")
        if num_bytes == 0:
            return 0.0
        if pipelined:
            time_s = self.read_latency_s \
                + num_bytes / self.effective_bandwidth
        else:
            lines = (int(num_bytes) + FLIT_PAYLOAD_BYTES - 1) \
                // FLIT_PAYLOAD_BYTES
            time_s = lines * (self.read_latency_s
                              + FLIT_PAYLOAD_BYTES
                              / self.effective_bandwidth)
        metrics = get_metrics()
        faults = get_faults()
        crc_errors = replays = 0
        replay_s = 0.0
        if faults is not None:
            replay_s, crc_errors, replays = faults.link_transfer(
                self.num_flits(int(num_bytes)))
            time_s += replay_s
        if metrics.enabled:
            mode = "pipelined" if pipelined else "per-line"
            metrics.histogram("cxl.link.transfer_s",
                              mode=mode).observe(time_s)
            metrics.counter("cxl.link.bytes", mode=mode).inc(num_bytes)
            metrics.counter("cxl.link.transfers", mode=mode).inc()
            if crc_errors:
                metrics.counter("cxl.link.crc_errors").inc(crc_errors)
                metrics.counter("cxl.link.replays").inc(replays)
                metrics.histogram("cxl.link.replay_s").observe(replay_s)
        return time_s


#: The CXL-PNM card's port (Gen5 x16).
GEN5_X16 = CXLLink()

#: A Gen4 x16 port, for PCIe-attached GPU comparisons (16 GT/s).
GEN4_X16 = CXLLink(gt_per_s=16.0)
