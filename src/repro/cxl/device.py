"""CXL Type-3 device model: HDM decoder, register space, request routing.

A Type-3 (memory expansion) device exposes its DRAM to the host as
host-managed device memory (HDM) — one contiguous physical range the host
maps as a CPU-less NUMA node.  The CXL-PNM controller additionally exposes
a CXL.io register region used by the driver to configure, program, and
control the accelerator (paper Fig. 6, §VI).

This model performs the address decode both the runtime stack and the
topology model rely on: HDM range checks, translation to module-local
addresses, and routing of module-local addresses across LPDDR channels via
the controller's local interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.cxl.link import CXLLink, GEN5_X16
from repro.errors import AddressError
from repro.memory.interleave import MODULE_LOCAL_INTERLEAVE, InterleaveScheme
from repro.memory.module import MemoryModule, lpddr5x_module
from repro.units import MiB


@dataclass(frozen=True)
class RegisterRegion:
    """The device's CXL.io-mapped register window."""

    base: int
    size: int = 16 * MiB

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def offset_of(self, addr: int) -> int:
        if not self.contains(addr):
            raise AddressError(
                f"address {addr:#x} outside register region "
                f"[{self.base:#x}, {self.base + self.size:#x})")
        return addr - self.base


@dataclass(frozen=True)
class CXLType3Device:
    """One CXL memory-expansion device with an optional PNM personality.

    Attributes:
        device_id: Position in the topology (NUMA node ordering).
        module: The DRAM module behind the controller.
        hdm_base: Host physical address where the HDM range is mapped.
        link: The CXL port connecting the device to the host.
        interleave: Controller-local interleaving across LPDDR channels.
    """

    device_id: int
    module: MemoryModule = field(default_factory=lpddr5x_module)
    hdm_base: int = 0
    link: CXLLink = GEN5_X16
    interleave: InterleaveScheme = MODULE_LOCAL_INTERLEAVE

    @property
    def hdm_size(self) -> int:
        return self.module.capacity_bytes

    @property
    def hdm_end(self) -> int:
        return self.hdm_base + self.hdm_size

    @property
    def register_region(self) -> RegisterRegion:
        """CXL.io registers sit immediately above the HDM range."""
        return RegisterRegion(base=self.hdm_end)

    def contains(self, addr: int) -> bool:
        """Whether a host physical address decodes to this device's HDM."""
        return self.hdm_base <= addr < self.hdm_end

    def to_local(self, host_addr: int) -> int:
        """Translate a host physical address to a module-local address."""
        if not self.contains(host_addr):
            raise AddressError(
                f"host address {host_addr:#x} outside device {self.device_id}"
                f" HDM [{self.hdm_base:#x}, {self.hdm_end:#x})")
        return host_addr - self.hdm_base

    def to_host(self, local_addr: int) -> int:
        """Translate a module-local address to the host physical address."""
        if not 0 <= local_addr < self.hdm_size:
            raise AddressError(
                f"local address {local_addr:#x} outside module of "
                f"{self.hdm_size:#x} bytes")
        return self.hdm_base + local_addr

    def route(self, local_addr: int) -> Tuple[int, int]:
        """Map a module-local address to (LPDDR channel, channel offset).

        This is the controller-local interleaving that lets the PNM
        accelerator stream a contiguous region at full module bandwidth
        while the host sees one flat range — the resolution of (D4).
        """
        if not 0 <= local_addr < self.hdm_size:
            raise AddressError(f"local address {local_addr:#x} out of range")
        return (self.interleave.channel_of(local_addr),
                self.interleave.local_offset(local_addr))
