"""Host + multi-device CXL topology: one unified physical address space.

Multiple CXL devices and the host DRAM form a single system address map,
each device appearing as a NUMA node (paper §V-A, §V-C).  This is what
lets the host CPU orchestrate device-to-device transfers with the DMA
engines instead of a dedicated inter-device router: any device's DMA can
target any other device's HDM range through the unified map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cxl.device import CXLType3Device
from repro.cxl.link import CXLLink, GEN5_X16
from repro.errors import AddressError, ConfigurationError
from repro.memory.module import MemoryModule, lpddr5x_module
from repro.units import GiB


@dataclass(frozen=True)
class CXLTopology:
    """The system address map: host DRAM followed by N device HDM ranges.

    Attributes:
        host_dram_bytes: Capacity of the host's local DRAM (NUMA node 0).
        devices: CXL devices in NUMA-node order (nodes 1..N).
    """

    host_dram_bytes: int
    devices: Tuple[CXLType3Device, ...]

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def total_device_capacity(self) -> int:
        return sum(d.hdm_size for d in self.devices)

    @property
    def total_capacity(self) -> int:
        return self.host_dram_bytes + self.total_device_capacity

    def device_of(self, addr: int) -> Optional[CXLType3Device]:
        """The device owning a host physical address, or None for host DRAM."""
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")
        if addr < self.host_dram_bytes:
            return None
        for device in self.devices:
            if device.contains(addr):
                return device
        raise AddressError(f"address {addr:#x} unmapped in topology")

    def numa_node_of(self, addr: int) -> int:
        """NUMA node index of an address (0 = host)."""
        device = self.device_of(addr)
        return 0 if device is None else device.device_id + 1

    def transfer_hops(self, src_addr: int, dst_addr: int) -> int:
        """CXL link traversals for a DMA between two addresses.

        Same node: 0; host<->device: 1; device<->device through the host
        root complex: 2 (the paper's host-orchestrated model, §V-C).
        """
        src = self.device_of(src_addr)
        dst = self.device_of(dst_addr)
        if src is dst:
            return 0
        if src is None or dst is None:
            return 1
        return 2

    def d2d_transfer_time(self, num_bytes: float, link: CXLLink = GEN5_X16
                          ) -> float:
        """Seconds for one host-orchestrated device-to-device transfer."""
        if num_bytes < 0:
            raise ConfigurationError("negative transfer size")
        if num_bytes == 0:
            return 0.0
        # Two link traversals; streams are pipelined so bandwidth is paid
        # once per hop and latency once per hop.
        per_hop = link.read_latency_s + num_bytes / link.effective_bandwidth
        return 2 * per_hop


def build_topology(num_devices: int,
                   host_dram_bytes: int = 512 * GiB,
                   module_factory=lpddr5x_module) -> CXLTopology:
    """Stack ``num_devices`` CXL-PNM devices after host DRAM in the map."""
    if num_devices <= 0:
        raise ConfigurationError("topology needs at least one device")
    devices: List[CXLType3Device] = []
    base = host_dram_bytes
    for i in range(num_devices):
        module: MemoryModule = module_factory()
        device = CXLType3Device(device_id=i, module=module, hdm_base=base)
        devices.append(device)
        # Leave room for the register region between devices.
        base = device.register_region.base + device.register_region.size
    return CXLTopology(host_dram_bytes=host_dram_bytes,
                       devices=tuple(devices))
