"""Matrix-processing-unit timing model (Fig. 8).

The MPU has two datapaths:

* a **PE array** of 64x32 FP16 MAC units (the paper's GEMM extension to
  DFX) — 2,048 MACs, peak 4.09 TFLOPS at 1 GHz;
* **adder trees**: 16 lanes of 128-wide multiply + 127-deep reduction
  (2,048 multipliers / 2,032 adders, Table II) for GEMV — also 4.09
  TFLOPS peak.

Work is tiled at ``TILE_DIM`` = 128 (the paper doubles DFX's 64 because
the LPDDR5X module provides >2x DFX's HBM bandwidth and attention head
dimensions are multiples of 128).  Cycle counts round dimensions up to
hardware granularity, so small matrices show realistic utilization loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator import isa
from repro.accelerator.compiler import TILE_DIM
from repro.errors import SimulationError


def _round_up(value: int, multiple: int) -> int:
    return (value + multiple - 1) // multiple * multiple


@dataclass(frozen=True)
class MpuTiming:
    """Cycle-accurate-ish timing of MPU instructions.

    Attributes:
        pe_rows / pe_cols: PE-array geometry (64 x 32); zero for
            tree-only designs like the DFX baseline.
        tree_lanes / tree_width: Adder-tree geometry (16 x 128).
        pipeline_fill_cycles: Startup latency of a matrix instruction.
        gemm_via_tree: Execute GEMMs as row-by-row GEMV sweeps on the
            adder trees — DFX's behaviour, the bottleneck the paper's PE
            array removes.
    """

    pe_rows: int = 64
    pe_cols: int = 32
    tree_lanes: int = 16
    tree_width: int = TILE_DIM
    pipeline_fill_cycles: int = 96
    gemm_via_tree: bool = False

    @property
    def pe_macs_per_cycle(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def tree_macs_per_cycle(self) -> int:
        return self.tree_lanes * self.tree_width

    def gemm_cycles(self, m: int, k: int, n: int) -> int:
        """Cycles for an ``[m,k] @ [k,n]`` GEMM.

        On the PE array, rows round up to the array's row count and
        columns/depth to the tile dimension — the fragmentation that makes
        narrow GEMMs cheap on adder trees instead.  Tree-only designs
        sweep the rows through the GEMV datapath.
        """
        if self.gemm_via_tree or self.pe_macs_per_cycle == 0:
            per_row = self.gemv_cycles(k, n) - self.pipeline_fill_cycles
            return self.pipeline_fill_cycles + m * per_row
        mr = _round_up(m, min(m, self.pe_rows)) if m >= self.pe_rows \
            else self.pe_rows
        kr = _round_up(k, TILE_DIM)
        nr = _round_up(n, self.pe_cols)
        macs = mr * kr * nr
        return self.pipeline_fill_cycles + macs // self.pe_macs_per_cycle

    def gemv_cycles(self, k: int, n: int) -> int:
        """Adder-tree cycles for a ``[1,k] @ [k,n]`` GEMV."""
        kr = _round_up(k, self.tree_width)
        nr = _round_up(n, self.tree_lanes)
        macs = kr * nr
        return self.pipeline_fill_cycles + macs // self.tree_macs_per_cycle

    def cycles(self, instr: isa.Instruction) -> int:
        """Cycles the instruction occupies its MPU datapath."""
        if isinstance(instr, isa.MpuMmPea):
            return self.gemm_cycles(instr.m, instr.k, instr.n)
        if isinstance(instr, isa.MpuMv):
            return self.gemv_cycles(instr.k, instr.n)
        if isinstance(instr, isa.MpuMaskedMm):
            per_head = (self.gemm_cycles(instr.m, instr.head_dim, instr.ctx)
                        if instr.m > 1
                        else self.gemv_cycles(instr.head_dim, instr.ctx))
            # Heads pipeline back-to-back; fill is paid once.
            return (self.pipeline_fill_cycles
                    + instr.heads * (per_head - self.pipeline_fill_cycles))
        if isinstance(instr, isa.MpuAttnContext):
            per_head = (self.gemm_cycles(instr.m, instr.ctx, instr.head_dim)
                        if instr.m > 1
                        else self.gemv_cycles(instr.ctx, instr.head_dim))
            return (self.pipeline_fill_cycles
                    + instr.heads * (per_head - self.pipeline_fill_cycles))
        if isinstance(instr, isa.MpuConv2d):
            oh, ow = instr.out_hw
            return self.gemm_cycles(oh * ow, instr.in_ch * instr.kh * instr.kw,
                                    instr.out_ch)
        if isinstance(instr, isa.MpuTranspose):
            return self.pipeline_fill_cycles
        raise SimulationError(f"{instr.opcode} is not an MPU instruction")
