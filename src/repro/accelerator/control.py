"""Accelerator control unit: control registers and instruction buffer.

Paper §VI: the control unit exposes ten 32-bit control registers holding
the architectural parameters of the model being run (decoding layers,
input/output token counts, ...) and the device-memory addresses of the
regions the inference engine operates on.  The host programs them over
CXL.io through the driver, writes acceleration code into the instruction
buffer, and kicks execution; completion raises an MSI-X interrupt (or a
pollable status flag).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.accelerator import isa
from repro.errors import DriverError


class ControlRegister(enum.IntEnum):
    """The ten 32-bit control registers (§VI)."""

    NUM_LAYERS = 0
    NUM_INPUT_TOKENS = 1
    NUM_OUTPUT_TOKENS = 2
    MODEL_BASE_ADDR = 3
    KV_CACHE_BASE_ADDR = 4
    INPUT_BUFFER_ADDR = 5
    OUTPUT_BUFFER_ADDR = 6
    INSTRUCTION_COUNT = 7
    STATUS = 8
    INTERRUPT_ENABLE = 9


class Status(enum.IntEnum):
    """Values of the STATUS control register."""

    IDLE = 0
    RUNNING = 1
    DONE = 2
    ERROR = 3


_REG_MASK = 0xFFFF_FFFF


@dataclass
class ControlUnit:
    """Register file + instruction buffer of the accelerator front end."""

    max_instructions: int = 1 << 20

    _registers: list = field(default_factory=lambda: [0] * 10)
    _instruction_buffer: Tuple[isa.Instruction, ...] = ()

    def write_register(self, reg: ControlRegister, value: int) -> None:
        if not isinstance(reg, ControlRegister):
            reg = ControlRegister(reg)
        if value < 0:
            raise DriverError(f"register {reg.name}: negative value {value}")
        self._registers[reg] = value & _REG_MASK

    def read_register(self, reg: ControlRegister) -> int:
        if not isinstance(reg, ControlRegister):
            reg = ControlRegister(reg)
        return self._registers[reg]

    @property
    def status(self) -> Status:
        return Status(self._registers[ControlRegister.STATUS])

    def set_status(self, status: Status) -> None:
        self._registers[ControlRegister.STATUS] = int(status)

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self._registers[ControlRegister.INTERRUPT_ENABLE])

    def program(self, code: Tuple[isa.Instruction, ...]) -> None:
        """Load acceleration code into the instruction buffer."""
        if self.status is Status.RUNNING:
            raise DriverError("cannot program while the accelerator runs")
        if len(code) == 0:
            raise DriverError("empty acceleration code")
        if len(code) > self.max_instructions:
            raise DriverError(
                f"{len(code)} instructions exceed the buffer size "
                f"{self.max_instructions}")
        if not isinstance(code, tuple):
            code = tuple(code)
        isa.validate_program_cached(code)
        # Keep the tuple identity: the executor and simulator recognise an
        # already-validated program by identity and skip re-validation.
        self._instruction_buffer = code
        self._registers[ControlRegister.INSTRUCTION_COUNT] = len(code)

    @property
    def instruction_buffer(self) -> Tuple[isa.Instruction, ...]:
        if not self._instruction_buffer:
            raise DriverError("instruction buffer not programmed")
        return self._instruction_buffer
