"""Register files of the LLM inference accelerator.

Table II provisions 63 MB of matrix/vector/scalar register files.  The
register file manager (Fig. 7) hands out registers to the compiler and the
functional executor enforces the capacity: every live register's bytes
count against its bank, and exceeding a bank is a compile/run-time error —
which is exactly what forces the compiler to tile large activations.

Register names encode the bank: ``m*`` matrix, ``v*`` vector, ``s*``
scalar (e.g. ``m3``, ``v12``, ``s0``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterator

import numpy as np

from repro.errors import AllocationError, IsaError
from repro.units import MiB

#: Bank capacities; sum to the 63 MB of Table II (modelled at the
#: accelerator's FP16 datatype — the functional executor stores fp32 and
#: divides by DeviceMemory.logical_scale when charging the budget).
MATRIX_RF_BYTES = 48 * MiB
VECTOR_RF_BYTES = 14 * MiB
SCALAR_RF_BYTES = 1 * MiB

_NAME_RE = re.compile(r"^([mvs])(\d+)$")


@lru_cache(maxsize=4096)
def bank_of(reg: str) -> str:
    """Bank letter of a register name, validating the format.

    Cached: the same few dozen compiler-generated names are classified on
    every register-file access, which made the regex a decode-loop
    hotspot.
    """
    match = _NAME_RE.match(reg)
    if not match:
        raise IsaError(
            f"bad register name {reg!r}; expected m<N>, v<N>, or s<N>")
    return match.group(1)


@dataclass
class RegisterAllocator:
    """Compile-time register-name generator, one counter per bank."""

    _counters: Dict[str, int] = field(
        default_factory=lambda: {"m": 0, "v": 0, "s": 0})

    def fresh(self, bank: str) -> str:
        """Return a new unique register name in ``bank``."""
        if bank not in self._counters:
            raise IsaError(f"unknown register bank {bank!r}")
        name = f"{bank}{self._counters[bank]}"
        self._counters[bank] += 1
        return name

    def matrix(self) -> str:
        return self.fresh("m")

    def vector(self) -> str:
        return self.fresh("v")

    def scalar(self) -> str:
        return self.fresh("s")


class RegisterFileState:
    """Runtime register storage with per-bank capacity accounting.

    ``logical_scale`` converts stored fp32 bytes to the modelled FP16
    footprint before charging the bank budget.
    """

    def __init__(self, matrix_bytes: int = MATRIX_RF_BYTES,
                 vector_bytes: int = VECTOR_RF_BYTES,
                 scalar_bytes: int = SCALAR_RF_BYTES,
                 logical_scale: float = 0.5):
        self._capacity = {"m": matrix_bytes, "v": vector_bytes,
                          "s": scalar_bytes}
        self._used = {"m": 0, "v": 0, "s": 0}
        self._values: Dict[str, np.ndarray] = {}
        self._logical_scale = logical_scale

    def _logical_bytes(self, value: np.ndarray) -> int:
        return int(value.nbytes * self._logical_scale)

    def write(self, reg: str, value: np.ndarray) -> None:
        """Set a register, charging its bank for the new footprint."""
        if type(value) is not np.ndarray or value.dtype != np.float32:
            value = np.asarray(value, dtype=np.float32)
        old = self._values.get(reg)
        if old is not None and old.nbytes == value.nbytes:
            # Same footprint swap: the bank charge is unchanged (and the
            # name was validated on the first write).
            self._values[reg] = value
            return
        bank = bank_of(reg)
        new_bytes = self._logical_bytes(value)
        old_bytes = self._logical_bytes(old) if old is not None else 0
        used = self._used[bank] - old_bytes + new_bytes
        if used > self._capacity[bank]:
            raise AllocationError(
                f"register file bank {bank!r} overflow: {used} B needed, "
                f"{self._capacity[bank]} B capacity (writing {reg})")
        self._used[bank] = used
        self._values[reg] = value

    def read(self, reg: str) -> np.ndarray:
        bank_of(reg)
        try:
            return self._values[reg]
        except KeyError:
            raise IsaError(f"register {reg} read before write")

    def free(self, reg: str) -> None:
        """Release a register's bytes back to its bank."""
        bank = bank_of(reg)
        value = self._values.pop(reg, None)
        if value is not None:
            self._used[bank] -= int(value.nbytes * self._logical_scale)

    def used_bytes(self, bank: str) -> int:
        if bank not in self._used:
            raise IsaError(f"unknown register bank {bank!r}")
        return self._used[bank]

    def live_registers(self) -> Iterator[str]:
        return iter(self._values)

    def __contains__(self, reg: str) -> bool:
        return reg in self._values
