"""Compiler: lowers transformer stages into acceleration code.

The CXL-PNM Python library accelerates layer functions by programming the
instruction buffer with sequences of accelerator instructions (paper §VI).
This module is the code generator: given a model layout in device memory
and the stage geometry, it emits the acceleration code for a full sum or
gen stage — QKV generation on the PE array or adder trees, REDUMAX-fused
masked attention, softmax, projection, FFN with GELU, KV-cache append, and
the LM head with greedy argmax.

The emitted code is consumed three ways, from one source of truth:

* the functional executor runs it (token-exact vs the numpy reference);
* the timing simulator schedules it onto DMA/PE-array/adder-tree/VPU;
* the driver writes it into the simulated instruction buffer.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator import isa
from repro.accelerator.memory import DeviceMemory, Region
from repro.accelerator.registers import RegisterAllocator
from repro.errors import (
    CapacityError,
    ConfigurationError,
    ProgramVerificationError,
)
from repro.llm.config import LLMConfig
from repro.llm.reference import LN_EPS, ModelWeights

#: Tile dimension of the matrix units; the paper doubles DFX's 64 to 128
#: to exploit the 1.1 TB/s module (§V-C).  Matmul dimensions need not be
#: multiples of it functionally, but the timing model rounds tiles up.
TILE_DIM = 128

#: Per-layer weight matrices the int8 quantizing loader compresses (the
#: streamed GEMV/GEMM operands that dominate gen-stage bandwidth).
#: Embeddings, biases, LayerNorm parameters, and the KV caches stay at
#: the full functional width.
_QUANTIZED_SUFFIXES = ("w_qkv", "w_proj", "w_fc1", "w_fc2")


def _is_quantized_weight(name: str) -> bool:
    return name == "lm_head" or name.rsplit(".", 1)[-1] in _QUANTIZED_SUFFIXES


def quantize_per_channel(tensor: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantization of a ``[k, n]``
    weight matrix.

    Returns ``(codes, scales)``: ``codes`` holds integral values in
    ``[-127, 127]`` (kept in a float32 array because device memory is
    functionally fp32), ``scales`` the per-column dequantization factor
    such that ``codes * scales`` approximates ``tensor`` with at most
    half a quantization step of error per element.
    """
    tensor = np.asarray(tensor, dtype=np.float32)
    scales = np.max(np.abs(tensor), axis=0) / np.float32(127.0)
    scales = np.where(scales > 0, scales, np.float32(1.0)).astype(np.float32)
    codes = np.clip(np.rint(tensor / scales), -127, 127).astype(np.float32)
    return codes, scales


@dataclass(frozen=True)
class ModelLayout:
    """Addresses of every model tensor and working buffer in device memory.

    Attributes:
        config: The model architecture.
        regions: Tensor name -> allocated region (weights, caches, I/O).
        quantize: ``"int8"`` when the loader stored quantized weight
            codes plus per-channel ``<name>.scale`` regions, else None.
    """

    config: LLMConfig
    regions: Dict[str, Region]
    quantize: Optional[str] = field(default=None)

    def addr(self, name: str) -> int:
        try:
            return self.regions[name].addr
        except KeyError:
            raise ConfigurationError(f"layout has no tensor {name!r}")

    @property
    def output_region(self) -> Region:
        return self.regions["output_buffer"]

    @property
    def input_region(self) -> Region:
        return self.regions["input_buffer"]


def load_model(memory: DeviceMemory, weights: ModelWeights,
               quantize: Optional[str] = None) -> ModelLayout:
    """Write a model's parameters into device memory and build its layout.

    Also allocates the per-layer KV-cache regions (``max_seq_len`` rows
    each, the aggregated K and V matrices of §II-B) and the designated
    input/output buffers the driver exposes (§VI step 2/3).

    ``quantize="int8"`` runs the quantizing pass at load time: each
    streamed weight matrix (per-layer QKV/projection/FFN and the LM
    head) is stored as integral int8 codes with a ``<name>.scale``
    region of per-output-channel dequantization scales alongside.
    """
    if quantize not in (None, "int8"):
        raise ConfigurationError(
            f"unknown quantize mode {quantize!r} (expected None or 'int8')")
    config = weights.config
    regions: Dict[str, Region] = {}
    for name, tensor in weights.named_tensors().items():
        if quantize == "int8" and _is_quantized_weight(name):
            codes, scales = quantize_per_channel(tensor)
            regions[name] = memory.store_named(name, codes)
            scale_name = name + ".scale"
            regions[scale_name] = memory.store_named(scale_name, scales)
        else:
            regions[name] = memory.store_named(name, tensor)
    for i in range(config.num_layers):
        for which in ("kcache", "vcache"):
            name = f"layer{i}.{which}"
            regions[name] = memory.alloc_tensor(
                name, (config.max_seq_len, config.d_model))
    regions["input_buffer"] = memory.alloc_tensor(
        "input_buffer", (config.max_seq_len, config.d_model))
    # Sized for the widest single store: one token per request of a
    # batched decode step (shape ``(batch,)``), which can exceed the
    # historical 8-slot buffer.
    regions["output_buffer"] = memory.alloc_tensor(
        "output_buffer", (max(8, config.max_seq_len),))
    return ModelLayout(config=config, regions=regions, quantize=quantize)


class StageCompiler:
    """Emits acceleration code for one inference stage.

    ``quantize="int8"`` emits int8 GEMV/GEMM with fused dequant+bias
    against a layout built by ``load_model(..., quantize="int8")``
    (the compiler needs the ``<name>.scale`` regions); by default it
    inherits the layout's own quantization mode.
    """

    def __init__(self, layout: ModelLayout,
                 quantize: Optional[str] = None):
        self.layout = layout
        self.config = layout.config
        if quantize is None:
            quantize = layout.quantize
        if quantize not in (None, "int8"):
            raise ConfigurationError(
                f"unknown quantize mode {quantize!r} "
                f"(expected None or 'int8')")
        if quantize == "int8" and "lm_head.scale" not in layout.regions:
            raise ConfigurationError(
                "quantize='int8' needs a layout with per-channel scale "
                "regions (load the model with quantize='int8')")
        self.quantize = quantize

    def _matmul(self, out: str, act: str, weight: str, m: int, k: int,
                n: int, code: List[isa.Instruction],
                bias: Optional[str] = None) -> None:
        """GEMM on the PE array for multi-token rows, GEMV otherwise.

        In int8 mode the per-channel scales stream from the weight's
        ``.scale`` region and ``bias`` (when given) is fused into the
        matmul's dequantizing writeback; in fp16 mode the bias stays a
        separate ``VPU_BIAS``, so unquantized programs are bit-identical
        to the historical emission.
        """
        waddr = self.layout.addr(weight)
        if self.quantize == "int8":
            scale = self.layout.addr(weight + ".scale")
            baddr = self.layout.addr(bias) if bias is not None else -1
            if m > 1:
                code.append(isa.MpuMmPea(
                    dst=out, act=act, weight_addr=waddr, m=m, k=k, n=n,
                    dtype="int8", scale_addr=scale, bias_addr=baddr))
            else:
                code.append(isa.MpuMv(
                    dst=out, act=act, weight_addr=waddr, k=k, n=n,
                    dtype="int8", scale_addr=scale, bias_addr=baddr))
            return
        if m > 1:
            code.append(isa.MpuMmPea(dst=out, act=act, weight_addr=waddr,
                                     m=m, k=k, n=n))
        else:
            code.append(isa.MpuMv(dst=out, act=act, weight_addr=waddr,
                                  k=k, n=n))
        if bias is not None:
            code.append(isa.VpuBias(dst=out, src=out,
                                    bias_addr=self.layout.addr(bias), n=n))

    def _layer(self, x: str, layer_idx: int, m: int, ctx_prev: int,
               regs: RegisterAllocator, code: List[isa.Instruction]) -> str:
        cfg = self.config
        d, dff = cfg.d_model, cfg.d_ff
        heads, hd = cfg.num_heads, cfg.head_dim
        ctx = ctx_prev + m
        prefix = f"layer{layer_idx}."
        addr = self.layout.addr

        h = regs.matrix()
        code.append(isa.VpuLayerNorm(dst=h, src=x,
                                     gamma_addr=addr(prefix + "ln1_gamma"),
                                     beta_addr=addr(prefix + "ln1_beta"),
                                     n=d, eps=LN_EPS))
        qkv = regs.matrix()
        self._matmul(qkv, h, prefix + "w_qkv", m, d, 3 * d, code,
                     bias=prefix + "b_qkv")
        q, k_new, v_new = regs.matrix(), regs.matrix(), regs.matrix()
        code.append(isa.VpuSlice(dst=q, src=qkv, start=0, stop=d))
        code.append(isa.VpuSlice(dst=k_new, src=qkv, start=d, stop=2 * d))
        code.append(isa.VpuSlice(dst=v_new, src=qkv, start=2 * d,
                                 stop=3 * d))
        # Append this stage's K/V rows to the aggregated cache (§II-B).
        row_bytes = d * 4
        code.append(isa.DmaStore(
            src=k_new, addr=addr(prefix + "kcache") + ctx_prev * row_bytes,
            shape=(m, d)))
        code.append(isa.DmaStore(
            src=v_new, addr=addr(prefix + "vcache") + ctx_prev * row_bytes,
            shape=(m, d)))
        scores, rowmax = regs.matrix(), regs.vector()
        code.append(isa.MpuMaskedMm(
            dst=scores, q=q, k_addr=addr(prefix + "kcache"), heads=heads,
            head_dim=hd, ctx=ctx, m=m, scale=1.0 / math.sqrt(hd),
            mask_offset=ctx_prev, rowmax_dst=rowmax))
        probs = regs.matrix()
        code.append(isa.VpuSoftmax(dst=probs, src=scores, rowmax=rowmax))
        attn = regs.matrix()
        code.append(isa.MpuAttnContext(
            dst=attn, probs=probs, v_addr=addr(prefix + "vcache"),
            heads=heads, head_dim=hd, ctx=ctx, m=m))
        proj = regs.matrix()
        self._matmul(proj, attn, prefix + "w_proj", m, d, d, code,
                     bias=prefix + "b_proj")
        x2 = regs.matrix()
        code.append(isa.VpuAdd(dst=x2, a=x, b=proj))
        code.append(isa.Free(regs=(h, qkv, q, k_new, v_new, scores, rowmax,
                                   probs, attn, proj, x)))

        h2 = regs.matrix()
        code.append(isa.VpuLayerNorm(dst=h2, src=x2,
                                     gamma_addr=addr(prefix + "ln2_gamma"),
                                     beta_addr=addr(prefix + "ln2_beta"),
                                     n=d, eps=LN_EPS))
        f1 = regs.matrix()
        self._matmul(f1, h2, prefix + "w_fc1", m, d, dff, code,
                     bias=prefix + "b_fc1")
        g = regs.matrix()
        code.append(isa.VpuGelu(dst=g, src=f1))
        f2 = regs.matrix()
        self._matmul(f2, g, prefix + "w_fc2", m, dff, d, code,
                     bias=prefix + "b_fc2")
        x3 = regs.matrix()
        code.append(isa.VpuAdd(dst=x3, a=x2, b=f2))
        code.append(isa.Free(regs=(h2, f1, g, f2, x2)))
        return x3

    def compile_stage(self, tokens: Sequence[int], ctx_prev: int
                      ) -> Tuple[isa.Instruction, ...]:
        """Acceleration code for one stage over ``tokens``.

        ``ctx_prev`` is the number of tokens already in the KV cache: 0
        for the sum stage, ``L - 1`` for a gen stage.  The code embeds the
        tokens, runs all decoding layers, and leaves the argmax-sampled
        next token in the designated output buffer.
        """
        cfg = self.config
        m = len(tokens)
        if m == 0:
            raise ConfigurationError("stage needs at least one token")
        if ctx_prev + m > cfg.max_seq_len:
            raise CapacityError(
                f"stage would reach {ctx_prev + m} tokens, beyond "
                f"max_seq_len={cfg.max_seq_len}")
        regs = RegisterAllocator()
        code: List[isa.Instruction] = []
        addr = self.layout.addr

        tok = regs.matrix()
        code.append(isa.DmaGather(dst=tok,
                                  table_addr=addr("token_embedding"),
                                  row_elems=cfg.d_model,
                                  indices=tuple(int(t) for t in tokens)))
        pos = regs.matrix()
        code.append(isa.DmaLoad(
            dst=pos,
            addr=addr("position_embedding") + ctx_prev * cfg.d_model * 4,
            shape=(m, cfg.d_model)))
        x = regs.matrix()
        code.append(isa.VpuAdd(dst=x, a=tok, b=pos))
        code.append(isa.Free(regs=(tok, pos)))

        for layer_idx in range(cfg.num_layers):
            x = self._layer(x, layer_idx, m, ctx_prev, regs, code)

        last = regs.matrix()
        code.append(isa.VpuRow(dst=last, src=x, row=-1))
        final = regs.matrix()
        code.append(isa.VpuLayerNorm(dst=final, src=last,
                                     gamma_addr=addr("ln_f_gamma"),
                                     beta_addr=addr("ln_f_beta"),
                                     n=cfg.d_model, eps=LN_EPS))
        logits = regs.matrix()
        self._matmul(logits, final, "lm_head", 1, cfg.d_model,
                     cfg.vocab_size, code)
        token_reg = regs.scalar()
        code.append(isa.VpuArgmax(dst=token_reg, src=logits))
        code.append(isa.DmaStore(src=token_reg,
                                 addr=self.layout.output_region.addr,
                                 shape=(1,)))
        code.append(isa.Free(regs=(x, last, final, logits, token_reg)))
        code.append(isa.Barrier())
        return tuple(code)

    def compile_sum_stage(self, prompt: Sequence[int]
                          ) -> Tuple[isa.Instruction, ...]:
        """Sum stage: the whole prompt, empty cache."""
        return self.compile_stage(prompt, ctx_prev=0)

    def compile_gen_stage(self, token: int, context_len: int
                          ) -> Tuple[isa.Instruction, ...]:
        """Gen stage: one token against ``context_len - 1`` cached tokens."""
        if context_len < 1:
            raise ConfigurationError("gen stage needs prior context")
        return self.compile_stage([token], ctx_prev=context_len - 1)


#: Distinguishes programs from different :class:`ProgramCache` instances
#: (hence different layouts) in :attr:`CachedProgram.timing_key`.
_CACHE_SERIALS = itertools.count()


class CachedProgram(tuple):
    """A stage program carrying a cheap timing identity.

    ``timing_key`` is ``(cache_serial, batch_tokens, ctx_prev)``:
    programs with equal keys come from the same :class:`ProgramCache`
    (same layout, same config) and identical stage geometry, so they
    schedule identically and the timing simulator may reuse a cached
    :class:`~repro.perf.simulator.SimulationResult` without rescheduling.
    The instructions themselves are the ordinary tuple contents.
    """

    timing_key: Tuple[int, int, int]

    def __new__(cls, instructions: Sequence[isa.Instruction],
                timing_key: Tuple[int, int, int]) -> "CachedProgram":
        self = super().__new__(cls, instructions)
        self.timing_key = timing_key
        return self


def _patched(instr: isa.Instruction, **changes) -> isa.Instruction:
    """Clone a frozen instruction with a few fields swapped.

    ``dataclasses.replace`` re-runs ``__init__``/``__post_init__`` on
    every clone, which dominated the patch cost; the patched values are
    produced from an already-validated template (``verify=True`` and the
    cache tests check the equivalence), so a ``__dict__``-level copy is
    safe and several times cheaper.
    """
    clone = object.__new__(type(instr))
    clone.__dict__.update(instr.__dict__)
    clone.__dict__.update(changes)
    return clone


class ProgramCache:
    """Compile-once, patch-per-token cache of stage programs.

    Decode programs are identical up to the fed-back token id and the
    context length: instruction order, register names, and weight
    addresses depend only on the batch size and the layout.  The cache
    keeps one *template* program per batch size and patches the few
    geometry-dependent immediates — embedding-gather indices, the
    position-embedding address, the per-layer KV-append addresses, and
    the attention spans — with a ``__dict__``-level clone.  The patched
    program compares equal to a fresh ``compile_stage`` of the same
    arguments (``verify=True`` asserts this on every patch; the test
    suite asserts it across geometries).

    Patching rewrites immediates only, never register operands or
    instruction order, so a patched program inherits the template's
    validity and is registered with the validate-once registry instead
    of being re-checked.

    Attributes:
        hits: Stages served by patching (or returning) a template.
        misses: Stages that required a full compile.
    """

    def __init__(self, compiler: StageCompiler, verify: bool = False,
                 verify_static: bool = False):
        self.compiler = compiler
        self.verify = verify
        #: Run the :mod:`repro.analysis` verifier once per distinct
        #: ``timing_key`` and raise ``ProgramVerificationError`` on any
        #: ERROR diagnostic.  Patched programs share their template's
        #: register structure, so the per-key check only adds the cheap
        #: address pass on geometries not seen before.
        self.verify_static = verify_static
        self._serial = next(_CACHE_SERIALS)
        #: batch size -> (template, template tokens, template ctx_prev,
        #: tuple of (instruction index, patch kind))
        self._templates: Dict[int, Tuple[CachedProgram, Tuple[int, ...],
                                         int, Tuple[Tuple[int, str], ...]]] \
            = {}
        self._static_ok: set = set()
        self.hits = 0
        self.misses = 0

    def _verify_static(self, program: "CachedProgram",
                       full: bool) -> None:
        """Statically verify one cached program (once per timing key).

        ``full=True`` (template miss) runs dataflow + address +
        pressure; ``full=False`` (patched clone) skips the
        shape-inference pressure pass, since patching rewrites
        immediates and inherits the template's register structure.
        """
        if not self.verify_static or program.timing_key in self._static_ok:
            return
        from repro.analysis.verifier import verify_program
        report = verify_program(
            program, layout=self.compiler.layout,
            check_pressure=full,
            subject=f"stage timing_key={program.timing_key}")
        if not report.ok:
            raise ProgramVerificationError(report.render())
        self._static_ok.add(program.timing_key)

    @staticmethod
    def _patch_plan(program: Sequence[isa.Instruction]
                    ) -> Tuple[Tuple[int, str], ...]:
        plan: List[Tuple[int, str]] = []
        for idx, instr in enumerate(program):
            if isinstance(instr, isa.DmaGather):
                plan.append((idx, "gather"))
            elif isinstance(instr, isa.DmaLoad):
                # The only load is the position-embedding block, whose
                # address is ctx_prev rows into the table.
                plan.append((idx, "addr"))
            elif isinstance(instr, isa.DmaStore) and len(instr.shape) == 2:
                # 2-D stores are the KV-cache appends at row ctx_prev;
                # the 1-D output-token store is geometry-independent.
                plan.append((idx, "addr"))
            elif isinstance(instr, isa.MpuMaskedMm):
                plan.append((idx, "attn"))
            elif isinstance(instr, isa.MpuAttnContext):
                plan.append((idx, "ctx"))
        return tuple(plan)

    def stage(self, tokens: Sequence[int], ctx_prev: int) -> CachedProgram:
        """Equivalent of ``compiler.compile_stage(tokens, ctx_prev)``."""
        tokens = tuple(int(t) for t in tokens)
        m = len(tokens)
        entry = self._templates.get(m)
        if entry is None:
            fresh = self.compiler.compile_stage(tokens, ctx_prev)
            program = CachedProgram(fresh, (self._serial, m, ctx_prev))
            isa.validate_program_cached(program)
            self._verify_static(program, full=True)
            self._templates[m] = (program, tokens, ctx_prev,
                                  self._patch_plan(program))
            self.misses += 1
            return program
        template, tpl_tokens, tpl_ctx, plan = entry
        self.hits += 1
        if tokens == tpl_tokens and ctx_prev == tpl_ctx:
            return template
        cfg = self.compiler.config
        if ctx_prev + m > cfg.max_seq_len:
            raise CapacityError(
                f"stage would reach {ctx_prev + m} tokens, beyond "
                f"max_seq_len={cfg.max_seq_len}")
        delta_bytes = (ctx_prev - tpl_ctx) * cfg.d_model * 4
        ctx = ctx_prev + m
        code = list(template)
        for idx, kind in plan:
            instr = code[idx]
            if kind == "gather":
                code[idx] = _patched(instr, indices=tokens)
            elif kind == "addr":
                code[idx] = _patched(instr, addr=instr.addr + delta_bytes)
            elif kind == "attn":
                code[idx] = _patched(instr, ctx=ctx, mask_offset=ctx_prev)
            else:  # "ctx"
                code[idx] = _patched(instr, ctx=ctx)
        patched = CachedProgram(code, (self._serial, m, ctx_prev))
        isa.register_validated(patched)
        self._verify_static(patched, full=False)
        if self.verify:
            fresh = self.compiler.compile_stage(tokens, ctx_prev)
            if tuple(patched) != fresh:
                raise ConfigurationError(
                    "patched stage program diverged from a fresh compile "
                    f"at batch_tokens={m}, ctx_prev={ctx_prev}")
        return patched

    def sum_stage(self, prompt: Sequence[int]) -> CachedProgram:
        """Equivalent of ``compiler.compile_sum_stage(prompt)``."""
        return self.stage(prompt, ctx_prev=0)

    def gen_stage(self, token: int, context_len: int) -> CachedProgram:
        """Equivalent of ``compiler.compile_gen_stage(token, ...)``."""
        if context_len < 1:
            raise ConfigurationError("gen stage needs prior context")
        return self.stage((token,), ctx_prev=context_len - 1)


def _fake_layout(config: LLMConfig,
                 quantize: Optional[str] = None) -> ModelLayout:
    """A layout with correctly-sized regions but no backing memory."""
    regions: Dict[str, Region] = {}
    cursor = 0

    def fake(name: str, elems: int) -> None:
        nonlocal cursor
        regions[name] = Region(name=name, addr=cursor, nbytes=elems * 4)
        cursor += elems * 4

    def weight(name: str, elems: int, n: int) -> None:
        fake(name, elems)
        if quantize == "int8":
            fake(name + ".scale", n)

    d, dff, vocab = config.d_model, config.d_ff, config.vocab_size
    fake("token_embedding", vocab * d)
    fake("position_embedding", config.max_seq_len * d)
    for i in range(config.num_layers):
        p = f"layer{i}."
        fake(p + "ln1_gamma", d)
        fake(p + "ln1_beta", d)
        weight(p + "w_qkv", d * 3 * d, 3 * d)
        fake(p + "b_qkv", 3 * d)
        weight(p + "w_proj", d * d, d)
        fake(p + "b_proj", d)
        fake(p + "ln2_gamma", d)
        fake(p + "ln2_beta", d)
        weight(p + "w_fc1", d * dff, dff)
        fake(p + "b_fc1", dff)
        weight(p + "w_fc2", dff * d, d)
        fake(p + "b_fc2", d)
        fake(p + "kcache", config.max_seq_len * d)
        fake(p + "vcache", config.max_seq_len * d)
    fake("ln_f_gamma", d)
    fake("ln_f_beta", d)
    weight("lm_head", d * vocab, vocab)
    fake("input_buffer", config.max_seq_len * d)
    fake("output_buffer", max(8, config.max_seq_len))
    return ModelLayout(config=config, regions=regions, quantize=quantize)


def timing_layout(config: LLMConfig,
                  quantize: Optional[str] = None) -> ModelLayout:
    """Public accessor for the timing-only fake layout.

    The static verifier (``repro lint-program``) uses it to run the
    layout-aware address checks against the exact region map the timing
    programs were compiled for, without allocating device memory.
    """
    return _fake_layout(config, quantize=quantize)


def timing_program(config: LLMConfig, batch_tokens: int, ctx_prev: int,
                   quantize: Optional[str] = None
                   ) -> Tuple[isa.Instruction, ...]:
    """A stage program with placeholder tokens/addresses for timing only.

    Builds a fake layout with correctly-sized regions but no backing
    memory, so the timing simulator can schedule real instruction streams
    for models far larger than simulatable memory.  ``quantize="int8"``
    emits the int8 weight path so the simulator prices the halved
    weight stream.
    """
    layout = _fake_layout(config, quantize=quantize)
    return StageCompiler(layout).compile_stage([0] * batch_tokens, ctx_prev)


def batched_timing_program(config: LLMConfig, batch: int, ctx_prev: int,
                           quantize: Optional[str] = None
                           ) -> Tuple[isa.Instruction, ...]:
    """One batched decode step for timing: a gen token from each of
    ``batch`` concurrent requests, all at attention span ``ctx_prev + 1``.

    Mirrors :func:`repro.llm.batching.batched_gen_stage_ops`: the weight
    matmuls run once as ``[batch x k] @ [k x n]`` GEMMs (weights stream
    once per step), while KV appends and masked attention run per request
    at ``m=1`` on the adder trees, each against its own cache.  Timing
    only — addresses come from a fake layout and the program is never
    executed functionally (register shapes would not line up).
    """
    if batch < 1:
        raise ConfigurationError(f"batch={batch} must be >= 1")
    if ctx_prev < 0 or ctx_prev + 1 > config.max_seq_len:
        raise CapacityError(
            f"context {ctx_prev + 1} beyond max_seq_len="
            f"{config.max_seq_len}")
    layout = _fake_layout(config, quantize=quantize)
    sc = StageCompiler(layout)
    cfg = config
    d, dff = cfg.d_model, cfg.d_ff
    heads, hd = cfg.num_heads, cfg.head_dim
    ctx = ctx_prev + 1
    addr = layout.addr
    regs = RegisterAllocator()
    code: List[isa.Instruction] = []

    tok = regs.matrix()
    code.append(isa.DmaGather(dst=tok, table_addr=addr("token_embedding"),
                              row_elems=d, indices=(0,) * batch))
    pos = regs.matrix()
    code.append(isa.DmaLoad(dst=pos, addr=addr("position_embedding"),
                            shape=(batch, d)))
    x = regs.matrix()
    code.append(isa.VpuAdd(dst=x, a=tok, b=pos))
    code.append(isa.Free(regs=(tok, pos)))

    for i in range(cfg.num_layers):
        p = f"layer{i}."
        h = regs.matrix()
        code.append(isa.VpuLayerNorm(dst=h, src=x,
                                     gamma_addr=addr(p + "ln1_gamma"),
                                     beta_addr=addr(p + "ln1_beta"),
                                     n=d, eps=LN_EPS))
        qkv = regs.matrix()
        sc._matmul(qkv, h, p + "w_qkv", batch, d, 3 * d, code,
                   bias=p + "b_qkv")
        q, k_new, v_new = regs.matrix(), regs.matrix(), regs.matrix()
        code.append(isa.VpuSlice(dst=q, src=qkv, start=0, stop=d))
        code.append(isa.VpuSlice(dst=k_new, src=qkv, start=d, stop=2 * d))
        code.append(isa.VpuSlice(dst=v_new, src=qkv, start=2 * d,
                                 stop=3 * d))
        scores, rowmax = regs.matrix(), regs.vector()
        probs, attn = regs.matrix(), regs.matrix()
        row_bytes = d * 4
        for _ in range(batch):
            code.append(isa.DmaStore(
                src=k_new,
                addr=addr(p + "kcache") + ctx_prev * row_bytes,
                shape=(1, d)))
            code.append(isa.DmaStore(
                src=v_new,
                addr=addr(p + "vcache") + ctx_prev * row_bytes,
                shape=(1, d)))
            code.append(isa.MpuMaskedMm(
                dst=scores, q=q, k_addr=addr(p + "kcache"), heads=heads,
                head_dim=hd, ctx=ctx, m=1, scale=1.0 / math.sqrt(hd),
                mask_offset=ctx_prev, rowmax_dst=rowmax))
            code.append(isa.VpuSoftmax(dst=probs, src=scores,
                                       rowmax=rowmax))
            code.append(isa.MpuAttnContext(
                dst=attn, probs=probs, v_addr=addr(p + "vcache"),
                heads=heads, head_dim=hd, ctx=ctx, m=1))
        proj = regs.matrix()
        sc._matmul(proj, attn, p + "w_proj", batch, d, d, code,
                   bias=p + "b_proj")
        x2 = regs.matrix()
        code.append(isa.VpuAdd(dst=x2, a=x, b=proj))
        code.append(isa.Free(regs=(h, qkv, q, k_new, v_new, scores, rowmax,
                                   probs, attn, proj, x)))
        h2 = regs.matrix()
        code.append(isa.VpuLayerNorm(dst=h2, src=x2,
                                     gamma_addr=addr(p + "ln2_gamma"),
                                     beta_addr=addr(p + "ln2_beta"),
                                     n=d, eps=LN_EPS))
        f1 = regs.matrix()
        sc._matmul(f1, h2, p + "w_fc1", batch, d, dff, code,
                   bias=p + "b_fc1")
        g = regs.matrix()
        code.append(isa.VpuGelu(dst=g, src=f1))
        f2 = regs.matrix()
        sc._matmul(f2, g, p + "w_fc2", batch, dff, d, code,
                   bias=p + "b_fc2")
        x3 = regs.matrix()
        code.append(isa.VpuAdd(dst=x3, a=x2, b=f2))
        code.append(isa.Free(regs=(h2, f1, g, f2, x2)))
        x = x3

    final = regs.matrix()
    code.append(isa.VpuLayerNorm(dst=final, src=x,
                                 gamma_addr=addr("ln_f_gamma"),
                                 beta_addr=addr("ln_f_beta"),
                                 n=d, eps=LN_EPS))
    logits = regs.matrix()
    sc._matmul(logits, final, "lm_head", batch, d, cfg.vocab_size, code)
    token_reg = regs.scalar()
    code.append(isa.VpuArgmax(dst=token_reg, src=logits))
    code.append(isa.DmaStore(src=token_reg,
                             addr=layout.output_region.addr,
                             shape=(batch,)))
    code.append(isa.Free(regs=(x, final, logits, token_reg)))
    code.append(isa.Barrier())
    return tuple(code)
