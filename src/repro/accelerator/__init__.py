"""The CXL-PNM LLM inference accelerator: ISA, executor, compiler, device."""

from repro.accelerator.compiler import (
    TILE_DIM,
    ModelLayout,
    StageCompiler,
    load_model,
    timing_program,
)
from repro.accelerator.dfx import dfx_device, dfx_memory
from repro.accelerator.control import ControlRegister, ControlUnit, Status
from repro.accelerator.device import AcceleratorSpec, CXLPNMDevice
from repro.accelerator.dma import DmaTiming
from repro.accelerator.engine import ExecutionStats, Executor
from repro.accelerator.memory import ALIGNMENT, DeviceMemory, Region
from repro.accelerator.mpu import MpuTiming
from repro.accelerator.registers import (
    MATRIX_RF_BYTES,
    SCALAR_RF_BYTES,
    VECTOR_RF_BYTES,
    RegisterAllocator,
    RegisterFileState,
    bank_of,
)
from repro.accelerator.vpu import VpuTiming

__all__ = [
    "dfx_device",
    "dfx_memory",
    "ALIGNMENT",
    "AcceleratorSpec",
    "CXLPNMDevice",
    "ControlRegister",
    "ControlUnit",
    "DeviceMemory",
    "DmaTiming",
    "ExecutionStats",
    "Executor",
    "MATRIX_RF_BYTES",
    "ModelLayout",
    "MpuTiming",
    "Region",
    "RegisterAllocator",
    "RegisterFileState",
    "SCALAR_RF_BYTES",
    "StageCompiler",
    "Status",
    "TILE_DIM",
    "VECTOR_RF_BYTES",
    "VpuTiming",
    "bank_of",
    "load_model",
    "timing_program",
]
