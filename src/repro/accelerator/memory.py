"""Byte-addressed device memory with a region allocator.

This is the functional storage behind one CXL-PNM device: model parameters,
KV cache, and the accelerator's input/output buffers all live here, at real
byte addresses.  The functional executor reads and writes tensors through
these addresses, so address-arithmetic bugs (overlaps, misalignment) fail
loudly instead of silently — the point of simulating the memory rather than
passing numpy arrays around.

Tensors are stored as float32 regardless of the model's nominal FP16
datatype: the executor must be bit-comparable with the numpy reference
model, and capacity/bandwidth math uses ``LLMConfig.dtype_bytes``
separately.  :attr:`DeviceMemory.logical_scale` records that 2-byte scale
factor so capacity checks against the real module size stay honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import AddressError, AllocationError

ALIGNMENT = 64  # cacheline


@dataclass(frozen=True)
class Region:
    """A named, allocated span of device memory."""

    name: str
    addr: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.addr + self.nbytes


class DeviceMemory:
    """A flat device address space backed by one numpy byte buffer.

    Attributes:
        capacity: Usable bytes (the simulated buffer size).  For tiny
            functional models this is a few MiB; the *modelled* module
            capacity checks happen in :mod:`repro.memory`.
    """

    #: Functional storage is fp32 while the modelled datatype is fp16.
    logical_scale = 0.5

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise AllocationError("device memory capacity must be positive")
        self.capacity = capacity
        self._buffer = np.zeros(capacity, dtype=np.uint8)
        self._regions: Dict[str, Region] = {}
        self._next = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic write counter; bumps on every store.

        Consumers that cache reads (e.g. the executor's weight-stream
        cache) compare versions to detect writes they did not perform.
        """
        return self._version

    @property
    def allocated_bytes(self) -> int:
        return self._next

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise AddressError(f"no region named {name!r}")

    def alloc(self, name: str, nbytes: int) -> Region:
        """Allocate an aligned region; names must be unique."""
        if name in self._regions:
            raise AllocationError(f"region {name!r} already allocated")
        if nbytes <= 0:
            raise AllocationError(f"region {name!r}: size must be positive")
        addr = self._next
        end = addr + nbytes
        if end > self.capacity:
            raise AllocationError(
                f"region {name!r} ({nbytes} B) exceeds device memory "
                f"({self.capacity - self._next} B free)")
        self._next = (end + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT
        region = Region(name=name, addr=addr, nbytes=nbytes)
        self._regions[name] = region
        return region

    def alloc_tensor(self, name: str, shape: Tuple[int, ...]) -> Region:
        """Allocate a float32 tensor region of the given shape."""
        nbytes = int(np.prod(shape)) * 4
        return self.alloc(name, nbytes)

    def _check_range(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.capacity:
            raise AddressError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside device "
                f"memory of {self.capacity:#x} bytes")

    def write_tensor(self, addr: int, tensor: np.ndarray) -> None:
        """Store a float32 tensor at ``addr``."""
        data = np.ascontiguousarray(tensor, dtype=np.float32)
        raw = data.view(np.uint8).reshape(-1)
        self._check_range(addr, raw.nbytes)
        self._buffer[addr:addr + raw.nbytes] = raw
        self._version += 1

    def write_bytes(self, addr: int, data: np.ndarray) -> None:
        """Store raw bytes at ``addr``, bumping the version counter.

        Every store path — tensors here, CXL.mem line writes in
        :mod:`repro.cxl.memdev` — must land through a method that bumps
        :attr:`version`, or read-caching consumers would serve stale
        data.
        """
        raw = np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
        self._check_range(addr, raw.nbytes)
        self._buffer[addr:addr + raw.nbytes] = raw
        self._version += 1

    def read_tensor(self, addr: int, shape: Tuple[int, ...]) -> np.ndarray:
        """Load a float32 tensor of ``shape`` from ``addr`` (a copy)."""
        nbytes = math.prod(shape) * 4
        self._check_range(addr, nbytes)
        raw = self._buffer[addr:addr + nbytes]
        return raw.view(np.float32).reshape(shape).copy()

    def read_row(self, base_addr: int, row: int, row_elems: int
                 ) -> np.ndarray:
        """Load row ``row`` of a 2-D float32 table stored at ``base_addr``."""
        if row < 0:
            raise AddressError(f"negative row index {row}")
        return self.read_tensor(base_addr + row * row_elems * 4,
                                (row_elems,))

    def read_rows(self, base_addr: int, rows: Sequence[int], row_elems: int
                  ) -> np.ndarray:
        """Gather rows of a 2-D float32 table in one vectorized read.

        Equivalent to stacking :meth:`read_row` per index (same values,
        same dtype, same errors) without the per-row Python loop.
        """
        if not rows:
            raise AddressError("empty row gather")
        idx = np.asarray(rows, dtype=np.int64)
        if idx.min() < 0:
            raise AddressError(f"negative row index {int(idx.min())}")
        row_bytes = row_elems * 4
        span = (int(idx.max()) + 1) * row_bytes
        self._check_range(base_addr, span)
        table = self._buffer[base_addr:base_addr + span] \
            .view(np.float32).reshape(-1, row_elems)
        return table[idx]

    def store_named(self, name: str, tensor: np.ndarray) -> Region:
        """Allocate a region for ``tensor`` and write it."""
        region = self.alloc_tensor(name, tensor.shape)
        self.write_tensor(region.addr, tensor)
        return region
