"""The DFX baseline accelerator (Hong et al., MICRO 2022).

The paper builds its LLM accelerator by modifying DFX (§V-C): DFX has
**only adder-tree matrix units** (GEMV), a tile dimension of 64, and a
single HBM2 stack delivering ~460 GB/s.  The paper's three changes —
adding the 64x32 PE array for GEMM, doubling the tile to 128, and backing
the accelerator with the 1.1 TB/s LPDDR5X module — are each motivated by
a DFX limitation, so reproducing DFX lets the ablation benches show each
change paying off (notably: without a GEMM unit, the sum stage "begins to
dominate the latency and throughput" as input length grows).
"""

from __future__ import annotations

from dataclasses import replace

from repro.accelerator.device import AcceleratorSpec, CXLPNMDevice
from repro.accelerator.mpu import MpuTiming
from repro.memory.dram import DramTechnology, StackingTech
from repro.memory.module import MemoryModule
from repro.memory.packaging import FormFactor

#: DFX's tile dimension (the paper doubles it to 128 for CXL-PNM).
DFX_TILE_DIM = 64

#: The single HBM2 stack DFX populates: 1024 DQ pins at 3.6 Gb/s gives the
#: ~460 GB/s the paper quotes; 8 x 8 Gb dies = 8 GB.
HBM2_DFX = DramTechnology(
    name="HBM2", gbps_per_pin=3.6, io_width_per_package=1024,
    die_capacity_gbit=8, dies_per_package=8, stacking=StackingTech.TSV,
    core_voltage=1.2, io_voltage=1.2,
    access_energy_pj_per_bit=7.0, background_watts_per_die=0.35,
    table1_normalized_module_power=1.6,
    package_cost_usd=180.0,
)

#: A one-package SiP "module" (DFX is an FPGA card, not a CXL module, but
#: the memory model composes the same way).
DFX_SIP = FormFactor(name="DFX-SiP", board_package_sites=1,
                     controller_trace_budget=1024, sip_package_limit=1,
                     power_budget_watts=225.0)


def dfx_memory() -> MemoryModule:
    """DFX's single HBM2: 8 GB, 460.8 GB/s."""
    return MemoryModule(technology=HBM2_DFX, num_packages=1,
                        form_factor=DFX_SIP)


#: DFX accelerator parameters: adder trees only (16 lanes x 64-wide at the
#: original tile), no PE array.
DFX_SPEC = AcceleratorSpec(
    num_pes=0,
    adder_tree_multipliers=1024,       # 16 lanes x 64 MACs (tile l = 64)
    adder_tree_adders=1008,            # 16 x 63
    register_file_bytes=32 * 2**20,
    dma_buffer_bytes=1 * 2**20,
    dram_io_width=1024,
    sram_io_width=8192,
    technology_nm=16,                  # FPGA-class node
    clock_hz=1.0e9,
    voltage=1.0,
    controller_max_watts=90.0,
    dram_max_watts=25.0,
    platform_max_watts=225.0,
)


def dfx_device() -> CXLPNMDevice:
    """A CXL-PNM-shaped device with DFX's datapath and memory."""
    return CXLPNMDevice(spec=DFX_SPEC, module=dfx_memory(),
                        price_usd=9_000.0, idle_watts=40.0)


def dfx_mpu_timing() -> MpuTiming:
    """DFX's matrix timing: tree-only, 64-wide lanes, GEMM by row sweep."""
    return MpuTiming(pe_rows=0, pe_cols=0, tree_lanes=16,
                     tree_width=DFX_TILE_DIM, gemm_via_tree=True)
