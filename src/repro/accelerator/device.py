"""The CXL-PNM device: memory module + controller + LLM accelerator.

Composes the pieces of paper §V into one object: the LPDDR5X CXL module
(§IV), the CXL-PNM controller with its arbiter (Fig. 6), and the LLM
inference accelerator (Fig. 7/8, Table II).  The performance and TCO
models consume the device's peak/effective rates and power parameters;
the runtime stack instantiates its functional parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerator.dma import DmaTiming
from repro.accelerator.mpu import MpuTiming
from repro.accelerator.vpu import VpuTiming
from repro.cxl.link import CXLLink, GEN5_X16
from repro.errors import ConfigurationError
from repro.memory.module import MemoryModule, lpddr5x_module
from repro.memory.timing import ChannelTimingModel, SEQUENTIAL_STREAM
from repro.units import GB, GHZ, MiB, TB, TERA


@dataclass(frozen=True)
class AcceleratorSpec:
    """Table II: CXL-PNM platform architecture and operating parameters."""

    num_pes: int = 2048
    adder_tree_multipliers: int = 2048
    adder_tree_adders: int = 2032
    register_file_bytes: int = 63 * MiB
    dma_buffer_bytes: int = 1 * MiB
    dram_io_width: int = 1024
    sram_io_width: int = 16384
    technology_nm: int = 7
    clock_hz: float = 1.0 * GHZ
    voltage: float = 1.0
    controller_max_watts: float = 90.0
    dram_max_watts: float = 40.0
    platform_max_watts: float = 150.0

    def __post_init__(self) -> None:
        if self.num_pes < 0 or self.clock_hz <= 0:
            raise ConfigurationError("invalid accelerator spec")
        if self.num_pes == 0 and self.adder_tree_multipliers <= 0:
            raise ConfigurationError(
                "accelerator needs a PE array or adder trees")

    @property
    def has_pe_array(self) -> bool:
        """False for tree-only baselines such as DFX."""
        return self.num_pes > 0

    @property
    def peak_gemm_flops(self) -> float:
        """PE-array peak: 2,048 MACs x 2 ops x clock = 4.09 TFLOPS."""
        return 2.0 * self.num_pes * self.clock_hz

    @property
    def peak_gemv_flops(self) -> float:
        """Adder-tree peak (multipliers + adders work in lockstep)."""
        return 2.0 * self.adder_tree_multipliers * self.clock_hz


@dataclass(frozen=True)
class CXLPNMDevice:
    """One CXL-PNM card: module, controller, accelerator, and power.

    Attributes:
        spec: The accelerator's Table II parameters.
        module: The LPDDR5X CXL memory module behind the controller.
        link: The host-facing CXL port.
        price_usd: Per-device hardware cost (Table III: $7,000).
        idle_watts: Card power when idle (CXL IPs + standby DRAM).
    """

    spec: AcceleratorSpec = field(default_factory=AcceleratorSpec)
    module: MemoryModule = field(default_factory=lpddr5x_module)
    link: CXLLink = GEN5_X16
    price_usd: float = 7_000.0
    idle_watts: float = 30.0

    @property
    def memory_capacity(self) -> int:
        return self.module.capacity_bytes

    @property
    def peak_memory_bandwidth(self) -> float:
        return self.module.peak_bandwidth

    @property
    def effective_memory_bandwidth(self) -> float:
        """Streaming bandwidth after channel-timing derating."""
        timing = ChannelTimingModel(self.module)
        return timing.effective_bandwidth(SEQUENTIAL_STREAM)

    def mpu_timing(self) -> MpuTiming:
        """Matrix-unit timing derived from the spec's datapath geometry."""
        tree_lanes = 16
        tree_width = max(1, self.spec.adder_tree_multipliers // tree_lanes)
        if not self.spec.has_pe_array:
            return MpuTiming(pe_rows=0, pe_cols=0, tree_lanes=tree_lanes,
                             tree_width=tree_width, gemm_via_tree=True)
        pe_cols = 32
        return MpuTiming(pe_rows=self.spec.num_pes // pe_cols,
                         pe_cols=pe_cols, tree_lanes=tree_lanes,
                         tree_width=tree_width)

    def vpu_timing(self) -> VpuTiming:
        return VpuTiming(lanes=self.spec.sram_io_width // 16)

    def dma_timing(self) -> DmaTiming:
        return DmaTiming(bandwidth=self.effective_memory_bandwidth,
                         buffer_bytes=self.spec.dma_buffer_bytes)

    def power_watts(self, compute_utilization: float,
                    bandwidth_utilization: float) -> float:
        """Operating power from compute and memory utilization.

        The controller (CXL IPs + accelerator) scales from idle toward its
        90 W ceiling with compute utilization; DRAM power comes from the
        module model at the achieved bandwidth.  The sum is capped by the
        150 W card budget.
        """
        for name, u in (("compute", compute_utilization),
                        ("bandwidth", bandwidth_utilization)):
            if not 0.0 <= u <= 1.0:
                raise ConfigurationError(f"{name} utilization {u} not in "
                                         f"[0, 1]")
        controller = self.idle_watts + compute_utilization * (
            self.spec.controller_max_watts - self.idle_watts)
        dram = self.module.power_model.power_watts(bandwidth_utilization)
        return min(controller + dram, self.spec.platform_max_watts)

    def table2(self) -> dict:
        """Render Table II's rows from the spec."""
        spec = self.spec
        return {
            "num_pes": spec.num_pes,
            "peak_pe_tflops": spec.peak_gemm_flops / TERA,
            "adder_tree_multipliers": spec.adder_tree_multipliers,
            "adder_tree_adders": spec.adder_tree_adders,
            "peak_tree_tflops": spec.peak_gemv_flops / TERA,
            "register_file_mb": spec.register_file_bytes / MiB,
            "dma_buffer_mb": spec.dma_buffer_bytes / MiB,
            "dram_io_width": spec.dram_io_width,
            "sram_io_width": spec.sram_io_width,
            "technology_nm": spec.technology_nm,
            "frequency_ghz": spec.clock_hz / GHZ,
            "voltage": spec.voltage,
            "controller_max_watts": spec.controller_max_watts,
            "dram_max_watts": spec.dram_max_watts,
            "platform_max_watts": spec.platform_max_watts,
            "memory_capacity_gb": self.memory_capacity / GB,
            "peak_bandwidth_tb_s": self.peak_memory_bandwidth / TB,
        }
