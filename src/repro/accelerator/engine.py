"""Functional executor: runs acceleration code with exact numpy semantics.

This is the "RTL" of the reproduction: every instruction from
:mod:`repro.accelerator.isa` has precise arithmetic semantics here, chosen
to be *bit-identical in float32* to the golden model in
:mod:`repro.llm.reference`.  Integration tests generate text through the
full driver/compiler/executor path and assert token-exact agreement with
the reference transformer.

The executor owns a :class:`~repro.accelerator.memory.DeviceMemory` (model
parameters, KV cache, I/O buffers) and a
:class:`~repro.accelerator.registers.RegisterFileState` (live activations),
and enforces both address ranges and register-file capacity while running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accelerator import isa
from repro.accelerator.memory import DeviceMemory
from repro.accelerator.registers import RegisterFileState
from repro.errors import ExecutionError
from repro.llm.reference import causal_mask, gelu, layernorm, softmax
from repro.obs.context import get_metrics, get_tracer


@dataclass
class ExecutionStats:
    """Counters accumulated over one program run."""

    instructions: int = 0
    flops: float = 0.0
    mem_elems: float = 0.0
    by_opcode: Dict[str, int] = field(default_factory=dict)

    def record(self, instr: isa.Instruction, extra_mem_elems: float = 0.0
               ) -> None:
        self.instructions += 1
        self.flops += instr.flops()
        self.mem_elems += instr.mem_elems() + extra_mem_elems
        self.by_opcode[instr.opcode] = self.by_opcode.get(instr.opcode, 0) + 1


class Executor:
    """Interprets acceleration code against device memory and registers."""

    def __init__(self, memory: DeviceMemory,
                 registers: Optional[RegisterFileState] = None,
                 tracer=None, metrics=None):
        self.memory = memory
        self.registers = registers or RegisterFileState()
        self.stats = ExecutionStats()
        self._tracer = tracer
        self._metrics = metrics

    # -- helpers ----------------------------------------------------------

    def _reg2d(self, name: str) -> np.ndarray:
        value = self.registers.read(name)
        if value.ndim == 1:
            return value.reshape(1, -1)
        return value

    # -- instruction semantics --------------------------------------------

    def _exec_dma_load(self, instr: isa.DmaLoad) -> None:
        self.registers.write(instr.dst,
                             self.memory.read_tensor(instr.addr, instr.shape))

    def _exec_dma_store(self, instr: isa.DmaStore) -> float:
        value = self.registers.read(instr.src)
        self.memory.write_tensor(instr.addr, value)
        return float(value.size)

    def _exec_dma_gather(self, instr: isa.DmaGather) -> None:
        rows = [self.memory.read_row(instr.table_addr, i, instr.row_elems)
                for i in instr.indices]
        self.registers.write(instr.dst, np.stack(rows, axis=0))

    def _exec_mv(self, instr: isa.MpuMv) -> None:
        act = self._reg2d(instr.act)
        if act.shape != (1, instr.k):
            raise ExecutionError(
                f"MPU_MV: activation shape {act.shape} != (1, {instr.k})")
        weight = self.memory.read_tensor(instr.weight_addr,
                                         (instr.k, instr.n))
        self.registers.write(instr.dst, act @ weight)

    def _exec_mm_pea(self, instr: isa.MpuMmPea) -> None:
        act = self._reg2d(instr.act)
        if act.shape != (instr.m, instr.k):
            raise ExecutionError(
                f"{instr.opcode}: activation shape {act.shape} != "
                f"({instr.m}, {instr.k})")
        weight = self.memory.read_tensor(instr.weight_addr,
                                         (instr.k, instr.n))
        result = act @ weight
        self.registers.write(instr.dst, result)
        if isinstance(instr, isa.MpuMmRedumaxPea):
            self.registers.write(instr.rowmax_dst,
                                 result.max(axis=-1, keepdims=True))

    def _exec_masked_mm(self, instr: isa.MpuMaskedMm) -> None:
        q = self._reg2d(instr.q)
        d_local = instr.heads * instr.head_dim
        if q.shape != (instr.m, d_local):
            raise ExecutionError(
                f"{instr.opcode}: q shape {q.shape} != ({instr.m}, {d_local})")
        keys = self.memory.read_tensor(instr.k_addr, (instr.ctx, d_local))
        mask = causal_mask(instr.m, instr.ctx, instr.mask_offset)
        scale = np.float32(instr.scale)
        scores = np.empty((instr.heads, instr.m, instr.ctx),
                          dtype=np.float32)
        for h in range(instr.heads):
            sl = slice(h * instr.head_dim, (h + 1) * instr.head_dim)
            raw = (q[:, sl] @ keys[:, sl].T) * scale
            scores[h] = np.where(mask, raw, np.float32(-1e9))
        self.registers.write(instr.dst, scores)
        if instr.rowmax_dst:
            self.registers.write(instr.rowmax_dst,
                                 scores.max(axis=-1, keepdims=True))

    def _exec_attn_ctx(self, instr: isa.MpuAttnContext) -> None:
        probs = self.registers.read(instr.probs)
        expected = (instr.heads, instr.m, instr.ctx)
        if probs.shape != expected:
            raise ExecutionError(
                f"{instr.opcode}: probs shape {probs.shape} != {expected}")
        d_local = instr.heads * instr.head_dim
        values = self.memory.read_tensor(instr.v_addr, (instr.ctx, d_local))
        out = np.empty((instr.m, d_local), dtype=np.float32)
        for h in range(instr.heads):
            sl = slice(h * instr.head_dim, (h + 1) * instr.head_dim)
            out[:, sl] = probs[h] @ values[:, sl]
        self.registers.write(instr.dst, out)

    def _exec_conv2d(self, instr: isa.MpuConv2d) -> None:
        act = self.registers.read(instr.act)
        if act.shape != (instr.in_ch, instr.h, instr.w):
            raise ExecutionError(
                f"{instr.opcode}: act shape {act.shape} != "
                f"({instr.in_ch}, {instr.h}, {instr.w})")
        weight = self.memory.read_tensor(
            instr.weight_addr,
            (instr.out_ch, instr.in_ch, instr.kh, instr.kw))
        oh, ow = instr.out_hw
        # im2col: unfold input patches into a [oh*ow, in_ch*kh*kw] matrix.
        cols = np.empty((oh * ow, instr.in_ch * instr.kh * instr.kw),
                        dtype=np.float32)
        idx = 0
        for i in range(0, instr.h - instr.kh + 1, instr.stride):
            for j in range(0, instr.w - instr.kw + 1, instr.stride):
                patch = act[:, i:i + instr.kh, j:j + instr.kw]
                cols[idx] = patch.reshape(-1)
                idx += 1
        flat_w = weight.reshape(instr.out_ch, -1)
        out = (cols @ flat_w.T).T.reshape(instr.out_ch, oh, ow)
        if instr.gelu:
            out = gelu(out)
        self.registers.write(instr.dst, out.astype(np.float32))

    def _exec_transpose(self, instr: isa.MpuTranspose) -> None:
        value = self._reg2d(instr.src)
        self.registers.write(instr.dst, np.ascontiguousarray(value.T))

    def _exec_softmax(self, instr: isa.VpuSoftmax) -> None:
        src = self.registers.read(instr.src)
        if instr.rowmax:
            # REDUMAX-fused path: reuse the precomputed maxima; identical
            # arithmetic to the reference's internal max because both max
            # over the same axis of the same float32 array.
            maxima = self.registers.read(instr.rowmax)
            shifted = src - maxima
            e = np.exp(shifted)
            result = e / e.sum(axis=-1, keepdims=True)
        else:
            result = softmax(src, axis=-1)
        self.registers.write(instr.dst, result.astype(np.float32))

    def _exec_layernorm(self, instr: isa.VpuLayerNorm) -> None:
        src = self._reg2d(instr.src)
        gamma = self.memory.read_tensor(instr.gamma_addr, (instr.n,))
        beta = self.memory.read_tensor(instr.beta_addr, (instr.n,))
        self.registers.write(instr.dst,
                             layernorm(src, gamma, beta, eps=instr.eps))

    def _exec_bias(self, instr: isa.VpuBias) -> None:
        src = self._reg2d(instr.src)
        bias = self.memory.read_tensor(instr.bias_addr, (instr.n,))
        self.registers.write(instr.dst, src + bias)

    # -- dispatch -----------------------------------------------------------

    def execute(self, program: Sequence[isa.Instruction]) -> ExecutionStats:
        """Run a program to completion, returning accumulated statistics.

        When a tracer/registry is injected (or ambient via
        :func:`repro.obs.observe`), each instruction is additionally
        recorded as a wall-clock span and an opcode-labelled counter;
        the functional results are identical either way.
        """
        isa.validate_program(tuple(program))
        tracer = get_tracer(self._tracer)
        metrics = get_metrics(self._metrics)
        with tracer.span("executor.execute", category="accelerator",
                         instructions=len(program)):
            for instr in program:
                if tracer.enabled:
                    with tracer.span(instr.opcode,
                                     category="accelerator"):
                        extra = self._dispatch(instr)
                else:
                    extra = self._dispatch(instr)
                if metrics.enabled:
                    metrics.counter("executor.instructions",
                                    opcode=instr.opcode).inc()
                    metrics.counter("executor.flops").inc(instr.flops())
                    metrics.counter("executor.mem_elems").inc(
                        instr.mem_elems() + extra)
                self.stats.record(instr, extra)
        return self.stats

    def _dispatch(self, instr: isa.Instruction) -> float:
        """Execute one instruction; returns extra memory elements."""
        extra = 0.0
        if isinstance(instr, isa.DmaLoad):
            self._exec_dma_load(instr)
        elif isinstance(instr, isa.DmaStore):
            extra = self._exec_dma_store(instr)
        elif isinstance(instr, isa.DmaGather):
            self._exec_dma_gather(instr)
        elif isinstance(instr, isa.MpuMmPea):
            self._exec_mm_pea(instr)
        elif isinstance(instr, isa.MpuMv):
            self._exec_mv(instr)
        elif isinstance(instr, isa.MpuMaskedMm):
            self._exec_masked_mm(instr)
        elif isinstance(instr, isa.MpuAttnContext):
            self._exec_attn_ctx(instr)
        elif isinstance(instr, isa.MpuConv2d):
            self._exec_conv2d(instr)
        elif isinstance(instr, isa.MpuTranspose):
            self._exec_transpose(instr)
        elif isinstance(instr, isa.VpuAdd):
            self.registers.write(
                instr.dst, self.registers.read(instr.a)
                + self.registers.read(instr.b))
        elif isinstance(instr, isa.VpuMul):
            self.registers.write(
                instr.dst, self.registers.read(instr.a)
                * self.registers.read(instr.b))
        elif isinstance(instr, isa.VpuScale):
            self.registers.write(
                instr.dst,
                self.registers.read(instr.src) * np.float32(
                    instr.constant))
        elif isinstance(instr, isa.VpuBias):
            self._exec_bias(instr)
        elif isinstance(instr, isa.VpuGelu):
            self.registers.write(instr.dst,
                                 gelu(self.registers.read(instr.src)))
        elif isinstance(instr, isa.VpuSoftmax):
            self._exec_softmax(instr)
        elif isinstance(instr, isa.VpuLayerNorm):
            self._exec_layernorm(instr)
        elif isinstance(instr, isa.VpuArgmax):
            src = self._reg2d(instr.src)
            self.registers.write(
                instr.dst,
                np.array([np.argmax(src[-1])], dtype=np.float32))
        elif isinstance(instr, isa.VpuSlice):
            src = self._reg2d(instr.src)
            if instr.stop > src.shape[-1]:
                raise ExecutionError(
                    f"VPU_SLICE [{instr.start}:{instr.stop}) exceeds "
                    f"width {src.shape[-1]}")
            self.registers.write(
                instr.dst,
                np.ascontiguousarray(src[:, instr.start:instr.stop]))
        elif isinstance(instr, isa.VpuRow):
            src = self._reg2d(instr.src)
            row = instr.row if instr.row >= 0 else src.shape[0] + instr.row
            if not 0 <= row < src.shape[0]:
                raise ExecutionError(
                    f"VPU_ROW {instr.row} outside {src.shape[0]} rows")
            self.registers.write(instr.dst, src[row:row + 1].copy())
        elif isinstance(instr, isa.Free):
            for reg in instr.regs:
                self.registers.free(reg)
        elif isinstance(instr, isa.Barrier):
            pass
        else:
            raise ExecutionError(
                f"no functional semantics for {type(instr).__name__}")
        return extra
