"""Functional executor: runs acceleration code with exact numpy semantics.

This is the "RTL" of the reproduction: every instruction from
:mod:`repro.accelerator.isa` has precise arithmetic semantics here, chosen
to be *bit-identical in float32* to the golden model in
:mod:`repro.llm.reference`.  Integration tests generate text through the
full driver/compiler/executor path and assert token-exact agreement with
the reference transformer.

The executor owns a :class:`~repro.accelerator.memory.DeviceMemory` (model
parameters, KV cache, I/O buffers) and a
:class:`~repro.accelerator.registers.RegisterFileState` (live activations),
and enforces both address ranges and register-file capacity while running.

Two fast-path features keep the decode loop cheap without changing a
single bit of output (tests assert bitwise equality against the slow
paths):

* **vectorized kernels** (``vectorized=True``): the per-head attention
  loops run as one batched ``np.matmul`` and the row-by-row embedding
  gather as one vectorized table read — per-slice BLAS calls are
  identical, so results match the looped reference element-for-element;
* **weight-stream read cache** (``cache_reads=True``): immutable
  device-memory operands (weights, biases, LayerNorm parameters) are
  read once and reused read-only.  Any store overlapping a cached range
  invalidates it, ranges the executor itself has written (KV cache,
  output buffer) are never cached, and a
  :attr:`~repro.accelerator.memory.DeviceMemory.version` check detects
  writes performed outside the executor between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator import isa
from repro.accelerator.memory import DeviceMemory
from repro.accelerator.registers import RegisterFileState
from repro.errors import ExecutionError
from repro.llm.reference import (_GELU_C, causal_mask, gelu, layernorm,
                                 softmax)
from repro.obs.context import get_metrics, get_tracer


@dataclass
class ExecutionStats:
    """Counters accumulated over one program run."""

    instructions: int = 0
    flops: float = 0.0
    mem_elems: float = 0.0
    by_opcode: Dict[str, int] = field(default_factory=dict)

    def record(self, instr: isa.Instruction, extra_mem_elems: float = 0.0
               ) -> None:
        self.instructions += 1
        self.flops += instr.flops()
        self.mem_elems += instr.mem_elems() + extra_mem_elems
        op = instr.opcode
        self.by_opcode[op] = self.by_opcode.get(op, 0) + 1

    def add_bulk(self, instructions: int, flops: float, mem_elems: float,
                 by_opcode: Dict[str, int]) -> None:
        """Fold a precomputed per-program aggregate into the counters."""
        self.instructions += instructions
        self.flops += flops
        self.mem_elems += mem_elems
        for op, count in by_opcode.items():
            self.by_opcode[op] = self.by_opcode.get(op, 0) + count


def _fast_layernorm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                    eps: float) -> np.ndarray:
    """Bit-identical :func:`repro.llm.reference.layernorm`, fused.

    Skips the ``astype`` copy (inputs are float32 already) and reuses the
    centred values instead of letting ``np.var`` recompute the mean:
    ``_var`` is exactly subtract-mean, square, add.reduce, divide — the
    same ufunc sequence written out below, so every intermediate rounds
    identically (the equivalence tests assert it).
    """
    x = np.asarray(x, dtype=np.float32)
    # np.add.reduce IS the ufunc _mean wraps (same pairwise summation),
    # and dividing by an exact-in-float32 count rounds identically.
    n = np.float32(x.shape[-1])
    mean = np.add.reduce(x, axis=-1, keepdims=True) / n
    centred = x - mean
    var = np.add.reduce(centred * centred, axis=-1, keepdims=True) / n
    return centred / np.sqrt(var + eps) * gamma + beta


def _fast_gelu(x: np.ndarray) -> np.ndarray:
    """Bit-identical :func:`repro.llm.reference.gelu` without the
    ``astype`` copy.  The arithmetic is byte-for-byte the reference
    expression."""
    x = np.asarray(x, dtype=np.float32)
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * (x * x * x))))


def _fast_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Bit-identical :func:`repro.llm.reference.softmax` without the
    ``astype`` copy."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.maximum.reduce(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.add.reduce(e, axis=axis, keepdims=True)


class Executor:
    """Interprets acceleration code against device memory and registers."""

    def __init__(self, memory: DeviceMemory,
                 registers: Optional[RegisterFileState] = None,
                 tracer=None, metrics=None,
                 vectorized: bool = True, cache_reads: bool = True):
        self.memory = memory
        self.registers = registers or RegisterFileState()
        self.stats = ExecutionStats()
        self._tracer = tracer
        self._metrics = metrics
        self.vectorized = vectorized
        self.cache_reads = cache_reads
        #: (addr, shape) -> (read-only array, start, end)
        self._read_cache: Dict[Tuple[int, Tuple[int, ...]],
                               Tuple[np.ndarray, int, int]] = {}
        #: Merged [start, end) byte ranges this executor has stored to.
        self._written: List[List[int]] = []
        self._seen_version = memory.version
        #: CachedProgram.timing_key -> (instructions, flops, mem_elems,
        #: by_opcode).  A program's statistics are a pure function of its
        #: instruction geometry (DMA-store extras equal prod(shape)), so
        #: repeated geometries skip the per-instruction accounting.
        self._stats_cache: Dict[Tuple[int, int, int],
                                Tuple[int, float, float, Dict[str, int]]] \
            = {}

    # -- helpers ----------------------------------------------------------

    def _reg2d(self, name: str) -> np.ndarray:
        value = self.registers.read(name)
        if value.ndim == 1:
            return value.reshape(1, -1)
        return value

    def _overlaps_written(self, start: int, end: int) -> bool:
        for lo, hi in self._written:
            if start < hi and lo < end:
                return True
        return False

    def _note_written(self, start: int, end: int) -> None:
        # Re-writes inside an already-written span (KV rows on a repeat
        # generation, the output buffer) need no work: no cached read
        # ever overlaps a written span, by construction below.
        for lo, hi in self._written:
            if lo <= start and end <= hi:
                return
        # Invalidate cached reads the store overlaps, then merge the
        # range into the written list (adjacent ranges coalesce, so KV
        # appends keep the list short).
        if self._read_cache:
            stale = [key for key, (_, lo, hi) in self._read_cache.items()
                     if start < hi and lo < end]
            for key in stale:
                del self._read_cache[key]
        for span in self._written:
            if start <= span[1] and span[0] <= end:
                span[0] = min(span[0], start)
                span[1] = max(span[1], end)
                return
        self._written.append([start, end])

    def _read(self, addr: int, shape: Tuple[int, ...]) -> np.ndarray:
        """Read a tensor, caching operands no store has touched."""
        if not self.cache_reads:
            return self.memory.read_tensor(addr, shape)
        key = (addr, shape)
        hit = self._read_cache.get(key)
        if hit is not None:
            return hit[0]
        value = self.memory.read_tensor(addr, shape)
        end = addr + value.nbytes
        if not self._overlaps_written(addr, end):
            value.flags.writeable = False
            self._read_cache[key] = (value, addr, end)
        return value

    # -- instruction semantics --------------------------------------------

    def _exec_dma_load(self, instr: isa.DmaLoad) -> float:
        self.registers.write(instr.dst, self._read(instr.addr, instr.shape))
        return 0.0

    def _exec_dma_store(self, instr: isa.DmaStore) -> float:
        value = self.registers.read(instr.src)
        self.memory.write_tensor(instr.addr, value)
        self._seen_version = self.memory.version
        if self.cache_reads:
            self._note_written(instr.addr, instr.addr + value.nbytes)
        return float(value.size)

    def _exec_dma_gather(self, instr: isa.DmaGather) -> float:
        if self.vectorized:
            rows = self.memory.read_rows(instr.table_addr, instr.indices,
                                         instr.row_elems)
        else:
            rows = np.stack(
                [self.memory.read_row(instr.table_addr, i, instr.row_elems)
                 for i in instr.indices], axis=0)
        self.registers.write(instr.dst, rows)
        return 0.0

    def _int8_matmul(self, act: np.ndarray, instr) -> np.ndarray:
        """W8A8 matmul with int32 accumulation and fused dequant(+bias).

        The weight matrix at ``weight_addr`` holds integral int8 codes
        (written by the quantizing model loader); ``scale_addr`` holds
        the per-output-channel dequantization scales.  Each activation
        row is quantized dynamically with a symmetric per-row scale —
        the tinyML-style dynamic 32->8-bit rescale — accumulated
        exactly in int32, and dequantized on writeback.
        """
        if instr.scale_addr < 0:
            raise ExecutionError(
                f"{instr.opcode}: int8 matmul without a scale_addr")
        weight = self._read(instr.weight_addr, (instr.k, instr.n))
        scales = self._read(instr.scale_addr, (instr.n,))
        a_max = np.max(np.abs(act), axis=-1, keepdims=True)
        a_scale = np.where(a_max > 0, a_max / np.float32(127.0),
                           np.float32(1.0)).astype(np.float32)
        a_q = np.clip(np.rint(act / a_scale), -127, 127).astype(np.int32)
        acc = a_q @ weight.astype(np.int32)
        out = acc.astype(np.float32) * (a_scale * scales)
        if instr.bias_addr >= 0:
            out = out + self._read(instr.bias_addr, (instr.n,))
        return out.astype(np.float32)

    def _exec_mv(self, instr: isa.MpuMv) -> float:
        act = self._reg2d(instr.act)
        if act.shape != (1, instr.k):
            raise ExecutionError(
                f"MPU_MV: activation shape {act.shape} != (1, {instr.k})")
        if instr.dtype == "int8":
            out = self._int8_matmul(act, instr)
        else:
            weight = self._read(instr.weight_addr, (instr.k, instr.n))
            out = act @ weight
            if instr.bias_addr >= 0:
                out = out + self._read(instr.bias_addr, (instr.n,))
        self.registers.write(instr.dst, out)
        return float(instr.aux_elems())

    def _exec_mm_pea(self, instr: isa.MpuMmPea) -> float:
        act = self._reg2d(instr.act)
        if act.shape != (instr.m, instr.k):
            raise ExecutionError(
                f"{instr.opcode}: activation shape {act.shape} != "
                f"({instr.m}, {instr.k})")
        if instr.dtype == "int8":
            result = self._int8_matmul(act, instr)
        else:
            weight = self._read(instr.weight_addr, (instr.k, instr.n))
            result = act @ weight
            if instr.bias_addr >= 0:
                result = result + self._read(instr.bias_addr, (instr.n,))
        self.registers.write(instr.dst, result)
        if isinstance(instr, isa.MpuMmRedumaxPea):
            self.registers.write(instr.rowmax_dst,
                                 result.max(axis=-1, keepdims=True))
        return float(instr.aux_elems())

    def _exec_masked_mm(self, instr: isa.MpuMaskedMm) -> float:
        q = self._reg2d(instr.q)
        d_local = instr.heads * instr.head_dim
        if q.shape != (instr.m, d_local):
            raise ExecutionError(
                f"{instr.opcode}: q shape {q.shape} != ({instr.m}, {d_local})")
        keys = self._read(instr.k_addr, (instr.ctx, d_local))
        scale = np.float32(instr.scale)
        if self.vectorized:
            # One batched matmul over the head axis; each head's slice is
            # the same BLAS call the per-head loop makes, so results are
            # bit-identical (tests assert it).
            q3 = q.reshape(instr.m, instr.heads, instr.head_dim) \
                .transpose(1, 0, 2)
            k3 = keys.reshape(instr.ctx, instr.heads, instr.head_dim) \
                .transpose(1, 2, 0)
            raw = np.matmul(q3, k3) * scale
            if instr.mask_offset >= instr.ctx - 1:
                # Fully visible (every decode step: m == 1, offset ==
                # ctx - 1): the causal mask is all-True, so masking is a
                # copy — skip building it.
                scores = raw
            else:
                mask = causal_mask(instr.m, instr.ctx, instr.mask_offset)
                scores = np.where(mask, raw, np.float32(-1e9))
        else:
            mask = causal_mask(instr.m, instr.ctx, instr.mask_offset)
            scores = np.empty((instr.heads, instr.m, instr.ctx),
                              dtype=np.float32)
            for h in range(instr.heads):
                sl = slice(h * instr.head_dim, (h + 1) * instr.head_dim)
                raw = (q[:, sl] @ keys[:, sl].T) * scale
                scores[h] = np.where(mask, raw, np.float32(-1e9))
        self.registers.write(instr.dst, scores)
        if instr.rowmax_dst:
            self.registers.write(instr.rowmax_dst,
                                 scores.max(axis=-1, keepdims=True))
        return 0.0

    def _exec_attn_ctx(self, instr: isa.MpuAttnContext) -> float:
        probs = self.registers.read(instr.probs)
        expected = (instr.heads, instr.m, instr.ctx)
        if probs.shape != expected:
            raise ExecutionError(
                f"{instr.opcode}: probs shape {probs.shape} != {expected}")
        d_local = instr.heads * instr.head_dim
        values = self._read(instr.v_addr, (instr.ctx, d_local))
        if self.vectorized:
            v3 = values.reshape(instr.ctx, instr.heads, instr.head_dim) \
                .transpose(1, 0, 2)
            out = np.ascontiguousarray(
                np.matmul(probs, v3).transpose(1, 0, 2)) \
                .reshape(instr.m, d_local)
        else:
            out = np.empty((instr.m, d_local), dtype=np.float32)
            for h in range(instr.heads):
                sl = slice(h * instr.head_dim, (h + 1) * instr.head_dim)
                out[:, sl] = probs[h] @ values[:, sl]
        self.registers.write(instr.dst, out)
        return 0.0

    def _exec_conv2d(self, instr: isa.MpuConv2d) -> float:
        act = self.registers.read(instr.act)
        if act.shape != (instr.in_ch, instr.h, instr.w):
            raise ExecutionError(
                f"{instr.opcode}: act shape {act.shape} != "
                f"({instr.in_ch}, {instr.h}, {instr.w})")
        weight = self._read(
            instr.weight_addr,
            (instr.out_ch, instr.in_ch, instr.kh, instr.kw))
        oh, ow = instr.out_hw
        # im2col: unfold input patches into a [oh*ow, in_ch*kh*kw] matrix.
        cols = np.empty((oh * ow, instr.in_ch * instr.kh * instr.kw),
                        dtype=np.float32)
        idx = 0
        for i in range(0, instr.h - instr.kh + 1, instr.stride):
            for j in range(0, instr.w - instr.kw + 1, instr.stride):
                patch = act[:, i:i + instr.kh, j:j + instr.kw]
                cols[idx] = patch.reshape(-1)
                idx += 1
        flat_w = weight.reshape(instr.out_ch, -1)
        out = (cols @ flat_w.T).T.reshape(instr.out_ch, oh, ow)
        if instr.gelu:
            out = gelu(out)
        self.registers.write(instr.dst, out.astype(np.float32))
        return 0.0

    def _exec_transpose(self, instr: isa.MpuTranspose) -> float:
        value = self._reg2d(instr.src)
        self.registers.write(instr.dst, np.ascontiguousarray(value.T))
        return 0.0

    def _exec_softmax(self, instr: isa.VpuSoftmax) -> float:
        src = self.registers.read(instr.src)
        if instr.rowmax:
            # REDUMAX-fused path: reuse the precomputed maxima; identical
            # arithmetic to the reference's internal max because both max
            # over the same axis of the same float32 array.
            maxima = self.registers.read(instr.rowmax)
            shifted = src - maxima
            e = np.exp(shifted)
            result = e / e.sum(axis=-1, keepdims=True)
        elif self.vectorized:
            result = _fast_softmax(src, axis=-1)
        else:
            result = softmax(src, axis=-1)
        if self.vectorized:
            # Already float32 by construction; astype would copy.
            self.registers.write(instr.dst, result)
        else:
            self.registers.write(instr.dst, result.astype(np.float32))
        return 0.0

    def _exec_layernorm(self, instr: isa.VpuLayerNorm) -> float:
        src = self._reg2d(instr.src)
        gamma = self._read(instr.gamma_addr, (instr.n,))
        beta = self._read(instr.beta_addr, (instr.n,))
        if self.vectorized:
            out = _fast_layernorm(src, gamma, beta, instr.eps)
        else:
            out = layernorm(src, gamma, beta, eps=instr.eps)
        self.registers.write(instr.dst, out)
        return 0.0

    def _exec_bias(self, instr: isa.VpuBias) -> float:
        src = self._reg2d(instr.src)
        bias = self._read(instr.bias_addr, (instr.n,))
        self.registers.write(instr.dst, src + bias)
        return 0.0

    def _exec_add(self, instr: isa.VpuAdd) -> float:
        self.registers.write(
            instr.dst,
            self.registers.read(instr.a) + self.registers.read(instr.b))
        return 0.0

    def _exec_mul(self, instr: isa.VpuMul) -> float:
        self.registers.write(
            instr.dst,
            self.registers.read(instr.a) * self.registers.read(instr.b))
        return 0.0

    def _exec_scale(self, instr: isa.VpuScale) -> float:
        self.registers.write(
            instr.dst,
            self.registers.read(instr.src) * np.float32(instr.constant))
        return 0.0

    def _exec_gelu(self, instr: isa.VpuGelu) -> float:
        fn = _fast_gelu if self.vectorized else gelu
        self.registers.write(instr.dst, fn(self.registers.read(instr.src)))
        return 0.0

    def _exec_argmax(self, instr: isa.VpuArgmax) -> float:
        src = self._reg2d(instr.src)
        self.registers.write(
            instr.dst, np.array([np.argmax(src[-1])], dtype=np.float32))
        return 0.0

    def _exec_slice(self, instr: isa.VpuSlice) -> float:
        src = self._reg2d(instr.src)
        if instr.stop > src.shape[-1]:
            raise ExecutionError(
                f"VPU_SLICE [{instr.start}:{instr.stop}) exceeds "
                f"width {src.shape[-1]}")
        self.registers.write(
            instr.dst,
            np.ascontiguousarray(src[:, instr.start:instr.stop]))
        return 0.0

    def _exec_row(self, instr: isa.VpuRow) -> float:
        src = self._reg2d(instr.src)
        row = instr.row if instr.row >= 0 else src.shape[0] + instr.row
        if not 0 <= row < src.shape[0]:
            raise ExecutionError(
                f"VPU_ROW {instr.row} outside {src.shape[0]} rows")
        self.registers.write(instr.dst, src[row:row + 1].copy())
        return 0.0

    def _exec_free(self, instr: isa.Free) -> float:
        for reg in instr.regs:
            self.registers.free(reg)
        return 0.0

    def _exec_barrier(self, _instr: isa.Barrier) -> float:
        return 0.0

    #: Concrete instruction type -> handler (resolved once, not via an
    #: isinstance chain per instruction).
    _HANDLERS: Dict[type, Callable[["Executor", isa.Instruction], float]] = {
        isa.DmaLoad: _exec_dma_load,
        isa.DmaStore: _exec_dma_store,
        isa.DmaGather: _exec_dma_gather,
        isa.MpuMmPea: _exec_mm_pea,
        isa.MpuMmRedumaxPea: _exec_mm_pea,
        isa.MpuMv: _exec_mv,
        isa.MpuMaskedMm: _exec_masked_mm,
        isa.MpuAttnContext: _exec_attn_ctx,
        isa.MpuConv2d: _exec_conv2d,
        isa.MpuTranspose: _exec_transpose,
        isa.VpuAdd: _exec_add,
        isa.VpuMul: _exec_mul,
        isa.VpuScale: _exec_scale,
        isa.VpuBias: _exec_bias,
        isa.VpuGelu: _exec_gelu,
        isa.VpuSoftmax: _exec_softmax,
        isa.VpuLayerNorm: _exec_layernorm,
        isa.VpuArgmax: _exec_argmax,
        isa.VpuSlice: _exec_slice,
        isa.VpuRow: _exec_row,
        isa.Free: _exec_free,
        isa.Barrier: _exec_barrier,
    }

    # -- dispatch -----------------------------------------------------------

    def execute(self, program: Sequence[isa.Instruction]) -> ExecutionStats:
        """Run a program to completion, returning accumulated statistics.

        When a tracer/registry is injected (or ambient via
        :func:`repro.obs.observe`), each instruction is additionally
        recorded as a wall-clock span and an opcode-labelled counter;
        the functional results are identical either way.
        """
        if not isinstance(program, tuple):
            program = tuple(program)
        isa.validate_program_cached(program)
        if self.cache_reads and self.memory.version != self._seen_version:
            # Something outside this executor wrote device memory (e.g. a
            # host store between launches): drop every cached read.
            self._read_cache.clear()
            self._written.clear()
            self._seen_version = self.memory.version
        tracer = get_tracer(self._tracer)
        metrics = get_metrics(self._metrics)
        handlers = self._HANDLERS
        record = self.stats.record
        stats_key = getattr(program, "timing_key", None) \
            if (self.cache_reads and not tracer.enabled
                and not metrics.enabled) else None
        agg = self._stats_cache.get(stats_key) \
            if stats_key is not None else None
        with tracer.span("executor.execute", category="accelerator",
                         instructions=len(program)):
            if agg is not None:
                # Known geometry: run the semantics, fold in the
                # precomputed statistics afterwards.  The handler plan
                # was recorded on the geometry's first completion — a
                # timing key pins the template, so the instruction class
                # at each position cannot have changed.
                for handler, instr in zip(agg[4], program):
                    handler(self, instr)
                self.stats.add_bulk(*agg[:4])
                return self.stats
            if stats_key is not None:
                before = (self.stats.instructions, self.stats.flops,
                          self.stats.mem_elems,
                          dict(self.stats.by_opcode))
            for instr in program:
                handler = handlers.get(type(instr))
                if handler is None:
                    raise ExecutionError(
                        f"no functional semantics for "
                        f"{type(instr).__name__}")
                if tracer.enabled:
                    with tracer.span(instr.opcode,
                                     category="accelerator"):
                        extra = handler(self, instr)
                else:
                    extra = handler(self, instr)
                if metrics.enabled:
                    metrics.counter("executor.instructions",
                                    opcode=instr.opcode).inc()
                    metrics.counter("executor.flops").inc(instr.flops())
                    metrics.counter("executor.mem_elems").inc(
                        instr.mem_elems() + extra)
                record(instr, extra)
            if stats_key is not None:
                if len(self._stats_cache) > 4096:
                    self._stats_cache.clear()
                stats = self.stats
                delta_ops = {
                    op: count - before[3].get(op, 0)
                    for op, count in stats.by_opcode.items()
                    if count != before[3].get(op, 0)}
                self._stats_cache[stats_key] = (
                    stats.instructions - before[0],
                    stats.flops - before[1],
                    stats.mem_elems - before[2],
                    delta_ops,
                    tuple(handlers[type(i)] for i in program))
        return self.stats

    def _dispatch(self, instr: isa.Instruction) -> float:
        """Execute one instruction; returns extra memory elements."""
        handler = self._HANDLERS.get(type(instr))
        if handler is None:
            raise ExecutionError(
                f"no functional semantics for {type(instr).__name__}")
        return handler(self, instr)
