"""Vector-processing-unit timing model.

The VPU executes the non-matmul layer functions: LayerNorm, Softmax, GELU,
bias/residual adds, and data movement between register-file views.  Its
datapath width follows Table II's 16,384-bit SRAM interface: 1,024 FP16
lanes at 1 GHz.  Multi-pass operators (LayerNorm needs mean, variance, and
normalize passes; Softmax needs max, exp-sum, and divide) cost
proportionally more cycles per element.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator import isa
from repro.errors import SimulationError


@dataclass(frozen=True)
class VpuTiming:
    """Cycle model for VPU instructions.

    Attributes:
        lanes: FP16 lanes processed per cycle.
        issue_cycles: Fixed instruction issue/drain cost.
    """

    lanes: int = 1024
    issue_cycles: int = 32

    #: Effective passes over the data per operator class.
    PASSES = {
        "VPU_ADD": 1.0,
        "VPU_MUL": 1.0,
        "VPU_SCALE": 1.0,
        "VPU_BIAS": 1.0,
        "VPU_GELU": 2.0,
        "VPU_SOFTMAX": 3.0,
        "VPU_LAYERNORM": 3.0,
        "VPU_ARGMAX": 1.0,
        "VPU_SLICE": 1.0,
        "VPU_ROW": 0.25,
    }

    def cycles_for_elements(self, opcode: str, elements: float) -> int:
        try:
            passes = self.PASSES[opcode]
        except KeyError:
            raise SimulationError(f"{opcode} is not a VPU instruction")
        return self.issue_cycles + int(
            np.ceil(passes * elements / self.lanes))

    def cycles(self, instr: isa.Instruction, out_elements: float) -> int:
        """Cycles given the instruction's output element count.

        The scheduler supplies ``out_elements`` because VPU operand sizes
        are register shapes known only from the dataflow (the compiler
        records them for the simulator).
        """
        opcode = instr.opcode
        if opcode == "VPU_SOFTMAX" and isinstance(instr, isa.VpuSoftmax) \
                and instr.rowmax:
            # REDUMAX fusion removed the max pass.
            return self.issue_cycles + int(
                np.ceil(2.0 * out_elements / self.lanes))
        return self.cycles_for_elements(opcode, out_elements)
