"""Instruction set of the CXL-PNM LLM inference accelerator.

The accelerator (paper §V-C) extends the DFX ISA: DFX's adder-tree matrix
function units handle GEMV (the gen stage), and six new instructions drive
the added 64x32 FP16 PE array for GEMM (the sum stage):

    MPU_MM_PEA, MPU_MM_REDUMAX_PEA, MPU_MASKEDMM_PEA,
    MPU_MASKEDMM_REDUMAX_PEA, MPU_CONV2D_PEA, MPU_CONV2D_GELU_PEA

Weight matrices and KV-cache operands are referenced by *device memory
address* and streamed through the matrix units — they never stage in the
63 MB register file (a 26 GB model would not fit).  Activations live in
matrix/vector registers.  Each instruction reports:

* ``reads()`` / ``writes()`` — register dependencies for the scheduler;
* ``flops()`` — arithmetic work;
* ``mem_elems()`` — device-memory elements streamed (the timing model
  multiplies by the modelled datatype width);
* ``mem_bytes(bytes_per_elem)`` — the streamed bytes at the modelled
  width, which the datatype-aware instructions override;
* ``unit`` — the execution resource it occupies.

The memory-touching instructions (``DMA_LOAD``/``DMA_GATHER`` and the
weight-streaming matmuls) carry a ``dtype`` field: ``"fp16"`` is the
modelled default (two bytes per streamed element), ``"int8"`` streams
one byte per weight element.  An int8 matmul reads per-output-channel
scales from ``scale_addr`` (``n`` fp32 elements), accumulates in int32,
and dequantizes on writeback — optionally fusing the bias add when
``bias_addr`` is set (the executor gives these exact numpy semantics).

The functional executor (:mod:`repro.accelerator.engine`) gives every
instruction exact numpy semantics; the timing simulator
(:mod:`repro.perf.simulator`) schedules the same objects onto resources.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import IsaError


class Unit(enum.Enum):
    """Execution resources of the accelerator (Fig. 7)."""

    DMA = "dma"
    PE_ARRAY = "pe-array"      # GEMM datapath (the new PEA)
    ADDER_TREE = "adder-tree"  # DFX GEMV datapath
    VPU = "vpu"
    CONTROL = "control"


#: Stream datatypes the memory-touching instructions understand.
DTYPES = ("fp16", "int8")

#: Modelled bytes per streamed element for each datatype.  ``fp16`` is a
#: placeholder resolved to the simulator's configured width (default 2);
#: ``int8`` is always one byte on the wire.
DTYPE_BYTES = {"fp16": 2, "int8": 1}


def _check_dtype(opcode: str, dtype: str) -> None:
    if dtype not in DTYPES:
        raise IsaError(f"{opcode}: unknown dtype {dtype!r} "
                       f"(expected one of {DTYPES})")


@dataclass(frozen=True)
class Instruction:
    """Base instruction; subclasses define operands and semantics."""

    @property
    def opcode(self) -> str:
        return type(self).OPCODE  # type: ignore[attr-defined]

    @property
    def unit(self) -> Unit:
        return type(self).UNIT  # type: ignore[attr-defined]

    def reads(self) -> Tuple[str, ...]:
        return ()

    def writes(self) -> Tuple[str, ...]:
        return ()

    def flops(self) -> float:
        return 0.0

    def mem_elems(self) -> float:
        """Device-memory elements streamed by this instruction."""
        return 0.0

    def mem_bytes(self, bytes_per_elem: int) -> float:
        """Streamed bytes at the modelled register-file element width.

        ``bytes_per_elem`` is the simulator's configured width for the
        default fp16 stream; datatype-carrying instructions override
        this to charge one byte per int8 weight element (plus the
        full-width scale/bias side streams).
        """
        return self.mem_elems() * bytes_per_elem


# --------------------------------------------------------------------------
# DMA engine
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class DmaLoad(Instruction):
    """Load a tensor from device memory into a register.

    ``dtype`` describes the stream width on the wire: an ``"int8"``
    load moves one byte per element (the register-file value is still
    the functional fp32 number the executor reads).
    """

    OPCODE = "DMA_LOAD"
    UNIT = Unit.DMA

    dst: str
    addr: int
    shape: Tuple[int, ...]
    dtype: str = "fp16"

    def __post_init__(self) -> None:
        _check_dtype(self.OPCODE, self.dtype)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)

    def mem_elems(self) -> float:
        return float(_numel(self.shape))

    def mem_bytes(self, bytes_per_elem: int) -> float:
        if self.dtype == "int8":
            return self.mem_elems()
        return self.mem_elems() * bytes_per_elem


@dataclass(frozen=True)
class DmaStore(Instruction):
    """Store a register's tensor to device memory.

    ``shape`` is advisory (the stored size is the register's runtime
    shape); the compiler sets it so the timing simulator can charge the
    transfer without executing.
    """

    OPCODE = "DMA_STORE"
    UNIT = Unit.DMA

    src: str
    addr: int
    shape: Optional[Tuple[int, ...]] = None

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def mem_elems(self) -> float:
        return float(_numel(self.shape)) if self.shape else 0.0


@dataclass(frozen=True)
class DmaGather(Instruction):
    """Gather rows of a 2-D table into a register (embedding lookup)."""

    OPCODE = "DMA_GATHER"
    UNIT = Unit.DMA

    dst: str
    table_addr: int
    row_elems: int
    indices: Tuple[int, ...]
    dtype: str = "fp16"

    def __post_init__(self) -> None:
        _check_dtype(self.OPCODE, self.dtype)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)

    def mem_elems(self) -> float:
        return float(len(self.indices) * self.row_elems)

    def mem_bytes(self, bytes_per_elem: int) -> float:
        if self.dtype == "int8":
            return self.mem_elems()
        return self.mem_elems() * bytes_per_elem


# --------------------------------------------------------------------------
# Matrix processing unit — adder-tree (GEMV) path
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class MpuMv(Instruction):
    """Adder-tree GEMV: ``dst[1,n] = act[1,k] @ W[k,n]`` (W from memory).

    With ``dtype="int8"`` the weight matrix streams one byte per
    element.  ``scale_addr`` then points at the per-output-channel
    dequantization scales (``n`` fp32 elements); the adder trees
    quantize the activation row dynamically, accumulate in int32, and
    dequantize on writeback.  A non-negative ``bias_addr`` fuses the
    bias add (``n`` elements) into the same writeback pass.
    """

    OPCODE = "MPU_MV"
    UNIT = Unit.ADDER_TREE

    dst: str
    act: str
    weight_addr: int
    k: int
    n: int
    dtype: str = "fp16"
    scale_addr: int = -1
    bias_addr: int = -1

    def __post_init__(self) -> None:
        if self.k <= 0 or self.n <= 0:
            raise IsaError(f"{self.OPCODE}: bad dims k={self.k} n={self.n}")
        _check_dtype(self.OPCODE, self.dtype)

    def reads(self) -> Tuple[str, ...]:
        return (self.act,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)

    def flops(self) -> float:
        return 2.0 * self.k * self.n

    def mem_elems(self) -> float:
        return float(self.k * self.n)

    def aux_elems(self) -> int:
        """Full-width side-stream elements (int8 scales, fused bias)."""
        if self.dtype != "int8":
            return self.n if self.bias_addr >= 0 else 0
        return self.n * (2 if self.bias_addr >= 0 else 1)

    def mem_bytes(self, bytes_per_elem: int) -> float:
        weight = 1 if self.dtype == "int8" else bytes_per_elem
        return (self.mem_elems() * weight
                + self.aux_elems() * bytes_per_elem)


# --------------------------------------------------------------------------
# Matrix processing unit — PE-array (GEMM) path: the six new instructions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class MpuMmPea(Instruction):
    """PE-array GEMM: ``dst[m,n] = act[m,k] @ W[k,n]`` (W from memory).

    ``dtype``/``scale_addr``/``bias_addr`` follow :class:`MpuMv`: an
    int8 GEMM streams one byte per weight element, quantizes each
    activation row dynamically, accumulates in int32, and dequantizes
    (optionally adding the fused bias) on writeback.
    """

    OPCODE = "MPU_MM_PEA"
    UNIT = Unit.PE_ARRAY

    dst: str
    act: str
    weight_addr: int
    m: int
    k: int
    n: int
    dtype: str = "fp16"
    scale_addr: int = -1
    bias_addr: int = -1

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise IsaError(f"{self.OPCODE}: bad dims "
                           f"{self.m}x{self.k}x{self.n}")
        _check_dtype(self.OPCODE, self.dtype)

    def reads(self) -> Tuple[str, ...]:
        return (self.act,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)

    def flops(self) -> float:
        return 2.0 * self.m * self.k * self.n

    def mem_elems(self) -> float:
        return float(self.k * self.n)

    def aux_elems(self) -> int:
        """Full-width side-stream elements (int8 scales, fused bias)."""
        if self.dtype != "int8":
            return self.n if self.bias_addr >= 0 else 0
        return self.n * (2 if self.bias_addr >= 0 else 1)

    def mem_bytes(self, bytes_per_elem: int) -> float:
        weight = 1 if self.dtype == "int8" else bytes_per_elem
        return (self.mem_elems() * weight
                + self.aux_elems() * bytes_per_elem)


@dataclass(frozen=True)
class MpuMmRedumaxPea(MpuMmPea):
    """GEMM fused with a row-wise running max (``rowmax_dst[m]``)."""

    OPCODE = "MPU_MM_REDUMAX_PEA"

    rowmax_dst: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.rowmax_dst:
            raise IsaError(f"{self.OPCODE}: rowmax_dst required")

    def writes(self) -> Tuple[str, ...]:
        return (self.dst, self.rowmax_dst)


@dataclass(frozen=True)
class MpuMaskedMm(Instruction):
    """Per-head masked attention scores, scaled.

    ``q`` holds ``[m, heads*head_dim]``; K is an aggregated ``[ctx,
    heads*head_dim]`` matrix in device memory at ``k_addr``.  The result is
    ``dst[heads, m, ctx]`` with ``scores = (q_h @ K_h^T) * scale`` and
    causal masking: row ``i`` may attend columns ``<= i + mask_offset``
    (set ``mask_offset >= ctx - 1`` for the un-masked gen stage).

    With ``m > 1`` this is the PE-array MPU_MASKEDMM_PEA /
    MPU_MASKEDMM_REDUMAX_PEA; with ``m == 1`` it runs on the adder trees
    (DFX's existing masked-MV path).  Setting ``rowmax_dst`` selects the
    REDUMAX-fused variant, which feeds VPU_SOFTMAX without a second pass.
    """

    dst: str
    q: str
    k_addr: int
    heads: int
    head_dim: int
    ctx: int
    m: int
    scale: float
    mask_offset: int
    rowmax_dst: Optional[str] = None

    def __post_init__(self) -> None:
        if min(self.heads, self.head_dim, self.ctx, self.m) <= 0:
            raise IsaError("MPU_MASKEDMM: non-positive dimension")

    @property
    def opcode(self) -> str:
        if self.m == 1:
            return "MPU_MASKEDMV"
        return ("MPU_MASKEDMM_REDUMAX_PEA" if self.rowmax_dst
                else "MPU_MASKEDMM_PEA")

    @property
    def unit(self) -> Unit:
        return Unit.PE_ARRAY if self.m > 1 else Unit.ADDER_TREE

    def reads(self) -> Tuple[str, ...]:
        return (self.q,)

    def writes(self) -> Tuple[str, ...]:
        if self.rowmax_dst:
            return (self.dst, self.rowmax_dst)
        return (self.dst,)

    def flops(self) -> float:
        return 2.0 * self.heads * self.m * self.ctx * self.head_dim

    def mem_elems(self) -> float:
        return float(self.ctx * self.heads * self.head_dim)


@dataclass(frozen=True)
class MpuAttnContext(Instruction):
    """Per-head context: ``dst[m, heads*head_dim] = probs_h @ V_h``.

    ``probs`` holds ``[heads, m, ctx]``; V is aggregated ``[ctx,
    heads*head_dim]`` at ``v_addr``.  Unit selection mirrors
    :class:`MpuMaskedMm`.
    """

    dst: str
    probs: str
    v_addr: int
    heads: int
    head_dim: int
    ctx: int
    m: int

    def __post_init__(self) -> None:
        if min(self.heads, self.head_dim, self.ctx, self.m) <= 0:
            raise IsaError("MPU_ATTN_CTX: non-positive dimension")

    @property
    def opcode(self) -> str:
        return "MPU_MM_PEA" if self.m > 1 else "MPU_MV"

    @property
    def unit(self) -> Unit:
        return Unit.PE_ARRAY if self.m > 1 else Unit.ADDER_TREE

    def reads(self) -> Tuple[str, ...]:
        return (self.probs,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)

    def flops(self) -> float:
        return 2.0 * self.heads * self.m * self.ctx * self.head_dim

    def mem_elems(self) -> float:
        return float(self.ctx * self.heads * self.head_dim)


@dataclass(frozen=True)
class MpuConv2d(Instruction):
    """2-D convolution via im2col on the PE array (optionally fused GELU).

    Input activations in ``act`` shaped ``[in_ch, h, w]``; weights at
    ``weight_addr`` shaped ``[out_ch, in_ch, kh, kw]``; 'same'-style valid
    convolution with the given stride, output ``[out_ch, oh, ow]``.
    """

    dst: str
    act: str
    weight_addr: int
    in_ch: int
    out_ch: int
    kh: int
    kw: int
    h: int
    w: int
    stride: int = 1
    gelu: bool = False

    UNIT = Unit.PE_ARRAY

    def __post_init__(self) -> None:
        if min(self.in_ch, self.out_ch, self.kh, self.kw, self.h, self.w,
               self.stride) <= 0:
            raise IsaError("MPU_CONV2D: non-positive dimension")
        if self.kh > self.h or self.kw > self.w:
            raise IsaError("MPU_CONV2D: kernel larger than input")

    @property
    def opcode(self) -> str:
        return "MPU_CONV2D_GELU_PEA" if self.gelu else "MPU_CONV2D_PEA"

    @property
    def out_hw(self) -> Tuple[int, int]:
        oh = (self.h - self.kh) // self.stride + 1
        ow = (self.w - self.kw) // self.stride + 1
        return oh, ow

    def reads(self) -> Tuple[str, ...]:
        return (self.act,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)

    def flops(self) -> float:
        oh, ow = self.out_hw
        return 2.0 * self.out_ch * oh * ow * self.in_ch * self.kh * self.kw

    def mem_elems(self) -> float:
        return float(self.out_ch * self.in_ch * self.kh * self.kw)


@dataclass(frozen=True)
class MpuTranspose(Instruction):
    """Matrix-manipulation unit: ``dst = src.T``."""

    OPCODE = "MPU_TRANSPOSE"
    UNIT = Unit.PE_ARRAY

    dst: str
    src: str

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)


# --------------------------------------------------------------------------
# Vector processing unit
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class VpuBinary(Instruction):
    """Elementwise binary op between two registers."""

    UNIT = Unit.VPU

    dst: str
    a: str
    b: str

    def reads(self) -> Tuple[str, ...]:
        return (self.a, self.b)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)


@dataclass(frozen=True)
class VpuAdd(VpuBinary):
    OPCODE = "VPU_ADD"


@dataclass(frozen=True)
class VpuMul(VpuBinary):
    OPCODE = "VPU_MUL"


@dataclass(frozen=True)
class VpuScale(Instruction):
    """``dst = src * constant``."""

    OPCODE = "VPU_SCALE"
    UNIT = Unit.VPU

    dst: str
    src: str
    constant: float

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)


@dataclass(frozen=True)
class VpuBias(Instruction):
    """``dst = src + bias`` with the bias vector streamed from memory."""

    OPCODE = "VPU_BIAS"
    UNIT = Unit.VPU

    dst: str
    src: str
    bias_addr: int
    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise IsaError("VPU_BIAS: bias length must be positive")

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)

    def mem_elems(self) -> float:
        return float(self.n)


@dataclass(frozen=True)
class VpuGelu(Instruction):
    """Tanh-approximated GELU."""

    OPCODE = "VPU_GELU"
    UNIT = Unit.VPU

    dst: str
    src: str

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)


@dataclass(frozen=True)
class VpuSoftmax(Instruction):
    """Numerically stable row-wise softmax over the last axis.

    ``rowmax`` optionally names a register holding precomputed row maxima
    from a REDUMAX-fused matmul, saving the max pass.
    """

    OPCODE = "VPU_SOFTMAX"
    UNIT = Unit.VPU

    dst: str
    src: str
    rowmax: Optional[str] = None

    def reads(self) -> Tuple[str, ...]:
        if self.rowmax:
            return (self.src, self.rowmax)
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)


@dataclass(frozen=True)
class VpuLayerNorm(Instruction):
    """LayerNorm over the last axis with gamma/beta streamed from memory."""

    OPCODE = "VPU_LAYERNORM"
    UNIT = Unit.VPU

    dst: str
    src: str
    gamma_addr: int
    beta_addr: int
    n: int
    eps: float = 1e-5

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise IsaError("VPU_LAYERNORM: width must be positive")

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)

    def mem_elems(self) -> float:
        return float(2 * self.n)


@dataclass(frozen=True)
class VpuArgmax(Instruction):
    """``dst (scalar reg) = argmax(src last row)`` — greedy sampling."""

    OPCODE = "VPU_ARGMAX"
    UNIT = Unit.VPU

    dst: str
    src: str

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)


@dataclass(frozen=True)
class VpuRow(Instruction):
    """``dst = src[row:row+1]`` — extract one row (negative = from end)."""

    OPCODE = "VPU_ROW"
    UNIT = Unit.VPU

    dst: str
    src: str
    row: int

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)


@dataclass(frozen=True)
class VpuSlice(Instruction):
    """``dst = src[:, start:stop]`` — column slice (QKV split)."""

    OPCODE = "VPU_SLICE"
    UNIT = Unit.VPU

    dst: str
    src: str
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise IsaError(f"VPU_SLICE: bad range [{self.start},{self.stop})")

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Tuple[str, ...]:
        return (self.dst,)


# --------------------------------------------------------------------------
# Control
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Free(Instruction):
    """Release dead registers back to the register-file manager."""

    OPCODE = "FREE"
    UNIT = Unit.CONTROL

    regs: Tuple[str, ...]

    def reads(self) -> Tuple[str, ...]:
        return self.regs


@dataclass(frozen=True)
class Barrier(Instruction):
    """Full pipeline barrier: all prior instructions complete first."""

    OPCODE = "BARRIER"
    UNIT = Unit.CONTROL


def _numel(shape: Tuple[int, ...]) -> int:
    n = 1
    for dim in shape:
        if dim <= 0:
            raise IsaError(f"non-positive dimension in shape {shape}")
        n *= dim
    return n


Program = Tuple[Instruction, ...]


def validate_program(program) -> None:
    """Static checks: registers written before read, types correct.

    When :mod:`repro.analysis` is importable, also surfaces the
    verifier's address-space errors — negative, out-of-bounds, or
    misaligned memory windows (PNM201/PNM202/PNM203) — as
    :class:`IsaError`.  The deeper layout-aware and dataflow
    diagnostics stay behind the opt-in ``verify_static`` hook.
    """
    written = set()
    for idx, instr in enumerate(program):
        if not isinstance(instr, Instruction):
            raise IsaError(f"program[{idx}] is not an Instruction: {instr!r}")
        for reg in instr.reads():
            if reg not in written and not isinstance(instr, Free):
                raise IsaError(
                    f"program[{idx}] {instr.opcode} reads {reg} before any "
                    f"write")
        written.update(instr.writes())
        if isinstance(instr, Free):
            written.difference_update(instr.regs)
    _validate_addresses(program)


def _validate_addresses(program) -> None:
    """Raise IsaError on address-space errors found by the verifier."""
    try:
        from repro.analysis.verifier import address_diagnostics
    except ImportError:  # pragma: no cover - analysis layer optional
        return
    errors = [d for d in address_diagnostics(program)
              if d.severity.value == "error"]
    if errors:
        rendered = "; ".join(d.render() for d in errors[:4])
        more = f" (+{len(errors) - 4} more)" if len(errors) > 4 else ""
        raise IsaError(f"address-space verification failed: "
                       f"{rendered}{more}")


# --------------------------------------------------------------------------
# Validate-once registry
#
# A stage program flows through three consumers (instruction buffer,
# functional executor, timing simulator) and a cached decode program is
# re-launched every token; validating the same immutable tuple at every
# hand-off is pure overhead.  The registry keys on object identity and
# keeps a strong reference to each validated tuple, so an ``id()`` can
# never be recycled while its entry is live.
# --------------------------------------------------------------------------

_VALIDATED: "OrderedDict[int, Program]" = OrderedDict()
_VALIDATED_MAX = 512


def _remember_validated(program: Program) -> None:
    _VALIDATED[id(program)] = program
    _VALIDATED.move_to_end(id(program))
    while len(_VALIDATED) > _VALIDATED_MAX:
        _VALIDATED.popitem(last=False)


def register_validated(program: Program) -> Program:
    """Mark a program as valid without re-running the static checks.

    Only for programs whose validity is inherited by construction — e.g.
    one patched from an already-validated template where the patch
    rewrites immediates (token indices, addresses, context lengths) but
    never instruction order or register operands.  Returns the program.
    """
    if isinstance(program, tuple):
        _remember_validated(program)
    return program


def validate_program_cached(program: Program) -> None:
    """Validate a program, skipping tuples already validated by identity."""
    cached = _VALIDATED.get(id(program))
    if cached is program:
        _VALIDATED.move_to_end(id(program))
        return
    validate_program(program)
    if isinstance(program, tuple):
        _remember_validated(program)
