"""Machine-generated ISA reference.

Introspects the instruction classes of :mod:`repro.accelerator.isa` into
a reference table (mnemonic, execution unit, operands, one-line
semantics), so documentation can never drift from the implementation.
Exposed through ``python -m repro isa``.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Dict, List, Type

from repro.accelerator import isa

#: Classes whose opcode depends on operands, with the mnemonics they emit.
_POLYMORPHIC: Dict[Type[isa.Instruction], List[str]] = {
    isa.MpuMaskedMm: ["MPU_MASKEDMM_PEA", "MPU_MASKEDMM_REDUMAX_PEA",
                      "MPU_MASKEDMV"],
    isa.MpuAttnContext: ["MPU_MM_PEA (context)", "MPU_MV (context)"],
    isa.MpuConv2d: ["MPU_CONV2D_PEA", "MPU_CONV2D_GELU_PEA"],
}

#: The six instructions §V-C adds to the DFX ISA for the PE array.
NEW_PEA_MNEMONICS = (
    "MPU_MM_PEA", "MPU_MM_REDUMAX_PEA", "MPU_MASKEDMM_PEA",
    "MPU_MASKEDMM_REDUMAX_PEA", "MPU_CONV2D_PEA", "MPU_CONV2D_GELU_PEA",
)


def _instruction_classes() -> List[Type[isa.Instruction]]:
    abstract = (isa.Instruction, isa.VpuBinary)
    return [obj for _, obj in inspect.getmembers(isa, inspect.isclass)
            if issubclass(obj, isa.Instruction)
            and obj not in abstract
            and dataclasses.is_dataclass(obj)]


def _operands(cls: Type[isa.Instruction]) -> str:
    fields = [f.name for f in dataclasses.fields(cls)]
    return ", ".join(fields) if fields else "-"


def _summary(cls: Type[isa.Instruction]) -> str:
    doc = inspect.getdoc(cls) or ""
    first = doc.splitlines()[0] if doc else ""
    return first.rstrip(".")


def _unit_of(cls: Type[isa.Instruction]) -> str:
    unit = getattr(cls, "UNIT", None)
    if unit is not None:
        return unit.value
    if cls in (isa.MpuMaskedMm, isa.MpuAttnContext):
        return "pe-array / adder-tree (by m)"
    return "-"


def isa_reference() -> List[Dict[str, str]]:
    """One row per instruction class, documentation-ready."""
    rows = []
    for cls in sorted(_instruction_classes(), key=lambda c: c.__name__):
        if cls is isa.VpuBinary:
            continue
        mnemonics = _POLYMORPHIC.get(cls)
        opcode = " / ".join(mnemonics) if mnemonics \
            else getattr(cls, "OPCODE", cls.__name__)
        rows.append({
            "mnemonic": opcode,
            "class": cls.__name__,
            "unit": _unit_of(cls),
            "operands": _operands(cls),
            "semantics": _summary(cls),
        })
    return rows


def render_isa_reference() -> str:
    """Plain-text ISA table."""
    from repro.experiments.report import text_table
    return text_table(isa_reference(),
                      columns=["mnemonic", "unit", "operands", "semantics"])


def pea_instructions_present() -> bool:
    """Sanity hook: all six paper-added mnemonics must be emittable."""
    emitted = set()
    for row in isa_reference():
        for part in row["mnemonic"].split(" / "):
            emitted.add(part.split(" ")[0])
    return all(m in emitted for m in NEW_PEA_MNEMONICS)
