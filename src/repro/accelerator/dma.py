"""DMA-engine timing model.

The DMA engine (Fig. 7) moves tensors between device memory and the
register files, and — for multi-device appliances — between devices under
host orchestration through the unified CXL address space (§V-C removed
DFX's PCIe router in favour of exactly this).  Transfers stream at the
module's effective bandwidth and double-buffer against compute; the 1 MB
DMA buffer (Table II) bounds the burst size, adding a per-burst
re-arm cost for very large transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.units import MiB


@dataclass(frozen=True)
class DmaTiming:
    """Transfer-time model for the device DMA engine.

    Attributes:
        bandwidth: Achievable device-memory bandwidth in bytes/s.
        buffer_bytes: DMA staging buffer (1 MB per Table II).
        setup_s: Descriptor setup cost per transfer.
        burst_rearm_s: Cost to re-arm between buffer-sized bursts.
    """

    bandwidth: float
    buffer_bytes: int = 1 * MiB
    setup_s: float = 150e-9
    burst_rearm_s: float = 40e-9

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise SimulationError("DMA bandwidth must be positive")
        if self.buffer_bytes <= 0:
            raise SimulationError("DMA buffer must be positive")

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` between memory and registers."""
        if num_bytes < 0:
            raise SimulationError("negative DMA size")
        if num_bytes == 0:
            return 0.0
        bursts = max(1, int((num_bytes + self.buffer_bytes - 1)
                            // self.buffer_bytes))
        return (self.setup_s + (bursts - 1) * self.burst_rearm_s
                + num_bytes / self.bandwidth)

    def gather_time(self, num_rows: int, row_bytes: float) -> float:
        """Seconds for a row gather (embedding lookup): per-row requests."""
        if num_rows <= 0 or row_bytes <= 0:
            raise SimulationError("gather needs positive rows and size")
        per_row = max(row_bytes / self.bandwidth, 20e-9)
        return self.setup_s + num_rows * per_row
