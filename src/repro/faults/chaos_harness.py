"""End-to-end chaos runs: one fault plan, every layer, one report.

``run_chaos`` drives a representative slice of the stack under a
:class:`~repro.faults.plan.FaultPlan` and reports what §IX's RAS
machinery did about it:

1. **Functional generation** — a tiny model runs through the real
   runtime (driver, guard ECC region, launch retry).  Single-bit guard
   upsets correct transparently; a double-bit upset or an exhausted
   retry budget aborts the generation, and the report records which.
2. **Host readback** — a burst of CXL.mem reads through
   :meth:`~repro.cxl.link.CXLLink.transfer_time`, where flit CRC
   errors pay link-layer replay latency.
3. **Serving** — a continuous-batching run (Poisson arrivals, multiple
   devices) that survives the plan's scheduled device stalls and
   permanent failures by requeue-and-failover.

The harness installs its *own* observability context
(:func:`repro.obs.observe`), for two reasons: the fault counters land
in a real metrics registry (reported back in
:attr:`ChaosReport.metrics`), and — more subtly — some hooks only run
when observability is on (the session's host-readback tracing), so
pinning it on keeps the fault-RNG draw sequence identical no matter
what tracing flags the caller set.  Two ``run_chaos`` calls with the
same plan and config produce identical reports (asserted by
``tests/test_faults.py``).

This module intentionally does **not** ship in ``repro.faults``'s
``__init__`` exports: the low-level layers (``repro.cxl.link``) import
``repro.faults.context``, and pulling the harness (and its runtime /
appliance imports) into the package root would create a cycle.  Import
it directly::

    from repro.faults.chaos_harness import ChaosConfig, run_chaos
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.faults.context import chaos
from repro.faults.plan import FaultPlan
from repro.units import GB


@dataclass(frozen=True)
class ChaosConfig:
    """Workload knobs for one chaos run (the plan says what breaks).

    Attributes:
        model: Served model name for the serving phase (§VIII zoo).
        num_requests: Serving-phase request count.
        num_devices: Serving-phase model replicas (failover capacity).
        memory_gb: Per-device memory; kept tight by default so a
            failed device's requeued requests must *wait* for KV room —
            that wait is the failover latency the report shows.
        arrival_rate_per_s: Poisson arrival rate for the open queue.
        readback_reads: CXL.mem reads in the link phase.
        readback_bytes: Size of each read.
        gen_prompt_len: Functional-generation prompt length.
        gen_tokens: Functional-generation output tokens.
    """

    model: str = "OPT-13B"
    num_requests: int = 12
    num_devices: int = 2
    memory_gb: float = 27.0
    arrival_rate_per_s: float = 2.0
    readback_reads: int = 256
    readback_bytes: int = 64
    gen_prompt_len: int = 4
    gen_tokens: int = 8


@dataclass
class ChaosReport:
    """What one chaos run injected, corrected, retried, and survived."""

    seed: int
    generation_outcome: str
    generation_tokens: int
    readback_reads: int
    readback_s: float
    serving: Dict[str, float]
    failover_timeline: List[Dict[str, float]]
    counters: Dict[str, float]
    metrics: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (used by the CLI and determinism tests)."""
        return asdict(self)

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        c = self.counters
        lines = [
            f"chaos run (seed {self.seed})",
            "",
            "generation   outcome={} tokens={} launch retries={}".format(
                self.generation_outcome, self.generation_tokens,
                int(c["launch_retries"])),
            "memory       injected={} corrected={} uncorrectable={} "
            "scrubs={}".format(
                int(c["mem_injected"]), int(c["mem_corrected"]),
                int(c["mem_uncorrectable"]), int(c["mem_scrubs"])),
            "cxl link     flits={} crc errors={} replays={} "
            "replay_s={:.3e}".format(
                int(c["link_flits"]), int(c["link_crc_errors"]),
                int(c["link_replays"]), c["link_replay_s"]),
            "devices      stalls={} stall_s={:.3f} failures={} "
            "requeued={}".format(
                int(c["device_stalls"]), c["device_stall_s"],
                int(c["device_failures"]), int(c["requests_requeued"])),
            "serving      completed={} rejected={} makespan_s={:.2f} "
            "p95_latency_s={:.2f}".format(
                int(self.serving["requests"]),
                int(self.serving["rejected"]),
                self.serving["makespan_s"],
                self.serving["p95_latency_s"]),
            "failover     events={} requeued={} "
            "mean_latency_s={:.3f}".format(
                len(self.failover_timeline),
                int(self.serving["failovers"]),
                self.serving["mean_failover_latency_s"]),
        ]
        for event in self.failover_timeline:
            lines.append(
                "             t={:.2f}s device {} failed, {} requests "
                "requeued".format(event["at_s"], int(event["device"]),
                                  int(event["requeued"])))
        return "\n".join(lines)


def run_chaos(plan: FaultPlan,
              config: Optional[ChaosConfig] = None) -> ChaosReport:
    """Run the three-phase chaos workload under ``plan``.

    Deterministic: the plan's seed drives the fault substreams *and*
    the workload (weights, arrivals), so the same (plan, config) pair
    always yields the same report.
    """
    # Imports live here, not at module top: see the module docstring.
    from repro.accelerator.device import CXLPNMDevice
    from repro.appliance.continuous import ContinuousBatchScheduler
    from repro.appliance.scheduler import poisson_arrivals
    from repro.errors import DeviceLostError, UncorrectableMemoryError
    from repro.llm import get_model, random_weights, sampled_workload, \
        tiny_config
    from repro.obs import observe
    from repro.perf.analytical import BatchStepTimer, PnmPerfModel
    from repro.runtime.session import InferenceSession

    config = config or ChaosConfig()
    with chaos(plan) as state:
        with observe() as (_tracer, registry):
            # -- phase 1: functional generation through the runtime ----
            outcome = "completed"
            tokens = 0
            try:
                session = InferenceSession(
                    random_weights(tiny_config(), seed=plan.seed))
                prompt = list(range(1, config.gen_prompt_len + 1))
                trace = session.generate(prompt, config.gen_tokens)
                tokens = len(trace.tokens)
            except UncorrectableMemoryError:
                outcome = "uncorrectable_memory_error"
            except DeviceLostError:
                outcome = "device_lost"

            # -- phase 2: host CXL.mem readback burst ------------------
            link = CXLPNMDevice().link
            readback_s = 0.0
            for _ in range(config.readback_reads):
                readback_s += link.transfer_time(config.readback_bytes)

            # -- phase 3: serving under device stalls/failures ---------
            model = get_model(config.model)
            engine = ContinuousBatchScheduler(
                BatchStepTimer(model, PnmPerfModel(CXLPNMDevice())),
                model, int(config.memory_gb * GB),
                num_devices=config.num_devices)
            requests = sampled_workload(config.num_requests,
                                        seed=plan.seed)
            arrivals = poisson_arrivals(len(requests),
                                        config.arrival_rate_per_s,
                                        seed=plan.seed)
            stats = engine.run(requests, arrivals)

        serving = stats.as_dict()
        timeline = [{"at_s": e.at_s, "device": float(e.device),
                     "requeued": float(e.requeued)}
                    for e in stats.failover_events]
        snapshot = registry.as_dict()
        fault_metrics = {
            key: value
            for family in ("counters", "histograms")
            for key, value in snapshot.get(family, {}).items()
            if key.startswith("faults.") or key.startswith("cxl.link.")}
        return ChaosReport(
            seed=plan.seed,
            generation_outcome=outcome,
            generation_tokens=tokens,
            readback_reads=config.readback_reads,
            readback_s=readback_s,
            serving=serving,
            failover_timeline=timeline,
            counters=state.counters.as_dict(),
            metrics=fault_metrics)
