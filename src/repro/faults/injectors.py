"""Runtime fault state: seeded injectors and their counters.

A :class:`FaultState` is the *live* half of a :class:`~repro.faults.
plan.FaultPlan`: it owns one independent seeded RNG substream per fault
layer (so the draw order of one layer never perturbs another), applies
the plan when a hook asks, and accumulates a :class:`FaultCounters`
record that the chaos report and the RAS experiment read back.

Hooks are pull-based and pay nothing when their layer is disabled:

* :meth:`FaultState.link_transfer` — called by
  :meth:`repro.cxl.link.CXLLink.transfer_time` with the transfer's flit
  count; returns the replay-latency penalty plus error/replay counts.
* :meth:`FaultState.launch_fault` — called by
  :meth:`repro.runtime.driver.CxlPnmDriver.launch`; returns ``None`` or
  the exception to raise (transient or permanent).
* :meth:`FaultState.memory_tick` — called by the session once per
  executed stage against its SECDED guard region; injects upsets,
  optionally scrubs, and reads the region back so corrections are
  transparent and double-bit errors raise mid-generation.
* :attr:`FaultState.device_events` — consumed by the continuous-batching
  scheduler at iteration boundaries for stalls and failover.

Every event is mirrored into the ambient obs metrics registry (when one
is installed), so a chaos run's counters land next to the rest of the
simulation's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import (
    DeviceLostError,
    TransientDeviceError,
    UncorrectableMemoryError,
)
from repro.faults.plan import DeviceFaultEvent, FaultPlan
from repro.obs.context import get_metrics
from repro.units import NANOSECOND


@dataclass
class FaultCounters:
    """Everything the injectors did, layer by layer."""

    # CXL link
    link_flits: int = 0
    link_crc_errors: int = 0
    link_replays: int = 0
    link_replay_s: float = 0.0
    # ECC-protected memory
    mem_ticks: int = 0
    mem_injected: int = 0
    mem_corrected: int = 0
    mem_uncorrectable: int = 0
    mem_scrubs: int = 0
    # accelerator launches
    launches: int = 0
    launch_transients: int = 0
    launch_retries: int = 0
    launch_failures: int = 0
    # appliance devices (recorded by the serving scheduler)
    device_stalls: int = 0
    device_stall_s: float = 0.0
    device_failures: int = 0
    requests_requeued: int = 0
    failover_latency_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat JSON-ready view (field order preserved)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultState:
    """Live injector bundle for one :class:`FaultPlan`.

    Attributes:
        plan: The immutable schedule being applied.
        counters: Cumulative injection/recovery counts.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counters = FaultCounters()
        # Independent substreams per layer: interleaving calls across
        # layers cannot change any single layer's draw sequence.
        self._rng_link = np.random.default_rng([plan.seed, 0xC2C])
        self._rng_mem = np.random.default_rng([plan.seed, 0xECC])
        self._rng_launch = np.random.default_rng([plan.seed, 0xDE7])

    # -- CXL link ------------------------------------------------------------

    def link_transfer(self, flits: int) -> Tuple[float, int, int]:
        """Draw CRC errors for a ``flits``-flit transfer.

        Returns ``(penalty_s, crc_errors, replays)``: the link-layer
        replay latency to add to the transfer time, and the counts the
        caller should mirror into its own stats.
        """
        model = self.plan.link
        if not model.enabled or flits <= 0:
            return 0.0, 0, 0
        self.counters.link_flits += flits
        errors = int(self._rng_link.binomial(flits, model.crc_error_rate))
        if errors == 0:
            return 0.0, 0, 0
        penalty_s = 0.0
        replays = 0
        for _ in range(errors):
            # Replay with exponential backoff until the flit gets
            # through (or the attempt budget is spent).
            for attempt in range(model.max_replays):
                replays += 1
                penalty_s += model.replay_ns * (2 ** attempt) * NANOSECOND
                if self._rng_link.random() >= model.crc_error_rate:
                    break
        self.counters.link_crc_errors += errors
        self.counters.link_replays += replays
        self.counters.link_replay_s += penalty_s
        return penalty_s, errors, replays

    # -- accelerator launches ------------------------------------------------

    def launch_fault(self) -> Optional[Exception]:
        """The fault (if any) afflicting the next accelerator launch.

        Returns ``None`` (launch proceeds), a
        :class:`~repro.errors.TransientDeviceError` (recoverable — the
        session retries with backoff), or a
        :class:`~repro.errors.DeviceLostError` (permanent).
        """
        model = self.plan.launch
        if not model.enabled:
            return None
        self.counters.launches += 1
        if model.fail_at_launch is not None \
                and self.counters.launches == model.fail_at_launch:
            self.counters.launch_failures += 1
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("faults.launch.failures").inc()
            return DeviceLostError(
                f"permanent device failure at launch "
                f"{self.counters.launches}")
        if model.transient_rate > 0 \
                and self._rng_launch.random() < model.transient_rate:
            self.counters.launch_transients += 1
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("faults.launch.transients").inc()
            return TransientDeviceError(
                f"transient launch fault at launch "
                f"{self.counters.launches}")
        return None

    def note_launch_retry(self) -> None:
        """Record one bounded-backoff retry by the runtime."""
        self.counters.launch_retries += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("faults.launch.retries").inc()

    # -- ECC-protected memory ------------------------------------------------

    def memory_tick(self, region) -> None:
        """One fault tick against a SECDED-protected guard ``region``.

        Injects the plan's upsets, runs a periodic ECS scrub, then
        reads the whole region back through the decoder: single-bit
        upsets correct transparently (counted), a double-bit upset
        raises :class:`~repro.errors.UncorrectableMemoryError` — the
        machine-check that aborts the generation in flight.
        """
        model = self.plan.memory
        if not model.enabled:
            return
        self.counters.mem_ticks += 1
        tick = self.counters.mem_ticks
        corrected_base = region.corrected_total
        injected = 0
        if model.upsets_per_tick > 0:
            injected = int(self._rng_mem.poisson(model.upsets_per_tick))
            if injected:
                region.inject_faults(injected, rng=self._rng_mem)
        if model.double_bit_at_tick == tick:
            region.inject_double_bit(0)
            injected += 2
        self.counters.mem_injected += injected
        if model.scrub_every_ticks \
                and tick % model.scrub_every_ticks == 0:
            region.scrub()
            self.counters.mem_scrubs += 1
        metrics = get_metrics()
        try:
            region.read_array(region.data_words)
        except UncorrectableMemoryError:
            self.counters.mem_uncorrectable += 1
            self.counters.mem_corrected += \
                region.corrected_total - corrected_base
            if metrics.enabled:
                metrics.counter("faults.mem.uncorrectable").inc()
            raise
        finally:
            if metrics.enabled and injected:
                metrics.counter("faults.mem.injected").inc(injected)
        corrected = region.corrected_total - corrected_base
        self.counters.mem_corrected += corrected
        if metrics.enabled and corrected:
            metrics.counter("faults.mem.corrected").inc(corrected)

    # -- appliance devices ---------------------------------------------------

    @property
    def device_events(self) -> Tuple[DeviceFaultEvent, ...]:
        """The plan's scheduled stalls/failures, sorted by time."""
        return self.plan.device_events

    def note_stall(self, duration_s: float) -> None:
        """Record one device stall absorbed by the serving layer."""
        self.counters.device_stalls += 1
        self.counters.device_stall_s += duration_s
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("faults.device.stalls").inc()

    def note_device_failure(self, requeued: int) -> None:
        """Record one permanent device failure and its requeued load."""
        self.counters.device_failures += 1
        self.counters.requests_requeued += requeued
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("faults.device.failures").inc()
            metrics.counter("faults.device.requeued").inc(requeued)

    def note_failover_latency(self, latency_s: float) -> None:
        """Record one requeued request's failure-to-readmission gap."""
        self.counters.failover_latency_s += latency_s
        metrics = get_metrics()
        if metrics.enabled:
            metrics.histogram("faults.device.failover_s").observe(
                latency_s)
