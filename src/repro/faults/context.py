"""Ambient fault context: install a plan, every layer sees it.

Mirrors :mod:`repro.obs.context`: fault hooks in the link, driver,
session, and serving scheduler resolve the active
:class:`~repro.faults.injectors.FaultState` through :func:`get_faults`,
which returns ``None`` unless a :func:`chaos` block (or an explicitly
injected state) is active — so the no-faults path costs one contextvar
read and is bit-identical to a build without the subsystem.

Usage::

    from repro.faults import FaultPlan, chaos

    plan = FaultPlan(seed=7).with_link_errors(1e-3)
    with chaos(plan) as state:
        run_serving_workload()
    print(state.counters.as_dict())

An *empty* plan (``FaultPlan.empty()`` or a default-constructed one)
installs a state whose hooks all short-circuit without consuming
randomness; results are then bit-identical to not installing anything
(asserted by ``tests/test_faults.py``).
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.faults.injectors import FaultState
from repro.faults.plan import FaultPlan

_FAULTS: ContextVar[Optional[FaultState]] = ContextVar(
    "repro_fault_state", default=None)


def get_faults(injected: Optional[FaultState] = None
               ) -> Optional[FaultState]:
    """Resolve the active fault state: injected > ambient > ``None``."""
    if injected is not None:
        return injected
    return _FAULTS.get()


@contextlib.contextmanager
def chaos(plan: FaultPlan) -> Iterator[FaultState]:
    """Install ``plan`` as the ambient fault schedule for the block.

    Yields the live :class:`FaultState` so the caller can read its
    counters after (or during) the run.
    """
    state = FaultState(plan)
    token = _FAULTS.set(state)
    try:
        yield state
    finally:
        _FAULTS.reset(token)
