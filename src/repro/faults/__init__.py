"""Fault injection and graceful degradation (paper §IX, functionally.)

The paper argues LPDDR5X-based CXL-PNM is datacenter-ready because of
its RAS behaviour: inline ECC corrects single-bit upsets, ECS scrubbing
stops them pairing into uncorrectable errors, and the CXL link layer
replays CRC-errored flits from its retry buffer.  ``repro.faults``
turns that argument into a runnable subsystem: a deterministic, seeded
:class:`FaultPlan` drives injectors at three layers of the stack —

* **CXL link** (:meth:`repro.cxl.link.CXLLink.transfer_time`): flit CRC
  errors pay modeled replay latency with exponential backoff;
* **device memory** (:class:`repro.memory.reliable.ReliableRegion` via
  the session's guard region): single-bit upsets correct transparently
  through SECDED, double-bit upsets abort the generation with
  :class:`~repro.errors.UncorrectableMemoryError`;
* **device/appliance** (driver launches and the continuous-batching
  scheduler): transient faults are retried with bounded backoff,
  permanent device failures trigger requeue-and-failover.

Everything is off by default: with no plan installed (or an empty one)
every hook short-circuits and results are bit-identical to a build
without the subsystem.  Enable per run with::

    with repro.faults.chaos(plan) as state:
        ...
    state.counters.as_dict()

or from the CLI: ``python -m repro chaos``.  The end-to-end harness
lives in :mod:`repro.faults.chaos_harness` (imported lazily to keep
this package importable from the low-level layers it hooks).
"""

from repro.faults.context import chaos, get_faults
from repro.faults.injectors import FaultCounters, FaultState
from repro.faults.plan import (
    DeviceFaultEvent,
    DeviceFaultKind,
    FaultPlan,
    LaunchFaultModel,
    LinkFaultModel,
    MemoryFaultModel,
    paper_section_ix_plan,
)

__all__ = [
    "DeviceFaultEvent",
    "DeviceFaultKind",
    "FaultCounters",
    "FaultPlan",
    "FaultState",
    "LaunchFaultModel",
    "LinkFaultModel",
    "MemoryFaultModel",
    "chaos",
    "get_faults",
    "paper_section_ix_plan",
]
