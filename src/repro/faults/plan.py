"""Fault plans: what to break, where, and when (paper §IX).

A :class:`FaultPlan` is a *declarative, seeded* description of the
faults to inject into a run — it owns no mutable state, so the same
plan replayed against the same workload produces the same fault
sequence, counts, and failover timeline.  Plans compose three layers:

* :class:`LinkFaultModel` — flit CRC errors on the CXL link, paid as
  link-layer replay latency with exponential backoff (the CXL
  retry-buffer behaviour the paper leans on for RAS);
* :class:`MemoryFaultModel` — bit upsets in an ECC-protected device
  region, routed through the SECDED(72,64) codec so single-bit errors
  correct transparently and double-bit errors surface as
  :class:`~repro.errors.UncorrectableMemoryError`;
* :class:`LaunchFaultModel` and :class:`DeviceFaultEvent` — transient
  launch failures (retried by the runtime) and scheduled device
  stalls/permanent failures (survived by the serving layer's failover).

Everything defaults to *off*: :meth:`FaultPlan.is_empty` is true for a
default-constructed plan, and an empty plan consumes no randomness, so
results are bit-identical to running with no plan at all (asserted by
``tests/test_faults.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import FaultInjectionError


class DeviceFaultKind(enum.Enum):
    """Scheduled appliance-level fault varieties."""

    STALL = "stall"      # transient: the device pauses, then resumes
    FAIL = "fail"        # permanent: capacity is lost for the run


@dataclass(frozen=True)
class DeviceFaultEvent:
    """One scheduled device fault in a serving run.

    Attributes:
        kind: Stall (transient) or fail (permanent).
        at_s: Simulated time at which the fault strikes.  The event
            kernel applies it at this exact time: a failure cancels the
            device's in-flight step; a stall elapses from here, idle or
            busy.
        device: Index of the afflicted device (serving-layer DP index).
        duration_s: Stall length; ignored for permanent failures.
    """

    kind: DeviceFaultKind
    at_s: float
    device: int = 0
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise FaultInjectionError("fault time cannot be negative")
        if self.device < 0:
            raise FaultInjectionError("device index cannot be negative")
        if self.kind is DeviceFaultKind.STALL and self.duration_s <= 0:
            raise FaultInjectionError("a stall needs a positive duration")


@dataclass(frozen=True)
class LinkFaultModel:
    """Flit CRC errors and the link-layer retry they trigger.

    Each flit of a transfer independently suffers a CRC error with
    probability ``crc_error_rate``.  An errored flit is replayed from
    the retry buffer: replay attempt ``k`` costs
    ``replay_ns * 2**k`` (exponential backoff), and each replay fails
    again with the same probability up to ``max_replays`` attempts —
    after which the flit is counted as delivered anyway (real links
    would retrain; we only model the latency tax and the counters).
    """

    crc_error_rate: float = 0.0
    replay_ns: float = 80.0
    max_replays: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.crc_error_rate < 1.0:
            raise FaultInjectionError(
                f"crc_error_rate {self.crc_error_rate} outside [0, 1)")
        if self.replay_ns < 0:
            raise FaultInjectionError("replay latency cannot be negative")
        if self.max_replays < 1:
            raise FaultInjectionError("need at least one replay attempt")

    @property
    def enabled(self) -> bool:
        return self.crc_error_rate > 0.0


@dataclass(frozen=True)
class MemoryFaultModel:
    """Bit upsets against an ECC-protected guard region.

    ``upsets_per_tick`` single-bit flips land on each fault tick (one
    tick per executed stage in a session).  ``double_bit_at_tick``
    forces two flips into one codeword at that tick, producing the
    uncorrectable error the §IX scrub-interval math bounds.  When
    ``scrub_every_ticks`` is set, the guard region runs an ECS pass at
    that period, repairing accumulated single-bit upsets before a
    second flip can pair with them.
    """

    upsets_per_tick: float = 0.0
    double_bit_at_tick: Optional[int] = None
    scrub_every_ticks: Optional[int] = None
    guard_words: int = 64

    def __post_init__(self) -> None:
        if self.upsets_per_tick < 0:
            raise FaultInjectionError("upset rate cannot be negative")
        if self.double_bit_at_tick is not None \
                and self.double_bit_at_tick < 1:
            raise FaultInjectionError("double-bit tick must be >= 1")
        if self.scrub_every_ticks is not None \
                and self.scrub_every_ticks < 1:
            raise FaultInjectionError("scrub period must be >= 1")
        if self.guard_words < 1:
            raise FaultInjectionError("guard region needs >= 1 word")

    @property
    def enabled(self) -> bool:
        return self.upsets_per_tick > 0 \
            or self.double_bit_at_tick is not None


@dataclass(frozen=True)
class LaunchFaultModel:
    """Transient and permanent faults at accelerator-launch granularity.

    Each launch fails transiently with probability ``transient_rate``
    (raising :class:`~repro.errors.TransientDeviceError`, which the
    session retries with bounded exponential backoff);
    ``fail_at_launch`` makes launch number N (1-indexed, counted across
    the device's lifetime) fail permanently with
    :class:`~repro.errors.DeviceLostError`.
    """

    transient_rate: float = 0.0
    fail_at_launch: Optional[int] = None
    max_retries: int = 3
    retry_backoff_s: float = 1e-6

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_rate < 1.0:
            raise FaultInjectionError(
                f"transient_rate {self.transient_rate} outside [0, 1)")
        if self.fail_at_launch is not None and self.fail_at_launch < 1:
            raise FaultInjectionError("fail_at_launch must be >= 1")
        if self.max_retries < 0:
            raise FaultInjectionError("max_retries cannot be negative")
        if self.retry_backoff_s < 0:
            raise FaultInjectionError("backoff cannot be negative")

    @property
    def enabled(self) -> bool:
        return self.transient_rate > 0.0 or self.fail_at_launch is not None


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule for one run.

    Attributes:
        seed: Root seed; each layer derives an independent substream,
            so injection order across layers never perturbs another
            layer's draws.
        link: CXL-link flit CRC fault model.
        memory: ECC-protected memory upset model.
        launch: Accelerator launch fault model.
        device_events: Scheduled appliance-level stalls and failures.
    """

    seed: int = 0
    link: LinkFaultModel = field(default_factory=LinkFaultModel)
    memory: MemoryFaultModel = field(default_factory=MemoryFaultModel)
    launch: LaunchFaultModel = field(default_factory=LaunchFaultModel)
    device_events: Tuple[DeviceFaultEvent, ...] = ()

    def __post_init__(self) -> None:
        # Normalise (and validate) the schedule once, at build time.
        events = tuple(sorted(self.device_events, key=lambda e: e.at_s))
        object.__setattr__(self, "device_events", events)

    @property
    def is_empty(self) -> bool:
        """True when this plan injects nothing anywhere."""
        return not (self.link.enabled or self.memory.enabled
                    or self.launch.enabled or self.device_events)

    # -- fluent builders -----------------------------------------------------

    def with_link_errors(self, crc_error_rate: float,
                         replay_ns: float = 80.0,
                         max_replays: int = 8) -> "FaultPlan":
        """A copy of this plan with flit CRC errors enabled."""
        return FaultPlan(seed=self.seed,
                         link=LinkFaultModel(crc_error_rate, replay_ns,
                                             max_replays),
                         memory=self.memory, launch=self.launch,
                         device_events=self.device_events)

    def with_memory_upsets(self, upsets_per_tick: float,
                           double_bit_at_tick: Optional[int] = None,
                           scrub_every_ticks: Optional[int] = None,
                           guard_words: int = 64) -> "FaultPlan":
        """A copy with single/double-bit upsets against the guard region."""
        return FaultPlan(seed=self.seed, link=self.link,
                         memory=MemoryFaultModel(upsets_per_tick,
                                                 double_bit_at_tick,
                                                 scrub_every_ticks,
                                                 guard_words),
                         launch=self.launch,
                         device_events=self.device_events)

    def with_launch_faults(self, transient_rate: float = 0.0,
                           fail_at_launch: Optional[int] = None,
                           max_retries: int = 3,
                           retry_backoff_s: float = 1e-6) -> "FaultPlan":
        """A copy with transient/permanent launch faults enabled."""
        return FaultPlan(seed=self.seed, link=self.link,
                         memory=self.memory,
                         launch=LaunchFaultModel(transient_rate,
                                                 fail_at_launch,
                                                 max_retries,
                                                 retry_backoff_s),
                         device_events=self.device_events)

    def with_device_stall(self, at_s: float, duration_s: float,
                          device: int = 0) -> "FaultPlan":
        """A copy with one scheduled transient device stall appended."""
        event = DeviceFaultEvent(DeviceFaultKind.STALL, at_s=at_s,
                                 device=device, duration_s=duration_s)
        return FaultPlan(seed=self.seed, link=self.link,
                         memory=self.memory, launch=self.launch,
                         device_events=self.device_events + (event,))

    def with_device_failure(self, at_s: float,
                            device: int = 0) -> "FaultPlan":
        """A copy with one scheduled permanent device failure appended."""
        event = DeviceFaultEvent(DeviceFaultKind.FAIL, at_s=at_s,
                                 device=device)
        return FaultPlan(seed=self.seed, link=self.link,
                         memory=self.memory, launch=self.launch,
                         device_events=self.device_events + (event,))

    @staticmethod
    def empty(seed: int = 0) -> "FaultPlan":
        """An explicit no-fault plan (bit-identical to no plan at all)."""
        return FaultPlan(seed=seed)


def paper_section_ix_plan(seed: int = 0) -> FaultPlan:
    """The default chaos schedule: every §IX mechanism exercised once.

    A low flit CRC rate (link retry), a steady single-bit upset drizzle
    with periodic scrubbing (inline ECC + ECS), an occasional transient
    launch fault (driver retry), and one mid-run device failure
    (serving-layer failover).
    """
    return (FaultPlan(seed=seed)
            .with_link_errors(crc_error_rate=2e-3)
            .with_memory_upsets(upsets_per_tick=0.25,
                                scrub_every_ticks=8)
            .with_launch_faults(transient_rate=0.05, max_retries=3)
            .with_device_stall(at_s=3.0, duration_s=0.5, device=0)
            .with_device_failure(at_s=10.0, device=1))
