"""Error-correcting-code substrate (paper §IX, "Error Correcting
Capability").

The paper argues LPDDR5X is datacenter-ready because it combines:

* **on-die ECC** — each DRAM die corrects single-bit cell errors
  internally;
* **inline ECC** — the controller stores codeword parity in the same
  device as the data (wide-interface DRAM cannot afford side-band ECC
  chips), spending a fraction of capacity;
* **link ECC** — detects/corrects errors on the wire during transfers;
* **ECS** (error check and scrub) — periodic scrubbing bounds the window
  in which a second error can join a first to form an uncorrectable pair.

This module implements a real SECDED Hamming(72,64) codec operating on
64-bit words (encode, inject, decode/correct/detect), the inline-ECC
capacity accounting, and an analytical scrub-interval reliability model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError

DATA_BITS = 64
#: Hamming SECDED over 64 data bits: 7 Hamming parity bits + 1 overall.
PARITY_BITS = 8
CODEWORD_BITS = DATA_BITS + PARITY_BITS


def _parity_positions() -> List[int]:
    """Power-of-two positions (1-indexed) in the 71-bit Hamming layout."""
    return [1 << i for i in range(7)]  # 1, 2, 4, ..., 64


def _layout() -> Tuple[List[int], List[int]]:
    """1-indexed positions of data bits and parity bits in the codeword."""
    parity = _parity_positions()
    data = [pos for pos in range(1, DATA_BITS + len(parity) + 1)
            if pos not in parity]
    return data, parity


_DATA_POS, _PARITY_POS = _layout()


def _word_to_bits(word: int) -> np.ndarray:
    if not 0 <= word < (1 << DATA_BITS):
        raise ConfigurationError(f"word {word:#x} is not a 64-bit value")
    return np.array([(word >> i) & 1 for i in range(DATA_BITS)],
                    dtype=np.uint8)


def _bits_to_word(bits: np.ndarray) -> int:
    return int(sum(int(b) << i for i, b in enumerate(bits)))


def encode(word: int) -> np.ndarray:
    """Encode a 64-bit word into a 72-bit SECDED codeword (bit array).

    Layout: bits 0..70 form a (71,64) Hamming code in the classic
    position-indexed arrangement; bit 71 is the overall parity that
    upgrades single-error correction to double-error detection.
    """
    data_bits = _word_to_bits(word)
    code = np.zeros(CODEWORD_BITS, dtype=np.uint8)
    for bit, pos in zip(data_bits, _DATA_POS):
        code[pos - 1] = bit
    for parity_pos in _PARITY_POS:
        acc = 0
        for pos in range(1, DATA_BITS + len(_PARITY_POS) + 1):
            if pos & parity_pos and pos != parity_pos:
                acc ^= int(code[pos - 1])
        code[parity_pos - 1] = acc
    code[CODEWORD_BITS - 1] = int(code[:CODEWORD_BITS - 1].sum()) & 1
    return code


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    OK = "no-error"
    CORRECTED = "single-bit-corrected"
    DETECTED = "double-bit-detected"


@dataclass(frozen=True)
class DecodeResult:
    """Decoded word plus what the decoder had to do."""

    word: int
    status: DecodeStatus
    flipped_position: int = -1   # 0-indexed position corrected, if any


def decode(code: np.ndarray) -> DecodeResult:
    """Decode a 72-bit codeword: correct 1-bit, detect 2-bit errors."""
    if code.shape != (CODEWORD_BITS,):
        raise ConfigurationError(
            f"codeword must be {CODEWORD_BITS} bits, got {code.shape}")
    code = code.copy()
    syndrome = 0
    for parity_pos in _PARITY_POS:
        acc = 0
        for pos in range(1, DATA_BITS + len(_PARITY_POS) + 1):
            if pos & parity_pos:
                acc ^= int(code[pos - 1])
        if acc:
            syndrome |= parity_pos
    overall = int(code.sum()) & 1

    status = DecodeStatus.OK
    flipped = -1
    if syndrome and overall:
        # Single-bit error at `syndrome` (could be a parity bit).
        flipped = syndrome - 1
        code[flipped] ^= 1
        status = DecodeStatus.CORRECTED
    elif syndrome and not overall:
        # Two errors: Hamming syndrome fires but overall parity matches.
        return DecodeResult(word=0, status=DecodeStatus.DETECTED)
    elif not syndrome and overall:
        # The overall parity bit itself flipped.
        flipped = CODEWORD_BITS - 1
        code[flipped] ^= 1
        status = DecodeStatus.CORRECTED

    data_bits = np.array([code[pos - 1] for pos in _DATA_POS],
                         dtype=np.uint8)
    return DecodeResult(word=_bits_to_word(data_bits), status=status,
                        flipped_position=flipped)


def inject_errors(code: np.ndarray, positions: List[int]) -> np.ndarray:
    """Flip the given 0-indexed bit positions of a codeword (a copy)."""
    flipped = code.copy()
    for pos in positions:
        if not 0 <= pos < CODEWORD_BITS:
            raise ConfigurationError(f"bit position {pos} out of range")
        flipped[pos] ^= 1
    return flipped


@dataclass(frozen=True)
class InlineEccConfig:
    """Inline-ECC capacity accounting for wide-interface DRAM.

    LPDDR5X stores parity in the same device as the data; the fraction of
    the module given to parity is ``PARITY_BITS / CODEWORD_BITS`` when
    every word is covered.
    """

    module_capacity_bytes: int
    covered_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.module_capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if not 0.0 <= self.covered_fraction <= 1.0:
            raise ConfigurationError("covered fraction outside [0, 1]")

    @property
    def parity_overhead_fraction(self) -> float:
        return self.covered_fraction * PARITY_BITS / CODEWORD_BITS

    @property
    def usable_capacity_bytes(self) -> int:
        return int(self.module_capacity_bytes
                   * (1.0 - self.parity_overhead_fraction))


@dataclass(frozen=True)
class ScrubPolicy:
    """ECS reliability model: how scrubbing bounds uncorrectable errors.

    Between scrubs, independent single-bit errors accumulate at
    ``bit_error_rate_per_bit_hour``; a codeword becomes uncorrectable when
    a second error lands before the first is scrubbed away.  The expected
    uncorrectable-codeword rate is approximately
    ``n_codewords * (lambda_cw * T)^2 / (2T)`` for scrub period ``T`` and
    per-codeword error rate ``lambda_cw`` (two Poisson arrivals in one
    period).
    """

    bit_error_rate_per_bit_hour: float
    scrub_interval_hours: float

    def __post_init__(self) -> None:
        if self.bit_error_rate_per_bit_hour < 0:
            raise ConfigurationError("error rate cannot be negative")
        if self.scrub_interval_hours <= 0:
            raise ConfigurationError("scrub interval must be positive")

    def codeword_error_rate_per_hour(self) -> float:
        return self.bit_error_rate_per_bit_hour * CODEWORD_BITS

    def uncorrectable_prob_per_codeword_per_interval(self) -> float:
        """P(>= 2 errors in one codeword within one scrub interval).

        Realistic rates make ``lam`` tiny; ``1 - exp(-lam)(1+lam)``
        cancels catastrophically in float64, so small rates use the series
        ``lam^2/2 - lam^3/3 + ...``.
        """
        lam = self.codeword_error_rate_per_hour() \
            * self.scrub_interval_hours
        if lam < 1e-4:
            return float(lam * lam / 2.0 - lam ** 3 / 3.0)
        return float(1.0 - np.exp(-lam) * (1.0 + lam))

    def uncorrectable_rate_per_hour(self, capacity_bytes: int) -> float:
        """Expected uncorrectable codewords per hour for a module."""
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        codewords = capacity_bytes * 8 / DATA_BITS
        per_interval = self.uncorrectable_prob_per_codeword_per_interval()
        return codewords * per_interval / self.scrub_interval_hours

    def scrub_bandwidth_bytes_per_s(self, capacity_bytes: int) -> float:
        """Memory bandwidth consumed by reading everything once per
        interval — the cost side of shorter scrub periods."""
        return capacity_bytes / (self.scrub_interval_hours * 3600.0)
