"""Address-interleaving schemes and the contiguity analysis behind (D4).

Paper §V-A (D4): host CPUs interleave physical addresses across channels,
DIMMs, and banks for memory-level parallelism, which shatters a contiguous
region into per-channel fragments — crippling a DIMM- or bank-local PIM/PNM
accelerator that can only reach its own slice.  A CXL module's controller,
by contrast, owns *all* packages behind one device and applies its own
local interleaving, so the accelerator sees the whole region at full module
bandwidth while the host still sees one contiguous NUMA range.

This module implements bit-sliced interleave mappings and functions that
quantify both effects: the fragment size visible to a fixed-channel
accelerator, and the aggregate bandwidth a region's access can draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import AddressError, ConfigurationError


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class InterleaveScheme:
    """Bit-sliced physical-address interleaving.

    Addresses are split as ``| upper | channel bits | granule offset |``:
    consecutive ``granule_bytes`` runs rotate across ``num_channels``.

    Attributes:
        num_channels: Interleave ways (host channels, or module-local
            LPDDR channels).
        granule_bytes: Bytes mapped to one channel before rotating
            (host systems use 64-256 B; module controllers use larger).
    """

    num_channels: int
    granule_bytes: int

    def __post_init__(self) -> None:
        if not _is_pow2(self.num_channels):
            raise ConfigurationError(
                f"num_channels={self.num_channels} must be a power of two")
        if not _is_pow2(self.granule_bytes):
            raise ConfigurationError(
                f"granule_bytes={self.granule_bytes} must be a power of two")

    def channel_of(self, addr: int) -> int:
        """Channel that owns physical address ``addr``."""
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")
        return (addr // self.granule_bytes) % self.num_channels

    def local_offset(self, addr: int) -> int:
        """Offset of ``addr`` within its channel's linear space."""
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")
        granule_idx = addr // self.granule_bytes
        return ((granule_idx // self.num_channels) * self.granule_bytes
                + addr % self.granule_bytes)

    def channel_slices(self, base: int, length: int
                       ) -> List[List[Tuple[int, int]]]:
        """Per-channel (offset, size) fragments of region [base, base+length).

        Fragments are granule-aligned pieces; the list index is the channel.
        """
        if length < 0:
            raise AddressError("negative region length")
        slices: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.num_channels)]
        addr = base
        end = base + length
        while addr < end:
            granule_end = (addr // self.granule_bytes + 1) * self.granule_bytes
            piece = min(end, granule_end) - addr
            slices[self.channel_of(addr)].append(
                (self.local_offset(addr), piece))
            addr += piece
        return slices

    def bytes_in_channel(self, base: int, length: int, channel: int) -> int:
        """Bytes of the region that land in one channel."""
        if not 0 <= channel < self.num_channels:
            raise AddressError(f"channel {channel} out of range")
        return sum(size for _, size in
                   self.channel_slices(base, length)[channel])

    def max_contiguous_fragment(self, base: int, length: int) -> int:
        """Largest contiguous run a single-channel accelerator can see.

        For a region much larger than one granule this is just the granule
        size — the quantitative core of disadvantage (D4).
        """
        best = 0
        for fragments in self.channel_slices(base, length):
            for _, size in fragments:
                best = max(best, size)
        return best


#: A typical host-side mapping: 8 channels, 256 B granule.
HOST_INTERLEAVE = InterleaveScheme(num_channels=8, granule_bytes=256)

#: The CXL-PNM controller's module-local mapping across its 64 LPDDR5X
#: channels (8 packages x 8 channels), large granule for streaming.
MODULE_LOCAL_INTERLEAVE = InterleaveScheme(num_channels=64,
                                           granule_bytes=4096)


def accelerator_visible_fraction(scheme: InterleaveScheme, base: int,
                                 length: int, channel: int) -> float:
    """Fraction of a region reachable by an accelerator pinned to a channel.

    Models a DIMM-PNM or bank-level PIM device under host interleaving:
    AxDIMM behind one of N host channels sees roughly ``1/N`` of any large
    region (D4).  A CXL-PNM accelerator sits *behind* the controller that
    performs the interleaving, so its visible fraction is 1.0 by
    construction (it issues through all module channels).
    """
    if length <= 0:
        raise AddressError("region must be non-empty")
    return scheme.bytes_in_channel(base, length, channel) / length


def streaming_bandwidth_fraction(scheme: InterleaveScheme, base: int,
                                 length: int) -> float:
    """Fraction of aggregate channel bandwidth a linear scan can draw.

    A region spanning all channels in balance streams at full aggregate
    bandwidth; a region smaller than one rotation is limited to the
    channels it touches.
    """
    if length <= 0:
        raise AddressError("region must be non-empty")
    per_channel = [scheme.bytes_in_channel(base, length, ch)
                   for ch in range(scheme.num_channels)]
    busiest = max(per_channel)
    if busiest == 0:
        return 0.0
    # Scan time is set by the busiest channel; fraction of ideal follows.
    ideal_time = length / scheme.num_channels
    return ideal_time / busiest
