"""Effective-bandwidth timing model for DRAM channels.

Peak (pin) bandwidth is never fully achieved: refresh, read/write turn-
around, row activate/precharge on row-buffer misses, and request-size
granularity all cost cycles.  The performance models need *effective*
bandwidth as a function of access pattern; this module provides a
channel-level model that is deliberately simple but captures the levers
the paper's workloads exercise (large sequential weight streams achieve
near-peak efficiency; small scattered KV accesses achieve less).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.module import MemoryModule

#: Fraction of time lost to refresh on modern DRAM (tREFI/tRFC ratio).
REFRESH_OVERHEAD = 0.03


@dataclass(frozen=True)
class AccessPattern:
    """Characterization of a memory access stream.

    Attributes:
        avg_burst_bytes: Mean contiguous run length of the stream.
        row_hit_rate: Fraction of column accesses hitting an open row.
        read_fraction: Reads / (reads + writes); turnaround costs peak
            near a 50/50 mix.
    """

    avg_burst_bytes: float
    row_hit_rate: float = 0.9
    read_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.avg_burst_bytes <= 0:
            raise ConfigurationError("burst size must be positive")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ConfigurationError("row_hit_rate outside [0, 1]")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction outside [0, 1]")


#: Streaming weight reads: long bursts, almost all row hits.  The bank
#: simulator measures ~0.97 for sequential streams over the module-local
#: interleave (2 KiB rows inside 4 KiB granules).
SEQUENTIAL_STREAM = AccessPattern(avg_burst_bytes=4096, row_hit_rate=0.97,
                                  read_fraction=1.0)

#: KV-cache gather/append traffic: shorter runs, more misses, mixed R/W.
KV_CACHE_PATTERN = AccessPattern(avg_burst_bytes=512, row_hit_rate=0.85,
                                 read_fraction=0.9)

#: Host CPU random access (cacheline-sized), the worst case for D3/D4
#: arbitration studies.
RANDOM_CACHELINE = AccessPattern(avg_burst_bytes=64, row_hit_rate=0.5,
                                 read_fraction=0.7)


@dataclass(frozen=True)
class ChannelTimingModel:
    """Derates a module's peak bandwidth for a given access pattern.

    The derating multiplies three independent efficiency terms:

    * refresh: fixed ``1 - REFRESH_OVERHEAD``;
    * row-buffer: misses stall the channel for an activate+precharge
      window amortized over the burst (``miss_penalty_bytes`` expresses
      the stall as equivalent transfer bytes);
    * turnaround: bus direction switches cost bubbles proportional to the
      write mix.
    """

    module: MemoryModule
    miss_penalty_bytes: float = 256.0
    turnaround_penalty: float = 0.08

    def efficiency(self, pattern: AccessPattern) -> float:
        """Achievable fraction of peak bandwidth in (0, 1]."""
        refresh_eff = 1.0 - REFRESH_OVERHEAD
        miss_rate = 1.0 - pattern.row_hit_rate
        row_eff = pattern.avg_burst_bytes / (
            pattern.avg_burst_bytes + miss_rate * self.miss_penalty_bytes)
        write_mix = 1.0 - pattern.read_fraction
        # Turnaround bubbles peak when the mix is even (2 * p * (1-p)).
        turnaround_eff = 1.0 - self.turnaround_penalty * (
            4.0 * pattern.read_fraction * write_mix)
        return refresh_eff * row_eff * turnaround_eff

    def effective_bandwidth(self, pattern: AccessPattern) -> float:
        """Achievable bandwidth in bytes/s for the pattern."""
        return self.module.peak_bandwidth * self.efficiency(pattern)

    def transfer_time(self, num_bytes: float, pattern: AccessPattern
                      ) -> float:
        """Seconds to move ``num_bytes`` under the pattern."""
        if num_bytes < 0:
            raise ConfigurationError("cannot transfer negative bytes")
        return num_bytes / self.effective_bandwidth(pattern)
