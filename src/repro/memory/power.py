"""DRAM module power model.

Module power splits into a background term (standby + refresh, proportional
to die count) and a dynamic term (access + I/O transfer energy per bit,
proportional to achieved bandwidth).  Table I's "power/module" row compares
modules at a common reference utilization; §VII's Table II states the
LPDDR5X module draws ~40 W in operation, which anchors the absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.memory.module import MemoryModule

#: Bandwidth utilization at which Table I's normalized power row compares
#: modules.  Chosen with the energy/bit constants so the LPDDR5X module
#: lands at ~40 W (Table II's "DRAM total power").
REFERENCE_UTILIZATION = 0.70


@dataclass(frozen=True)
class ModulePowerModel:
    """Power model bound to one :class:`~repro.memory.module.MemoryModule`."""

    module: "MemoryModule"

    @property
    def background_watts(self) -> float:
        """Standby + refresh power of all dies on the module."""
        tech = self.module.technology
        return tech.background_watts_per_die * self.module.total_dies

    def dynamic_watts(self, achieved_bandwidth: float) -> float:
        """Dynamic power at a sustained bandwidth (bytes/s)."""
        if achieved_bandwidth < 0:
            raise ConfigurationError("bandwidth cannot be negative")
        if achieved_bandwidth > self.module.peak_bandwidth * 1.0001:
            raise ConfigurationError(
                f"bandwidth {achieved_bandwidth:.3e} exceeds module peak "
                f"{self.module.peak_bandwidth:.3e}")
        tech = self.module.technology
        bits_per_s = achieved_bandwidth * 8.0
        return bits_per_s * tech.access_energy_pj_per_bit * 1e-12

    def power_watts(self, utilization: float) -> float:
        """Total module power at a bandwidth utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization {utilization} outside [0, 1]")
        return (self.background_watts
                + self.dynamic_watts(self.module.peak_bandwidth * utilization))

    def reference_power_watts(self) -> float:
        """Power at the Table I reference utilization."""
        return self.power_watts(REFERENCE_UTILIZATION)

    def energy_joules(self, bytes_moved: float, elapsed_s: float) -> float:
        """Energy to move ``bytes_moved`` over ``elapsed_s`` seconds.

        Background power accrues for the whole interval; dynamic energy is
        per-bit and independent of the rate.
        """
        if elapsed_s < 0:
            raise ConfigurationError("elapsed time cannot be negative")
        tech = self.module.technology
        return (self.background_watts * elapsed_s
                + tech.access_energy_joules(bytes_moved))
