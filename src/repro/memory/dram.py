"""DRAM technology parameters: DDR5, GDDR6, HBM3, LPDDR5X.

Each :class:`DramTechnology` captures the per-pin signaling rate, per-die
capacity, per-package composition, supply voltages, and stacking technology
that §IV and Table I of the paper use to derive what a full-height/
half-length (FHHL) CXL memory module can deliver per technology.

The per-package numbers here reproduce Table I's first four rows exactly:

============== ======= ======= ======= =========
quantity        DDR5    GDDR6   HBM3    LPDDR5X
============== ======= ======= ======= =========
Gb/s per pin    5.6     24      6.4     8.5
I/O pins/pkg    4       32      1024    128
GB/s per pkg    2.8     96      819.2   136
GB per pkg      16      2       16      64
============== ======= ======= ======= =========
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.units import GB, Gbps, gbps_to_bytes_per_s


class StackingTech(enum.Enum):
    """Die-stacking technology; drives relative packaging cost."""

    NONE = "single-die"
    TSV = "through-silicon-via"       # expensive (DDR5 3DS, HBM)
    WIRE_BOND = "wire-bonding"        # cheap (LPDDR)


@dataclass(frozen=True)
class DramTechnology:
    """One DRAM technology's package-level parameters.

    Attributes:
        name: Technology name as used in Table I.
        gbps_per_pin: Data rate per DQ pin.
        io_width_per_package: DQ pins exposed by one package.
        die_capacity_gbit: Capacity of one DRAM die.
        dies_per_package: Total dies in one package (stacks x dies/stack).
        stacking: Die-stacking technology used inside the package.
        core_voltage / io_voltage: Supply voltages (Table I).
        access_energy_pj_per_bit: Dynamic access+transfer energy.  The
            paper states LPDDR5X is "14% lower pJ/bit than GDDR6"; values
            here honour that ratio, with DDR5 and HBM3 set from public
            module-level estimates.
        background_watts_per_die: Standby/refresh power per die.
        table1_normalized_module_power: Table I's "power/module" row,
            normalized to the LPDDR5X module.  Carried as data because the
            paper derives it from proprietary datasheet IDD values that do
            not decompose into a simple per-bit + background model; the
            simulation energy accounting uses ``access_energy_pj_per_bit``
            and ``background_watts_per_die`` instead.
        package_cost_usd: Rough relative package cost used by the TCO
            sensitivity analysis (not a paper number).
    """

    name: str
    gbps_per_pin: float
    io_width_per_package: int
    die_capacity_gbit: int
    dies_per_package: int
    stacking: StackingTech
    core_voltage: float
    io_voltage: float
    access_energy_pj_per_bit: float
    background_watts_per_die: float
    table1_normalized_module_power: float
    package_cost_usd: float

    def __post_init__(self) -> None:
        if self.gbps_per_pin <= 0 or self.io_width_per_package <= 0:
            raise ConfigurationError(f"{self.name}: invalid signaling params")
        if self.die_capacity_gbit <= 0 or self.dies_per_package <= 0:
            raise ConfigurationError(f"{self.name}: invalid capacity params")

    @property
    def bandwidth_per_package(self) -> float:
        """Peak package bandwidth in bytes/s (pins x rate / 8)."""
        return gbps_to_bytes_per_s(
            self.gbps_per_pin * self.io_width_per_package)

    @property
    def capacity_per_package(self) -> int:
        """Package capacity in bytes (dies x die capacity)."""
        return self.die_capacity_gbit * Gbps // 8 * self.dies_per_package

    def access_energy_joules(self, num_bytes: float) -> float:
        """Dynamic energy to move ``num_bytes`` through the interface."""
        return num_bytes * 8.0 * self.access_energy_pj_per_bit * 1e-12


#: DDR5 x4 3DS package: eight TSV-stacked 16 Gb dies (server RDIMM part).
DDR5 = DramTechnology(
    name="DDR5", gbps_per_pin=5.6, io_width_per_package=4,
    die_capacity_gbit=16, dies_per_package=8, stacking=StackingTech.TSV,
    core_voltage=1.1, io_voltage=1.1,
    access_energy_pj_per_bit=10.0, background_watts_per_die=0.025,
    table1_normalized_module_power=0.35,
    package_cost_usd=95.0,
)

#: GDDR6 x32 package: a single 16 Gb die (no multi-rank stacking possible
#: under GDDR's signal-integrity constraints, §IV).
GDDR6 = DramTechnology(
    name="GDDR6", gbps_per_pin=24.0, io_width_per_package=32,
    die_capacity_gbit=16, dies_per_package=1, stacking=StackingTech.NONE,
    core_voltage=1.35, io_voltage=1.35,
    access_energy_pj_per_bit=4.65, background_watts_per_die=0.45,
    table1_normalized_module_power=0.96,
    package_cost_usd=22.0,
)

#: HBM3 MPGA package: eight TSV-stacked 16 Gb dies, 1024-bit interface.
HBM3 = DramTechnology(
    name="HBM3", gbps_per_pin=6.4, io_width_per_package=1024,
    die_capacity_gbit=16, dies_per_package=8, stacking=StackingTech.TSV,
    core_voltage=1.1, io_voltage=0.4,
    access_energy_pj_per_bit=6.0, background_watts_per_die=0.40,
    table1_normalized_module_power=3.00,
    package_cost_usd=260.0,
)

#: LPDDR5X x128 package: eight 16-bit channels, each two wire-bonded
#: 2-die stacks of 16 Gb dies => 32 dies, 64 GB, 136 GB/s (Fig. 5).
LPDDR5X = DramTechnology(
    name="LPDDR5X", gbps_per_pin=8.5, io_width_per_package=128,
    die_capacity_gbit=16, dies_per_package=32,
    stacking=StackingTech.WIRE_BOND,
    core_voltage=1.05, io_voltage=0.5,
    access_energy_pj_per_bit=4.0, background_watts_per_die=0.040,
    table1_normalized_module_power=1.00,
    package_cost_usd=165.0,
)

TECHNOLOGIES: Dict[str, DramTechnology] = {
    t.name: t for t in (DDR5, GDDR6, HBM3, LPDDR5X)
}

#: Table I column order.
TABLE1_ORDER: Tuple[str, ...] = ("DDR5", "GDDR6", "HBM3", "LPDDR5X")


def get_technology(name: str) -> DramTechnology:
    """Look up a DRAM technology by Table I name."""
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown DRAM technology {name!r}; known: "
            f"{', '.join(TABLE1_ORDER)}")
