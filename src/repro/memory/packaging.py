"""Form-factor and packaging constraints for CXL memory modules.

§IV of the paper walks through why each DRAM technology supports only so
many packages on a full-height/half-length (FHHL) CXL card: board area for
DDR5, PCB trace count between DRAM and the controller for GDDR6/LPDDR5X,
and silicon-interposer (SiP) limits for HBM3.  This module encodes those
constraints and validates candidate module compositions against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import FormFactorError
from repro.memory.dram import DramTechnology, StackingTech

#: CXL add-in-card power ceiling the paper cites (Watts).
MODULE_POWER_BUDGET_WATTS = 150.0


@dataclass(frozen=True)
class FormFactor:
    """A CXL add-in-card form factor with its packaging budgets.

    Attributes:
        name: e.g. ``"FHHL"``.
        board_package_sites: Max DRAM package footprints on the PCB.
        controller_trace_budget: Max DQ traces routable between the DRAM
            packages and the CXL controller package.
        sip_package_limit: Max MPGA (HBM-class) packages on one silicon
            interposer, for technologies that cannot sit on the PCB.
        power_budget_watts: Card-level power ceiling.
    """

    name: str
    board_package_sites: int
    controller_trace_budget: int
    sip_package_limit: int
    power_budget_watts: float = MODULE_POWER_BUDGET_WATTS


#: Full-height/half-length: the paper's module form factor.  The budgets
#: are chosen so each technology's package limit matches §IV's analysis:
#: DDR5 32 (board area), GDDR6 16 and LPDDR5X 8 (trace count: 16*32 = 512,
#: 8*128 = 1024 traces), HBM3 5 (H100-class SiP).
FHHL = FormFactor(
    name="FHHL",
    board_package_sites=32,
    controller_trace_budget=1024,
    sip_package_limit=5,
)

#: Half-height/half-length, for the scalability discussion: half the area
#: and traces of FHHL.
HHHL = FormFactor(
    name="HHHL",
    board_package_sites=16,
    controller_trace_budget=512,
    sip_package_limit=2,
    power_budget_watts=75.0,
)

#: GDDR6's trace budget is tighter than LPDDR5X's because its signaling
#: rate (24 Gb/s vs 8.5 Gb/s) demands wider spacing and more ground
#: shielding per DQ trace; §IV caps GDDR6 at 16 x32 packages (512 DQ) on
#: the same card that routes 1024 LPDDR5X DQ traces.  We model this as a
#: per-technology trace-cost multiplier.
TRACE_COST_MULTIPLIER: Dict[str, float] = {
    "DDR5": 1.0,
    "GDDR6": 2.0,
    "HBM3": 1.0,     # unused: HBM routes through the interposer
    "LPDDR5X": 1.0,
}


def _is_mpga(tech: DramTechnology) -> bool:
    """HBM-class parts (1024-bit interfaces) come in MPGA packages that
    must sit on a silicon interposer rather than the PCB (§IV)."""
    return tech.io_width_per_package >= 1024


def max_packages(tech: DramTechnology, form_factor: FormFactor = FHHL) -> int:
    """Maximum DRAM packages of ``tech`` on a module of ``form_factor``.

    Applies the binding constraint for the technology: SiP limit for
    MPGA-packaged DRAM (HBM), otherwise the smaller of board sites and
    trace budget.
    """
    if _is_mpga(tech):
        return form_factor.sip_package_limit
    trace_cost = TRACE_COST_MULTIPLIER.get(tech.name, 1.0)
    by_traces = int(form_factor.controller_trace_budget
                    // (tech.io_width_per_package * trace_cost))
    return max(0, min(form_factor.board_package_sites, by_traces))


def validate_composition(tech: DramTechnology, num_packages: int,
                         form_factor: FormFactor = FHHL) -> None:
    """Raise :class:`FormFactorError` if the composition is infeasible."""
    if num_packages <= 0:
        raise FormFactorError(
            f"{tech.name}: module needs at least one package")
    limit = max_packages(tech, form_factor)
    if num_packages > limit:
        raise FormFactorError(
            f"{tech.name}: {num_packages} packages exceed the "
            f"{form_factor.name} limit of {limit}")


def packaging_cost_factor(tech: DramTechnology) -> float:
    """Relative cost factor of the die-stacking technology.

    Wire bonding (LPDDR) is the cheap option the paper highlights; TSV
    stacking (DDR5 3DS, HBM) carries a substantial premium.
    """
    return {
        StackingTech.NONE: 1.0,
        StackingTech.WIRE_BOND: 1.15,
        StackingTech.TSV: 2.5,
    }[tech.stacking]
