"""Trace-driven DRAM bank simulator.

The channel-timing model (:mod:`repro.memory.timing`) derates bandwidth
from an *assumed* access pattern; this module computes those pattern
parameters from first principles: feed it an address trace, and it plays
the trace against per-bank row buffers (open-page policy) to measure the
actual row-hit rate and a cycle-accounted efficiency.

It is how we validate that the streaming patterns the accelerator
generates (sequential weight reads, strided KV gathers, host cacheline
traffic) really produce the hit rates the analytical model assumes —
closing the loop on the (D4) interleaving claims: module-local
interleaving keeps streams page-friendly in every bank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.interleave import InterleaveScheme


@dataclass(frozen=True)
class BankGeometry:
    """Per-channel bank organization.

    Attributes:
        num_banks: Banks per channel (LPDDR5X: 16).
        row_bytes: Row (page) size per bank (LPDDR5X: 2 KiB typical).
        t_rc_cycles: Row cycle cost of a conflict (activate+precharge).
        t_cl_cycles: Column access cost of a hit.
    """

    num_banks: int = 16
    row_bytes: int = 2048
    t_rc_cycles: int = 40
    t_cl_cycles: int = 4

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.row_bytes <= 0:
            raise ConfigurationError("invalid bank geometry")
        if self.t_rc_cycles <= 0 or self.t_cl_cycles <= 0:
            raise ConfigurationError("timing cycles must be positive")

    def decode(self, channel_offset: int) -> Tuple[int, int]:
        """(bank, row) of an offset within one channel's linear space.

        Banks interleave at row granularity so sequential streams rotate
        across banks (bank-level parallelism for free).
        """
        row_global = channel_offset // self.row_bytes
        return row_global % self.num_banks, row_global // self.num_banks


@dataclass
class BankState:
    """Open row per bank (open-page policy)."""

    open_row: int = -1
    hits: int = 0
    misses: int = 0

    def access(self, row: int) -> bool:
        """Access a row; returns True on a row-buffer hit."""
        if row == self.open_row:
            self.hits += 1
            return True
        self.open_row = row
        self.misses += 1
        return False


@dataclass
class TraceResult:
    """Measured behaviour of one trace on one channel set."""

    accesses: int
    hits: int
    misses: int
    cycles: int
    per_channel_accesses: List[int]

    @property
    def row_hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def cycles_per_access(self) -> float:
        return self.cycles / self.accesses if self.accesses else 0.0

    def channel_balance(self) -> float:
        """1.0 = perfectly balanced load across channels."""
        counts = np.array(self.per_channel_accesses, dtype=float)
        if counts.sum() == 0:
            return 0.0
        return float(counts.mean() / counts.max())


class BankSimulator:
    """Plays address traces against banks behind an interleave scheme."""

    def __init__(self, scheme: InterleaveScheme,
                 geometry: BankGeometry = BankGeometry()):
        self.scheme = scheme
        self.geometry = geometry

    def run(self, addresses: Iterable[int]) -> TraceResult:
        """Simulate a trace of byte addresses (each one access)."""
        banks: Dict[Tuple[int, int], BankState] = {}
        hits = misses = cycles = accesses = 0
        per_channel = [0] * self.scheme.num_channels
        for addr in addresses:
            channel = self.scheme.channel_of(addr)
            offset = self.scheme.local_offset(addr)
            bank_idx, row = self.geometry.decode(offset)
            state = banks.setdefault((channel, bank_idx), BankState())
            if state.access(row):
                hits += 1
                cycles += self.geometry.t_cl_cycles
            else:
                misses += 1
                cycles += self.geometry.t_rc_cycles \
                    + self.geometry.t_cl_cycles
            accesses += 1
            per_channel[channel] += 1
        return TraceResult(accesses=accesses, hits=hits, misses=misses,
                           cycles=cycles, per_channel_accesses=per_channel)


def sequential_trace(base: int, length: int, step: int = 64) -> List[int]:
    """A streaming read trace (weight fetch)."""
    if length <= 0 or step <= 0:
        raise ConfigurationError("trace needs positive length and step")
    return list(range(base, base + length, step))


def strided_trace(base: int, num_accesses: int, stride: int) -> List[int]:
    """A strided trace (e.g. column walks, KV-row gathers)."""
    if num_accesses <= 0 or stride <= 0:
        raise ConfigurationError("trace needs positive count and stride")
    return [base + i * stride for i in range(num_accesses)]


def random_trace(span: int, num_accesses: int, seed: int = 0,
                 align: int = 64) -> List[int]:
    """Uniform random cacheline accesses (host-CPU-style traffic)."""
    if span <= align or num_accesses <= 0:
        raise ConfigurationError("trace needs positive span and count")
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, span // align, size=num_accesses)
    return [int(line) * align for line in lines]
