"""CXL memory-module composition (paper §IV, Table I).

A :class:`MemoryModule` is N DRAM packages of one technology plus a CXL
controller on an FHHL card.  :func:`build_module` applies the form-factor
constraints to produce the maximal module per technology, reproducing
Table I's module-level rows; :func:`lpddr5x_module` is the paper's 512 GB /
1.1 TB/s proposal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.memory.dram import (
    DramTechnology,
    LPDDR5X,
    TABLE1_ORDER,
    get_technology,
)
from repro.memory.packaging import (
    FHHL,
    FormFactor,
    max_packages,
    packaging_cost_factor,
    validate_composition,
)
from repro.memory.power import ModulePowerModel
from repro.units import GB, TB


@dataclass(frozen=True)
class MemoryModule:
    """A populated CXL memory module.

    Attributes:
        technology: The DRAM technology used.
        num_packages: DRAM packages on the card.
        form_factor: The card form factor the module was validated against.
    """

    technology: DramTechnology
    num_packages: int
    form_factor: FormFactor = FHHL

    def __post_init__(self) -> None:
        validate_composition(self.technology, self.num_packages,
                             self.form_factor)

    @property
    def capacity_bytes(self) -> int:
        """Total module capacity in bytes."""
        return self.technology.capacity_per_package * self.num_packages

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate peak bandwidth in bytes/s across all packages."""
        return self.technology.bandwidth_per_package * self.num_packages

    @property
    def io_width(self) -> int:
        """Total DQ pins between DRAM packages and the CXL controller."""
        return self.technology.io_width_per_package * self.num_packages

    @property
    def total_dies(self) -> int:
        return self.technology.dies_per_package * self.num_packages

    @property
    def power_model(self) -> ModulePowerModel:
        return ModulePowerModel(self)

    @property
    def dram_cost_usd(self) -> float:
        """Rough DRAM bill-of-materials cost, for TCO sensitivity only."""
        return (self.technology.package_cost_usd * self.num_packages
                * packaging_cost_factor(self.technology))

    def describe(self) -> Dict[str, float]:
        """Table I row for this module (plus derived power at reference)."""
        return {
            "bandwidth_per_pin_gbps": self.technology.gbps_per_pin,
            "io_width_per_package": self.technology.io_width_per_package,
            "bandwidth_per_package_gb_s":
                self.technology.bandwidth_per_package / GB,
            "capacity_per_package_gb":
                self.technology.capacity_per_package / GB,
            "packages_per_module": self.num_packages,
            "io_width_per_module": self.io_width,
            "bandwidth_per_module_gb_s": self.peak_bandwidth / GB,
            "capacity_per_module_gb": self.capacity_bytes / GB,
            "core_voltage": self.technology.core_voltage,
            "io_voltage": self.technology.io_voltage,
        }


def build_module(tech_name: str,
                 form_factor: FormFactor = FHHL) -> MemoryModule:
    """Build the maximal module of ``tech_name`` under the form factor."""
    tech = get_technology(tech_name)
    return MemoryModule(technology=tech,
                        num_packages=max_packages(tech, form_factor),
                        form_factor=form_factor)


def lpddr5x_module() -> MemoryModule:
    """The paper's proposed module: 8 LPDDR5X x128 packages on FHHL.

    512 GB capacity, 1.1 TB/s peak bandwidth (Table I rightmost column).
    """
    return MemoryModule(technology=LPDDR5X, num_packages=8)


def table1_rows(form_factor: FormFactor = FHHL) -> List[Dict[str, float]]:
    """All four Table I columns, each with normalized module power.

    Capacity/bandwidth/I/O rows are derived from the packaging math; the
    normalized power row is carried from the technology data (see
    :class:`~repro.memory.dram.DramTechnology`).
    """
    modules = [build_module(name, form_factor) for name in TABLE1_ORDER]
    rows = []
    for module in modules:
        row = dict(module.describe())
        row["technology"] = module.technology.name
        row["power_per_module_normalized"] = (
            module.technology.table1_normalized_module_power)
        rows.append(row)
    return rows
