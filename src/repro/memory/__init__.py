"""DRAM technologies, CXL-module composition, timing, and interleaving."""

from repro.memory.banksim import (
    BankGeometry,
    BankSimulator,
    random_trace,
    sequential_trace,
    strided_trace,
)
from repro.memory.dram import (
    DDR5,
    GDDR6,
    HBM3,
    LPDDR5X,
    TABLE1_ORDER,
    TECHNOLOGIES,
    DramTechnology,
    StackingTech,
    get_technology,
)
from repro.memory.ecc import (
    DecodeStatus,
    InlineEccConfig,
    ScrubPolicy,
    decode,
    encode,
    inject_errors,
)
from repro.memory.reliable import ReliableRegion, ScrubReport
from repro.memory.interleave import (
    HOST_INTERLEAVE,
    MODULE_LOCAL_INTERLEAVE,
    InterleaveScheme,
    accelerator_visible_fraction,
    streaming_bandwidth_fraction,
)
from repro.memory.module import (
    MemoryModule,
    build_module,
    lpddr5x_module,
    table1_rows,
)
from repro.memory.packaging import (
    FHHL,
    HHHL,
    MODULE_POWER_BUDGET_WATTS,
    FormFactor,
    max_packages,
    packaging_cost_factor,
    validate_composition,
)
from repro.memory.power import REFERENCE_UTILIZATION, ModulePowerModel
from repro.memory.timing import (
    KV_CACHE_PATTERN,
    RANDOM_CACHELINE,
    SEQUENTIAL_STREAM,
    AccessPattern,
    ChannelTimingModel,
)

__all__ = [
    "ReliableRegion",
    "ScrubReport",
    "BankGeometry",
    "BankSimulator",
    "DecodeStatus",
    "InlineEccConfig",
    "ScrubPolicy",
    "decode",
    "encode",
    "inject_errors",
    "random_trace",
    "sequential_trace",
    "strided_trace",
    "AccessPattern",
    "ChannelTimingModel",
    "DDR5",
    "DramTechnology",
    "FHHL",
    "FormFactor",
    "GDDR6",
    "HBM3",
    "HHHL",
    "HOST_INTERLEAVE",
    "InterleaveScheme",
    "KV_CACHE_PATTERN",
    "LPDDR5X",
    "MODULE_LOCAL_INTERLEAVE",
    "MODULE_POWER_BUDGET_WATTS",
    "MemoryModule",
    "ModulePowerModel",
    "RANDOM_CACHELINE",
    "REFERENCE_UTILIZATION",
    "SEQUENTIAL_STREAM",
    "StackingTech",
    "TABLE1_ORDER",
    "TECHNOLOGIES",
    "accelerator_visible_fraction",
    "build_module",
    "get_technology",
    "lpddr5x_module",
    "max_packages",
    "packaging_cost_factor",
    "streaming_bandwidth_fraction",
    "table1_rows",
    "validate_composition",
]
