"""ECC-protected device memory: the §IX RAS story, functionally.

Wraps a :class:`~repro.accelerator.memory.DeviceMemory` region with the
SECDED(72,64) codec of :mod:`repro.memory.ecc`: writes encode each 64-bit
word into a data+parity pair (parity stored inline, in the same device,
as LPDDR5X's inline ECC does), reads decode and transparently correct
single-bit upsets.  A fault injector flips random stored bits; a scrub
pass walks the region rewriting corrected codewords — together they
demonstrate the correct-single/detect-double/scrub-before-it-doubles
behaviour the paper argues makes LPDDR5X datacenter-ready.

The codec runs per 8-byte word in Python, so protected regions are for
functional demonstration (checkpoint headers, control state), not for
bulk model weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.accelerator.memory import DeviceMemory, Region
from repro.errors import ConfigurationError, UncorrectableMemoryError
from repro.memory.ecc import (
    CODEWORD_BITS,
    DecodeStatus,
    decode,
    encode,
)

#: Stored bytes per protected 8-byte word (72 bits rounded to 9 bytes).
STORED_BYTES_PER_WORD = 9
DATA_BYTES_PER_WORD = 8


@dataclass
class ScrubReport:
    """What one scrub pass found and fixed."""

    words_scanned: int = 0
    corrected: int = 0
    uncorrectable: int = 0


class ReliableRegion:
    """A SECDED-protected span of device memory.

    Attributes:
        memory: The backing device memory.
        data_words: Protected capacity in 64-bit words.
    """

    def __init__(self, memory: DeviceMemory, name: str, data_words: int):
        if data_words <= 0:
            raise ConfigurationError("need at least one protected word")
        self.memory = memory
        self.data_words = data_words
        self._region: Region = memory.alloc(
            name, data_words * STORED_BYTES_PER_WORD)
        self.corrected_total = 0

    @property
    def overhead_fraction(self) -> float:
        """Stored-parity overhead (1/8 at 9-byte codewords)."""
        return (STORED_BYTES_PER_WORD - DATA_BYTES_PER_WORD) \
            / STORED_BYTES_PER_WORD

    def _word_addr(self, index: int) -> int:
        if not 0 <= index < self.data_words:
            raise ConfigurationError(
                f"word index {index} outside region of {self.data_words}")
        return self._region.addr + index * STORED_BYTES_PER_WORD

    def _store_code(self, index: int, code: np.ndarray) -> None:
        packed = np.packbits(code, bitorder="little")
        self.memory._buffer[self._word_addr(index):
                            self._word_addr(index) + STORED_BYTES_PER_WORD] \
            = packed

    def _load_code(self, index: int) -> np.ndarray:
        raw = self.memory._buffer[
            self._word_addr(index):
            self._word_addr(index) + STORED_BYTES_PER_WORD]
        return np.unpackbits(raw, bitorder="little")[:CODEWORD_BITS]

    def write_word(self, index: int, word: int) -> None:
        """Encode and store one 64-bit word."""
        self._store_code(index, encode(word))

    def read_word(self, index: int) -> int:
        """Load, decode, and (transparently) correct one word.

        Raises :class:`UncorrectableMemoryError` (a subclass of
        :class:`~repro.errors.ExecutionError`) on an uncorrectable
        (2-bit) error — the machine-check the host would see.
        """
        result = decode(self._load_code(index))
        if result.status is DecodeStatus.DETECTED:
            raise UncorrectableMemoryError(
                f"uncorrectable memory error at protected word {index}")
        if result.status is DecodeStatus.CORRECTED:
            self.corrected_total += 1
        return result.word

    def write_array(self, values: np.ndarray, base_index: int = 0) -> None:
        """Store a uint64 array starting at ``base_index``."""
        flat = np.ascontiguousarray(values, dtype=np.uint64).reshape(-1)
        for i, value in enumerate(flat):
            self.write_word(base_index + i, int(value))

    def read_array(self, count: int, base_index: int = 0) -> np.ndarray:
        """Load ``count`` uint64 words starting at ``base_index``."""
        return np.array([self.read_word(base_index + i)
                         for i in range(count)], dtype=np.uint64)

    # -- fault injection and scrubbing ---------------------------------------

    def inject_faults(self, num_flips: int, seed: int = 0,
                      rng: Optional[np.random.Generator] = None
                      ) -> List[int]:
        """Flip ``num_flips`` random stored bits; returns affected words."""
        if num_flips < 0:
            raise ConfigurationError("cannot inject negative flips")
        rng = rng or np.random.default_rng(seed)
        affected = []
        for _ in range(num_flips):
            index = int(rng.integers(0, self.data_words))
            bit = int(rng.integers(0, CODEWORD_BITS))
            code = self._load_code(index)
            code[bit] ^= 1
            self._store_code(index, code)
            affected.append(index)
        return affected

    def inject_double_bit(self, index: int = 0) -> None:
        """Flip two data bits of one codeword — an uncorrectable error.

        Bit positions 2 and 4 are data bits in the Hamming layout (the
        0-indexed parity positions are 0, 1, 3, 7, 15, 31, 63, and 71),
        so the next read of ``index`` raises
        :class:`UncorrectableMemoryError`.
        """
        code = self._load_code(index)
        code[2] ^= 1
        code[4] ^= 1
        self._store_code(index, code)

    def scrub(self) -> ScrubReport:
        """ECS pass: read every word, rewrite corrected codewords.

        Uncorrectable words are counted, not raised — scrubbing logs and
        continues, like hardware ECS.
        """
        report = ScrubReport()
        for index in range(self.data_words):
            result = decode(self._load_code(index))
            report.words_scanned += 1
            if result.status is DecodeStatus.CORRECTED:
                self._store_code(index, encode(result.word))
                report.corrected += 1
                self.corrected_total += 1
            elif result.status is DecodeStatus.DETECTED:
                report.uncorrectable += 1
        return report
