"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments`` — list the reproduction harnesses.
* ``run <id> [...]`` — run experiments and print their tables
  (``--export DIR`` also writes JSON/CSV).
* ``models`` — the LLM zoo with capacity/bandwidth footprints.
* ``platform`` — the CXL-PNM platform summary (Tables I/II headline).
* ``estimate <model> [--in N] [--out N] [--dtype fp32|int8]`` —
  single-device latency/energy for a zoo model on CXL-PNM and an A100.
* ``serve <model> [--device pnm|gpu] [--devices N] [--dtype fp32|int8]
  [--arrival steady|diurnal|flash-crowd] [--trace-file F]
  [--save-trace F] [--tenants N] [--class NAME:W[:PRIO[:TTFT[:TBT]]]]
  [--slo] [--compare-fcfs]`` — open-loop serving simulation on the
  event-driven continuous-batching engine (KV admission control,
  TTFT/TBT percentiles).  ``--arrival`` picks the traffic shape,
  ``--trace-file`` replays a JSONL trace instead of generating one,
  ``--save-trace`` records the generated workload for bit-identical
  replay, ``--tenants``/``--class`` configure Zipf-skewed tenants and
  priority classes (weighted fair share + preemption), ``--slo`` turns
  on SLO-aware admission so the per-class goodput report reflects shed
  load, and ``--compare-fcfs`` adds the FCFS-exclusive baseline.
  ``--devices`` replicates the model for appliance DP and ``--dtype
  int8`` prices decode steps on the quantized weight path (halved
  weight-stream bytes).  See docs/SERVING.md for the operator's guide.
* ``chaos [--crc-rate R] [--fail AT:DEV] ...`` — fault-injection run
  (``repro.faults``): generation, CXL readback, and multi-device
  serving under a seeded fault schedule, reporting corrected /
  uncorrected / retried / failed-over counts.  With no fault flags it
  runs the default §IX schedule.
* ``isa`` — the accelerator's generated ISA reference.
* ``lint [--root DIR] [--select purity,units,det,con] [--baseline F |
  --no-baseline] [--json] [--errors-only]`` — run the source-tree
  static-analysis suite (:mod:`repro.analysis.suite`): simulation
  purity (PUR3xx), unit discipline (UNIT4xx), determinism (DET5xx),
  and the cross-model contract checker (CON6xx), honoring the
  checked-in suppression baseline.  Exit codes match
  ``lint-program``: 0 clean, 2 diagnostics (or stale baseline
  entries), 1 tool failure.
* ``lint-program <model>|tiny [--batch-tokens N] [--ctx-prev N]
  [--batched B] [--json]`` — compile a timing program for the given
  geometry and run the :mod:`repro.analysis` static verifier over it.
  Exit code 0 when the report is clean, 2 when it has diagnostics
  (``--errors-only`` counts only errors), 1 when the tool itself fails.
* ``roofline <model>`` — roofline placement of a zoo model's stages on
  CXL-PNM and the A100.
* ``generate [--layers N ...] [--dtype fp32|int8]`` — run a miniature
  model functionally through the full simulated stack and print the
  tokens (``--dtype int8`` runs the per-channel-quantized weight path).
* ``trace summarize <file>`` — top spans of an exported trace by
  cumulative simulated time.

``run``, ``serve``, and ``generate`` accept ``--trace-out FILE`` and
``--metrics-out FILE``: they install a process-wide tracer/registry
(:func:`repro.obs.observe`) for the command, then export a Chrome-trace
JSON (load it in ``chrome://tracing`` or https://ui.perfetto.dev) and a
flat metrics dump.  Observability never changes the numbers printed.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Iterator, List, Optional

from repro.core import CxlPnmPlatform
from repro.errors import ConfigurationError, ReproError
from repro.gpu import A100_40G
from repro.llm import MODEL_ZOO, get_model, random_weights, tiny_config
from repro.perf.analytical import GpuPerfModel, InferenceTimer
from repro.units import GB, GiB, GIGA, TB, s_to_us


@contextlib.contextmanager
def _observability(args) -> Iterator[None]:
    """Install an ambient tracer/registry when export flags ask for it."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        yield
        return
    for path in (trace_out, metrics_out):
        if not path:
            continue
        # Fail before the (possibly long) run, not after it.
        parent = os.path.dirname(path) or "."
        if not os.path.isdir(parent):
            raise ConfigurationError(
                f"output directory does not exist: {parent}")
    from repro.obs import observe, write_chrome_trace, write_metrics_json
    with observe() as (tracer, metrics):
        yield
    if trace_out:
        write_chrome_trace(tracer, trace_out)
        print(f"wrote {len(tracer.spans)} spans "
              f"({', '.join(tracer.categories())}) to {trace_out}")
    if metrics_out:
        write_metrics_json(metrics, metrics_out)
        print(f"wrote metrics to {metrics_out}")


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="export a Chrome-trace JSON of the run")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="export a JSON metrics dump of the run")


def _cmd_experiments(_args) -> int:
    from repro.experiments.registry import EXPERIMENTS
    for key in EXPERIMENTS:
        print(key)
    return 0


def _cmd_run(args) -> int:
    from repro.experiments.registry import EXPERIMENTS
    from repro.experiments.sweep import run_sweep
    ids = args.ids or list(EXPERIMENTS)
    results = run_sweep(ids, jobs=args.jobs or None)
    for result in results:
        print(result.render())
        print()
    if args.export:
        from repro.experiments.export import export_all
        written = export_all(results, args.export)
        print(f"exported {len(written)} files to {args.export}")
    return 0


def _cmd_models(_args) -> int:
    print(f"{'model':<22} {'params':>9} {'FP16 GiB':>9} "
          f"{'bw@200ms TB/s':>14}")
    for name, config in sorted(MODEL_ZOO.items(),
                               key=lambda kv: kv[1].num_params):
        from repro.experiments.fig02_capacity_bandwidth import (
            required_bandwidth,
        )
        ctx = min(2048, config.max_seq_len)
        print(f"{name:<22} {config.num_params / GIGA:8.1f}B "
              f"{config.param_bytes / GiB:9.1f} "
              f"{required_bandwidth(config, ctx) / TB:14.3f}")
    return 0


def _cmd_platform(_args) -> int:
    report = CxlPnmPlatform().report()
    for key, value in report.as_dict().items():
        print(f"{key:<28} {value:.3f}")
    return 0


def _cmd_estimate(args) -> int:
    config = get_model(args.model)
    if args.dtype == "int8":
        config = config.with_dtype(1)
    platform = CxlPnmPlatform()
    rows = []
    if platform.fits(config):
        rows.append(platform.estimate(config, args.input_tokens,
                                      args.output_tokens))
    else:
        print(f"note: {config.name} exceeds one 512 GB module; "
              "CXL-PNM row omitted")
    rows.append(InferenceTimer(config, GpuPerfModel(A100_40G)).run(
        args.input_tokens, args.output_tokens))
    print(f"{config.name}, {args.input_tokens} in / "
          f"{args.output_tokens} out:")
    for result in rows:
        print(f"  {result.device_name:>10}: {result.latency_s:8.2f} s  "
              f"{result.tokens_per_s:7.2f} tok/s  "
              f"{result.mean_power_w:6.1f} W  "
              f"{result.tokens_per_joule:.4f} tok/J")
    return 0


def _parse_tenant_class(spec: str):
    """``NAME:WEIGHT[:PRIORITY[:TTFT[:TBT]]]`` -> TenantClass.

    Empty trailing fields mean "unset" (e.g. ``premium:4:1::0.05``
    sets a TBT target but no TTFT target).
    """
    from repro.appliance import TenantClass
    parts = spec.split(":")
    if not parts[0] or len(parts) > 5:
        raise ConfigurationError(
            f"--class wants NAME:WEIGHT[:PRIORITY[:TTFT[:TBT]]], "
            f"got {spec!r}")
    def _opt(i, cast):
        return cast(parts[i]) if len(parts) > i and parts[i] else None
    weight = _opt(1, float)
    priority = _opt(2, int)
    return TenantClass(
        name=parts[0],
        weight=1.0 if weight is None else weight,
        priority=0 if priority is None else priority,
        ttft_target_s=_opt(3, float),
        tbt_target_s=_opt(4, float))


def _cmd_serve(args) -> int:
    from repro.accelerator import CXLPNMDevice
    from repro.appliance import (
        ContinuousBatchScheduler,
        RequestScheduler,
        timer_service,
    )
    from repro.llm import (
        DEFAULT_TENANT_CLASS,
        InferenceRequest,
        arrivals_for_shape,
        read_trace,
        write_trace,
        zipf_tenants,
    )
    from repro.perf.analytical import BatchStepTimer, PnmPerfModel
    config = get_model(args.model)
    if args.device == "pnm":
        device = CXLPNMDevice()
        perf = PnmPerfModel(device)
        memory = device.memory_capacity
    else:
        perf = GpuPerfModel(A100_40G)
        memory = A100_40G.memory_bytes
    if args.memory_gb is not None:
        memory = int(args.memory_gb * GB)
    classes = [_parse_tenant_class(spec) for spec in args.tenant_classes]
    class_names = [tc.name for tc in classes] or [DEFAULT_TENANT_CLASS]
    service = timer_service(config, perf)
    if args.trace_file:
        requests, arrivals = read_trace(args.trace_file)
        source = f"trace {args.trace_file}"
        rate = len(requests) / arrivals[-1] if arrivals and arrivals[-1] \
            else 0.0
    else:
        tenants = zipf_tenants(args.requests, max(1, args.tenants),
                               skew=args.zipf, seed=args.seed) \
            if args.tenants > 1 else [0] * args.requests
        requests = [InferenceRequest(
            args.input_tokens, args.output_tokens, request_id=i,
            tenant=t, tenant_class=class_names[t % len(class_names)])
            for i, t in enumerate(tenants)]
        rate = args.rate
        if rate is None:
            # Default: overload one exclusive instance 4x, the regime
            # where continuous batching pays off.
            rate = 4.0 / service(requests[0])
        arrivals = arrivals_for_shape(args.arrival, len(requests), rate,
                                      seed=args.seed)
        source = f"{args.arrival} {rate:.3f} req/s"
    if args.save_trace:
        write_trace(args.save_trace, requests, arrivals)
        print(f"trace saved: {args.save_trace} ({len(requests)} records)")
    runs = []
    if args.compare_fcfs:
        fcfs = RequestScheduler(service, num_instances=1, config=config,
                                memory_bytes=memory)
        runs.append(("fcfs-exclusive", fcfs.run(requests, arrivals)))
    quantize = "int8" if args.dtype == "int8" else None
    if args.step_model == "sim":
        if args.device != "pnm":
            print("error: --step-model sim requires --device pnm")
            return 2
        from repro.appliance import simulated_step_model
        step = simulated_step_model(config, device=device,
                                    quantize=quantize)
    else:
        # Analytical models take the halved weight stream through a
        # quantized config copy; admission budgets stay on `config`
        # (KV caches keep their full width).
        step_config = config.with_dtype(1) if quantize else config
        step = BatchStepTimer(step_config, perf)
    engine = ContinuousBatchScheduler(
        step, config, memory, max_batch=args.max_batch,
        num_devices=args.devices, classes=classes or None,
        slo_admission=args.slo)
    name = "continuous" if args.devices == 1 \
        else f"continuous x{args.devices}"
    stats = engine.run(requests, arrivals)
    runs.append((name, stats))
    print(f"{config.name} on {perf.name}: {len(requests)} requests, "
          f"{source}, memory {memory / GB:.0f} GB")
    for name, run_stats in runs:
        print(f"  [{name}]")
        for key, value in run_stats.as_dict().items():
            print(f"    {key:<24} {value:12.4f}")
    breakdown = stats.class_breakdown()
    if len(breakdown) > 1 or classes:
        for cls_name, row in breakdown.items():
            print(f"  [class {cls_name}]")
            for key, value in row.items():
                print(f"    {key:<24} {value:12.4f}")
    return 0


def _parse_stall(spec: str):
    """``AT:DURATION[:DEVICE]`` -> (at_s, duration_s, device)."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ConfigurationError(
            f"--stall wants AT:DURATION[:DEVICE], got {spec!r}")
    return (float(parts[0]), float(parts[1]),
            int(parts[2]) if len(parts) == 3 else 0)


def _parse_fail(spec: str):
    """``AT[:DEVICE]`` -> (at_s, device)."""
    parts = spec.split(":")
    if len(parts) not in (1, 2):
        raise ConfigurationError(
            f"--fail wants AT[:DEVICE], got {spec!r}")
    return float(parts[0]), int(parts[1]) if len(parts) == 2 else 0


def _cmd_chaos(args) -> int:
    from repro.faults.chaos_harness import ChaosConfig, run_chaos
    from repro.faults.plan import FaultPlan, paper_section_ix_plan
    custom = any((args.crc_rate, args.upsets_per_tick,
                  args.double_bit_at, args.transient_rate,
                  args.fail_at_launch, args.stall, args.fail))
    if custom:
        plan = FaultPlan(seed=args.seed)
        if args.crc_rate:
            plan = plan.with_link_errors(args.crc_rate)
        if args.upsets_per_tick or args.double_bit_at:
            plan = plan.with_memory_upsets(
                args.upsets_per_tick,
                double_bit_at_tick=args.double_bit_at,
                scrub_every_ticks=args.scrub_every)
        if args.transient_rate or args.fail_at_launch:
            plan = plan.with_launch_faults(
                args.transient_rate, fail_at_launch=args.fail_at_launch,
                max_retries=args.max_retries)
        for spec in args.stall:
            at_s, duration_s, device = _parse_stall(spec)
            plan = plan.with_device_stall(at_s, duration_s, device)
        for spec in args.fail:
            at_s, device = _parse_fail(spec)
            plan = plan.with_device_failure(at_s, device)
    else:
        # No fault flags: the default §IX schedule, every mechanism once.
        plan = paper_section_ix_plan(seed=args.seed)
    config = ChaosConfig(model=args.model, num_requests=args.requests,
                         num_devices=args.devices,
                         memory_gb=args.memory_gb,
                         arrival_rate_per_s=args.rate)
    report = run_chaos(plan, config)
    if args.json:
        import json
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_isa(_args) -> int:
    from repro.accelerator.isa_reference import render_isa_reference
    print(render_isa_reference())
    return 0


#: ``lint-program`` exit code when the program has diagnostics.  Kept
#: distinct from 1 (tool crash) so CI can assert "found findings" vs
#: "the linter itself broke".
EXIT_DIAGNOSTICS = 2


def _cmd_lint_program(args) -> int:
    from repro.accelerator.compiler import (
        batched_timing_program,
        timing_layout,
        timing_program,
    )
    from repro.analysis import verify_program
    config = tiny_config() if args.model == "tiny" \
        else get_model(args.model)
    quantize = "int8" if args.dtype == "int8" else None
    layout = timing_layout(config, quantize=quantize)
    if args.ctx_prev is None:
        # The service experiment's decode point, clamped to the model:
        # a batched decode step appends one row per request; a plain
        # stage consumes batch_tokens positions.
        occupied = 1 if args.batched is not None else args.batch_tokens
        args.ctx_prev = min(576, config.max_seq_len - occupied)
    dtype_tag = f" dtype={args.dtype}" if args.dtype != "fp32" else ""
    if args.batched is not None:
        program = batched_timing_program(config, batch=args.batched,
                                         ctx_prev=args.ctx_prev,
                                         quantize=quantize)
        subject = (f"{config.name} batched decode batch={args.batched} "
                   f"ctx_prev={args.ctx_prev}{dtype_tag}")
    else:
        program = timing_program(config, batch_tokens=args.batch_tokens,
                                 ctx_prev=args.ctx_prev,
                                 quantize=quantize)
        subject = (f"{config.name} stage m={args.batch_tokens} "
                   f"ctx_prev={args.ctx_prev}{dtype_tag}")
    report = verify_program(program, layout=layout, subject=subject)
    if args.json:
        import json
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    failed = not report.ok if args.errors_only else not report.clean
    return EXIT_DIAGNOSTICS if failed else 0


#: Default suppression baseline, resolved relative to the repo checkout
#: (``tools/`` next to ``src/``).  Absent file -> empty baseline, so an
#: installed package still lints.
def _default_baseline_path() -> Optional["Path"]:
    from pathlib import Path
    candidate = Path(__file__).resolve().parents[2] \
        / "tools" / "static_analysis_baseline.json"
    return candidate if candidate.is_file() else None


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis.baseline import Baseline
    from repro.analysis.suite import render_result, run_suite

    root = args.root
    if root is None:
        root = Path(__file__).resolve().parent
    baseline = None
    if not args.no_baseline:
        path = args.baseline
        if path is None and args.root is None:
            # The checked-in baseline describes this tree only; a
            # foreign --root would render every entry stale.
            path = _default_baseline_path()
        if path is not None:
            baseline = Baseline.load(path)
    passes = None
    if args.select:
        passes = [name for chunk in args.select
                  for name in chunk.split(",") if name.strip()]
    result = run_suite(Path(root), passes=passes, baseline=baseline)
    if args.json:
        import json
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_result(result))
    if args.errors_only:
        failed = not result.report.ok or bool(result.stale)
    else:
        failed = not result.ok
    return EXIT_DIAGNOSTICS if failed else 0


def _cmd_roofline(args) -> int:
    from repro.accelerator import CXLPNMDevice
    from repro.experiments.report import text_table
    from repro.perf.analytical import PnmPerfModel
    from repro.perf.roofline import roofline_report
    config = get_model(args.model)
    models = [PnmPerfModel(CXLPNMDevice()), GpuPerfModel(A100_40G)]
    print(text_table(roofline_report(config, models,
                                     context_len=args.context)))
    return 0


def _cmd_trace_summarize(args) -> int:
    from repro.obs import render_summary, summarize_trace_file
    rows = summarize_trace_file(args.file, top_n=args.top)
    print(render_summary(
        rows, title=f"top {args.top} spans by cumulative simulated time"))
    return 0


def _cmd_generate(args) -> int:
    config = tiny_config(num_layers=args.layers, d_model=args.d_model,
                         num_heads=args.heads)
    platform = CxlPnmPlatform()
    session = platform.session(
        weights=random_weights(config, seed=args.seed),
        quantize="int8" if args.dtype == "int8" else None)
    trace = session.generate(args.prompt, args.num_tokens)
    print(f"prompt {args.prompt} -> {trace.tokens}")
    print(f"{trace.instructions} instructions, device time "
          f"{s_to_us(trace.total_time_s):.1f} us")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CXL-PNM platform reproduction (HPCA 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments",
                   help="list experiment ids").set_defaults(
        func=_cmd_experiments)

    run = sub.add_parser("run", help="run experiments and print tables")
    run.add_argument("ids", nargs="*",
                     help="experiment ids (default: all)")
    run.add_argument("--export", default=None,
                     help="directory for JSON/CSV exports")
    run.add_argument("-j", "--jobs", type=int, default=1,
                     help="worker processes for the sweep "
                          "(default 1 = in-process; 0 picks cpu_count)")
    _add_observability_flags(run)
    run.set_defaults(func=_cmd_run)

    sub.add_parser("models",
                   help="list the LLM zoo").set_defaults(func=_cmd_models)
    sub.add_parser("platform",
                   help="CXL-PNM platform summary").set_defaults(
        func=_cmd_platform)

    estimate = sub.add_parser("estimate",
                              help="model a zoo LLM on both devices")
    estimate.add_argument("model")
    estimate.add_argument("--in", dest="input_tokens", type=int, default=64)
    estimate.add_argument("--out", dest="output_tokens", type=int,
                          default=1024)
    estimate.add_argument("--dtype", choices=["fp32", "int8"],
                          default="fp32",
                          help="weight precision (int8 halves the "
                               "modeled weight stream)")
    estimate.set_defaults(func=_cmd_estimate)

    serve = sub.add_parser(
        "serve",
        help="simulate serving a zoo model on the continuous-batching "
             "engine (multi-tenant traffic, SLO goodput)")
    serve.add_argument("model")
    serve.add_argument("--device", choices=["pnm", "gpu"], default="pnm")
    serve.add_argument("--requests", type=int, default=32)
    serve.add_argument("--rate", type=float, default=None,
                       help="mean arrival rate in req/s "
                            "(default: 4x one instance's capacity)")
    serve.add_argument("--arrival", choices=["steady", "diurnal",
                                             "flash-crowd"],
                       default="steady",
                       help="arrival-process shape (docs/SERVING.md)")
    serve.add_argument("--trace-file", default=None,
                       help="replay a JSONL trace instead of generating "
                            "a workload (ignores --requests/--rate/"
                            "--arrival/--tenants)")
    serve.add_argument("--save-trace", default=None,
                       help="record the generated workload as a JSONL "
                            "trace for bit-identical replay")
    serve.add_argument("--tenants", type=int, default=1,
                       help="number of tenants (Zipf-skewed traffic "
                            "shares when > 1)")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf skew of tenant traffic shares")
    serve.add_argument("--class", dest="tenant_classes", action="append",
                       default=[], metavar="SPEC",
                       help="tenant class NAME:WEIGHT[:PRIORITY[:TTFT"
                            "[:TBT]]] (repeatable); tenants map to "
                            "classes round-robin")
    serve.add_argument("--slo", action="store_true",
                       help="SLO-aware admission: shed requests whose "
                            "projected TTFT/TBT miss their class targets")
    serve.add_argument("--compare-fcfs", action="store_true",
                       help="also run the FCFS-exclusive baseline")
    serve.add_argument("--in", dest="input_tokens", type=int, default=64)
    serve.add_argument("--out", dest="output_tokens", type=int, default=64)
    serve.add_argument("--max-batch", type=int, default=None)
    serve.add_argument("--devices", type=int, default=1,
                       help="model replicas for the continuous engine "
                            "(appliance data parallelism)")
    serve.add_argument("--dtype", choices=["fp32", "int8"],
                       default="fp32",
                       help="weight precision for step costs: int8 "
                            "streams quantized weights at 1 byte/elem")
    serve.add_argument("--step-model", choices=["analytical", "sim"],
                       default="analytical",
                       help="continuous-batching step costs: analytical "
                            "per-op sums, or the instruction-level "
                            "simulator (pnm only)")
    serve.add_argument("--memory-gb", type=float, default=None,
                       help="override device memory (GB) to exercise "
                            "KV admission control")
    serve.add_argument("--seed", type=int, default=0)
    _add_observability_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection workload and report RAS behaviour")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--crc-rate", type=float, default=0.0,
                       help="per-flit CXL CRC error probability")
    chaos.add_argument("--upsets-per-tick", type=float, default=0.0,
                       help="mean single-bit upsets per stage against "
                            "the ECC guard region")
    chaos.add_argument("--scrub-every", type=int, default=None,
                       help="ECS scrub period in stages")
    chaos.add_argument("--double-bit-at", type=int, default=None,
                       help="force an uncorrectable error at this stage")
    chaos.add_argument("--transient-rate", type=float, default=0.0,
                       help="per-launch transient fault probability")
    chaos.add_argument("--fail-at-launch", type=int, default=None,
                       help="permanent device failure at launch N")
    chaos.add_argument("--max-retries", type=int, default=3)
    chaos.add_argument("--stall", action="append", default=[],
                       metavar="AT:DURATION[:DEVICE]",
                       help="schedule a transient device stall "
                            "(repeatable)")
    chaos.add_argument("--fail", action="append", default=[],
                       metavar="AT[:DEVICE]",
                       help="schedule a permanent device failure "
                            "(repeatable)")
    chaos.add_argument("--model", default="OPT-13B")
    chaos.add_argument("--requests", type=int, default=12)
    chaos.add_argument("--devices", type=int, default=2)
    chaos.add_argument("--memory-gb", type=float, default=27.0)
    chaos.add_argument("--rate", type=float, default=2.0,
                       help="Poisson arrival rate in req/s")
    chaos.add_argument("--json", action="store_true",
                       help="print the full report as JSON")
    chaos.set_defaults(func=_cmd_chaos)

    sub.add_parser("isa", help="accelerator ISA reference").set_defaults(
        func=_cmd_isa)

    tree_lint = sub.add_parser(
        "lint",
        help="source-tree static analysis (purity/units/determinism/"
             "contracts)")
    tree_lint.add_argument("--root", default=None,
                           help="tree to lint (default: the installed "
                                "repro package)")
    tree_lint.add_argument("--select", action="append", default=[],
                           metavar="PASSES",
                           help="comma-separated passes to run "
                                "(purity, units, determinism, "
                                "contracts; aliases pur/unit/det/con); "
                                "default: all")
    tree_lint.add_argument("--baseline", default=None,
                           help="suppression baseline JSON (default: "
                                "tools/static_analysis_baseline.json "
                                "when present)")
    tree_lint.add_argument("--no-baseline", action="store_true",
                           help="ignore any baseline file")
    tree_lint.add_argument("--json", action="store_true",
                           help="print the report as JSON")
    tree_lint.add_argument("--errors-only", action="store_true",
                           help="exit 2 only on errors (warnings pass)")
    tree_lint.set_defaults(func=_cmd_lint)

    lint = sub.add_parser(
        "lint-program",
        help="statically verify a compiled timing program")
    lint.add_argument("model", help="zoo model name, or 'tiny'")
    lint.add_argument("--batch-tokens", type=int, default=1,
                      help="tokens in the stage (default 1 = gen stage)")
    lint.add_argument("--ctx-prev", type=int, default=None,
                      help="prior context length (default: 576, the "
                           "service experiment's decode point, clamped "
                           "to the model's max_seq_len)")
    lint.add_argument("--batched", type=int, default=None, metavar="B",
                      help="verify the batched decode step for B "
                           "requests instead of a single stage")
    lint.add_argument("--dtype", choices=["fp32", "int8"],
                      default="fp32",
                      help="verify the quantized int8 program instead "
                           "of the fp32 one")
    lint.add_argument("--errors-only", action="store_true",
                      help="exit 2 only on errors (ignore warnings)")
    lint.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    lint.set_defaults(func=_cmd_lint_program)

    roofline = sub.add_parser("roofline",
                              help="roofline placement of a zoo model")
    roofline.add_argument("model")
    roofline.add_argument("--context", type=int, default=576)
    roofline.set_defaults(func=_cmd_roofline)

    generate = sub.add_parser("generate",
                              help="functional generation on a tiny model")
    generate.add_argument("--layers", type=int, default=2)
    generate.add_argument("--d-model", type=int, default=64)
    generate.add_argument("--heads", type=int, default=4)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--num-tokens", type=int, default=8)
    generate.add_argument("--prompt", type=int, nargs="+",
                          default=[1, 2, 3])
    generate.add_argument("--dtype", choices=["fp32", "int8"],
                          default="fp32",
                          help="run the quantized weight path "
                               "functionally")
    _add_observability_flags(generate)
    generate.set_defaults(func=_cmd_generate)

    trace = sub.add_parser("trace", help="inspect exported trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="top spans by cumulative simulated time")
    summarize.add_argument("file", help="Chrome-trace JSON from "
                                        "--trace-out")
    summarize.add_argument("--top", type=int, default=20)
    summarize.set_defaults(func=_cmd_trace_summarize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _observability(args):
            return args.func(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
