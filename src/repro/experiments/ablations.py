"""Ablation studies for the design choices the paper motivates.

Each function isolates one architectural decision and quantifies it:

* ``pe_array`` — DFX (adder trees only) vs CXL-PNM (with the 64x32 PE
  array): §V-C's claim that "the sum stage begins to dominate" without a
  dedicated GEMM unit.
* ``tile_dim`` — DFX's l=64 vs the paper's l=128 tile (doubled because
  the LPDDR5X module provides >2x DFX's bandwidth).
* ``redumax`` — the REDUMAX-fused masked matmul vs a separate max pass.
* ``batching`` — amortizing weight streams across concurrent requests
  (extension; the lever of the paper's reference [10]).
* ``quantization`` — INT8 weights on the bandwidth-bound gen stage
  (related-work LUT-GEMM lever).
* ``moe`` — a capacity-heavy MoE that fits one CXL-PNM device but needs
  many GPUs (§IX's scalability argument, sharpened).
* ``dma_buffer`` — DMA staging-buffer size (Table II provisions 1 MB).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.accelerator.device import CXLPNMDevice
from repro.accelerator.dfx import dfx_device
from repro.accelerator.dma import DmaTiming
from repro.accelerator.mpu import MpuTiming
from repro.accelerator.vpu import VpuTiming
from repro.accelerator import isa
from repro.experiments.report import ExperimentResult
from repro.gpu.device import A100_40G
from repro.llm.batching import batched_gen_stage_ops, max_batch_for_memory
from repro.llm.config import GPT3_13B, OPT_13B, OPT_6_7B
from repro.llm.graph import gen_stage_ops
from repro.llm.moe import MoEConfig, moe_gen_stage_ops
from repro.llm.workload import PAPER_INPUT_TOKENS
from repro.perf.analytical import (
    GpuPerfModel,
    InferenceTimer,
    PnmPerfModel,
    stage_result,
)


def pe_array_ablation() -> ExperimentResult:
    """Sum-stage latency, DFX vs CXL-PNM, as input length grows."""
    dfx = PnmPerfModel(dfx_device())
    pnm = PnmPerfModel(CXLPNMDevice())
    rows = []
    for input_len in (16, 32, 64, 128, 256, 512):
        td = InferenceTimer(OPT_6_7B, dfx).sum_stage(input_len).time_s
        tp = InferenceTimer(OPT_6_7B, pnm).sum_stage(input_len).time_s
        rd = InferenceTimer(OPT_6_7B, dfx).run(input_len, 256)
        rows.append({
            "input_tokens": input_len,
            "dfx_sum_ms": td * 1e3,
            "pnm_sum_ms": tp * 1e3,
            "speedup": td / tp,
            "dfx_sum_share_of_e2e": td / rd.latency_s,
        })
    return ExperimentResult(
        experiment_id="ablation_pe_array",
        title="PE-array ablation: DFX (tree-only) vs CXL-PNM sum stage "
              "(OPT-6.7B)",
        rows=rows,
        anchors={"paper_claim": "without a GEMM unit the sum stage "
                                "dominates as input tokens increase"},
    )


def tile_dim_ablation() -> ExperimentResult:
    """Gen-token time at tile l=64 (DFX) vs l=128 (CXL-PNM, §V-C)."""
    device = CXLPNMDevice()
    rows = []
    for tile in (32, 64, 128, 256):
        mpu = MpuTiming(tree_lanes=16, tree_width=tile)
        clock = device.spec.clock_hz
        total_cycles = 0
        ops = gen_stage_ops(OPT_13B, PAPER_INPUT_TOKENS + 512)
        for op in ops:
            if op.kind.is_matmul:
                total_cycles += mpu.gemv_cycles(op.k, op.n)
        rows.append({
            "tile_dim": tile,
            "tree_macs_per_cycle": mpu.tree_macs_per_cycle,
            "matmul_compute_ms": total_cycles / clock * 1e3,
        })
    return ExperimentResult(
        experiment_id="ablation_tile_dim",
        title="Tile-dimension ablation: adder-tree compute per OPT-13B "
              "gen token",
        rows=rows,
        anchors={"paper_choice": "l doubled from 64 to 128 to exploit "
                                 ">2x DFX's memory bandwidth"},
        notes=["Gen stages are bandwidth-bound, so the tile only matters "
               "once compute cycles approach the stream time; l=128 keeps "
               "compute safely below the 1.1 TB/s stream."],
    )


def redumax_ablation() -> ExperimentResult:
    """VPU softmax cycles with and without the fused row max."""
    vpu = VpuTiming()
    rows = []
    for ctx in (128, 512, 1024, 2048):
        elements = float(OPT_13B.num_heads * ctx)
        fused = vpu.cycles(isa.VpuSoftmax(dst="m1", src="m0", rowmax="v0"),
                           elements)
        plain = vpu.cycles(isa.VpuSoftmax(dst="m1", src="m0"), elements)
        rows.append({
            "context_len": ctx,
            "softmax_cycles_plain": plain,
            "softmax_cycles_fused": fused,
            "cycles_saved_pct": 100.0 * (plain - fused) / plain,
        })
    return ExperimentResult(
        experiment_id="ablation_redumax",
        title="REDUMAX fusion ablation: softmax cycles per attention",
        rows=rows,
        anchors={"paper_feature": "MPU_MASKEDMM_REDUMAX_PEA fuses the "
                                  "max pass into the matmul"},
    )


def batching_ablation() -> ExperimentResult:
    """Throughput/latency vs gen batch size on CXL-PNM and the GPU."""
    pnm = PnmPerfModel(CXLPNMDevice())
    gpu = GpuPerfModel(A100_40G)
    ctx = PAPER_INPUT_TOKENS + 512
    rows = []
    for batch in (1, 2, 4, 8, 16, 32, 64):
        ops = batched_gen_stage_ops(OPT_13B, ctx, batch)
        p = stage_result(f"b{batch}", ops, pnm)
        g = stage_result(f"b{batch}", ops, gpu)
        rows.append({
            "batch": batch,
            "pnm_step_ms": p.time_s * 1e3,
            "pnm_tokens_per_s": batch / p.time_s,
            "gpu_step_ms": g.time_s * 1e3,
            "gpu_tokens_per_s": batch / g.time_s,
        })
    max_batch = max_batch_for_memory(
        OPT_13B, CXLPNMDevice().memory_capacity, ctx)
    return ExperimentResult(
        experiment_id="ablation_batching",
        title="Batched generation (OPT-13B): weight streams amortized "
              "across requests",
        rows=rows,
        anchors={"cxl_pnm_max_batch_by_memory": max_batch},
        notes=["The 512 GB module holds vastly more concurrent KV caches "
               "than a 40 GB GPU — batching compounds the capacity "
               "advantage."],
    )


def quantization_ablation() -> ExperimentResult:
    """INT8 vs FP16 weights on the bandwidth-bound gen stage."""
    pnm = PnmPerfModel(CXLPNMDevice())
    rows = []
    for dtype_bytes, label in ((2, "FP16"), (1, "INT8")):
        config = OPT_13B.with_dtype(dtype_bytes) if dtype_bytes != 2 \
            else OPT_13B
        stage = InferenceTimer(config, pnm).gen_stage(
            PAPER_INPUT_TOKENS + 512)
        rows.append({
            "dtype": label,
            "param_gb": config.param_bytes / 1e9,
            "gen_token_ms": stage.time_s * 1e3,
            "tokens_per_s": 1.0 / stage.time_s,
        })
    speedup = rows[0]["gen_token_ms"] / rows[1]["gen_token_ms"]
    rows.append({"dtype": "INT8 speedup", "tokens_per_s": speedup})
    # Accuracy delta of the functional int8 path: teacher-forced top-1
    # agreement against the fp32 session on a small random-weight model
    # (both see identical prefixes, so disagreements measure rounding).
    from repro.llm.config import LLMConfig
    from repro.llm.reference import random_weights
    from repro.runtime.session import InferenceSession
    acc_config = LLMConfig(name="quant-acc", d_model=128, num_heads=8,
                           d_ff=512, num_layers=2, vocab_size=512,
                           max_seq_len=128)
    weights = random_weights(acc_config, seed=0)
    fp32 = InferenceSession(weights, simulate_timing=False)
    int8 = InferenceSession(weights, simulate_timing=False,
                            quantize="int8")
    prompt, steps = [11, 29, 3, 101, 7, 45], 80
    ref = fp32.generate(prompt, steps).tokens
    preds = [int8.generate(prompt, 1).tokens[0]]
    for token in ref[:-1]:
        preds.append(int8.extend([token], 1).tokens[0])
    agreement = sum(p == r for p, r in zip(preds, ref)) / steps
    rows.append({"dtype": "INT8 top-1 agreement",
                 "tokens_per_s": agreement})
    return ExperimentResult(
        experiment_id="ablation_quantization",
        title="Weight-quantization ablation on CXL-PNM (OPT-13B gen)",
        rows=rows,
        anchors={"expected": "~2x (gen stages are weight-bandwidth "
                             "bound; cf. LUT-GEMM)",
                 "accuracy": f"{steps}-step teacher-forced greedy "
                             "agreement, int8 vs fp32, small "
                             "random-weight model"},
    )


def moe_ablation() -> ExperimentResult:
    """A GPT-3-13B-based MoE: capacity on CXL-PNM vs GPUs needed."""
    device = CXLPNMDevice()
    rows: List[dict] = []
    for experts in (8, 16, 24):
        moe = MoEConfig(base=GPT3_13B, num_experts=experts, top_k=2)
        ops = moe_gen_stage_ops(moe, PAPER_INPUT_TOKENS + 512)
        stage = stage_result("gen", ops, PnmPerfModel(device))
        rows.append({
            "model": moe.name,
            "stored_params_B": moe.num_params / 1e9,
            "active_params_B": moe.active_params_per_token / 1e9,
            "capacity_amplification": moe.capacity_amplification,
            "fits_one_cxl_pnm": moe.param_bytes <= device.memory_capacity,
            "a100_40g_needed": -(-moe.param_bytes // int(40e9 * 0.94)),
            "pnm_gen_token_ms": stage.time_s * 1e3,
        })
    return ExperimentResult(
        experiment_id="ablation_moe",
        title="Mixture-of-Experts on CXL-PNM (§IX): capacity-heavy, "
              "bandwidth-light",
        rows=rows,
        anchors={"paper_context": "§IX cites MoE as the capacity-curbing "
                                  "direction"},
    )


def dma_buffer_ablation() -> ExperimentResult:
    """DMA staging-buffer size vs large-transfer efficiency."""
    device = CXLPNMDevice()
    transfer = 64e6  # one OPT-13B fc1 weight tile stream
    rows = []
    for buffer_kib in (64, 256, 1024, 4096):
        dma = DmaTiming(bandwidth=device.effective_memory_bandwidth,
                        buffer_bytes=buffer_kib * 1024)
        t = dma.transfer_time(transfer)
        rows.append({
            "buffer_KiB": buffer_kib,
            "transfer_ms": t * 1e3,
            "efficiency": transfer / t
            / device.effective_memory_bandwidth,
        })
    return ExperimentResult(
        experiment_id="ablation_dma_buffer",
        title="DMA buffer-size ablation (64 MB weight stream)",
        rows=rows,
        anchors={"table2_choice": "1 MB DMA buffers"},
    )


def parallelism_strategy_ablation() -> ExperimentResult:
    """Tensor vs pipeline parallelism for OPT-66B on eight GPUs.

    FasterTransformer offers both (§VII).  Tensor parallelism cuts
    single-token latency (every device works on every layer) at the cost
    of two all-reduces per layer; pipeline parallelism has the cheaper
    point-to-point hops but a token still visits every layer serially --
    throughput needs the pipeline kept full.
    """
    from repro.appliance.comm import GpuCommModel
    from repro.appliance.pipeline import PipelinePlan
    from repro.llm.config import OPT_66B

    gpu = GpuPerfModel(A100_40G)
    ctx = PAPER_INPUT_TOKENS + 512

    def nvlink_hop(payload: float) -> float:
        return 10e-6 + payload / (A100_40G.nvlink_bandwidth * 0.75)

    tp_timer = InferenceTimer(OPT_66B, gpu, tensor_parallel=8,
                              comm=GpuCommModel(A100_40G, OPT_66B, 8))
    tp_latency = tp_timer.gen_stage(ctx).time_s
    pp = PipelinePlan(config=OPT_66B, num_stages=8, model=gpu,
                      hop=nvlink_hop)
    rows = [
        {
            "strategy": "tensor parallel (TP=8)",
            "token_latency_ms": tp_latency * 1e3,
            "full_pipeline_tokens_per_s": 1.0 / tp_latency,
            "params_per_device_gb": OPT_66B.param_bytes / 8 / 1e9,
        },
        {
            "strategy": "pipeline parallel (PP=8)",
            "token_latency_ms": pp.token_latency(ctx) * 1e3,
            "full_pipeline_tokens_per_s": pp.steady_throughput(ctx),
            "params_per_device_gb": pp.params_per_device / 1e9,
        },
    ]
    return ExperimentResult(
        experiment_id="ablation_parallelism_strategy",
        title="Tensor vs pipeline parallelism (OPT-66B, 8x A100)",
        rows=rows,
        anchors={"paper_baseline": "FasterTransformer TP=8 (the Fig. 11 "
                                   "GPU configuration)"},
        notes=["TP wins single-stream latency; PP wins saturated "
               "throughput only when >= 8 requests keep the pipeline "
               "full."],
    )


def cxl_expansion_ablation() -> ExperimentResult:
    """What if the GPU kept parameters in plain CXL memory (no PNM)?

    A Type-3 expander solves the *capacity* problem (no host-DRAM paging)
    but every gen token still drags all weights over the x16 link -- the
    quantitative case for computing *near* the memory instead of merely
    attaching more of it.
    """
    from repro.cxl.link import GEN5_X16
    from repro.llm.config import OPT_30B
    import repro.perf.calibration as _cal

    pnm = PnmPerfModel(CXLPNMDevice())
    ctx = PAPER_INPUT_TOKENS + 512
    streamed = OPT_30B.param_bytes
    link_time = streamed / GEN5_X16.effective_bandwidth
    pnm_time = InferenceTimer(OPT_30B, pnm).gen_stage(ctx).time_s
    offload_time = streamed / _cal.PCIE_H2D_PAGEABLE_BYTES_S
    rows = [
        {"configuration": "GPU + host-DRAM offload (Fig. 3)",
         "gen_token_ms": offload_time * 1e3},
        {"configuration": "GPU + CXL Type-3 expander (what-if)",
         "gen_token_ms": link_time * 1e3},
        {"configuration": "CXL-PNM (compute near the memory)",
         "gen_token_ms": pnm_time * 1e3},
    ]
    return ExperimentResult(
        experiment_id="ablation_cxl_expansion",
        title="Memory expansion alone vs processing-near-memory "
              "(OPT-30B gen token)",
        rows=rows,
        notes=["The expander removes paging overheads but the x16 link "
               "(~50 GB/s effective) is still ~20x slower than computing "
               "against the module's 1.05 TB/s locally."],
    )


def run() -> ExperimentResult:
    """Bundle: run every ablation and merge the headline rows."""
    studies = [pe_array_ablation(), tile_dim_ablation(),
               redumax_ablation(), batching_ablation(),
               quantization_ablation(), moe_ablation(),
               dma_buffer_ablation(), parallelism_strategy_ablation(),
               cxl_expansion_ablation()]
    rows = []
    for study in studies:
        rows.append({"ablation": study.experiment_id,
                     "rows": len(study.rows),
                     "title": study.title})
    return ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablation suite (index)",
        rows=rows,
        notes=["Each study is callable individually from "
               "repro.experiments.ablations."],
    )
