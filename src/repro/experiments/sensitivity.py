"""TCO sensitivity analysis (the paper's title claim, stress-tested).

Table III fixes three inputs the reader may not share: Idaho's 10.35
cent/kWh electricity (the cheapest U.S. rate), the $7k/$10k device
prices, and an operating-cost-only comparison.  This experiment sweeps
all three — electricity price across U.S. markets, CXL-PNM device price
up to GPU parity, and hardware amortization over 1-5 years — and reports
where (if anywhere) the GPU appliance becomes the better buy.  Spoiler:
nowhere in the swept space, because the CXL-PNM appliance wins hardware,
energy, *and* throughput simultaneously.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.appliance.cluster import GpuAppliance, PnmAppliance
from repro.appliance.parallelism import ParallelismPlan
from repro.experiments.report import ExperimentResult
from repro.gpu.device import A100_40G
from repro.llm.config import OPT_66B
from repro.llm.workload import PAPER_INPUT_TOKENS
from repro.tco.cost import CostSummary
from repro.tco.energy import daily_operation

#: Representative U.S. electricity prices ($/kWh): Idaho (paper), the
#: 2023 national average, and Hawaii.
ELECTRICITY_SWEEP = (0.1035, 0.17, 0.43)

PNM_PRICE_SWEEP = (5_000.0, 7_000.0, 10_000.0)

LIFETIME_SWEEP = (1.0, 3.0, 5.0)

OUTPUT_TOKENS = 1024


def _operating_points():
    gpu_appliance = GpuAppliance(A100_40G, num_devices=8)
    pnm_appliance = PnmAppliance(num_devices=8)
    gpu = daily_operation(gpu_appliance.run(
        OPT_66B, ParallelismPlan(1, 8), PAPER_INPUT_TOKENS, OUTPUT_TOKENS))
    pnm = daily_operation(pnm_appliance.run(
        OPT_66B, ParallelismPlan(8, 1), PAPER_INPUT_TOKENS, OUTPUT_TOKENS))
    return gpu, pnm


def run() -> ExperimentResult:
    gpu_op, pnm_op = _operating_points()
    rows: List[dict] = []
    for price_kwh in ELECTRICITY_SWEEP:
        for pnm_price in PNM_PRICE_SWEEP:
            for years in LIFETIME_SWEEP:
                gpu = CostSummary(name="gpu", hardware_cost_usd=80_000,
                                  tokens_per_day=gpu_op.tokens_per_day,
                                  kwh_per_day=gpu_op.kwh_per_day,
                                  electricity_usd_per_kwh=price_kwh)
                pnm = CostSummary(name="pnm",
                                  hardware_cost_usd=8 * pnm_price,
                                  tokens_per_day=pnm_op.tokens_per_day,
                                  kwh_per_day=pnm_op.kwh_per_day,
                                  electricity_usd_per_kwh=price_kwh)
                advantage = pnm.tco_tokens_per_usd(years) \
                    / gpu.tco_tokens_per_usd(years)
                rows.append({
                    "usd_per_kwh": price_kwh,
                    "pnm_device_usd": pnm_price,
                    "lifetime_years": years,
                    "gpu_tco_Mtok_per_usd": gpu.tco_tokens_per_usd(years)
                    / 1e6,
                    "pnm_tco_Mtok_per_usd": pnm.tco_tokens_per_usd(years)
                    / 1e6,
                    "pnm_advantage": advantage,
                })
    worst = min(rows, key=lambda r: r["pnm_advantage"])
    best = max(rows, key=lambda r: r["pnm_advantage"])
    return ExperimentResult(
        experiment_id="sensitivity",
        title="TCO sensitivity: electricity price x device price x "
              "amortization (OPT-66B service)",
        rows=rows,
        anchors={
            "paper_point": "$0.1035/kWh, $7k devices, operating cost only",
            "worst_case_pnm_advantage": round(worst["pnm_advantage"], 2),
            "best_case_pnm_advantage": round(best["pnm_advantage"], 2),
        },
        notes=[
            "The CXL-PNM appliance wins every swept point: it needs less "
            "hardware money, less energy, and produces more tokens, so "
            "no price regime flips the conclusion.",
        ],
    )
