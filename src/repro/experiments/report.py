"""Experiment result containers and plain-text table rendering.

Every experiment module produces an :class:`ExperimentResult`: structured
rows (what the paper's figure/table plots), the paper's anchor values for
side-by-side comparison, and free-form notes on modelling caveats.  The
benchmarks print ``render()`` output so a run reproduces the paper's
tables as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError


def format_value(value: Any) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def text_table(rows: Sequence[Dict[str, Any]],
               columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns]
             for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths))
                     for row in cells)
    return "\n".join((header, rule, body))


@dataclass
class ExperimentResult:
    """One reproduced figure/table.

    Attributes:
        experiment_id: Paper artifact id, e.g. ``"fig10"``.
        title: Human-readable title.
        rows: The regenerated data series/table rows.
        anchors: Paper values the rows should be compared against.
        notes: Modelling caveats and substitutions.
        columns: Optional explicit column order for rendering.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]]
    anchors: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    columns: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ConfigurationError("experiment needs an id")

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==",
                 text_table(self.rows, self.columns)]
        if self.anchors:
            parts.append("paper anchors:")
            for key, value in self.anchors.items():
                parts.append(f"  {key} = {format_value(value)}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
