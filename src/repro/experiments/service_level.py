"""Service-level view of one CXL-PNM appliance under open-loop load.

The paper's figures are per-request; a capacity planner also needs the
*service* numbers: what latency distribution and sustained throughput a
CXL-PNM appliance delivers under Poisson arrivals, how much host
CXL.mem bandwidth survives while the accelerators are busy (the §V-A D3
arbiter at work), and whether the per-stage times feeding the queueing
model agree with the instruction-level simulator.  This experiment
stitches those three layers together:

* **scheduler** — FCFS over ``DP`` model instances serving OPT-13B
  requests (64 in / 256 out) at ~70% offered utilization;
* **cxl** — the hardware-WRR vs blocking-poll arbiter serving host
  traffic concurrently with PNM tasks of the measured gen-stage length;
* **accelerator** — the list scheduler run over a compiled OPT-13B gen
  stage, cross-checked against the analytical stage time.

Run with ``repro run service --trace-out trace.json`` to get all three
layers' spans on one simulated timeline.
"""

from __future__ import annotations

from typing import List

from repro.accelerator.compiler import timing_program
from repro.accelerator.device import CXLPNMDevice
from repro.cxl.arbiter import ArbitrationPolicy, compare_policies
from repro.cxl.protocol import CACHELINE_BYTES, Source
from repro.experiments.report import ExperimentResult
from repro.llm.config import OPT_13B
from repro.llm.workload import PAPER_INPUT_TOKENS, InferenceRequest
from repro.appliance.scheduler import (
    RequestScheduler,
    poisson_arrivals,
    timer_service,
)
from repro.perf.analytical import InferenceTimer, PnmPerfModel
from repro.perf.simulator import AcceleratorSimulator
from repro.units import GB

OUTPUT_TOKENS = 256
NUM_INSTANCES = 4
NUM_REQUESTS = 48
OFFERED_UTILIZATION = 0.7
#: Mid-generation context for the arbiter's task length and the
#: simulator cross-check (same representative point as Fig. 3).
CONTEXT_FOR_GEN = 576
#: Concurrent host CXL.mem demand while the appliance serves (bytes/s).
HOST_DEMAND_BYTES_S = 100e9


def run(num_requests: int = NUM_REQUESTS,
        num_instances: int = NUM_INSTANCES) -> ExperimentResult:
    device = CXLPNMDevice()
    pnm = PnmPerfModel(device)
    timer = InferenceTimer(OPT_13B, pnm)

    # Scheduler layer: Poisson arrivals at 70% of appliance capacity.
    request_latency = timer.run(PAPER_INPUT_TOKENS,
                                OUTPUT_TOKENS).latency_s
    rate = OFFERED_UTILIZATION * num_instances / request_latency
    requests = [InferenceRequest(PAPER_INPUT_TOKENS, OUTPUT_TOKENS,
                                 request_id=i)
                for i in range(num_requests)]
    scheduler = RequestScheduler(timer_service(OPT_13B, pnm),
                                 num_instances=num_instances)
    stats = scheduler.run(requests,
                          poisson_arrivals(num_requests, rate, seed=0))

    # CXL layer: host bandwidth while PNM tasks of one gen-stage length
    # hammer the same memory.
    gen_stage_s = timer.gen_stage(CONTEXT_FOR_GEN + 1).time_s
    policies = compare_policies(
        memory_bandwidth=device.peak_memory_bandwidth,
        host_rate=HOST_DEMAND_BYTES_S / CACHELINE_BYTES,
        pnm_rate=HOST_DEMAND_BYTES_S / CACHELINE_BYTES,
        pnm_task_s=gen_stage_s)

    # Accelerator layer: instruction-level simulation of the same gen
    # stage, cross-checked against the analytical time above.
    program = timing_program(OPT_13B, batch_tokens=1,
                             ctx_prev=CONTEXT_FOR_GEN)
    sim = AcceleratorSimulator(device).run(program)

    rows: List[dict] = [{
        "metric": f"service p50 / p95 latency (s), DP={num_instances}",
        "value": stats.p50_latency_s,
        "extra": stats.p95_latency_s,
    }, {
        "metric": "service throughput (tok/s) / instance utilization",
        "value": stats.throughput_tokens_per_s,
        "extra": stats.instance_utilization,
    }, {
        "metric": "mean queue wait (s) / offered rate (req/s)",
        "value": stats.mean_queue_wait_s,
        "extra": rate,
    }]
    for policy in ArbitrationPolicy:
        pstats = policies[policy.value]
        rows.append({
            "metric": f"host bandwidth under load, {policy.value} (GB/s)",
            "value": pstats.bandwidth(Source.HOST, 1.0) / GB,
            "extra": pstats.host_blocked_s,
        })
    rows.append({
        "metric": "gen@577 stage time: simulator vs analytical (ms)",
        "value": sim.total_time_s * 1e3,
        "extra": gen_stage_s * 1e3,
    })
    return ExperimentResult(
        experiment_id="service",
        title=f"OPT-13B service level: {num_requests} Poisson requests "
              f"on a DP={num_instances} CXL-PNM appliance",
        rows=rows,
        columns=["metric", "value", "extra"],
        notes=[
            "Open-loop Poisson arrivals at 70% of appliance capacity; "
            "seed fixed, so results are deterministic.",
            "The blocking-poll row is the DIMM-PNM (D3) counterfactual: "
            "host traffic stalls for every PNM task.",
            "Run with --trace-out to see all three layers (scheduler, "
            "cxl, accelerator) on one simulated timeline.",
        ],
    )
