"""Service-level view of one CXL-PNM appliance under open-loop load.

The paper's figures are per-request; a capacity planner also needs the
*service* numbers: what latency distribution and sustained throughput a
CXL-PNM appliance delivers under Poisson arrivals, how much host
CXL.mem bandwidth survives while the accelerators are busy (the §V-A D3
arbiter at work), and whether the per-stage times feeding the queueing
model agree with the instruction-level simulator.  This experiment
stitches those three layers together:

* **scheduler** — FCFS over ``DP`` model instances serving OPT-13B
  requests (64 in / 256 out) at ~70% offered utilization;
* **cxl** — the hardware-WRR vs blocking-poll arbiter serving host
  traffic concurrently with PNM tasks of the measured gen-stage length;
* **accelerator** — the list scheduler run over a compiled OPT-13B gen
  stage, cross-checked against the analytical stage time.

On top of those, the **SLO sweep** drives the continuous-batching
engine's multi-tenant front end (see ``docs/SERVING.md``): Zipf-skewed
tenants split across an ``interactive`` class (higher priority and
weight, TTFT/TBT targets, SLO admission shedding) and a best-effort
``batch`` class, offered under each arrival shape in
:data:`~repro.llm.workload.ARRIVAL_SHAPES` at two device counts plus a
batch-heavy tenant mix.  Each cell reports goodput under SLO —
throughput counting only requests whose class targets were met — per
tenant class.  A final row replays the flash-crowd cell from a JSONL
trace file and checks the stats reproduce bit-identically.

Run with ``repro run service --trace-out trace.json`` to get all three
layers' spans on one simulated timeline.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Sequence, Tuple

from repro.accelerator.compiler import timing_program
from repro.accelerator.device import CXLPNMDevice
from repro.appliance.continuous import (
    ContinuousBatchScheduler,
    ContinuousBatchStats,
    TenantClass,
)
from repro.cxl.arbiter import ArbitrationPolicy, compare_policies
from repro.cxl.protocol import CACHELINE_BYTES, Source
from repro.experiments.report import ExperimentResult
from repro.llm.config import OPT_13B
from repro.llm.workload import (
    ARRIVAL_SHAPES,
    PAPER_INPUT_TOKENS,
    InferenceRequest,
    arrivals_for_shape,
    multi_tenant_workload,
    read_trace,
    write_trace,
)
from repro.obs.metrics import NULL_REGISTRY
from repro.appliance.scheduler import (
    RequestScheduler,
    poisson_arrivals,
    timer_service,
)
from repro.perf.analytical import (
    BatchStepTimer,
    InferenceTimer,
    PnmPerfModel,
)
from repro.perf.simulator import AcceleratorSimulator
from repro.units import GB

OUTPUT_TOKENS = 256
NUM_INSTANCES = 4
NUM_REQUESTS = 48
OFFERED_UTILIZATION = 0.7
#: Mid-generation context for the arbiter's task length and the
#: simulator cross-check (same representative point as Fig. 3).
CONTEXT_FOR_GEN = 576
#: Concurrent host CXL.mem demand while the appliance serves (bytes/s).
HOST_DEMAND_BYTES_S = 100e9

# -- SLO sweep configuration ----------------------------------------------
SLO_NUM_REQUESTS = 32
SLO_OUTPUT_TOKENS = 64
SLO_NUM_TENANTS = 6
SLO_ZIPF_SKEW = 1.1
SLO_SEED = 11
#: Offered rate relative to one exclusive instance's capacity per device;
#: past 1.0 so that fair-share, preemption, and SLO shedding all engage.
SLO_OVERLOAD = 3.0
SLO_DEVICE_COUNTS = (2, 4)
#: Tenant mixes: round-robin class assignment over ``tenant % len(mix)``.
SLO_MIXES = {
    "even": ("interactive", "batch"),
    "batch-heavy": ("interactive", "batch", "batch", "batch"),
}


def slo_classes(step: BatchStepTimer) -> Tuple[TenantClass, ...]:
    """Tenant classes with targets derived from the device's step costs.

    ``interactive`` outranks ``batch`` (strict priority tier) and gets
    3x its fair-share weight, a TTFT target of a few queued prefills,
    and a TBT target of several single-row decode steps; ``batch`` is
    best-effort with no targets, so its attainment is trivially 1.0.
    """
    prefill = step.prefill_s(PAPER_INPUT_TOKENS)
    decode = step.decode_step_s(1, PAPER_INPUT_TOKENS + 1)
    return (
        TenantClass("interactive", weight=3.0, priority=1,
                    ttft_target_s=4.0 * prefill,
                    tbt_target_s=8.0 * decode),
        TenantClass("batch", weight=1.0),
    )


def _slo_cell(step: BatchStepTimer, memory_bytes: int, mix: Sequence[str],
              shape: str, num_devices: int, rate: float
              ) -> "Tuple[ContinuousBatchStats, list, list]":
    """One sweep cell; returns (stats, requests, arrivals) for replay."""
    requests = multi_tenant_workload(
        SLO_NUM_REQUESTS, num_tenants=SLO_NUM_TENANTS, skew=SLO_ZIPF_SKEW,
        class_names=mix, seed=SLO_SEED,
        mean_input=PAPER_INPUT_TOKENS, mean_output=SLO_OUTPUT_TOKENS)
    arrivals = arrivals_for_shape(shape, SLO_NUM_REQUESTS,
                                  rate * num_devices, seed=SLO_SEED)
    # The FCFS layer owns the ambient scheduler.* metrics contract
    # (exactly NUM_REQUESTS requests); the sweep keeps its counters out
    # of that registry but still traces spans onto the shared timeline.
    scheduler = ContinuousBatchScheduler(
        step, OPT_13B, memory_bytes, num_devices=num_devices,
        classes=slo_classes(step), slo_admission=True,
        metrics=NULL_REGISTRY)
    return scheduler.run(requests, arrivals), requests, arrivals


def _slo_rows(step: BatchStepTimer, memory_bytes: int,
              rows: List[dict]) -> None:
    """Append the SLO sweep and the trace-replay check to ``rows``."""
    single = timer_service(OPT_13B, step.model)
    probe = InferenceRequest(PAPER_INPUT_TOKENS, SLO_OUTPUT_TOKENS)
    rate = SLO_OVERLOAD / single(probe)

    cells = [("even", shape, devices)
             for shape in ARRIVAL_SHAPES
             for devices in SLO_DEVICE_COUNTS]
    cells.append(("batch-heavy", "flash-crowd", max(SLO_DEVICE_COUNTS)))
    replay_source = None
    for mix_name, shape, devices in cells:
        stats, requests, arrivals = _slo_cell(
            step, memory_bytes, SLO_MIXES[mix_name], shape, devices, rate)
        label = f"slo {shape}/{mix_name} DP={devices}"
        rows.append({
            "metric": f"{label}: goodput / throughput (tok/s)",
            "value": stats.goodput_tokens_per_s,
            "extra": stats.throughput_tokens_per_s,
        })
        for cls, cell in sorted(stats.class_breakdown().items()):
            rows.append({
                "metric": f"{label} [{cls}]: goodput (tok/s) / attainment",
                "value": cell["goodput_tokens_per_s"],
                "extra": cell["slo_attainment"],
            })
        if (mix_name, shape, devices) == \
                ("even", "flash-crowd", max(SLO_DEVICE_COUNTS)):
            replay_source = (stats, requests, arrivals, devices)

    # Trace-replay check: round-trip the flash-crowd cell through a
    # JSONL trace file and re-run; the stats must be bit-identical.
    stats, requests, arrivals, devices = replay_source
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "slo_trace.jsonl")
        write_trace(path, requests, arrivals)
        replayed_requests, replayed_arrivals = read_trace(path)
    replayed = ContinuousBatchScheduler(
        step, OPT_13B, memory_bytes, num_devices=devices,
        classes=slo_classes(step), slo_admission=True,
        metrics=NULL_REGISTRY,
    ).run(replayed_requests, replayed_arrivals)
    rows.append({
        "metric": "slo trace replay bit-identical (1=yes) / requests",
        "value": float(replayed.as_dict() == stats.as_dict()
                       and replayed.class_breakdown()
                       == stats.class_breakdown()),
        "extra": float(len(replayed_requests)),
    })


def run(num_requests: int = NUM_REQUESTS,
        num_instances: int = NUM_INSTANCES) -> ExperimentResult:
    device = CXLPNMDevice()
    pnm = PnmPerfModel(device)
    timer = InferenceTimer(OPT_13B, pnm)

    # Scheduler layer: Poisson arrivals at 70% of appliance capacity.
    request_latency = timer.run(PAPER_INPUT_TOKENS,
                                OUTPUT_TOKENS).latency_s
    rate = OFFERED_UTILIZATION * num_instances / request_latency
    requests = [InferenceRequest(PAPER_INPUT_TOKENS, OUTPUT_TOKENS,
                                 request_id=i)
                for i in range(num_requests)]
    scheduler = RequestScheduler(timer_service(OPT_13B, pnm),
                                 num_instances=num_instances)
    stats = scheduler.run(requests,
                          poisson_arrivals(num_requests, rate, seed=0))

    # CXL layer: host bandwidth while PNM tasks of one gen-stage length
    # hammer the same memory.
    gen_stage_s = timer.gen_stage(CONTEXT_FOR_GEN + 1).time_s
    policies = compare_policies(
        memory_bandwidth=device.peak_memory_bandwidth,
        host_rate=HOST_DEMAND_BYTES_S / CACHELINE_BYTES,
        pnm_rate=HOST_DEMAND_BYTES_S / CACHELINE_BYTES,
        pnm_task_s=gen_stage_s)

    # Accelerator layer: instruction-level simulation of the same gen
    # stage, cross-checked against the analytical time above.
    program = timing_program(OPT_13B, batch_tokens=1,
                             ctx_prev=CONTEXT_FOR_GEN)
    sim = AcceleratorSimulator(device).run(program)

    rows: List[dict] = [{
        "metric": f"service p50 / p95 latency (s), DP={num_instances}",
        "value": stats.p50_latency_s,
        "extra": stats.p95_latency_s,
    }, {
        "metric": "service throughput (tok/s) / instance utilization",
        "value": stats.throughput_tokens_per_s,
        "extra": stats.instance_utilization,
    }, {
        "metric": "mean queue wait (s) / offered rate (req/s)",
        "value": stats.mean_queue_wait_s,
        "extra": rate,
    }]
    for policy in ArbitrationPolicy:
        pstats = policies[policy.value]
        rows.append({
            "metric": f"host bandwidth under load, {policy.value} (GB/s)",
            "value": pstats.bandwidth(Source.HOST, 1.0) / GB,
            "extra": pstats.host_blocked_s,
        })
    rows.append({
        "metric": "gen@577 stage time: simulator vs analytical (ms)",
        "value": sim.total_time_s * 1e3,
        "extra": gen_stage_s * 1e3,
    })

    # SLO sweep: multi-tenant continuous batching under each arrival
    # shape, with goodput-under-SLO per tenant class and a trace-replay
    # bit-identity check.
    _slo_rows(BatchStepTimer(OPT_13B, pnm), device.memory_capacity, rows)
    return ExperimentResult(
        experiment_id="service",
        title=f"OPT-13B service level: {num_requests} Poisson requests "
              f"on a DP={num_instances} CXL-PNM appliance",
        rows=rows,
        columns=["metric", "value", "extra"],
        notes=[
            "Open-loop Poisson arrivals at 70% of appliance capacity; "
            "seed fixed, so results are deterministic.",
            "The blocking-poll row is the DIMM-PNM (D3) counterfactual: "
            "host traffic stalls for every PNM task.",
            "Run with --trace-out to see all three layers (scheduler, "
            "cxl, accelerator) on one simulated timeline.",
            "SLO rows: Zipf-skewed tenants split into 'interactive' "
            "(priority tier 1, weight 3, TTFT/TBT targets, admission "
            "shedding) and best-effort 'batch'; goodput counts only "
            "output tokens of requests that met their class targets.",
            "The trace-replay row re-runs the flash-crowd cell from a "
            "JSONL trace round-trip; 1.0 means the stats (including "
            "the per-class breakdown) reproduced bit-identically.",
        ],
    )
