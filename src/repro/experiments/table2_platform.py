"""Table II: CXL-PNM platform architecture and operating parameters."""

from __future__ import annotations

from repro.accelerator.device import CXLPNMDevice
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    device = CXLPNMDevice()
    table = device.table2()
    rows = [{"parameter": key, "value": value}
            for key, value in table.items()]
    return ExperimentResult(
        experiment_id="table2",
        title="CXL-PNM platform architecture and operating parameters",
        rows=rows,
        anchors={
            "num_pes": 2048,
            "peak_tflops": 4.09,
            "adder_tree": "2048 multipliers / 2032 adders",
            "register_files_mb": 63,
            "dma_buffers_mb": 1,
            "io_width_dram_sram": "1024 / 16384",
            "technology": "7 nm / 1.0 GHz / 1.0 V",
            "controller_max_watts": 90,
            "dram_total_watts": 40,
            "platform_total_watts": 150,
        },
    )
