"""Fig. 4: GPU utilization and execution-time breakdown, OPT-6.7B.

With 32 input tokens and 1024 output tokens, the paper observes (a) GPU
utilization up to 94% during the sum stage's GEMMs but under 25% during
the gen stages' GEMVs, and (b) 83% of total inference time spent in GEMV.
This experiment regenerates both panels from the kernel model.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.gpu.device import A100_40G
from repro.gpu.kernels import GpuKernelModel
from repro.llm.config import OPT_6_7B
from repro.llm.graph import gen_stage_ops, sum_stage_ops
from repro.llm.ops import OpKind

INPUT_TOKENS = 32
OUTPUT_TOKENS = 1024


def run() -> ExperimentResult:
    kernels = GpuKernelModel(A100_40G)

    def weighted_utilization(ops) -> float:
        times = [(kernels.op_time(op), kernels.op_reported_utilization(op))
                 for op in ops]
        total = sum(t for t, _ in times)
        return sum(t * u for t, u in times) / total

    sum_ops = sum_stage_ops(OPT_6_7B, INPUT_TOKENS)
    sum_time = sum(kernels.op_time(op) for op in sum_ops)
    sum_util = weighted_utilization(sum_ops)

    gemv_time = gemm_time = vector_time = 0.0
    gen_time = 0.0
    gen_util_acc = 0.0
    for step in range(1, OUTPUT_TOKENS):
        ops = gen_stage_ops(OPT_6_7B, INPUT_TOKENS + step)
        stage = sum(kernels.op_time(op) for op in ops)
        gen_time += stage
        gen_util_acc += stage * weighted_utilization(ops)
        for op in ops:
            t = kernels.op_time(op)
            if op.kind is OpKind.GEMV:
                gemv_time += t
            elif op.kind is OpKind.GEMM:
                gemm_time += t
            else:
                vector_time += t
    for op in sum_ops:
        t = kernels.op_time(op)
        if op.kind is OpKind.GEMM:
            gemm_time += t
        elif op.kind is OpKind.GEMV:
            gemv_time += t
        else:
            vector_time += t

    total = sum_time + gen_time
    rows = [
        {"metric": "sum-stage GPU utilization", "value": sum_util},
        {"metric": "gen-stage GPU utilization",
         "value": gen_util_acc / gen_time},
        {"metric": "GEMV share of execution time", "value": gemv_time / total},
        {"metric": "GEMM share of execution time", "value": gemm_time / total},
        {"metric": "other-kernel share of execution time",
         "value": vector_time / total},
        {"metric": "sum-stage time (ms)", "value": sum_time * 1e3},
        {"metric": "gen-stage total time (s)", "value": gen_time},
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="OPT-6.7B on A100: utilization and time breakdown "
              f"(L_in={INPUT_TOKENS}, {OUTPUT_TOKENS} output tokens)",
        rows=rows,
        anchors={
            "paper_sum_utilization": 0.94,
            "paper_gen_utilization_below": 0.25,
            "paper_gemv_time_share": 0.83,
        },
        notes=[
            "GPU utilization is the occupancy-style metric nvidia-smi "
            "reports, modelled per operator class, weighted by kernel "
            "time.",
        ],
    )
