"""FCFS-exclusive vs continuous batching under open-loop Poisson load.

The paper's §VII batching discussion (via its ref [10]) argues that
batched generation turns the bandwidth-bound GEMV weight term into
small-batch GEMM.  This experiment measures what that is worth at the
*service* level: the same OPT-13B request stream is offered, at an
arrival rate past the single-stream capacity, to

* the FCFS scheduler serving each request on an exclusive instance, and
* the continuous-batching engine re-forming the batch every decode step
  under KV admission control,

on both the CXL-PNM and A100 device models.  A third scenario starves
the KV budget on purpose to show admission control binding: occupancy
never exceeds ``max_batch_for_memory`` and the latency tail absorbs the
queueing instead.

On the device models the two platforms split: the A100 streams weights
once per step, so decode cost is nearly batch-invariant and throughput
scales with occupancy; the CXL-PNM's 64-row PE array makes small-batch
GEMM cost near-linear until the array fills, so its win is real but
bounded — the DFX-lineage trade-off the paper discusses.

Run with ``repro run continuous-batching --trace-out trace.json`` for
per-iteration batch spans and per-request slot timelines.
"""

from __future__ import annotations

from typing import List

from repro.accelerator.device import CXLPNMDevice
from repro.appliance.continuous import (
    ContinuousBatchScheduler,
    ContinuousBatchStats,
)
from repro.appliance.scheduler import (
    RequestScheduler,
    ServiceStats,
    poisson_arrivals,
    timer_service,
)
from repro.experiments.report import ExperimentResult
from repro.gpu import A100_40G
from repro.llm.batching import max_batch_for_memory
from repro.llm.config import OPT_13B
from repro.llm.kvcache import peak_kv_bytes
from repro.llm.workload import PAPER_INPUT_TOKENS, InferenceRequest
from repro.perf.analytical import (
    BatchStepTimer,
    GpuPerfModel,
    PnmPerfModel,
)
from repro.tco.energy import daily_weight_traffic_bytes

MODEL = OPT_13B
NUM_REQUESTS = 32
OUTPUT_TOKENS = 64
#: Offered load relative to one exclusive instance's capacity; > 1 means
#: FCFS-exclusive saturates and its queue grows without bound.
OVERLOAD_FACTOR = 4.0
#: KV budget of the starved scenario, in concurrent requests.
STARVED_BATCH = 4
ARRIVAL_SEED = 0


def _workload() -> List[InferenceRequest]:
    return [InferenceRequest(PAPER_INPUT_TOKENS, OUTPUT_TOKENS,
                             request_id=i)
            for i in range(NUM_REQUESTS)]


def compare_device(perf_model, memory_bytes: int,
                   max_batch: int = None
                   ) -> "tuple[ServiceStats, ContinuousBatchStats, float]":
    """Run both schedulers on one device; returns (fcfs, continuous, rate)."""
    requests = _workload()
    service = timer_service(MODEL, perf_model)
    rate = OVERLOAD_FACTOR / service(requests[0])
    arrivals = poisson_arrivals(NUM_REQUESTS, rate, seed=ARRIVAL_SEED)
    fcfs = RequestScheduler(service, num_instances=1, config=MODEL,
                            memory_bytes=memory_bytes
                            ).run(requests, arrivals)
    step = BatchStepTimer(MODEL, perf_model)
    continuous = ContinuousBatchScheduler(
        step, MODEL, memory_bytes, max_batch=max_batch
    ).run(requests, arrivals)
    return fcfs, continuous, rate


def run() -> ExperimentResult:
    pnm_device = CXLPNMDevice()
    scenarios = [
        ("CXL-PNM", PnmPerfModel(pnm_device), pnm_device.memory_capacity),
        ("A100-40G", GpuPerfModel(A100_40G), A100_40G.memory_bytes),
    ]
    total_ctx = PAPER_INPUT_TOKENS + OUTPUT_TOKENS
    rows: List[dict] = []
    for name, perf, memory in scenarios:
        fcfs, cont, rate = compare_device(perf, memory)
        kv_cap = max_batch_for_memory(MODEL, memory, total_ctx)
        rows.append({
            "scenario": f"{name} throughput (tok/s), fcfs vs continuous",
            "fcfs": fcfs.throughput_tokens_per_s,
            "continuous": cont.throughput_tokens_per_s,
            "extra": cont.throughput_tokens_per_s
            / fcfs.throughput_tokens_per_s,
        })
        rows.append({
            "scenario": f"{name} mean latency (s), fcfs vs continuous",
            "fcfs": fcfs.mean_latency_s,
            "continuous": cont.mean_latency_s,
            "extra": rate,
        })
        rows.append({
            "scenario": f"{name} continuous TTFT / TBT (s)",
            "fcfs": float("nan"),
            "continuous": cont.mean_ttft_s,
            "extra": cont.mean_tbt_s,
        })
        rows.append({
            "scenario": f"{name} peak occupancy / KV batch cap",
            "fcfs": float(fcfs.num_instances),
            "continuous": float(cont.max_occupancy),
            "extra": float(kv_cap),
        })

    # Admission control binding: KV room for only STARVED_BATCH requests.
    starved_memory = MODEL.param_bytes + STARVED_BATCH * peak_kv_bytes(
        MODEL, PAPER_INPUT_TOKENS, OUTPUT_TOKENS)
    _fcfs, starved, _rate = compare_device(
        PnmPerfModel(pnm_device), starved_memory)
    rows.append({
        "scenario": "CXL-PNM starved KV: peak occupancy / admission cap",
        "fcfs": float("nan"),
        "continuous": float(starved.max_occupancy),
        "extra": float(max_batch_for_memory(MODEL, starved_memory,
                                            total_ctx)),
    })

    # Quantization ablation: the same stream served with fp16-modeled
    # weights ('fcfs' column) and with the int8 weight path
    # ('continuous' column).  Decode steps are bandwidth-bound, so the
    # halved weight stream lifts service throughput; admission budgets
    # stay on the unquantized config (KV caches keep full width).
    requests = _workload()
    service = timer_service(MODEL, PnmPerfModel(pnm_device))
    rate = OVERLOAD_FACTOR / service(requests[0])
    arrivals = poisson_arrivals(NUM_REQUESTS, 4 * rate, seed=ARRIVAL_SEED)
    dtype_runs = {}
    for label, cfg in (("fp16", MODEL), ("int8", MODEL.with_dtype(1))):
        step = BatchStepTimer(cfg, PnmPerfModel(pnm_device))
        dtype_runs[label] = ContinuousBatchScheduler(
            step, MODEL, pnm_device.memory_capacity,
            num_devices=4).run(requests, arrivals)
    fp16, int8 = dtype_runs["fp16"], dtype_runs["int8"]
    rows.append({
        "scenario": "CXL-PNM x4 throughput (tok/s), fp16 vs int8",
        "fcfs": fp16.throughput_tokens_per_s,
        "continuous": int8.throughput_tokens_per_s,
        "extra": int8.throughput_tokens_per_s
        / fp16.throughput_tokens_per_s,
    })
    rows.append({
        "scenario": "CXL-PNM x4 mean TBT (s), fp16 vs int8",
        "fcfs": fp16.mean_tbt_s,
        "continuous": int8.mean_tbt_s,
        "extra": fp16.mean_tbt_s / int8.mean_tbt_s,
    })
    # TCO view of the same ablation: daily tokens at each operating
    # point and the parameter-stream traffic funding them (element size
    # is the only difference — tco.energy.daily_weight_traffic_bytes is
    # shared by both dtypes).
    fp16_tokens_day = fp16.throughput_tokens_per_s * 86_400.0
    int8_tokens_day = int8.throughput_tokens_per_s * 86_400.0
    rows.append({
        "scenario": "CXL-PNM x4 TCO: tokens/day (M), fp16 vs int8",
        "fcfs": fp16_tokens_day / 1e6,
        "continuous": int8_tokens_day / 1e6,
        "extra": int8_tokens_day / fp16_tokens_day,
    })
    fp16_traffic = daily_weight_traffic_bytes(fp16_tokens_day,
                                              MODEL.num_params,
                                              elem_bytes=2)
    int8_traffic = daily_weight_traffic_bytes(int8_tokens_day,
                                              MODEL.num_params,
                                              elem_bytes=1)
    rows.append({
        "scenario": "CXL-PNM x4 TCO: weight stream (PB/day), fp16 vs int8",
        "fcfs": fp16_traffic / 1e15,
        "continuous": int8_traffic / 1e15,
        "extra": int8_traffic / fp16_traffic,
    })
    return ExperimentResult(
        experiment_id="continuous-batching",
        title=f"{MODEL.name} continuous batching vs FCFS-exclusive at "
              f"{OVERLOAD_FACTOR:.0f}x single-stream load",
        rows=rows,
        columns=["scenario", "fcfs", "continuous", "extra"],
        notes=[
            "Open-loop Poisson arrivals (fixed seed) at "
            f"{OVERLOAD_FACTOR:.0f}x one exclusive instance's capacity; "
            "identical arrival times feed both schedulers per device.",
            "Throughput 'extra' column is the continuous/fcfs speedup; "
            "latency 'extra' is the offered rate (req/s).",
            "The A100 streams weights once per decode step, so its "
            "speedup tracks occupancy; the CXL-PNM's 64-row PE array "
            "charges small-batch GEMM near-linearly until it fills.",
            "The starved-KV row shows admission control binding: "
            "occupancy stops at the KV budget, never beyond it.",
            "Quantization rows serve the same 4-replica stream with "
            "fp16-modeled weights ('fcfs' column) and the int8 weight "
            "path ('continuous' column): decode is bandwidth-bound, so "
            "halving the weight stream lifts throughput and daily "
            "tokens while moving half the parameter bytes per token "
            "('extra' is the int8/fp16 ratio).",
        ],
    )
