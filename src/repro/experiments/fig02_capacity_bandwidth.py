"""Fig. 2: memory capacity and bandwidth the GPU needs per model size.

The paper plots, for growing GPT models, the memory capacity to hold the
FP16 parameters and the memory bandwidth required to generate one token
every 200 ms.  A gen stage streams every parameter byte plus the KV cache
once per token, so required bandwidth is (streamed bytes per token) /
latency budget.  GPT-3.5 lands at 326 GB and 1.75 TB/s — beyond a single
A100's 40-80 GB and 1.55 TB/s, the motivating gap.
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import ExperimentResult
from repro.llm.config import (
    GPT3_13B,
    GPT3_175B,
    GPT3_2_7B,
    GPT3_6_7B,
    GPT3_LARGE,
    GPT3_MEDIUM,
    GPT3_SMALL,
    GPT3_XL,
    LLMConfig,
)
from repro.llm.graph import gen_stage_ops
from repro.units import GB, GiB, TB

#: Latency constraint of the paper's figure.
LATENCY_BUDGET_S = 0.200

#: Sequence point at which the figure evaluates the KV traffic.
SEQUENCE_LENGTH = 2048

FIG2_MODELS = (GPT3_SMALL, GPT3_MEDIUM, GPT3_LARGE, GPT3_XL, GPT3_2_7B,
               GPT3_6_7B, GPT3_13B, GPT3_175B)


def required_bandwidth(config: LLMConfig, context_len: int = SEQUENCE_LENGTH,
                       budget_s: float = LATENCY_BUDGET_S) -> float:
    """Bytes/s the device must stream to hit the per-token budget."""
    ops = gen_stage_ops(config, context_len)
    streamed = sum(op.weight_bytes for op in ops)
    return streamed / budget_s


def run() -> ExperimentResult:
    rows: List[dict] = []
    for config in FIG2_MODELS:
        rows.append({
            "model": config.name,
            "params_B": config.num_params / 1e9,
            "capacity_GiB": config.param_bytes / GiB,
            "required_bw_TB_s": required_bandwidth(config) / TB,
        })
    return ExperimentResult(
        experiment_id="fig2",
        title="Capacity and bandwidth for 200 ms/token generation",
        rows=rows,
        anchors={
            "gpt3.5_capacity_gb": 326.0,
            "gpt3.5_required_bw_tb_s": 1.75,
            "a100_capacity_gb": 40.0,
            "a100_bandwidth_tb_s": 1.55,
        },
        notes=[
            "Capacity is FP16 parameter bytes (the paper quotes GiB); "
            "bandwidth is parameter+KV bytes streamed per gen token over "
            "the 200 ms budget at a 2048-token context.",
        ],
    )
