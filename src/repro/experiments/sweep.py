"""Parallel experiment sweeps over a process pool.

The paper's headline artifacts come from sweeping the simulator over many
(model, context, batch) points (§VII); the experiments are independent,
so the sweep fans them out across worker processes.  Results always come
back in the order the experiment ids were given — ``ProcessPoolExecutor
.map`` collects by input position, not completion — and every experiment
seeds its own randomness, so a parallel sweep is bit-identical to a
serial one (tests assert it).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.report import ExperimentResult


def _run_one(experiment_id: str) -> ExperimentResult:
    # Module-level so it pickles under the spawn start method.
    from repro.experiments.registry import run_experiment
    return run_experiment(experiment_id)


def run_sweep(experiment_ids: Sequence[str],
              jobs: Optional[int] = None) -> List[ExperimentResult]:
    """Run experiments, optionally fanning out across processes.

    Args:
        experiment_ids: Registry ids, in the order results should come
            back.
        jobs: Worker processes.  ``None`` picks ``min(len(ids),
            cpu_count)``; ``1`` runs everything in-process (no pool).

    Returns:
        One :class:`ExperimentResult` per id, in input order.
    """
    from repro.experiments.registry import EXPERIMENTS, run_experiment
    ids = list(experiment_ids)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiments {unknown!r}; known: {known}")
    if jobs is not None and jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if jobs is None:
        jobs = min(len(ids), os.cpu_count() or 1)
    if jobs <= 1 or len(ids) <= 1:
        return [run_experiment(eid) for eid in ids]
    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        return list(pool.map(_run_one, ids))
