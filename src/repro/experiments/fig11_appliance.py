"""Fig. 11: 8-GPU appliance vs 8-device CXL-PNM appliance on OPT-66B.

The GPU appliance must use model parallelism (TP=8: OPT-66B overflows a
single 40 GB A100); the CXL-PNM appliance chooses any DP x MP split of
its eight 512 GB devices.  The three CXL-PNM configurations the paper
discusses:

* DP=8 (max data parallelism): +53% throughput, 4.4x energy efficiency;
* DP=4 x MP=2: -44% latency vs DP=8, +36% throughput, 3.3x energy;
* MP=8 (max model parallelism): -23% latency, +31% throughput, 2.9x
  energy vs the GPU appliance.
"""

from __future__ import annotations

from typing import List

from repro.appliance.cluster import GpuAppliance, PnmAppliance
from repro.appliance.parallelism import ParallelismPlan
from repro.experiments.report import ExperimentResult
from repro.gpu.device import A100_40G
from repro.llm.config import OPT_66B
from repro.llm.workload import PAPER_INPUT_TOKENS
import repro.perf.calibration as cal
from repro.perf.metrics import relative_delta

OUTPUT_TOKENS = 1024

PNM_PLANS = (ParallelismPlan(8, 1), ParallelismPlan(4, 2),
             ParallelismPlan(2, 4), ParallelismPlan(1, 8))


def run(output_tokens: int = OUTPUT_TOKENS) -> ExperimentResult:
    gpu_appliance = GpuAppliance(A100_40G, num_devices=8)
    pnm_appliance = PnmAppliance(num_devices=8)
    baseline = gpu_appliance.run(OPT_66B, ParallelismPlan(1, 8),
                                 PAPER_INPUT_TOKENS, output_tokens)
    rows: List[dict] = [{
        "config": baseline.name,
        "latency_s": baseline.latency_s,
        "throughput_tok_s": baseline.throughput_tokens_per_s,
        "tokens_per_j": baseline.tokens_per_joule,
        "power_w": baseline.appliance_power_w,
        "latency_delta": 0.0,
        "throughput_delta": 0.0,
        "energy_eff_ratio": 1.0,
    }]
    dp8_latency = None
    for plan in PNM_PLANS:
        result = pnm_appliance.run(OPT_66B, plan, PAPER_INPUT_TOKENS,
                                   output_tokens)
        if plan.data_parallel == 8:
            dp8_latency = result.latency_s
        rows.append({
            "config": result.name,
            "latency_vs_dp8": 0.0,
            "latency_s": result.latency_s,
            "throughput_tok_s": result.throughput_tokens_per_s,
            "tokens_per_j": result.tokens_per_joule,
            "power_w": result.appliance_power_w,
            "latency_delta": relative_delta(result.latency_s,
                                            baseline.latency_s),
            "throughput_delta": relative_delta(
                result.throughput_tokens_per_s,
                baseline.throughput_tokens_per_s),
            "energy_eff_ratio": (result.tokens_per_joule
                                 / baseline.tokens_per_joule),
        })
    if dp8_latency:
        for row in rows:
            if "MP=2" in row["config"]:
                row["latency_vs_dp8"] = relative_delta(row["latency_s"],
                                                       dp8_latency)
    return ExperimentResult(
        experiment_id="fig11",
        title=f"OPT-66B appliances: 8x A100 (TP=8) vs 8x CXL-PNM "
              f"({output_tokens} output tokens)",
        rows=rows,
        anchors={
            "dp8_throughput_delta": cal.PAPER_ANCHORS[
                "fig11_dp8_throughput_delta"],
            "dp8_energy_ratio": cal.PAPER_ANCHORS["fig11_dp8_energy_ratio"],
            "dp4mp2_latency_vs_dp8": cal.PAPER_ANCHORS[
                "fig11_dp4mp2_latency_vs_dp8"],
            "dp4mp2_throughput_delta": cal.PAPER_ANCHORS[
                "fig11_dp4mp2_throughput_delta"],
            "mp8_latency_delta": cal.PAPER_ANCHORS["fig11_mp8_latency_delta"],
            "mp8_throughput_delta": cal.PAPER_ANCHORS[
                "fig11_mp8_throughput_delta"],
            "mp8_energy_ratio": cal.PAPER_ANCHORS["fig11_mp8_energy_ratio"],
        },
    )
