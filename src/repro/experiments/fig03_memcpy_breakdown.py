"""Fig. 3: kernel vs memcpy time for OPT-30B on a 40 GB A100.

OPT-30B's ~60 GB of FP16 parameters overflow the GPU, so a DeepSpeed/
FlexGen-style framework streams weights from host memory over PCIe for
every stage; the paper measures ~99% of execution time going to those
copies.  This experiment reproduces the breakdown with the offload model
and adds a pinned-buffer ablation.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.gpu.device import A100_40G
from repro.gpu.kernels import GpuKernelModel
from repro.gpu.offload import OffloadModel
from repro.llm.config import OPT_30B
from repro.llm.graph import gen_stage_ops, sum_stage_ops
import repro.perf.calibration as cal

INPUT_TOKENS = 64
CONTEXT_FOR_GEN = 576  # representative mid-generation context


def run() -> ExperimentResult:
    kernels = GpuKernelModel(A100_40G)
    rows = []
    for label, h2d in (("pageable", cal.PCIE_H2D_PAGEABLE_BYTES_S),
                       ("pinned", cal.PCIE_H2D_PINNED_BYTES_S)):
        offload = OffloadModel(spec=A100_40G, config=OPT_30B,
                               h2d_bandwidth=h2d)
        for stage, ops in (
                ("sum", sum_stage_ops(OPT_30B, INPUT_TOKENS)),
                ("gen", gen_stage_ops(OPT_30B, CONTEXT_FOR_GEN))):
            total = offload.stage_time(ops, kernels)
            kernel_time = sum(kernels.op_time(op) for op in ops)
            memcpy_frac = offload.memcpy_fraction(ops, kernels)
            rows.append({
                "transfer": label,
                "stage": stage,
                "stage_time_ms": total * 1e3,
                "kernel_time_ms": kernel_time * 1e3,
                "memcpy_fraction": memcpy_frac,
                "streamed_GB": offload.streamed_bytes_per_stage / 1e9,
            })
    return ExperimentResult(
        experiment_id="fig3",
        title="OPT-30B on A100-40G: kernel vs host-to-device copy time",
        rows=rows,
        anchors={"paper_memcpy_fraction": 0.99},
        notes=[
            "The paper measures pageable PyTorch transfers; the pinned "
            "rows are our ablation showing the bottleneck persists even "
            "at 3x the copy bandwidth.",
        ],
    )
