"""Table I: DDR5 / GDDR6 / HBM3 / LPDDR5X CXL memory module comparison.

Every capacity/bandwidth/I/O row is *derived* from per-pin rates, package
composition, and FHHL form-factor constraints (board sites, controller
trace budget, SiP limits) — the same derivation §IV walks through.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.memory.module import table1_rows


def run() -> ExperimentResult:
    rows = []
    for row in table1_rows():
        rows.append({
            "technology": row["technology"],
            "bw_per_pin_Gbps": row["bandwidth_per_pin_gbps"],
            "io_per_pkg": row["io_width_per_package"],
            "bw_per_pkg_GB_s": row["bandwidth_per_package_gb_s"],
            "cap_per_pkg_GB": row["capacity_per_package_gb"],
            "pkgs_per_module": row["packages_per_module"],
            "io_per_module": row["io_width_per_module"],
            "bw_per_module_GB_s": row["bandwidth_per_module_gb_s"],
            "cap_per_module_GB": row["capacity_per_module_gb"],
            "core_V": row["core_voltage"],
            "io_V": row["io_voltage"],
            "power_norm": row["power_per_module_normalized"],
        })
    return ExperimentResult(
        experiment_id="table1",
        title="CXL memory modules per DRAM technology (FHHL form factor)",
        rows=rows,
        anchors={
            "lpddr5x_module": "512 GB / 1.1 TB/s",
            "ddr5_module": "512 GB / 89.6 GB/s",
            "gddr6_module": "32 GB / 1.5 TB/s",
            "hbm3_module": "80 GB / 4.1 TB/s",
        },
        notes=[
            "Normalized module power is carried from the paper's "
            "datasheet-based row; all other rows are derived from the "
            "packaging model.",
        ],
    )
