"""Table III: hardware and operating cost comparison.

Projects the Fig. 11 appliance operating points to continuous daily
service: tokens/day, kWh/day, electricity dollars (Idaho rate), CO2, and
the cost/CO2 efficiency metrics.  The paper's GPU appliance runs OPT-66B
at TP=8; the CXL-PNM appliance at DP=8.
"""

from __future__ import annotations

from repro.appliance.cluster import GpuAppliance, PnmAppliance
from repro.appliance.parallelism import ParallelismPlan
from repro.experiments.report import ExperimentResult
from repro.gpu.device import A100_40G
from repro.llm.config import OPT_66B
from repro.llm.workload import PAPER_INPUT_TOKENS
import repro.perf.calibration as cal
from repro.tco.cost import cost_summary
from repro.tco.energy import daily_operation

OUTPUT_TOKENS = 1024


def run() -> ExperimentResult:
    gpu_appliance = GpuAppliance(A100_40G, num_devices=8)
    pnm_appliance = PnmAppliance(num_devices=8)
    gpu = gpu_appliance.run(OPT_66B, ParallelismPlan(1, 8),
                            PAPER_INPUT_TOKENS, OUTPUT_TOKENS)
    pnm = pnm_appliance.run(OPT_66B, ParallelismPlan(8, 1),
                            PAPER_INPUT_TOKENS, OUTPUT_TOKENS)
    summaries = [
        cost_summary(daily_operation(gpu), gpu_appliance.hardware_cost_usd),
        cost_summary(daily_operation(pnm), pnm_appliance.hardware_cost_usd),
    ]
    rows = []
    for s in summaries:
        rows.append({
            "appliance": s.name,
            "hardware_usd": s.hardware_cost_usd,
            "Mtokens_per_day": s.tokens_per_day / 1e6,
            "kwh_per_day": s.kwh_per_day,
            "usd_per_day": s.operating_cost_usd_per_day,
            "co2_kg_per_day": s.co2_kg_per_day,
            "Mtokens_per_usd": s.cost_efficiency_tokens_per_usd / 1e6,
            "Mtokens_per_kg": s.co2_efficiency_tokens_per_kg / 1e6,
            "tco_Mtok_per_usd_3y": s.tco_tokens_per_usd(3.0) / 1e6,
        })
    gpu_s, pnm_s = summaries
    rows.append({
        "appliance": "ratio (GPU / CXL-PNM)",
        "hardware_usd": gpu_s.hardware_cost_usd / pnm_s.hardware_cost_usd,
        "kwh_per_day": gpu_s.kwh_per_day / pnm_s.kwh_per_day,
        "usd_per_day": (gpu_s.operating_cost_usd_per_day
                        / pnm_s.operating_cost_usd_per_day),
    })
    return ExperimentResult(
        experiment_id="table3",
        title="Hardware and operating costs (OPT-66B service)",
        rows=rows,
        anchors={
            "gpu_tokens_per_day": cal.PAPER_ANCHORS[
                "table3_gpu_tokens_per_day"],
            "pnm_tokens_per_day": cal.PAPER_ANCHORS[
                "table3_pnm_tokens_per_day"],
            "gpu_kwh_per_day": cal.PAPER_ANCHORS["table3_gpu_kwh_per_day"],
            "pnm_kwh_per_day": cal.PAPER_ANCHORS["table3_pnm_kwh_per_day"],
            "gpu_cost_per_day": cal.PAPER_ANCHORS["table3_gpu_cost_per_day"],
            "pnm_cost_per_day": cal.PAPER_ANCHORS["table3_pnm_cost_per_day"],
            "hardware_ratio": 1.42,
            "energy_ratio": 2.8,
        },
        notes=[
            "The 3-year TCO column is our extension: amortized hardware "
            "plus electricity.",
        ],
    )
