"""§IX RAS under injected faults: correct, retry, scrub, fail over.

The paper's §IX argues LPDDR5X-based CXL-PNM is datacenter-ready
because every fault class has a containment story: inline SECDED ECC
corrects single-bit upsets transparently, periodic ECS scrubbing keeps
them from pairing into uncorrectable errors, the CXL link layer replays
CRC-errored flits from its retry buffer, and the serving layer treats a
whole device as a failure domain.  This experiment runs the same chaos
workload (functional generation + CXL.mem readback + continuous-batch
serving on two devices) under escalating :class:`~repro.faults.plan.
FaultPlan` schedules and tabulates what each mechanism absorbed:

* ``no-faults`` — the control row: zero counts everywhere, and the
  serving numbers to compare the degraded rows against;
* ``paper-ix`` — the default §IX schedule (low CRC rate, upset drizzle
  with scrubbing, occasional transient launch fault, one device stall
  and one mid-run device failure);
* ``heavy`` — the same mechanisms under 10x pressure, where the
  latency cost of resilience becomes visible in the serving tail.

Every row's requests still complete — graceful degradation means the
service reports higher latency, not lost work — until capacity itself
is gone (a permanently failed device shrinks the fleet, and the
requeued requests pay the failover latency the last column shows).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.report import ExperimentResult
from repro.faults.chaos_harness import ChaosConfig, run_chaos
from repro.faults.plan import FaultPlan, paper_section_ix_plan

SEED = 0


def _scenarios() -> List[Tuple[str, FaultPlan]]:
    heavy = (FaultPlan(seed=SEED)
             .with_link_errors(crc_error_rate=2e-2)
             .with_memory_upsets(upsets_per_tick=2.0,
                                 scrub_every_ticks=4)
             .with_launch_faults(transient_rate=0.2, max_retries=5)
             .with_device_stall(at_s=2.0, duration_s=5.0, device=0)
             .with_device_failure(at_s=8.0, device=1))
    return [
        ("no-faults", FaultPlan.empty(seed=SEED)),
        ("paper-ix", paper_section_ix_plan(seed=SEED)),
        ("heavy", heavy),
    ]


def run() -> ExperimentResult:
    config = ChaosConfig()
    rows = []
    for name, plan in _scenarios():
        report = run_chaos(plan, config)
        counters = report.counters
        serving = report.serving
        rows.append({
            "scenario": name,
            "gen outcome": report.generation_outcome,
            "crc errs": int(counters["link_crc_errors"]),
            "replays": int(counters["link_replays"]),
            "corrected": int(counters["mem_corrected"]),
            "uncorrectable": int(counters["mem_uncorrectable"]),
            "retries": int(counters["launch_retries"]),
            "failovers": int(serving["failovers"]),
            "completed": int(serving["requests"]),
            "rejected": int(serving["rejected"]),
            "makespan_s": serving["makespan_s"],
            "p95_lat_s": serving["p95_latency_s"],
            "failover_s": serving["mean_failover_latency_s"],
        })
    return ExperimentResult(
        experiment_id="reliability",
        title="§IX RAS: fault injection and graceful degradation",
        rows=rows,
        anchors={
            "secded_correctable_bits": 1,
            "secded_detectable_bits": 2,
            "lpddr_inline_ecc_overhead": 1 / 9,
        },
        notes=[
            "fault schedules are synthetic (the paper reports no field "
            "rates); rows demonstrate mechanisms, not FIT predictions",
            "serving phase: {} requests of {} on {} devices, {:.0f} GB "
            "each".format(config.num_requests, config.model,
                          config.num_devices, config.memory_gb),
            "all rows share one workload seed, so serving deltas are "
            "attributable to the injected faults alone",
        ])
