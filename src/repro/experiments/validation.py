"""§VII validation analog: timing simulator vs analytical model.

The paper validates its cycle-level simulator against the FPGA prototype
to within 0.5%.  Our reproduction has no hardware, but it has two
*independent* timing implementations — the instruction-level list
scheduler over compiled programs and the operator-level analytical model
— so we report their agreement across models and stage geometries as the
equivalent cross-check.
"""

from __future__ import annotations

from typing import List

from repro.accelerator.compiler import timing_program
from repro.accelerator.device import CXLPNMDevice
from repro.experiments.report import ExperimentResult
from repro.llm.config import OPT_13B, OPT_1_3B, OPT_6_7B
from repro.perf.analytical import InferenceTimer, PnmPerfModel
from repro.perf.simulator import AcceleratorSimulator

CASES = (
    (OPT_1_3B, 1, 64), (OPT_1_3B, 1, 576), (OPT_1_3B, 64, 0),
    (OPT_6_7B, 1, 576), (OPT_6_7B, 64, 0),
    (OPT_13B, 1, 128), (OPT_13B, 1, 1024), (OPT_13B, 64, 0),
)


def run() -> ExperimentResult:
    device = CXLPNMDevice()
    simulator = AcceleratorSimulator(device)
    pnm = PnmPerfModel(device)
    rows: List[dict] = []
    worst = 0.0
    for config, batch, ctx_prev in CASES:
        program = timing_program(config, batch_tokens=batch,
                                 ctx_prev=ctx_prev)
        sim = simulator.run(program).total_time_s
        timer = InferenceTimer(config, pnm)
        if batch == 1:
            analytical = timer.gen_stage(ctx_prev + 1).time_s
        else:
            analytical = timer.sum_stage(batch).time_s
        error = abs(sim - analytical) / analytical
        worst = max(worst, error)
        rows.append({
            "model": config.name,
            "stage": "sum" if batch > 1 else f"gen@{ctx_prev + 1}",
            "simulator_ms": sim * 1e3,
            "analytical_ms": analytical * 1e3,
            "rel_error": error,
        })
    rows.append({"model": "worst case", "rel_error": worst})
    return ExperimentResult(
        experiment_id="validation",
        title="Timing simulator vs analytical model (the paper's 0.5% "
              "prototype validation analog)",
        rows=rows,
        anchors={"paper_simulator_error": 0.005},
    )
