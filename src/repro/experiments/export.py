"""Export experiment results to JSON and CSV.

Benchmarks leave rendered text tables in ``benchmarks/results``; this
module adds machine-readable exports so reproduced figures can feed
plotting scripts or regression dashboards without re-running anything.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable, Union

from repro.errors import ConfigurationError
from repro.experiments.report import ExperimentResult

PathLike = Union[str, pathlib.Path]


def to_json(result: ExperimentResult, path: PathLike) -> pathlib.Path:
    """Write one result (rows + anchors + notes) as JSON."""
    path = pathlib.Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": result.rows,
        "anchors": result.anchors,
        "notes": result.notes,
    }
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def to_csv(result: ExperimentResult, path: PathLike) -> pathlib.Path:
    """Write one result's rows as CSV (union of all row keys)."""
    if not result.rows:
        raise ConfigurationError(
            f"{result.experiment_id}: no rows to export")
    path = pathlib.Path(path)
    columns = result.columns or list(
        dict.fromkeys(key for row in result.rows for key in row))
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns,
                                extrasaction="ignore", restval="")
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)
    return path


def export_all(results: Iterable[ExperimentResult],
               directory: PathLike) -> list:
    """Export every result as both JSON and CSV into ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for result in results:
        written.append(to_json(result,
                               directory / f"{result.experiment_id}.json"))
        written.append(to_csv(result,
                              directory / f"{result.experiment_id}.csv"))
    return written


def load_json(path: PathLike) -> ExperimentResult:
    """Re-hydrate an exported JSON result (for diffing across runs)."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"no export at {path}")
    payload = json.loads(path.read_text())
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        rows=payload["rows"],
        anchors=payload.get("anchors", {}),
        notes=payload.get("notes", []),
    )
