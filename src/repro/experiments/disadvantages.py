"""§V-A: the four disadvantages of prior PIM/PNM, quantified.

The paper motivates CXL-PNM by four disadvantages of HBM-PIM and
AxDIMM-style DIMM-PNM:

* **D1** — PIM's development cost: custom DRAM dies and requalification
  vs reusing commodity packages (we quantify the packaging-cost side);
* **D2** — DIMM-PNM's bandwidth/capacity scaling: at most 2x one DDR
  channel of bandwidth and less than one DIMM of capacity, vs the CXL
  module's 10x+;
* **D3** — arbitration: blocking + host polling vs the CXL controller's
  hardware arbiter;
* **D4** — host address interleaving shattering contiguous regions vs
  module-local interleaving.
"""

from __future__ import annotations

from repro.cxl.arbiter import ArbitrationPolicy, compare_policies
from repro.cxl.protocol import Source
from repro.experiments.report import ExperimentResult
from repro.memory.dram import DDR5, LPDDR5X
from repro.memory.interleave import (
    HOST_INTERLEAVE,
    MODULE_LOCAL_INTERLEAVE,
    accelerator_visible_fraction,
    streaming_bandwidth_fraction,
)
from repro.memory.module import lpddr5x_module
from repro.memory.packaging import packaging_cost_factor
from repro.units import GB, GiB

#: One DDR5-4800-class host channel (what a DIMM-PNM can tap, at 2x best
#: case per the paper's D2 analysis).
DDR5_CHANNEL_BYTES_S = 38.4e9

#: A large RDIMM's capacity; the accelerator package displaces DRAM, so a
#: DIMM-PNM holds less than this.
RDIMM_CAPACITY = 64 * GiB


def run() -> ExperimentResult:
    module = lpddr5x_module()
    rows = []

    # D1: commodity-package reuse vs TSV-based custom stacks.
    rows.append({
        "disadvantage": "D1 packaging-cost factor",
        "dimm_or_pim": packaging_cost_factor(DDR5),
        "cxl_pnm": packaging_cost_factor(LPDDR5X),
        "advantage": packaging_cost_factor(DDR5)
        / packaging_cost_factor(LPDDR5X),
    })

    # D2: PNM-visible bandwidth and capacity.
    dimm_bw = 2 * DDR5_CHANNEL_BYTES_S
    rows.append({
        "disadvantage": "D2 PNM bandwidth (GB/s)",
        "dimm_or_pim": dimm_bw / GB,
        "cxl_pnm": module.peak_bandwidth / GB,
        "advantage": module.peak_bandwidth / dimm_bw,
    })
    rows.append({
        "disadvantage": "D2 PNM capacity (GB)",
        "dimm_or_pim": RDIMM_CAPACITY / GB,
        "cxl_pnm": module.capacity_bytes / GB,
        "advantage": module.capacity_bytes / RDIMM_CAPACITY,
    })

    # D3: host service under concurrent PNM work (1 s interval, 2 ms
    # tasks, both sides offering 200 GB/s of demand).
    results = compare_policies(memory_bandwidth=module.peak_bandwidth,
                               host_rate=200e9 / 64, pnm_rate=200e9 / 64,
                               pnm_task_s=2e-3)
    blocking = results[ArbitrationPolicy.BLOCKING_POLL.value]
    wrr = results[ArbitrationPolicy.HARDWARE_WRR.value]
    rows.append({
        "disadvantage": "D3 host bandwidth under PNM load (GB/s)",
        "dimm_or_pim": blocking.served_bytes[Source.HOST] / GB,
        "cxl_pnm": wrr.served_bytes[Source.HOST] / GB,
        "advantage": (wrr.served_bytes[Source.HOST]
                      / max(blocking.served_bytes[Source.HOST], 1.0)),
    })
    rows.append({
        "disadvantage": "D3 mean host wait (us)",
        "dimm_or_pim": blocking.mean_wait_s[Source.HOST] * 1e6,
        "cxl_pnm": wrr.mean_wait_s[Source.HOST] * 1e6,
        "advantage": (blocking.mean_wait_s[Source.HOST]
                      / wrr.mean_wait_s[Source.HOST]),
    })

    # D4: accelerator-visible fraction of a 1 GiB contiguous region.
    region = 1 << 30
    dimm_frac = accelerator_visible_fraction(HOST_INTERLEAVE, 0, region, 0)
    cxl_frac = streaming_bandwidth_fraction(MODULE_LOCAL_INTERLEAVE, 0,
                                            region)
    rows.append({
        "disadvantage": "D4 accessible fraction of a 1 GiB region",
        "dimm_or_pim": dimm_frac,
        "cxl_pnm": cxl_frac,
        "advantage": cxl_frac / dimm_frac,
    })

    return ExperimentResult(
        experiment_id="disadvantages",
        title="§V-A: HBM-PIM / DIMM-PNM disadvantages vs CXL-PNM",
        rows=rows,
        anchors={
            "paper_d2_bandwidth_claim": "10x higher PNM bandwidth than "
                                        "DDR5 DIMM-PNM",
        },
        notes=[
            "D1's full cost story (verification, qualification, fab "
            "changes) is organizational; the packaging-cost factor is "
            "the quantifiable slice.",
        ],
    )
