"""Fig. 10: single GPU vs single CXL-PNM device on OPT-13B.

Sweeps the output-token count (64 input tokens) and reports throughput
and energy efficiency for both devices, plus the paper's two side
results: latency deltas on the smaller OPT models at 1024 output tokens,
and the OPT-30B case where the GPU must stream parameters from host
memory while the CXL-PNM device holds them resident (138.8x / 127.9x in
the paper).
"""

from __future__ import annotations

from typing import List

from repro.accelerator.device import CXLPNMDevice
from repro.experiments.report import ExperimentResult
from repro.gpu.device import A100_40G
from repro.gpu.kernels import GpuKernelModel
from repro.gpu.offload import OffloadModel
from repro.gpu.power import GpuPowerModel
from repro.llm.config import OPT_13B, OPT_1_3B, OPT_2_7B, OPT_30B, OPT_6_7B
from repro.llm.graph import gen_stage_ops, sum_stage_ops
from repro.llm.workload import PAPER_INPUT_TOKENS
import repro.perf.calibration as cal
from repro.perf.analytical import GpuPerfModel, InferenceTimer, PnmPerfModel
from repro.perf.metrics import InferenceResult, relative_delta

OUTPUT_SWEEP = (1, 4, 16, 64, 128, 256, 512, 1024)


def _offload_result(config, output_len: int) -> InferenceResult:
    """GPU inference with host-offloaded parameters (OPT-30B case)."""
    kernels = GpuKernelModel(A100_40G)
    offload = OffloadModel(spec=A100_40G, config=config)
    # Stalled on PCIe copies for ~99% of the time, the GPU drops out of
    # its boosted operating point; its power approaches true board idle.
    power = GpuPowerModel(A100_40G, active_idle_watts=75.0)
    sum_time = offload.stage_time(
        sum_stage_ops(config, PAPER_INPUT_TOKENS), kernels)
    gen_time = 0.0
    step = max(1, (output_len - 1) // 16)
    sampled = list(range(1, output_len, step))
    per_stage = [offload.stage_time(
        gen_stage_ops(config, PAPER_INPUT_TOKENS + s), kernels)
        for s in sampled]
    gen_time = sum(per_stage) / len(per_stage) * (output_len - 1) \
        if sampled else 0.0
    # While copying, the GPU is mostly idle: low compute/bandwidth point.
    watts = power.power_watts(0.02, 0.05)
    total = sum_time + gen_time
    return InferenceResult(device_name=f"{A100_40G.name}+offload",
                           input_len=PAPER_INPUT_TOKENS,
                           output_len=output_len, sum_time_s=sum_time,
                           gen_time_s=gen_time, energy_j=watts * total)


def run() -> ExperimentResult:
    gpu = GpuPerfModel(A100_40G)
    pnm = PnmPerfModel(CXLPNMDevice())
    rows: List[dict] = []
    for out in OUTPUT_SWEEP:
        rg = InferenceTimer(OPT_13B, gpu).run(PAPER_INPUT_TOKENS, out)
        rp = InferenceTimer(OPT_13B, pnm).run(PAPER_INPUT_TOKENS, out)
        rows.append({
            "output_tokens": out,
            "gpu_tokens_per_s": rg.tokens_per_s,
            "pnm_tokens_per_s": rp.tokens_per_s,
            "throughput_delta": relative_delta(rp.tokens_per_s,
                                               rg.tokens_per_s),
            "gpu_tokens_per_j": rg.tokens_per_joule,
            "pnm_tokens_per_j": rp.tokens_per_joule,
            "energy_eff_ratio": rp.tokens_per_joule / rg.tokens_per_joule,
            "gpu_power_w": rg.mean_power_w,
            "pnm_power_w": rp.mean_power_w,
        })

    small_model_rows: List[dict] = []
    for config in (OPT_1_3B, OPT_2_7B, OPT_6_7B, OPT_13B):
        rg = InferenceTimer(config, gpu).run(PAPER_INPUT_TOKENS, 1024)
        rp = InferenceTimer(config, pnm).run(PAPER_INPUT_TOKENS, 1024)
        small_model_rows.append({
            "output_tokens": f"{config.name} latency_delta",
            "gpu_tokens_per_s": rg.tokens_per_s,
            "pnm_tokens_per_s": rp.tokens_per_s,
            "throughput_delta": relative_delta(rp.latency_s, rg.latency_s),
        })

    offload_gpu = _offload_result(OPT_30B, 1024)
    pnm_30b = InferenceTimer(OPT_30B, pnm).run(PAPER_INPUT_TOKENS, 1024)
    offload_row = {
        "output_tokens": "OPT-30B (GPU offloaded)",
        "gpu_tokens_per_s": offload_gpu.tokens_per_s,
        "pnm_tokens_per_s": pnm_30b.tokens_per_s,
        "throughput_delta": offload_gpu.latency_s / pnm_30b.latency_s,
        "energy_eff_ratio": (pnm_30b.tokens_per_joule
                             / offload_gpu.tokens_per_joule),
    }

    return ExperimentResult(
        experiment_id="fig10",
        title="OPT-13B single device: throughput and energy efficiency "
              "(64 input tokens)",
        rows=rows + small_model_rows + [offload_row],
        anchors={
            "throughput_delta@1024": cal.PAPER_ANCHORS[
                "fig10_opt13b_throughput_delta"],
            "energy_eff_ratio@1024": cal.PAPER_ANCHORS[
                "fig10_opt13b_energy_eff_ratio"],
            "gpu_power_w": cal.PAPER_ANCHORS["fig10_gpu_power_watts"],
            "pnm_power_w": cal.PAPER_ANCHORS["fig10_pnm_power_watts"],
            "small_model_latency_delta": cal.PAPER_ANCHORS[
                "fig10_small_model_latency_delta"],
            "opt30b_latency_ratio": cal.PAPER_ANCHORS[
                "fig10_opt30b_latency_ratio"],
            "opt30b_energy_ratio": cal.PAPER_ANCHORS[
                "fig10_opt30b_energy_ratio"],
        },
        notes=[
            "OPT-30B row: 'throughput_delta' column holds the GPU/PNM "
            "latency ratio (the paper's 138.8x).",
        ],
    )
