"""Registry mapping paper artifacts to their reproduction harnesses."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    continuous_batching,
    disadvantages,
    fig02_capacity_bandwidth,
    fig03_memcpy_breakdown,
    fig04_gpu_utilization,
    fig10_single_device,
    fig11_appliance,
    reliability,
    scalability,
    sensitivity,
    service_level,
    table1_memory_modules,
    table2_platform,
    table3_tco,
    validation,
)
from repro.experiments.report import ExperimentResult

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig2": fig02_capacity_bandwidth.run,
    "fig3": fig03_memcpy_breakdown.run,
    "fig4": fig04_gpu_utilization.run,
    "table1": table1_memory_modules.run,
    "table2": table2_platform.run,
    "fig10": fig10_single_device.run,
    "fig11": fig11_appliance.run,
    "table3": table3_tco.run,
    "scalability": scalability.run,
    "validation": validation.run,
    "ablations": ablations.run,
    "disadvantages": disadvantages.run,
    "sensitivity": sensitivity.run,
    "service": service_level.run,
    "continuous-batching": continuous_batching.run,
    "reliability": reliability.run,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by its paper artifact id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}")
    return runner()


def run_all() -> List[ExperimentResult]:
    """Run every experiment in paper order."""
    return [EXPERIMENTS[key]() for key in EXPERIMENTS]
