"""§IX scalability: a hypothetical 1.25 TB LLM on both platforms.

The discussion section considers a model needing 1.25 TB of parameters:
3 CXL-PNM devices (512 GB each) versus 16 GPUs (80 GB each, at the
paper's $10,000 device price), quoting ~87% lower hardware cost and a
conservative estimate of 30% (GPU) vs 10% (CXL-PNM) of runtime spent on
device-to-device communication.
"""

from __future__ import annotations

from dataclasses import replace

from repro.appliance.cluster import devices_required
from repro.appliance.comm import CxlCommModel
from repro.experiments.report import ExperimentResult
from repro.gpu.device import A100_80G, GPUSpec
from repro.gpu.multi import ALLREDUCES_PER_LAYER, NvlinkAllReduce
from repro.llm.config import GPT3_175B
from repro.llm.graph import gen_stage_ops
from repro.llm.workload import PAPER_INPUT_TOKENS
from repro.perf.analytical import GpuPerfModel, InferenceTimer, PnmPerfModel
from repro.accelerator.device import CXLPNMDevice
from repro.units import GB, TB

#: The hypothetical model: GPT-3-wide, deepened to ~625 B params (1.25 TB
#: at FP16).
HYPOTHETICAL = GPT3_175B.scaled("Hypothetical-625B", num_layers=345)

#: The paper prices GPU devices at $10,000 regardless of memory size.
PAPER_GPU_PRICE = 10_000.0

#: Inter-node collectives (two DGX chassis) pay InfiniBand latency on top
#: of NVLink inside each chassis.
INTERNODE_ALLREDUCE_LATENCY_S = 35e-6


def gpu_comm_fraction(config, num_devices: int, spec: GPUSpec) -> float:
    """Fraction of gen-stage time spent in all-reduces at TP=N."""
    payload = config.d_model * config.dtype_bytes
    base = NvlinkAllReduce(spec, num_devices).time(payload)
    if num_devices > 8:
        base += INTERNODE_ALLREDUCE_LATENCY_S
    comm = config.num_layers * ALLREDUCES_PER_LAYER * base
    timer = InferenceTimer(config, GpuPerfModel(spec),
                           tensor_parallel=num_devices)
    stage = timer.gen_stage(PAPER_INPUT_TOKENS + 512).time_s
    return comm / (stage + comm)


def pnm_comm_fraction(config, num_devices: int) -> float:
    device = CXLPNMDevice()
    comm_model = CxlCommModel(config, num_devices, device.link)
    comm = comm_model(1)
    timer = InferenceTimer(config, PnmPerfModel(device),
                           tensor_parallel=num_devices)
    stage = timer.gen_stage(PAPER_INPUT_TOKENS + 512).time_s
    return comm / (stage + comm)


def run() -> ExperimentResult:
    config = HYPOTHETICAL
    device = CXLPNMDevice()
    gpu_spec = replace(A100_80G, price_usd=PAPER_GPU_PRICE)
    # The paper's device counts consider parameter capacity only (no KV
    # reserve): 1.25 TB -> 3 x 512 GB CXL-PNM, 16 x 80 GB GPUs.
    pnm_devices = devices_required(config, device.memory_capacity)
    gpu_devices = devices_required(config, gpu_spec.memory_bytes)
    # Tensor-parallel degrees must divide the head count; round up to the
    # next divisor-friendly count.
    while config.num_heads % pnm_devices:
        pnm_devices += 1
    while config.num_heads % gpu_devices:
        gpu_devices += 1
    pnm_cost = pnm_devices * device.price_usd
    gpu_cost = gpu_devices * gpu_spec.price_usd
    rows = [
        {
            "platform": "CXL-PNM",
            "devices": pnm_devices,
            "hardware_usd": pnm_cost,
            "comm_fraction": pnm_comm_fraction(config, pnm_devices),
        },
        {
            "platform": f"GPU ({gpu_spec.name} @ $10k)",
            "devices": gpu_devices,
            "hardware_usd": gpu_cost,
            "comm_fraction": gpu_comm_fraction(config, gpu_devices,
                                               gpu_spec),
        },
        {
            "platform": "cost saving (CXL-PNM vs GPU)",
            "hardware_usd": 1.0 - pnm_cost / gpu_cost,
        },
    ]
    return ExperimentResult(
        experiment_id="scalability",
        title=f"{config.name}: {config.param_bytes / TB:.2f} TB model on "
              "both platforms (§IX)",
        rows=rows,
        anchors={
            "paper_pnm_devices": 3,
            "paper_gpu_devices": 16,
            "paper_cost_saving": 0.87,
            "paper_gpu_comm_fraction": 0.30,
            "paper_pnm_comm_fraction": 0.10,
        },
        notes=[
            "GPU count assumes 80 GB devices at the paper's $10,000 "
            "price point; >8 GPUs adds inter-chassis all-reduce latency.",
            "The paper's 30%/10% communication shares are its own "
            "conservative estimates; our models put the GPU near 30% and "
            "CXL-PNM lower (host-orchestrated DMA over CXL is cheap).",
        ],
    )
