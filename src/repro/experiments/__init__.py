"""Reproduction harnesses for every table and figure in the paper."""

from repro.experiments.report import ExperimentResult, text_table

__all__ = ["ExperimentResult", "run_all", "run_experiment", "text_table"]


def run_experiment(experiment_id: str):
    """Run one experiment by id (lazy import to avoid heavy startup)."""
    from repro.experiments.registry import run_experiment as _run
    return _run(experiment_id)


def run_all():
    """Run every experiment in paper order."""
    from repro.experiments.registry import run_all as _run_all
    return _run_all()
