"""CXL-PNM: an LPDDR-based processing-near-memory platform for
TCO-efficient inference of Transformer-based LLMs.

Reproduction of the HPCA 2024 paper by Park et al. (Samsung Electronics,
SNU, UIUC) as a modelling, simulation, and functional-execution library.

Quick start::

    from repro.core import CxlPnmPlatform
    from repro.llm import tiny_config, OPT_13B

    platform = CxlPnmPlatform()
    session = platform.session(config=tiny_config())
    print(session.generate([1, 2, 3], num_tokens=8).tokens)
    print(platform.estimate(OPT_13B, input_len=64, output_len=1024))

Subpackages:

* :mod:`repro.core` -- the platform facade (the paper's contribution).
* :mod:`repro.llm` -- transformer configs, op graphs, golden model.
* :mod:`repro.memory` -- DRAM technologies and CXL module composition.
* :mod:`repro.cxl` -- CXL protocol, links, arbitration, topology.
* :mod:`repro.accelerator` -- the LLM accelerator: ISA, executor, compiler.
* :mod:`repro.gpu` -- the GPU baseline models.
* :mod:`repro.perf` -- analytical and instruction-level timing engines.
* :mod:`repro.appliance` -- multi-device parallelism and clusters.
* :mod:`repro.runtime` -- the software stack: driver, library, sessions.
* :mod:`repro.obs` -- span tracing, metrics, Chrome-trace export.
* :mod:`repro.faults` -- fault injection and graceful degradation (§IX).
* :mod:`repro.tco` -- energy, cost, and CO2 accounting.
* :mod:`repro.experiments` -- one harness per paper table/figure.
"""

from repro.errors import (
    AddressError,
    AdmissionError,
    AllocationError,
    CapacityError,
    ConfigurationError,
    DeviceLostError,
    DriverError,
    ExecutionError,
    FaultInjectionError,
    FormFactorError,
    IsaError,
    ParallelismError,
    ProtocolError,
    ReproError,
    SimulationError,
    TransientDeviceError,
    UncorrectableMemoryError,
)

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "AdmissionError",
    "AllocationError",
    "CapacityError",
    "ConfigurationError",
    "DeviceLostError",
    "DriverError",
    "ExecutionError",
    "FaultInjectionError",
    "FormFactorError",
    "IsaError",
    "ParallelismError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "TransientDeviceError",
    "UncorrectableMemoryError",
    "__version__",
]
