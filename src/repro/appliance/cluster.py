"""Appliance-level composition: N devices serving one LLM.

Builds the end-to-end configurations of Fig. 11 and Table III: a GPU
appliance (DGX-style, tensor parallelism across all devices) and CXL-PNM
appliances at any DP x MP split, and evaluates latency, throughput, and
energy per configuration via the analytical performance models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.accelerator.device import CXLPNMDevice
from repro.appliance.comm import CxlCommModel, GpuCommModel
from repro.appliance.parallelism import ParallelismPlan, params_per_device
from repro.errors import ParallelismError
from repro.gpu.device import GPUSpec
from repro.llm.config import LLMConfig
from repro.llm.kvcache import peak_kv_bytes
from repro.perf.analytical import (
    GpuPerfModel,
    InferenceTimer,
    PnmPerfModel,
    no_comm,
)
from repro.perf.metrics import ApplianceResult


@dataclass(frozen=True)
class GpuAppliance:
    """A DGX-style appliance of ``num_devices`` identical GPUs."""

    spec: GPUSpec
    num_devices: int = 8

    @property
    def name(self) -> str:
        return f"{self.num_devices}x{self.spec.name}"

    @property
    def hardware_cost_usd(self) -> float:
        return self.num_devices * self.spec.price_usd

    def run(self, config: LLMConfig, plan: ParallelismPlan, input_len: int,
            output_len: int) -> ApplianceResult:
        """Evaluate one request under a DP x TP plan."""
        kv = peak_kv_bytes(config, input_len, output_len) \
            // plan.tensor_parallel
        plan.validate_for(config, self.num_devices, self.spec.memory_bytes,
                          kv_reserve_bytes=kv)
        comm = GpuCommModel(self.spec, config, plan.tensor_parallel) \
            if plan.tensor_parallel > 1 else no_comm
        timer = InferenceTimer(config=config, model=GpuPerfModel(self.spec),
                               tensor_parallel=plan.tensor_parallel,
                               comm=comm)
        result = timer.run(input_len, output_len)
        return ApplianceResult(name=f"GPU {plan.label}",
                               num_devices=self.num_devices,
                               instances=plan.data_parallel,
                               per_request=result)

    def serve(self, config: LLMConfig, requests: Sequence,
              arrival_times: Optional[Sequence[float]] = None, *,
              max_batch: Optional[int] = None, step=None,
              classes=None, slo_admission: bool = False):
        """Serve a request stream with continuous batching on this
        appliance (one model replica per GPU, appliance-level DP).

        Builds a :class:`~repro.appliance.continuous.
        ContinuousBatchScheduler` over ``num_devices`` independent
        replica timelines and returns its
        :class:`~repro.appliance.continuous.ContinuousBatchStats`.
        Pass ``step`` to override the default analytical
        :class:`~repro.perf.analytical.BatchStepTimer`; ``classes``
        (a sequence of :class:`~repro.appliance.continuous.
        TenantClass`) and ``slo_admission`` configure the multi-tenant
        front end.
        """
        from repro.appliance.continuous import ContinuousBatchScheduler
        from repro.perf.analytical import BatchStepTimer
        if step is None:
            step = BatchStepTimer(config, GpuPerfModel(self.spec))
        scheduler = ContinuousBatchScheduler(
            step, config, self.spec.memory_bytes, max_batch=max_batch,
            num_devices=self.num_devices, classes=classes,
            slo_admission=slo_admission)
        return scheduler.run(requests, arrival_times)


@dataclass(frozen=True)
class PnmAppliance:
    """An appliance of ``num_devices`` CXL-PNM cards."""

    device: CXLPNMDevice = field(default_factory=CXLPNMDevice)
    num_devices: int = 8

    @property
    def name(self) -> str:
        return f"{self.num_devices}xCXL-PNM"

    @property
    def hardware_cost_usd(self) -> float:
        return self.num_devices * self.device.price_usd

    def run(self, config: LLMConfig, plan: ParallelismPlan, input_len: int,
            output_len: int) -> ApplianceResult:
        kv = peak_kv_bytes(config, input_len, output_len) \
            // plan.tensor_parallel
        plan.validate_for(config, self.num_devices,
                          self.device.memory_capacity, kv_reserve_bytes=kv)
        comm = CxlCommModel(config, plan.tensor_parallel,
                            self.device.link) \
            if plan.tensor_parallel > 1 else no_comm
        timer = InferenceTimer(config=config,
                               model=PnmPerfModel(self.device),
                               tensor_parallel=plan.tensor_parallel,
                               comm=comm)
        result = timer.run(input_len, output_len)
        return ApplianceResult(name=f"CXL-PNM {plan.label}",
                               num_devices=self.num_devices,
                               instances=plan.data_parallel,
                               per_request=result)

    def serve(self, config: LLMConfig, requests: Sequence,
              arrival_times: Optional[Sequence[float]] = None, *,
              max_batch: Optional[int] = None, step=None,
              classes=None, slo_admission: bool = False):
        """Serve a request stream with continuous batching on this
        appliance (one model replica per CXL-PNM card, appliance DP).

        Builds a :class:`~repro.appliance.continuous.
        ContinuousBatchScheduler` over ``num_devices`` independent
        replica timelines and returns its
        :class:`~repro.appliance.continuous.ContinuousBatchStats`.
        Pass ``step`` to override the default analytical
        :class:`~repro.perf.analytical.BatchStepTimer` (e.g. the
        instruction-level
        :func:`~repro.appliance.continuous.simulated_step_model`);
        ``classes`` (a sequence of :class:`~repro.appliance.continuous.
        TenantClass`) and ``slo_admission`` configure the multi-tenant
        front end.
        """
        from repro.appliance.continuous import ContinuousBatchScheduler
        from repro.perf.analytical import BatchStepTimer
        if step is None:
            step = BatchStepTimer(config, PnmPerfModel(self.device))
        scheduler = ContinuousBatchScheduler(
            step, config, self.device.memory_capacity,
            max_batch=max_batch, num_devices=self.num_devices,
            classes=classes, slo_admission=slo_admission)
        return scheduler.run(requests, arrival_times)


def devices_required(config: LLMConfig, device_memory_bytes: int,
                     kv_reserve_bytes: int = 0) -> int:
    """Minimum tensor-parallel devices for a model to fit (§IX analysis)."""
    if device_memory_bytes <= kv_reserve_bytes:
        raise ParallelismError("device memory below the KV reserve")
    for tp in range(1, 4097):
        if params_per_device(config, tp) + kv_reserve_bytes \
                <= device_memory_bytes:
            return tp
    raise ParallelismError(
        f"{config.name} does not fit even at tensor_parallel=4096")
