"""Continuous (iteration-level) batching over one model instance.

The FCFS scheduler in :mod:`repro.appliance.scheduler` gives each
request an exclusive instance for its whole lifetime, so every gen
token re-streams all parameters for a single row of activations — the
bandwidth-bound GEMV regime of paper §VII.  Serving systems instead
re-form the batch *every iteration*: requests join the running batch as
soon as their KV cache fits (admission control), each decode step
processes one token from every running request against once-streamed
weights (small-batch GEMM, the lever of the paper's ref [10]), and
requests leave the moment their last token is produced.

:class:`ContinuousBatchScheduler` is a discrete-event simulation of
that regime at decode-step granularity:

* **Admission** — FCFS from the waiting queue; a request is admitted
  when the batch has a slot (``max_batch``) and its *peak* KV footprint
  fits in the reserved-KV budget (``kv_spare_bytes``; reserving peak
  up-front guarantees no mid-flight eviction).  Requests that can never
  be served — position budget or device memory exceeded — are rejected
  with a reason instead of being served with a fabricated latency.
* **Iteration** — newly admitted requests run their prefill (sum
  stage, emitting their first token); everyone else advances one
  decode step, costed by the step model at the batch's mean context.
* **Completion** — a request reaching ``output_len`` leaves and frees
  its KV reservation at the iteration boundary.

Per-request time-to-first-token and time-between-tokens come out of the
same timeline, alongside the familiar :class:`ServiceStats` aggregates.
Observability (per-iteration sim spans, a batch-occupancy gauge,
admission/rejection counters) only records — results are bit-identical
with tracing on or off.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.appliance.scheduler import (
    CompletedRequest,
    RejectedRequest,
    ServiceStats,
    infeasible_error,
)
from repro.errors import ConfigurationError, DeviceLostError
from repro.faults.context import get_faults
from repro.faults.plan import DeviceFaultEvent, DeviceFaultKind
from repro.llm.config import LLMConfig
from repro.llm.kvcache import kv_spare_bytes, peak_kv_bytes
from repro.llm.workload import InferenceRequest
from repro.obs.context import get_metrics, get_tracer

#: Iteration sim-spans traced per run; long runs have tens of thousands
#: of near-identical steps, so the trace keeps the first ones and notes
#: the truncation in the span args.
MAX_TRACED_ITERATIONS = 4096


class BatchStepModel(Protocol):
    """What the engine needs from a cost model: per-iteration seconds."""

    def prefill_s(self, input_len: int) -> float:
        """One request's sum stage (produces its first token)."""
        ...

    def decode_step_s(self, batch: int, context_len: int) -> float:
        """One batched gen step at the given mean attention span."""
        ...


def simulated_step_model(config: LLMConfig, device=None,
                         context_quantum: int = 32) -> BatchStepModel:
    """A :class:`BatchStepModel` priced by the instruction-level simulator.

    Alternative to :class:`repro.perf.analytical.BatchStepTimer`: steps
    are costed by scheduling real instruction streams (with unit overlap
    and shared memory bandwidth) instead of summing per-op analytical
    times.  Results are memoized per quantized context, and the
    simulator's own program/duration caches make repeated geometries
    cheap, so long serving runs stay tractable.

    Args:
        config: The model.
        device: A :class:`~repro.accelerator.device.CXLPNMDevice`
            (default: the paper's).
        context_quantum: Context quantization step for memoization.
    """
    from repro.perf.simulator import AcceleratorSimulator, SimulatedStepTimer
    simulator = AcceleratorSimulator(device) if device is not None \
        else AcceleratorSimulator()
    return SimulatedStepTimer(config, simulator=simulator,
                              context_quantum=context_quantum)


@dataclass(frozen=True)
class FailoverEvent:
    """One device failure the engine survived, for the failover timeline.

    Attributes:
        at_s: Iteration boundary at which the failure took effect.
        device: Index of the lost device.
        requeued: In-flight requests returned to the waiting queue.
    """

    at_s: float
    device: int
    requeued: int


@dataclass(eq=False)
class _Running:
    """In-flight request state inside the batch (identity semantics)."""

    request: InferenceRequest
    arrival_s: float
    admitted_s: float
    kv_reserved: int
    slot: int
    device: int = 0
    generated: int = 0
    failovers: int = 0
    first_token_s: Optional[float] = None

    @property
    def context_len(self) -> int:
        """Attention span of this request's next decode step."""
        return self.request.input_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_len


@dataclass
class ContinuousBatchStats(ServiceStats):
    """Service statistics plus the batching-specific aggregates.

    ``num_instances`` mirrors the engine's ``num_devices`` (1 unless
    the run models a multi-device appliance) — each device serves many
    requests concurrently.  The failover fields are only non-trivial
    when a fault plan scheduled device events (``repro.faults``):
    ``failover_events`` is the survived-failure timeline,
    ``failover_latencies_s`` holds the queue-to-readmission delay of
    every requeued request, and ``stall_s`` totals transient device
    stalls charged to the timeline.
    """

    num_iterations: int = 0
    max_occupancy: int = 0
    busy_s: float = 0.0
    occupancy_time_s: float = 0.0
    stall_s: float = 0.0
    devices_failed: int = 0
    failover_events: List[FailoverEvent] = field(default_factory=list)
    failover_latencies_s: List[float] = field(default_factory=list)

    @property
    def failovers(self) -> int:
        """Total in-flight requests requeued by device failures."""
        return sum(e.requeued for e in self.failover_events)

    @property
    def mean_failover_latency_s(self) -> float:
        """Mean failure-to-readmission delay; 0.0 with no failovers."""
        if not self.failover_latencies_s:
            return 0.0
        return float(np.mean(self.failover_latencies_s))

    @property
    def mean_occupancy(self) -> float:
        """Time-weighted mean batch size while the engine was busy."""
        return self.occupancy_time_s / self.busy_s if self.busy_s else 0.0

    @property
    def instance_utilization(self) -> float:
        """Fraction of the makespan with a non-empty batch.

        Overrides the FCFS definition (per-request busy time summed over
        instances), which would double-count overlapping residents.
        """
        return self.busy_s / self.makespan_s if self.makespan_s else 0.0

    def _ttfts(self) -> np.ndarray:
        return np.array([c.ttft_s for c in self.completed
                         if c.ttft_s is not None])

    @property
    def mean_ttft_s(self) -> float:
        ttfts = self._ttfts()
        return float(ttfts.mean()) if len(ttfts) else 0.0

    @property
    def p95_ttft_s(self) -> float:
        ttfts = self._ttfts()
        return float(np.percentile(ttfts, 95)) if len(ttfts) else 0.0

    @property
    def mean_tbt_s(self) -> float:
        tbts = [c.mean_tbt_s for c in self.completed
                if c.mean_tbt_s is not None]
        return float(np.mean(tbts)) if tbts else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = super().as_dict()
        out.update({
            "num_iterations": float(self.num_iterations),
            "max_occupancy": float(self.max_occupancy),
            "mean_occupancy": self.mean_occupancy,
            "mean_ttft_s": self.mean_ttft_s,
            "p95_ttft_s": self.p95_ttft_s,
            "mean_tbt_s": self.mean_tbt_s,
            "stall_s": self.stall_s,
            "devices_failed": float(self.devices_failed),
            "failovers": float(self.failovers),
            "mean_failover_latency_s": self.mean_failover_latency_s,
        })
        return out


@dataclass
class ContinuousBatchScheduler:
    """Iteration-level scheduler forming the batch anew every decode step.

    Attributes:
        step: Per-iteration cost model (prefill and batched decode);
            :class:`repro.perf.analytical.BatchStepTimer` for the
            analytical devices, or any object with the same two methods.
        config: The model being served (drives KV/position budgets).
        memory_bytes: Per-device memory; parameters are resident, the
            rest is each device's KV admission budget.
        max_batch: Optional hard cap on concurrent requests per device
            (defaults to whatever the KV budget allows).
        num_devices: Model replicas served in parallel (appliance DP).
            Each device runs its own batch; an iteration advances all
            of them, ending at the slowest.  Scheduled device faults
            from an ambient :class:`~repro.faults.FaultPlan` stall or
            permanently fail individual devices — the engine requeues
            the victims and re-admits them against surviving capacity.
        tracer: Optional span tracer; defaults to the ambient/no-op one.
        metrics: Optional metrics registry, resolved the same way.
    """

    step: BatchStepModel
    config: LLMConfig
    memory_bytes: int
    max_batch: Optional[int] = None
    num_devices: int = 1
    tracer: Optional[object] = None
    metrics: Optional[object] = None

    def __post_init__(self) -> None:
        if self.max_batch is not None and self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.num_devices < 1:
            raise ConfigurationError("need at least one device")
        if kv_spare_bytes(self.config, self.memory_bytes) <= 0:
            raise ConfigurationError(
                f"{self.config.name} parameters leave no KV room in "
                f"{self.memory_bytes} bytes")

    def run(self, requests: Sequence[InferenceRequest],
            arrival_times: Optional[Sequence[float]] = None
            ) -> ContinuousBatchStats:
        """Serve ``requests`` with continuous batching; returns stats.

        ``arrival_times`` defaults to all-at-once; pass
        :func:`~repro.appliance.scheduler.poisson_arrivals` for
        open-loop load.  FCFS is preserved: admission considers only the
        head of the waiting queue (head-of-line blocking included).
        """
        if not requests:
            raise ConfigurationError("no requests to schedule")
        if arrival_times is None:
            arrival_times = [0.0] * len(requests)
        if len(arrival_times) != len(requests):
            raise ConfigurationError(
                "arrival_times must match requests in length")
        tracer = get_tracer(self.tracer)
        metrics = get_metrics(self.metrics)
        faults = get_faults()
        events: Sequence[DeviceFaultEvent] = \
            faults.device_events if faults is not None else ()
        ev_idx = 0
        kv_budget = kv_spare_bytes(self.config, self.memory_bytes)
        waiting = sorted(zip(requests, arrival_times), key=lambda p: p[1])
        head = 0
        running: List[_Running] = []
        free_slots: List[int] = []
        next_slot = 0
        kv_reserved = [0] * self.num_devices
        alive = [True] * self.num_devices
        stall_pending = [0.0] * self.num_devices
        requeue_info: Dict[int, tuple] = {}
        completed: List[CompletedRequest] = []
        rejected: List[RejectedRequest] = []
        failover_events: List[FailoverEvent] = []
        failover_latencies: List[float] = []
        now = 0.0
        iterations = 0
        max_occupancy = 0
        busy_s = 0.0
        occupancy_time_s = 0.0
        stall_total_s = 0.0
        devices_failed = 0

        with tracer.span("scheduler.continuous", category="scheduler",
                         requests=len(requests),
                         memory_gb=self.memory_bytes / 1e9):
            while head < len(waiting) or running:
                if not running and head < len(waiting) \
                        and waiting[head][1] > now:
                    now = waiting[head][1]  # idle: jump to next arrival

                # -- scheduled device faults (iteration boundaries) -----
                while ev_idx < len(events) and events[ev_idx].at_s <= now:
                    event = events[ev_idx]
                    ev_idx += 1
                    if event.device >= self.num_devices \
                            or not alive[event.device]:
                        continue  # unmapped or already-dead device
                    if event.kind is DeviceFaultKind.STALL:
                        stall_pending[event.device] += event.duration_s
                        stall_total_s += event.duration_s
                        if faults is not None:
                            faults.note_stall(event.duration_s)
                        if metrics.enabled:
                            metrics.counter("scheduler.device_stalls").inc()
                        if tracer.enabled:
                            tracer.sim_span(
                                "device_stall", start_s=now,
                                dur_s=event.duration_s,
                                track="scheduler.faults", category="faults",
                                args={"device": event.device})
                        continue
                    # Permanent failure: the device's in-flight requests
                    # lose their KV caches and return to the queue head
                    # (original order), to re-run admission against the
                    # surviving capacity.
                    alive[event.device] = False
                    devices_failed += 1
                    victims = [r for r in running
                               if r.device == event.device]
                    running = [r for r in running
                               if r.device != event.device]
                    for victim in victims:
                        kv_reserved[event.device] -= victim.kv_reserved
                        heapq.heappush(free_slots, victim.slot)
                        requeue_info[id(victim.request)] = (
                            victim.failovers + 1, now)
                    waiting[head:head] = [(v.request, v.arrival_s)
                                          for v in victims]
                    failover_events.append(FailoverEvent(
                        at_s=now, device=event.device,
                        requeued=len(victims)))
                    if faults is not None:
                        faults.note_device_failure(requeued=len(victims))
                    if metrics.enabled:
                        metrics.counter("scheduler.device_failures").inc()
                        metrics.counter("scheduler.requeued").inc(
                            len(victims))
                    if tracer.enabled:
                        tracer.sim_span(
                            "device_fail", start_s=now, dur_s=0.0,
                            track="scheduler.faults", category="faults",
                            args={"device": event.device,
                                  "requeued": len(victims)})
                if not any(alive):
                    # Nothing left to serve on: reject the remaining
                    # work with the typed error instead of hanging.
                    for request, arrival in waiting[head:]:
                        error = DeviceLostError(
                            "all devices failed; serving capacity lost")
                        rejected.append(RejectedRequest(
                            request=request, arrival_s=arrival,
                            reason=str(error), error=error))
                        if metrics.enabled:
                            metrics.counter("scheduler.rejected").inc()
                    head = len(waiting)
                    break

                # -- admission: FCFS from the queue head ----------------
                admitted: List[_Running] = []
                while head < len(waiting) and waiting[head][1] <= now:
                    request, arrival = waiting[head]
                    error = infeasible_error(self.config,
                                             self.memory_bytes, request)
                    if error is not None:
                        rejected.append(RejectedRequest(
                            request=request, arrival_s=arrival,
                            reason=str(error), error=error))
                        head += 1
                        if metrics.enabled:
                            metrics.counter("scheduler.rejected").inc()
                        continue
                    peak = peak_kv_bytes(self.config, request.input_len,
                                         request.output_len)
                    device = self._pick_device(running, alive, kv_reserved)
                    if device is None:
                        break  # every surviving device at max_batch
                    if kv_reserved[device] + peak > kv_budget:
                        break  # no KV room: head-of-line waits
                    if free_slots:
                        slot = heapq.heappop(free_slots)
                    else:
                        slot = next_slot
                        next_slot += 1
                    entry = _Running(request=request, arrival_s=arrival,
                                     admitted_s=now, kv_reserved=peak,
                                     slot=slot, device=device)
                    info = requeue_info.pop(id(request), None)
                    if info is not None:
                        entry.failovers = info[0]
                        latency = now - info[1]
                        failover_latencies.append(latency)
                        if faults is not None:
                            faults.note_failover_latency(latency)
                        if metrics.enabled:
                            metrics.counter(
                                "scheduler.failover_readmits").inc()
                    kv_reserved[device] += peak
                    running.append(entry)
                    admitted.append(entry)
                    head += 1
                    if metrics.enabled:
                        metrics.counter("scheduler.admitted").inc()

                if not running:
                    continue  # everything due by `now` was rejected

                # -- one iteration: prefills, then one decode step per
                #    device; the iteration ends at the slowest device --
                start = now
                iter_end = start
                total_decodes = 0
                for d in range(self.num_devices):
                    if not alive[d]:
                        continue
                    dev_admitted = [e for e in admitted if e.device == d]
                    decoders = [r for r in running
                                if r.device == d and r not in admitted
                                and not r.done]
                    if not dev_admitted and not decoders:
                        continue
                    cursor = start
                    if stall_pending[d]:
                        cursor += stall_pending[d]  # transient stall tax
                        stall_pending[d] = 0.0
                    for entry in dev_admitted:
                        cursor += self.step.prefill_s(
                            entry.request.input_len)
                        entry.generated = 1
                        entry.first_token_s = cursor
                    decode_s = 0.0
                    if decoders:
                        mean_ctx = int(math.ceil(
                            sum(r.context_len for r in decoders)
                            / len(decoders)))
                        decode_s = self.step.decode_step_s(len(decoders),
                                                           mean_ctx)
                    end_d = cursor + decode_s
                    for entry in decoders:
                        entry.generated += 1
                    total_decodes += len(decoders)
                    iter_end = max(iter_end, end_d)
                now = iter_end
                iterations += 1
                occupancy = len(running)
                max_occupancy = max(max_occupancy, occupancy)
                busy_s += now - start
                occupancy_time_s += (now - start) * occupancy

                # -- completions ----------------------------------------
                still: List[_Running] = []
                for entry in running:
                    if not entry.done:
                        still.append(entry)
                        continue
                    kv_reserved[entry.device] -= entry.kv_reserved
                    heapq.heappush(free_slots, entry.slot)
                    completed.append(CompletedRequest(
                        request=entry.request,
                        arrival_s=entry.arrival_s,
                        start_s=entry.admitted_s,
                        finish_s=now,
                        first_token_s=entry.first_token_s,
                        failovers=entry.failovers))
                    if tracer.enabled:
                        tracer.sim_span(
                            "request", start_s=entry.admitted_s,
                            dur_s=now - entry.admitted_s,
                            track=f"scheduler.slot{entry.slot}",
                            category="scheduler",
                            args={"request_id": entry.request.request_id,
                                  "queue_wait_s":
                                      entry.admitted_s - entry.arrival_s,
                                  "ttft_s": entry.first_token_s
                                  - entry.arrival_s,
                                  "output_tokens":
                                      entry.request.output_len})
                running = still

                # -- observability (records only; never feeds back) -----
                if tracer.enabled and iterations <= MAX_TRACED_ITERATIONS:
                    tracer.sim_span(
                        "batch_step", start_s=start, dur_s=now - start,
                        track="scheduler.batch", category="scheduler",
                        args={"iteration": iterations,
                              "prefills": len(admitted),
                              "decodes": total_decodes,
                              "occupancy": occupancy,
                              "kv_reserved_gb": sum(kv_reserved) / 1e9})
                if metrics.enabled:
                    metrics.gauge("scheduler.batch_occupancy").set(
                        occupancy)
                    metrics.counter("scheduler.decode_steps").inc(
                        total_decodes)
                    metrics.counter("scheduler.prefills").inc(
                        len(admitted))

        if metrics.enabled:
            for c in completed:
                if c.ttft_s is not None:
                    metrics.histogram("scheduler.ttft_s").observe(c.ttft_s)
                if c.mean_tbt_s is not None:
                    metrics.histogram("scheduler.tbt_s").observe(
                        c.mean_tbt_s)
                metrics.histogram("scheduler.latency_s").observe(
                    c.total_latency_s)
        makespan = max(c.finish_s for c in completed) if completed else 0.0
        return ContinuousBatchStats(
            completed=completed, makespan_s=makespan,
            num_instances=self.num_devices,
            rejected=rejected, num_iterations=iterations,
            max_occupancy=max_occupancy, busy_s=busy_s,
            occupancy_time_s=occupancy_time_s,
            stall_s=stall_total_s, devices_failed=devices_failed,
            failover_events=failover_events,
            failover_latencies_s=failover_latencies)

    def _pick_device(self, running: List[_Running], alive: List[bool],
                     kv_reserved: List[int]) -> Optional[int]:
        """Least-reserved surviving device with a batch slot, or None.

        Ties break toward the lowest index, so a single-device engine
        always picks device 0 and multi-device placement is
        deterministic.
        """
        best: Optional[int] = None
        for d in range(self.num_devices):
            if not alive[d]:
                continue
            if self.max_batch is not None and sum(
                    1 for r in running if r.device == d) >= self.max_batch:
                continue
            if best is None or kv_reserved[d] < kv_reserved[best]:
                best = d
        return best
