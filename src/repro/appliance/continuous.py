"""Continuous batching over model replicas: event-driven serving kernel.

The FCFS scheduler in :mod:`repro.appliance.scheduler` gives each
request an exclusive instance for its whole lifetime, so every gen
token re-streams all parameters for a single row of activations — the
bandwidth-bound GEMV regime of paper §VII.  Serving systems instead
re-form the batch *every iteration*: requests join the running batch as
soon as their KV cache fits (admission control), each decode step
processes one token from every running request against once-streamed
weights (small-batch GEMM, the lever of the paper's ref [10]), and
requests leave the moment their last token is produced.

:class:`ContinuousBatchScheduler` simulates that regime at decode-step
granularity with a **global event heap** of request-arrival,
device-step-complete, and device-fault events.  Each device's timeline
advances independently: admission, prefill, decode, stall, and failover
all fire at their true simulated times instead of at a global iteration
boundary.  Quiet decode stretches (no pending admissions, no scheduled
fault before the next completion) are planned as a single *macro-step*:
the whole cohort of decode steps is priced in one vectorized call
(``step.decode_steps_s`` when the model provides it), which is what
makes cluster-scale runs (10^5–10^6 requests) tractable.  (The legacy
lock-step "barrier" kernel the event heap replaced was retired after
an A/B deprecation window; DESIGN.md records the semantic deltas.)

Scheduling semantics:

* **Admission** — FCFS from the waiting queue; a request is admitted
  when the target device has a slot (``max_batch``) and its *peak* KV
  footprint fits in the reserved-KV budget (``kv_spare_bytes``;
  reserving peak up-front guarantees no mid-flight eviction).
  Requests that can never be served — position budget or device
  memory exceeded — are rejected with a reason instead of being
  served with a fabricated latency.
* **Iteration** — newly admitted requests run their prefill (sum
  stage, emitting their first token); everyone else advances one
  decode step, costed by the step model at the batch's mean context.
* **Completion** — a request reaching ``output_len`` leaves and frees
  its KV reservation at its own device's step boundary.

Multi-tenant serving layers three policies over the same kernel, all
inert unless configured (the default single-class path is bit-identical
to plain FCFS):

* **Tenant classes** (:class:`TenantClass`) — requests carry a
  ``tenant_class`` name resolved against the scheduler's class table.
  Classes admit in strict priority tiers; within a tier, weighted fair
  queuing picks the class with the least weighted service (virtual
  time = admitted tokens / weight), so a weight-4 class gets 4x the
  admissions of a weight-1 sibling under contention.
* **Preemption** — when a class head cannot fit and strictly
  lower-priority requests are running, the cheapest eviction set
  (fewest victims, least KV freed, lowest device index) is preempted:
  victims lose their KV reservation, return to the *front* of their
  class queue, and restart from prefill on re-admission (the same
  restart semantics as failover requeue).
* **SLO admission** (``slo_admission=True``) — per-class TTFT/TBT
  targets shed requests whose projected service level cannot be met,
  via the typed :class:`~repro.errors.AdmissionError` path.  Goodput
  (tokens of requests that met their class targets) is reported next
  to raw throughput in :class:`ContinuousBatchStats`.

Per-request time-to-first-token and time-between-tokens come out of the
same timeline, alongside the familiar :class:`ServiceStats` aggregates.
Observability (per-device-step sim spans on ``scheduler.dev<i>``
tracks, a batch-occupancy gauge, admission/rejection counters) only
records — results are bit-identical with tracing on or off.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Deque, Dict, List, Optional, Protocol, Sequence, Tuple,
)

import numpy as np

from repro.appliance.scheduler import (
    CompletedRequest,
    RejectedRequest,
    ServiceStats,
    infeasible_error,
)
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeviceLostError,
    SimulationError,
)
from repro.faults.context import get_faults
from repro.faults.plan import DeviceFaultEvent, DeviceFaultKind
from repro.llm.config import LLMConfig
from repro.llm.kvcache import kv_spare_bytes, peak_kv_bytes
from repro.llm.workload import DEFAULT_TENANT_CLASS, InferenceRequest
from repro.obs.context import get_metrics, get_tracer
from repro.units import GB

#: Device-step sim-spans traced per run; long runs have tens of
#: thousands of near-identical steps, so the trace keeps the first ones
#: and notes the truncation in the span args.
MAX_TRACED_ITERATIONS = 4096


class BatchStepModel(Protocol):
    """What the engine needs from a cost model: per-iteration seconds.

    A step model *may* additionally provide
    ``decode_steps_s(batch, context_lens) -> ndarray`` — a vectorized
    cohort evaluation used by the event kernel's macro-steps (see
    :class:`repro.perf.analytical.BatchStepTimer`).  Models without it
    fall back to one ``decode_step_s`` call per step.
    """

    def prefill_s(self, input_len: int) -> float:
        """One request's sum stage (produces its first token)."""
        ...

    def decode_step_s(self, batch: int, context_len: int) -> float:
        """One batched gen step at the given mean attention span."""
        ...


def simulated_step_model(config: LLMConfig, device=None,
                         context_quantum: int = 32,
                         quantize: Optional[str] = None) -> BatchStepModel:
    """A :class:`BatchStepModel` priced by the instruction-level simulator.

    Alternative to :class:`repro.perf.analytical.BatchStepTimer`: steps
    are costed by scheduling real instruction streams (with unit overlap
    and shared memory bandwidth) instead of summing per-op analytical
    times.  Results are memoized per quantized context, and the
    simulator's own program/duration caches make repeated geometries
    cheap, so long serving runs stay tractable.

    Args:
        config: The model.
        device: A :class:`~repro.accelerator.device.CXLPNMDevice`
            (default: the paper's).
        context_quantum: Context quantization step for memoization.
        quantize: ``"int8"`` prices the quantized weight path (halved
            weight-stream bytes on the bandwidth-bound decode steps).
    """
    from repro.perf.simulator import AcceleratorSimulator, SimulatedStepTimer
    simulator = AcceleratorSimulator(device) if device is not None \
        else AcceleratorSimulator()
    return SimulatedStepTimer(config, simulator=simulator,
                              context_quantum=context_quantum,
                              quantize=quantize)


@dataclass(frozen=True)
class FailoverEvent:
    """One device failure the engine survived, for the failover timeline.

    Attributes:
        at_s: Simulated time at which the failure took effect (the
            fault event's true simulated time).
        device: Index of the lost device.
        requeued: In-flight requests returned to the waiting queue.
    """

    at_s: float
    device: int
    requeued: int


@dataclass(frozen=True)
class TenantClass:
    """One tenant priority class: scheduling share and SLO targets.

    Attributes:
        name: Class name; requests select it via
            ``InferenceRequest.tenant_class``.  Unknown names resolve
            to a default-parameter class, so a class table is never
            required to be exhaustive.
        weight: Fair-share weight within a priority tier.  Admission
            picks the eligible class with the least weighted service
            (admitted tokens / weight), so a weight-4 class receives
            4x the admitted tokens of a weight-1 sibling under
            sustained contention.
        priority: Strict tier; higher admits first, and may preempt
            strictly lower tiers under KV pressure.  Equal-priority
            classes never preempt each other.
        ttft_target_s: Optional time-to-first-token SLO target.  With
            ``slo_admission=True``, requests whose projected TTFT
            exceeds it are shed with a typed
            :class:`~repro.errors.AdmissionError`; completed requests
            beating it count toward goodput.
        tbt_target_s: Optional mean time-between-tokens SLO target,
            handled the same way.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    ttft_target_s: Optional[float] = None
    tbt_target_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant class name must be non-empty")
        if self.weight <= 0:
            raise ConfigurationError(
                f"class {self.name}: weight={self.weight} must be > 0")
        for label, value in (("ttft_target_s", self.ttft_target_s),
                             ("tbt_target_s", self.tbt_target_s)):
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"class {self.name}: {label}={value} must be > 0")

    def met_by(self, completed: CompletedRequest) -> bool:
        """Did a completed request meet this class's SLO targets?

        Targets that were never set are trivially met; a missing TTFT
        measurement fails a TTFT target (the request never produced a
        tracked first token within the run).
        """
        if self.ttft_target_s is not None:
            ttft = completed.ttft_s
            if ttft is None or ttft > self.ttft_target_s:
                return False
        if self.tbt_target_s is not None:
            tbt = completed.mean_tbt_s
            if tbt is not None and tbt > self.tbt_target_s:
                return False
        return True


@dataclass(eq=False)
class _Running:
    """In-flight request state inside a device's batch (identity
    semantics).

    ``failovers``/``requeued_at`` travel with the *queue entry* (set at
    admission from the waiting-queue tuple), never through a table
    keyed by ``id(request)`` — duplicate request objects in the input
    or recycled object ids therefore cannot mis-attribute failover
    counts.
    """

    request: InferenceRequest
    arrival_s: float
    admitted_s: float
    kv_reserved: int
    slot: int
    device: int = 0
    generated: int = 0
    failovers: int = 0
    first_token_s: Optional[float] = None
    requeued_at: Optional[float] = None
    seq: int = 0
    preempted: int = 0
    cls_name: str = DEFAULT_TENANT_CLASS
    prio: int = 0

    @property
    def context_len(self) -> int:
        """Attention span of this request's next decode step."""
        return self.request.input_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_len


@dataclass
class _QueueItem:
    """One waiting request with its attribution state.

    ``seq`` is the request's stable position in the arrival-sorted
    input (used for deterministic tie-breaks and wake-up dedup);
    ``requeued_at`` is set only by device-failure requeue and drives
    failover-latency accounting at re-admission — preemption requeue
    deliberately leaves it ``None`` so preemptions never pollute the
    failover latency distribution.
    """

    request: InferenceRequest
    arrival_s: float
    seq: int
    failovers: int = 0
    preemptions: int = 0
    requeued_at: Optional[float] = None


class _WaitQueue:
    """Per-class FIFO queues with weighted-fair virtual time.

    Each tenant class keeps its own FIFO (arrival order, with
    failover/preemption victims pushed back to the front) and a
    weighted service counter.  With a single class this degenerates to
    the plain FCFS waiting list: selection always returns the one
    class, in arrival order.
    """

    def __init__(self, items: Sequence[_QueueItem],
                 classes: Dict[str, TenantClass]) -> None:
        self.classes: Dict[str, TenantClass] = dict(classes)
        self.queues: Dict[str, Deque[_QueueItem]] = {}
        self.service: Dict[str, float] = {}
        for item in items:
            self.push_back(item)

    def cls(self, name: str) -> TenantClass:
        """The class record for ``name``, creating a default lazily."""
        tc = self.classes.get(name)
        if tc is None:
            tc = TenantClass(name=name)
            self.classes[name] = tc
        return tc

    def _queue_for(self, name: str) -> Deque[_QueueItem]:
        dq = self.queues.get(name)
        if dq is None:
            self.cls(name)
            dq = self.queues[name] = deque()
            self.service.setdefault(name, 0.0)
        return dq

    def push_back(self, item: _QueueItem) -> None:
        self._queue_for(item.request.tenant_class).append(item)

    def push_front(self, items: Sequence[_QueueItem]) -> None:
        """Requeue victims at their class front, preserving their order."""
        for item in reversed(items):
            self._queue_for(item.request.tenant_class).appendleft(item)

    def __len__(self) -> int:
        return sum(len(dq) for dq in self.queues.values())

    def peek(self, name: str) -> _QueueItem:
        return self.queues[name][0]

    def pop(self, name: str) -> _QueueItem:
        return self.queues[name].popleft()

    def charge(self, name: str, tokens: int) -> None:
        self.service[name] += tokens / self.cls(name).weight

    def refund(self, name: str, tokens: int) -> None:
        self.service[name] -= tokens / self.cls(name).weight

    def select(self, now: float, blocked: set,
               prio_floor: Optional[int]) -> Optional[str]:
        """Next class to try: highest tier, then least weighted service.

        Skips empty queues, classes already blocked this admission
        pass, classes below the blocking tier's priority floor (a
        blocked class stalls every strictly lower tier, never its
        equal-priority siblings), and classes whose head has not
        arrived yet.  Name breaks exact service ties deterministically.
        """
        best: Optional[str] = None
        best_key: Optional[Tuple[int, float, str]] = None
        for name, dq in self.queues.items():
            if not dq or name in blocked:
                continue
            tc = self.cls(name)
            if prio_floor is not None and tc.priority < prio_floor:
                continue
            if dq[0].arrival_s > now:
                continue
            key = (-tc.priority, self.service[name], name)
            if best_key is None or key < best_key:
                best, best_key = name, key
        return best

    def earliest_head_arrival(self) -> Optional[float]:
        heads = [dq[0].arrival_s for dq in self.queues.values() if dq]
        return min(heads) if heads else None

    def next_wakeup(self, now: float) -> Optional[Tuple[float, int]]:
        """``(arrival, seq)`` of the earliest future class head."""
        best: Optional[Tuple[float, int]] = None
        for dq in self.queues.values():
            if dq and dq[0].arrival_s > now:
                key = (dq[0].arrival_s, dq[0].seq)
                if best is None or key < best:
                    best = key
        return best

    def drain(self) -> List[_QueueItem]:
        """Remove and return everything, per-class FIFO order."""
        items = [item for dq in self.queues.values() for item in dq]
        for dq in self.queues.values():
            dq.clear()
        return items


@dataclass
class ContinuousBatchStats(ServiceStats):
    """Service statistics plus the batching-specific aggregates.

    ``num_instances`` mirrors the engine's ``num_devices`` (1 unless
    the run models a multi-device appliance) — each device serves many
    requests concurrently.  The failover fields are only non-trivial
    when a fault plan scheduled device events (``repro.faults``):
    ``failover_events`` is the survived-failure timeline,
    ``failover_latencies_s`` holds the queue-to-readmission delay of
    every requeued request, ``stall_s`` totals the transient device
    stalls that elapsed in simulated time (a stall overlapping idle
    time still counts here but delays nobody), and ``lost_device_s``
    is the serving capacity destroyed by permanent failures — for each
    dead device, the span from its failure to the end of the run.
    """

    num_iterations: int = 0
    max_occupancy: int = 0
    busy_s: float = 0.0
    occupancy_time_s: float = 0.0
    stall_s: float = 0.0
    devices_failed: int = 0
    lost_device_s: float = 0.0
    failover_events: List[FailoverEvent] = field(default_factory=list)
    failover_latencies_s: List[float] = field(default_factory=list)
    preemptions: int = 0
    tenant_classes: Dict[str, TenantClass] = field(default_factory=dict)

    def request_class(self, request: InferenceRequest) -> TenantClass:
        """The class a request resolved to (default-parameter if unknown)."""
        tc = self.tenant_classes.get(request.tenant_class)
        return tc if tc is not None else TenantClass(
            name=request.tenant_class)

    def met_slo(self, completed: CompletedRequest) -> bool:
        """Did this completed request meet its class's SLO targets?"""
        return self.request_class(completed.request).met_by(completed)

    @property
    def goodput_tokens_per_s(self) -> float:
        """Output tokens of SLO-meeting requests per makespan second.

        With no SLO targets configured every completed request counts,
        so goodput equals :attr:`throughput_tokens_per_s`; targets pull
        it down by exactly the tokens of the requests that missed.
        """
        if not self.makespan_s:
            return 0.0
        good = sum(c.request.output_len for c in self.completed
                   if self.met_slo(c))
        return good / self.makespan_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests meeting their class targets."""
        if not self.completed:
            return 0.0
        met = sum(1 for c in self.completed if self.met_slo(c))
        return met / len(self.completed)

    def class_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant-class service report, sorted by class name.

        Covers every class that appears in the class table, the
        completed list, or the rejected list — so a class that was
        entirely shed still shows up with its rejection count.
        """
        names = sorted(set(self.tenant_classes)
                       | {c.request.tenant_class for c in self.completed}
                       | {r.request.tenant_class for r in self.rejected})
        span = self.makespan_s
        out: Dict[str, Dict[str, float]] = {}
        for name in names:
            done = [c for c in self.completed
                    if c.request.tenant_class == name]
            met = [c for c in done if self.met_slo(c)]
            ttfts = [c.ttft_s for c in done if c.ttft_s is not None]
            tbts = [c.mean_tbt_s for c in done
                    if c.mean_tbt_s is not None]
            out[name] = {
                "completed": float(len(done)),
                "rejected": float(sum(
                    1 for r in self.rejected
                    if r.request.tenant_class == name)),
                "preempted_requests": float(sum(
                    1 for c in done if c.preemptions)),
                "slo_attainment":
                    len(met) / len(done) if done else 0.0,
                "throughput_tokens_per_s":
                    sum(c.request.output_len for c in done) / span
                    if span else 0.0,
                "goodput_tokens_per_s":
                    sum(c.request.output_len for c in met) / span
                    if span else 0.0,
                "mean_ttft_s":
                    float(np.mean(ttfts)) if ttfts else 0.0,
                "p95_ttft_s":
                    float(np.percentile(ttfts, 95)) if ttfts else 0.0,
                "mean_tbt_s": float(np.mean(tbts)) if tbts else 0.0,
            }
        return out

    @property
    def failovers(self) -> int:
        """Total in-flight requests requeued by device failures."""
        return sum(e.requeued for e in self.failover_events)

    @property
    def mean_failover_latency_s(self) -> float:
        """Mean failure-to-readmission delay; 0.0 with no failovers."""
        if not self.failover_latencies_s:
            return 0.0
        return float(np.mean(self.failover_latencies_s))

    @property
    def mean_occupancy(self) -> float:
        """Time-weighted mean batch size per busy device-second."""
        return self.occupancy_time_s / self.busy_s if self.busy_s else 0.0

    @property
    def available_device_s(self) -> float:
        """Device-seconds of serving capacity actually available.

        ``num_instances * makespan_s`` minus the capacity destroyed by
        permanent device failures (``lost_device_s``): a dead device
        stops accruing capacity at its failure time instead of being
        charged as idle for the rest of the run.
        """
        return max(0.0,
                   self.makespan_s * self.num_instances
                   - self.lost_device_s)

    @property
    def instance_utilization(self) -> float:
        """Busy device-seconds over *available* device-seconds.

        Overrides the FCFS definition (per-request busy time summed
        over instances), which would double-count overlapping
        residents.  The denominator excludes capacity lost to
        permanent device failures.
        """
        capacity = self.available_device_s
        return self.busy_s / capacity if capacity else 0.0

    def _ttfts(self) -> np.ndarray:
        return np.array([c.ttft_s for c in self.completed
                         if c.ttft_s is not None])

    @property
    def mean_ttft_s(self) -> float:
        ttfts = self._ttfts()
        return float(ttfts.mean()) if len(ttfts) else 0.0

    @property
    def p95_ttft_s(self) -> float:
        ttfts = self._ttfts()
        return float(np.percentile(ttfts, 95)) if len(ttfts) else 0.0

    @property
    def mean_tbt_s(self) -> float:
        tbts = [c.mean_tbt_s for c in self.completed
                if c.mean_tbt_s is not None]
        return float(np.mean(tbts)) if tbts else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = super().as_dict()
        out.update({
            "num_iterations": float(self.num_iterations),
            "max_occupancy": float(self.max_occupancy),
            "mean_occupancy": self.mean_occupancy,
            "mean_ttft_s": self.mean_ttft_s,
            "p95_ttft_s": self.p95_ttft_s,
            "mean_tbt_s": self.mean_tbt_s,
            "stall_s": self.stall_s,
            "devices_failed": float(self.devices_failed),
            "lost_device_s": self.lost_device_s,
            "failovers": float(self.failovers),
            "mean_failover_latency_s": self.mean_failover_latency_s,
            "preemptions": float(self.preemptions),
            "goodput_tokens_per_s": self.goodput_tokens_per_s,
            "slo_attainment": self.slo_attainment,
        })
        return out


@dataclass
class ContinuousBatchScheduler:
    """Continuous-batching scheduler forming each device's batch anew
    every decode step.

    Attributes:
        step: Per-iteration cost model (prefill and batched decode);
            :class:`repro.perf.analytical.BatchStepTimer` for the
            analytical devices, or any object with the same two
            methods (an optional vectorized ``decode_steps_s``
            accelerates the event kernel's macro-steps).
        config: The model being served (drives KV/position budgets).
        memory_bytes: Per-device memory; parameters are resident, the
            rest is each device's KV admission budget.
        max_batch: Optional hard cap on concurrent requests per device
            (defaults to whatever the KV budget allows).
        num_devices: Model replicas served in parallel (appliance DP).
            Each device runs its own batch and its own timeline.
            Scheduled device faults from an ambient
            :class:`~repro.faults.FaultPlan` stall or permanently fail
            individual devices — the engine requeues the victims and
            re-admits them against surviving capacity.
        classes: Optional tenant class table (a sequence of
            :class:`TenantClass`).  Requests resolve their
            ``tenant_class`` name against it; unknown names get
            default-parameter classes.  With no table (or one class)
            scheduling is plain FCFS.
        slo_admission: When true, classes with TTFT/TBT targets shed
            requests whose projected service level cannot be met, via
            the typed :class:`~repro.errors.AdmissionError` path.
            Requests already admitted once (failover or preemption
            victims) are never shed — their work is preserved.
        tracer: Optional span tracer; defaults to the ambient/no-op one.
        metrics: Optional metrics registry, resolved the same way.
    """

    step: BatchStepModel
    config: LLMConfig
    memory_bytes: int
    max_batch: Optional[int] = None
    num_devices: int = 1
    classes: Optional[Sequence[TenantClass]] = None
    slo_admission: bool = False
    tracer: Optional[object] = None
    metrics: Optional[object] = None

    def __post_init__(self) -> None:
        if self.max_batch is not None and self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.num_devices < 1:
            raise ConfigurationError("need at least one device")
        if self.classes is not None:
            names = [tc.name for tc in self.classes]
            if len(set(names)) != len(names):
                raise ConfigurationError(
                    f"duplicate tenant class names: {sorted(names)}")
        if kv_spare_bytes(self.config, self.memory_bytes) <= 0:
            raise ConfigurationError(
                f"{self.config.name} parameters leave no KV room in "
                f"{self.memory_bytes} bytes")

    def class_table(self) -> Dict[str, TenantClass]:
        """The configured classes as a name-keyed table (may be empty)."""
        if not self.classes:
            return {}
        return {tc.name: tc for tc in self.classes}

    def run(self, requests: Sequence[InferenceRequest],
            arrival_times: Optional[Sequence[float]] = None
            ) -> ContinuousBatchStats:
        """Serve ``requests`` with continuous batching; returns stats.

        ``arrival_times`` defaults to all-at-once; pass
        :func:`~repro.appliance.scheduler.poisson_arrivals` for
        open-loop load.  FCFS is preserved: admission considers only the
        head of the waiting queue (head-of-line blocking included).
        """
        if not requests:
            raise ConfigurationError("no requests to schedule")
        if arrival_times is None:
            arrival_times = [0.0] * len(requests)
        if len(arrival_times) != len(requests):
            raise ConfigurationError(
                "arrival_times must match requests in length")
        tracer = get_tracer(self.tracer)
        metrics = get_metrics(self.metrics)
        faults = get_faults()
        events: Sequence[DeviceFaultEvent] = \
            faults.device_events if faults is not None else ()
        waiting = [
            _QueueItem(request=r, arrival_s=a, seq=i)
            for i, (r, a) in enumerate(
                sorted(zip(requests, arrival_times),
                       key=lambda p: p[1]))]
        with tracer.span("scheduler.continuous", category="scheduler",
                         requests=len(requests),
                         memory_gb=self.memory_bytes / GB):
            stats = _EventKernel(self, waiting, tracer, metrics,
                                 faults, events).run()
        if metrics.enabled:
            for c in stats.completed:
                if c.ttft_s is not None:
                    metrics.histogram("scheduler.ttft_s").observe(c.ttft_s)
                if c.mean_tbt_s is not None:
                    metrics.histogram("scheduler.tbt_s").observe(
                        c.mean_tbt_s)
                metrics.histogram("scheduler.latency_s").observe(
                    c.total_latency_s)
        return stats


# -- event-driven kernel ----------------------------------------------

#: Heap-entry priorities: at equal timestamps a device's step completes
#: (and its requests finish) before a fault at that instant strikes,
#: and plain arrival wake-ups come last.
_PRIO_STEP, _PRIO_FAULT, _PRIO_ARRIVAL = 0, 1, 2


class _Device:
    """One device's independent timeline inside the event kernel."""

    __slots__ = ("index", "alive", "busy", "epoch", "batch", "kv_reserved",
                 "stall_until", "failed_at", "unit_kind", "unit_start",
                 "unit_end", "unit_steps", "unit_ends", "unit_prefills",
                 "unit_decoders")

    def __init__(self, index: int) -> None:
        self.index = index
        self.alive = True
        self.busy = False
        self.epoch = 0           # invalidates stale step-complete events
        self.batch: List[_Running] = []
        self.kv_reserved = 0
        self.stall_until = 0.0   # stalls elapse in simulated time
        self.failed_at: Optional[float] = None
        self.unit_kind = ""      # "iter" (prefills + 1 decode) | "decode"
        self.unit_start = 0.0
        self.unit_end = 0.0
        self.unit_steps = 0
        self.unit_ends: Optional[np.ndarray] = None
        self.unit_prefills: Sequence[_Running] = ()
        self.unit_decoders: Sequence[_Running] = ()


class _EventKernel:
    """Global event heap advancing every device at its own pace.

    Three event kinds drive the simulation: request arrivals,
    device-step completions, and scheduled device faults.  A device
    with pending prefills runs one barrier-style iteration (prefill
    block plus one decode step of the previous residents — the atomic
    unit both kernels share); a device with only decoders runs a
    *macro-step*: the whole cohort of decode steps up to its next
    completion, priced in one vectorized call and truncated early only
    if an admission lands on the device mid-flight or a fault is due.
    """

    def __init__(self, sched: ContinuousBatchScheduler,
                 waiting: List[_QueueItem], tracer, metrics, faults,
                 events: Sequence[DeviceFaultEvent]) -> None:
        self.sched = sched
        self.step = sched.step
        self.queue = _WaitQueue(waiting, sched.class_table())
        self.tracer = tracer
        self.metrics = metrics
        self.faults = faults
        self.events = tuple(events)
        self.kv_budget = kv_spare_bytes(sched.config, sched.memory_bytes)
        self.devs = [_Device(d) for d in range(sched.num_devices)]
        self.heap: List[tuple] = []
        self.seq = itertools.count()
        self.fault_idx = 0
        self.free_slots: List[int] = []
        self.next_slot = 0
        self.in_flight = 0
        self.completed: List[CompletedRequest] = []
        self.rejected: List[RejectedRequest] = []
        self.failover_events: List[FailoverEvent] = []
        self.failover_latencies: List[float] = []
        self.iterations = 0
        self.max_occupancy = 0
        self.busy_s = 0.0
        self.occupancy_time_s = 0.0
        self.stall_total_s = 0.0
        self.devices_failed = 0
        self.preempted = 0
        self.units_traced = 0
        self._arrival_key: Optional[Tuple[int, float]] = None

    # -- event loop ----------------------------------------------------

    def run(self) -> ContinuousBatchStats:
        for idx, event in enumerate(self.events):
            heapq.heappush(self.heap, (event.at_s, _PRIO_FAULT,
                                       next(self.seq), idx, 0))
        self._admit_and_start(0.0)
        while self.heap or len(self.queue):
            if not self.heap:
                # Only future arrivals remain; jump to the earliest
                # class head.
                arrival = self.queue.earliest_head_arrival()
                if arrival is None:  # pragma: no cover - invariant
                    break
                if not any(dev.busy for dev in self.devs):
                    self._admit_and_start(arrival)
                    nxt = self.queue.earliest_head_arrival()
                    if not self.heap and nxt is not None \
                            and nxt <= arrival:
                        raise SimulationError(
                            "admission deadlock: waiting head can "
                            "never be admitted")
                    continue
                raise SimulationError(  # pragma: no cover - invariant
                    "busy device without a pending step event")
            now, prio, _seq, a, b = heapq.heappop(self.heap)
            if prio == _PRIO_STEP:
                self._on_step_done(now, self.devs[a], b)
            elif prio == _PRIO_FAULT:
                self._on_fault(now, a)
            else:
                self._admit_and_start(now)  # arrival wake-up
        makespan = max(c.finish_s for c in self.completed) \
            if self.completed else 0.0
        lost = sum(max(0.0, makespan - dev.failed_at)
                   for dev in self.devs if dev.failed_at is not None)
        return ContinuousBatchStats(
            completed=self.completed, makespan_s=makespan,
            num_instances=self.sched.num_devices,
            rejected=self.rejected, num_iterations=self.iterations,
            max_occupancy=self.max_occupancy, busy_s=self.busy_s,
            occupancy_time_s=self.occupancy_time_s,
            stall_s=self.stall_total_s,
            devices_failed=self.devices_failed,
            lost_device_s=lost,
            failover_events=self.failover_events,
            failover_latencies_s=self.failover_latencies,
            preemptions=self.preempted,
            tenant_classes=dict(self.queue.classes))

    # -- step planning -------------------------------------------------

    def _next_fault_time(self) -> Optional[float]:
        if self.fault_idx < len(self.events):
            return self.events[self.fault_idx].at_s
        return None

    def _decode_run(self, batch: int, ctx0: int, k: int) -> np.ndarray:
        """Durations of ``k`` consecutive decode steps, vectorized.

        The mean context of an unchanged batch grows by exactly one
        token per step, so the cohort is ``ctx0 .. ctx0+k-1``; step
        models exposing ``decode_steps_s`` price it in one call.
        """
        steps = getattr(self.step, "decode_steps_s", None)
        if steps is not None:
            return np.asarray(
                steps(batch, ctx0 + np.arange(k)), dtype=float)
        return np.array([self.step.decode_step_s(batch, ctx0 + i)
                         for i in range(k)], dtype=float)

    def _start_unit(self, dev: _Device, now: float) -> None:
        """Plan the device's next unit and schedule its completion."""
        prefills = [e for e in dev.batch if e.generated == 0]
        decoders = [e for e in dev.batch
                    if e.generated > 0 and not e.done]
        if not prefills and not decoders:
            return
        start = max(now, dev.stall_until)
        if prefills:
            # Barrier-style iteration: prefill block plus one decode
            # step of the previous residents (atomic, like one
            # iteration of the legacy kernel).
            cursor = start
            for e in prefills:
                cursor += self.step.prefill_s(e.request.input_len)
                e.admitted_s = start  # service begins at unit start
                e.first_token_s = cursor
            decode_s = 0.0
            if decoders:
                mean_ctx = int(math.ceil(
                    sum(e.context_len for e in decoders)
                    / len(decoders)))
                decode_s = self.step.decode_step_s(len(decoders),
                                                   mean_ctx)
            dev.unit_kind = "iter"
            dev.unit_steps = 1
            dev.unit_ends = None
            dev.unit_end = cursor + decode_s
        else:
            # Macro-step: the whole cohort of decode steps up to the
            # batch's next completion, bounded by the next scheduled
            # fault so stalls/failures strike at a step boundary.
            n = len(decoders)
            k = min(e.request.output_len - e.generated
                    for e in decoders)
            ctx0 = int(math.ceil(
                sum(e.context_len for e in decoders) / n))
            if k == 1:
                dev.unit_ends = None
                dev.unit_end = start + self.step.decode_step_s(n, ctx0)
            else:
                durs = self._decode_run(n, ctx0, k)
                # Sequential cumulative sum from `start`, so step
                # boundaries are bit-identical to the one-step-at-a-
                # time barrier arithmetic.
                ends = np.cumsum(
                    np.concatenate(((start,), durs)))[1:]
                next_fault = self._next_fault_time()
                if next_fault is not None \
                        and next_fault < float(ends[-1]):
                    j = int(np.searchsorted(ends, next_fault,
                                            side="left"))
                    k = min(k, j + 1)
                    ends = ends[:k]
                dev.unit_ends = ends
                dev.unit_end = float(ends[-1])
            dev.unit_kind = "decode"
            dev.unit_steps = k
        dev.unit_start = start
        dev.unit_prefills = prefills
        dev.unit_decoders = decoders
        dev.busy = True
        dev.epoch += 1
        heapq.heappush(self.heap, (dev.unit_end, _PRIO_STEP,
                                   next(self.seq), dev.index, dev.epoch))

    def _truncate_unit(self, dev: _Device, now: float) -> None:
        """Cut an in-flight macro-step at its next boundary >= now.

        Called when an admission lands on a busy device: the new
        request's prefill can begin at the device's next decode-step
        boundary instead of waiting out the whole macro-step.
        Prefill-bearing units are atomic (as in the barrier kernel).
        """
        if not dev.busy or dev.unit_kind != "decode" \
                or dev.unit_ends is None:
            return
        ends = dev.unit_ends
        j = int(np.searchsorted(ends, now, side="left"))
        if j + 1 >= len(ends):
            return  # already ends at the next boundary
        dev.unit_steps = j + 1
        dev.unit_ends = ends[:j + 1]
        dev.unit_end = float(ends[j])
        dev.epoch += 1
        heapq.heappush(self.heap, (dev.unit_end, _PRIO_STEP,
                                   next(self.seq), dev.index, dev.epoch))

    # -- event handlers ------------------------------------------------

    def _on_step_done(self, now: float, dev: _Device, epoch: int) -> None:
        if epoch != dev.epoch or not dev.busy:
            return  # stale event: unit was truncated or cancelled
        dev.busy = False
        # Occupancy is charged for the unit's members (the batch as of
        # unit start); requests admitted mid-unit hold KV but only
        # occupy a batch slot from their own first unit on.
        occupancy = len(dev.unit_prefills) + len(dev.unit_decoders)
        k = dev.unit_steps
        decoders = dev.unit_decoders
        if dev.unit_kind == "iter":
            for e in dev.unit_prefills:
                e.generated = 1
            for e in decoders:
                e.generated += 1
            self.busy_s += now - dev.unit_start
            self.occupancy_time_s += (now - dev.unit_start) * occupancy
            total_decodes = len(decoders)
        else:
            for e in decoders:
                e.generated += k
            # Per-boundary accumulation matches the barrier kernel's
            # iteration-by-iteration float arithmetic exactly.
            prev = dev.unit_start
            ends = dev.unit_ends if dev.unit_ends is not None \
                else (dev.unit_end,)
            for boundary in ends:
                boundary = float(boundary)
                self.busy_s += boundary - prev
                self.occupancy_time_s += (boundary - prev) * occupancy
                prev = boundary
            total_decodes = len(decoders) * k
        self.iterations += k
        if self.max_occupancy < self.in_flight:
            self.max_occupancy = self.in_flight
        self._complete_done(dev, now)
        if self.tracer.enabled \
                and self.units_traced < MAX_TRACED_ITERATIONS:
            self.units_traced += 1
            self.tracer.sim_span(
                "batch_step", start_s=dev.unit_start,
                dur_s=now - dev.unit_start,
                track=f"scheduler.dev{dev.index}", category="scheduler",
                args={"device": dev.index, "steps": k,
                      "prefills": len(dev.unit_prefills),
                      "decodes": total_decodes,
                      "occupancy": occupancy,
                      "kv_reserved_gb": dev.kv_reserved / GB})
        if self.metrics.enabled:
            self.metrics.gauge("scheduler.batch_occupancy").set(
                occupancy)
            self.metrics.counter("scheduler.decode_steps").inc(
                total_decodes)
            self.metrics.counter("scheduler.prefills").inc(
                len(dev.unit_prefills))
        dev.unit_prefills = ()
        dev.unit_decoders = ()
        dev.unit_ends = None
        self._admit_and_start(now)

    def _complete_done(self, dev: _Device, now: float) -> None:
        done = [e for e in dev.batch if e.done]
        if not done:
            return
        dev.batch = [e for e in dev.batch if not e.done]
        for entry in done:
            dev.kv_reserved -= entry.kv_reserved
            heapq.heappush(self.free_slots, entry.slot)
            self.in_flight -= 1
            self.completed.append(CompletedRequest(
                request=entry.request,
                arrival_s=entry.arrival_s,
                start_s=entry.admitted_s,
                finish_s=now,
                first_token_s=entry.first_token_s,
                failovers=entry.failovers,
                preemptions=entry.preempted))
            if self.tracer.enabled:
                self.tracer.sim_span(
                    "request", start_s=entry.admitted_s,
                    dur_s=now - entry.admitted_s,
                    track=f"scheduler.slot{entry.slot}",
                    category="scheduler",
                    args={"request_id": entry.request.request_id,
                          "queue_wait_s":
                              entry.admitted_s - entry.arrival_s,
                          "ttft_s": entry.first_token_s
                          - entry.arrival_s,
                          "output_tokens": entry.request.output_len})

    def _on_fault(self, now: float, idx: int) -> None:
        event = self.events[idx]
        self.fault_idx = idx + 1
        if event.device >= len(self.devs):
            self._admit_and_start(now)
            return  # unmapped device
        dev = self.devs[event.device]
        if not dev.alive:
            self._admit_and_start(now)
            return
        if event.kind is DeviceFaultKind.STALL:
            # The stall elapses in simulated time starting now (or at
            # the end of the step in flight); a stall fully absorbed by
            # idle time delays nobody.
            base = dev.unit_end if dev.busy \
                else max(now, dev.stall_until)
            dev.stall_until = base + event.duration_s
            self.stall_total_s += event.duration_s
            if self.faults is not None:
                self.faults.note_stall(event.duration_s)
            if self.metrics.enabled:
                self.metrics.counter("scheduler.device_stalls").inc()
            if self.tracer.enabled:
                self.tracer.sim_span(
                    "device_stall", start_s=base,
                    dur_s=event.duration_s,
                    track="scheduler.faults", category="faults",
                    args={"device": event.device})
            self._admit_and_start(now)
            return
        # Permanent failure at its true time: the step in flight is
        # cancelled, in-flight requests lose their KV caches and return
        # to the queue head (original order) to re-run admission
        # against the surviving capacity.
        dev.alive = False
        dev.failed_at = now
        self.devices_failed += 1
        if dev.busy:
            dev.busy = False
            dev.epoch += 1  # invalidate the pending step event
            dev.unit_prefills = ()
            dev.unit_decoders = ()
            dev.unit_ends = None
        victims = dev.batch
        dev.batch = []
        for victim in victims:
            dev.kv_reserved -= victim.kv_reserved
            heapq.heappush(self.free_slots, victim.slot)
            self.in_flight -= 1
        self.queue.push_front([
            _QueueItem(request=v.request, arrival_s=v.arrival_s,
                       seq=v.seq, failovers=v.failovers + 1,
                       preemptions=v.preempted, requeued_at=now)
            for v in victims])
        for v in victims:
            self.queue.refund(v.cls_name, v.request.total_tokens)
        self.failover_events.append(FailoverEvent(
            at_s=now, device=event.device, requeued=len(victims)))
        if self.faults is not None:
            self.faults.note_device_failure(requeued=len(victims))
        if self.metrics.enabled:
            self.metrics.counter("scheduler.device_failures").inc()
            self.metrics.counter("scheduler.requeued").inc(len(victims))
        if self.tracer.enabled:
            self.tracer.sim_span(
                "device_fail", start_s=now, dur_s=0.0,
                track="scheduler.faults", category="faults",
                args={"device": event.device,
                      "requeued": len(victims)})
        if not any(d.alive for d in self.devs):
            for item in self.queue.drain():
                error = DeviceLostError(
                    "all devices failed; serving capacity lost")
                self.rejected.append(RejectedRequest(
                    request=item.request, arrival_s=item.arrival_s,
                    reason=str(error), error=error))
                if self.metrics.enabled:
                    self.metrics.counter("scheduler.rejected").inc()
            self.heap.clear()
            return
        self._admit_and_start(now)

    # -- admission -----------------------------------------------------

    def _pick_device(self) -> Optional[_Device]:
        """Least-reserved surviving device with a batch slot, or None."""
        max_batch = self.sched.max_batch
        best: Optional[_Device] = None
        for dev in self.devs:
            if not dev.alive:
                continue
            if max_batch is not None and len(dev.batch) >= max_batch:
                continue
            if best is None or dev.kv_reserved < best.kv_reserved:
                best = dev
        return best

    def _reject(self, item: _QueueItem, error, slo: bool = False) -> None:
        self.rejected.append(RejectedRequest(
            request=item.request, arrival_s=item.arrival_s,
            reason=str(error), error=error))
        if self.metrics.enabled:
            self.metrics.counter("scheduler.rejected").inc()
            if slo:
                self.metrics.counter("scheduler.slo_rejected").inc()

    def _plan_preemption(self, priority: int, peak: int
                         ) -> Tuple[Optional[_Device], List[_Running]]:
        """Cheapest strictly-lower-priority eviction set fitting ``peak``.

        Per device, victims are taken lowest-priority-first, then
        most-recently-admitted (LIFO preserves the oldest work), then
        latest batch position, until the device has both KV room and a
        batch slot.  Among viable devices the plan with the fewest
        victims wins, then the least KV freed (least over-eviction),
        then the lowest device index.
        """
        max_batch = self.sched.max_batch
        best_key: Optional[Tuple[int, int, int]] = None
        best: Tuple[Optional[_Device], List[_Running]] = (None, [])
        for dev in self.devs:
            if not dev.alive:
                continue
            order = sorted(
                ((e.prio, -e.admitted_s, -i, e)
                 for i, e in enumerate(dev.batch) if e.prio < priority),
                key=lambda t: t[:3])
            victims: List[_Running] = []
            freed = 0
            for _p, _a, _i, e in order:
                kv_ok = dev.kv_reserved - freed + peak <= self.kv_budget
                slot_ok = max_batch is None \
                    or len(dev.batch) - len(victims) < max_batch
                if kv_ok and slot_ok:
                    break
                victims.append(e)
                freed += e.kv_reserved
            kv_ok = dev.kv_reserved - freed + peak <= self.kv_budget
            slot_ok = max_batch is None \
                or len(dev.batch) - len(victims) < max_batch
            if not victims or not kv_ok or not slot_ok:
                continue
            key = (len(victims), freed, dev.index)
            if best_key is None or key < best_key:
                best_key, best = key, (dev, victims)
        return best

    def _preempt(self, dev: _Device, victims: List[_Running],
                 now: float) -> None:
        """Evict ``victims`` from ``dev`` back to their class fronts.

        Victims lose their KV reservation and batch slot and restart
        from prefill at re-admission — the same restart semantics as
        failover requeue, but attributed to ``preemptions`` and kept
        out of the failover-latency distribution.  A victim inside the
        device's in-flight unit keeps its already-planned step work
        (charged as occupancy) but its stale running state is simply
        abandoned; decode macro-steps are truncated at the next
        boundary so the freed capacity is usable immediately after.
        """
        if dev.busy:
            self._truncate_unit(dev, now)
        items: List[_QueueItem] = []
        for v in victims:
            dev.batch.remove(v)  # identity comparison (eq=False)
            dev.kv_reserved -= v.kv_reserved
            heapq.heappush(self.free_slots, v.slot)
            self.in_flight -= 1
            self.queue.refund(v.cls_name, v.request.total_tokens)
            self.preempted += 1
            items.append(_QueueItem(
                request=v.request, arrival_s=v.arrival_s, seq=v.seq,
                failovers=v.failovers, preemptions=v.preempted + 1))
        self.queue.push_front(items)
        if self.metrics.enabled:
            self.metrics.counter("scheduler.preempted").inc(len(victims))
        if self.tracer.enabled:
            self.tracer.sim_span(
                "preempt", start_s=now, dur_s=0.0,
                track="scheduler.preempt", category="scheduler",
                args={"device": dev.index, "victims": len(victims)})

    def _projected_ttft(self, item: _QueueItem, dev: _Device,
                        victims: List[_Running], now: float) -> float:
        """Projected TTFT if admitted to ``dev`` now (victims evicted).

        The prefill starts at the later of now, the stall horizon, and
        the device's next step boundary (a decode macro-step truncates
        there; a prefill-bearing unit is atomic), behind the prefills
        of already-admitted requests that have not run yet.
        """
        if dev.busy and dev.unit_kind == "decode" \
                and dev.unit_ends is not None:
            ends = dev.unit_ends
            j = int(np.searchsorted(ends, now, side="left"))
            busy_until = float(ends[min(j, len(ends) - 1)])
        elif dev.busy:
            busy_until = dev.unit_end
        else:
            busy_until = now
        start = max(now, dev.stall_until, busy_until)
        queued = sum(
            self.step.prefill_s(e.request.input_len)
            for e in dev.batch
            if e.generated == 0
            and not any(e is p for p in dev.unit_prefills)
            and not any(e is v for v in victims))
        own = self.step.prefill_s(item.request.input_len)
        return start + queued + own - item.arrival_s

    def _projected_tbt(self, item: _QueueItem, dev: _Device,
                       victims: List[_Running]) -> float:
        """Projected decode step time at the post-admission occupancy."""
        survivors = [e for e in dev.batch
                     if not any(e is v for v in victims)]
        batch = len(survivors) + 1
        ctx = int(math.ceil(
            (sum(e.context_len for e in survivors)
             + item.request.input_len + 1) / batch))
        return self.step.decode_step_s(batch, ctx)

    def _slo_error(self, tc: TenantClass, item: _QueueItem,
                   dev: _Device, victims: List[_Running],
                   now: float) -> Optional[AdmissionError]:
        """Typed rejection when the projected service level misses SLO."""
        if tc.ttft_target_s is not None:
            ttft = self._projected_ttft(item, dev, victims, now)
            if ttft > tc.ttft_target_s:
                return AdmissionError(
                    f"class {tc.name}: projected TTFT {ttft:.3f}s "
                    f"exceeds target {tc.ttft_target_s:.3f}s")
        if tc.tbt_target_s is not None:
            tbt = self._projected_tbt(item, dev, victims)
            if tbt > tc.tbt_target_s:
                return AdmissionError(
                    f"class {tc.name}: projected TBT {tbt:.4f}s "
                    f"exceeds target {tc.tbt_target_s:.4f}s")
        return None

    def _admit_and_start(self, now: float) -> None:
        """Admit from the class heads, then kick every idle device.

        Each pass selects the eligible class by strict priority then
        weighted fair share (see :meth:`_WaitQueue.select`) and tries
        its head.  A head that cannot fit blocks its class and every
        strictly lower tier for the rest of the pass — unless evicting
        strictly lower-priority work makes room (preemption).  With a
        single class this is exactly FCFS head-of-line admission.

        Admission happens at the event's true time: the KV reservation
        is taken immediately, and if the target device is mid
        macro-step the step is truncated so the prefill begins at the
        next decode boundary.
        """
        sched = self.sched
        metrics = self.metrics
        queue = self.queue
        blocked: set = set()
        prio_floor: Optional[int] = None
        while True:
            name = queue.select(now, blocked, prio_floor)
            if name is None:
                break
            tc = queue.cls(name)
            item = queue.peek(name)
            request = item.request
            error = infeasible_error(sched.config, sched.memory_bytes,
                                     request)
            if error is not None:
                queue.pop(name)
                self._reject(item, error)
                continue
            peak = peak_kv_bytes(sched.config, request.input_len,
                                 request.output_len)
            dev = self._pick_device()
            if dev is not None \
                    and dev.kv_reserved + peak > self.kv_budget:
                dev = None  # no KV room on the least-reserved device
            victims: List[_Running] = []
            if dev is None:
                dev, victims = self._plan_preemption(tc.priority, peak)
            if dev is None:
                # Head-of-line blocking: this class waits, and so does
                # every strictly lower tier.
                blocked.add(name)
                prio_floor = tc.priority if prio_floor is None \
                    else max(prio_floor, tc.priority)
                continue
            if sched.slo_admission and not item.failovers \
                    and not item.preemptions:
                error = self._slo_error(tc, item, dev, victims, now)
                if error is not None:
                    queue.pop(name)
                    self._reject(item, error, slo=True)
                    continue
            if victims:
                self._preempt(dev, victims, now)
            queue.pop(name)
            queue.charge(name, request.total_tokens)
            if self.free_slots:
                slot = heapq.heappop(self.free_slots)
            else:
                slot = self.next_slot
                self.next_slot += 1
            entry = _Running(request=request, arrival_s=item.arrival_s,
                             admitted_s=now, kv_reserved=peak,
                             slot=slot, device=dev.index,
                             failovers=item.failovers,
                             requeued_at=item.requeued_at,
                             seq=item.seq, preempted=item.preemptions,
                             cls_name=name, prio=tc.priority)
            if item.requeued_at is not None:
                latency = now - item.requeued_at
                self.failover_latencies.append(latency)
                if self.faults is not None:
                    self.faults.note_failover_latency(latency)
                if metrics.enabled:
                    metrics.counter("scheduler.failover_readmits").inc()
            dev.kv_reserved += peak
            dev.batch.append(entry)
            self.in_flight += 1
            if self.max_occupancy < self.in_flight:
                self.max_occupancy = self.in_flight
            if metrics.enabled:
                metrics.counter("scheduler.admitted").inc()
            if dev.busy:
                self._truncate_unit(dev, now)
        for dev in self.devs:
            if dev.alive and not dev.busy and dev.batch:
                self._start_unit(dev, now)
        # Wake up when the earliest future class head arrives, if any.
        nxt = queue.next_wakeup(now)
        if nxt is not None:
            arrival, item_seq = nxt
            key = (item_seq, arrival)
            if key != self._arrival_key:
                self._arrival_key = key
                heapq.heappush(self.heap, (arrival, _PRIO_ARRIVAL,
                                           next(self.seq), -1, 0))
