"""Continuous (iteration-level) batching over one model instance.

The FCFS scheduler in :mod:`repro.appliance.scheduler` gives each
request an exclusive instance for its whole lifetime, so every gen
token re-streams all parameters for a single row of activations — the
bandwidth-bound GEMV regime of paper §VII.  Serving systems instead
re-form the batch *every iteration*: requests join the running batch as
soon as their KV cache fits (admission control), each decode step
processes one token from every running request against once-streamed
weights (small-batch GEMM, the lever of the paper's ref [10]), and
requests leave the moment their last token is produced.

:class:`ContinuousBatchScheduler` is a discrete-event simulation of
that regime at decode-step granularity:

* **Admission** — FCFS from the waiting queue; a request is admitted
  when the batch has a slot (``max_batch``) and its *peak* KV footprint
  fits in the reserved-KV budget (``kv_spare_bytes``; reserving peak
  up-front guarantees no mid-flight eviction).  Requests that can never
  be served — position budget or device memory exceeded — are rejected
  with a reason instead of being served with a fabricated latency.
* **Iteration** — newly admitted requests run their prefill (sum
  stage, emitting their first token); everyone else advances one
  decode step, costed by the step model at the batch's mean context.
* **Completion** — a request reaching ``output_len`` leaves and frees
  its KV reservation at the iteration boundary.

Per-request time-to-first-token and time-between-tokens come out of the
same timeline, alongside the familiar :class:`ServiceStats` aggregates.
Observability (per-iteration sim spans, a batch-occupancy gauge,
admission/rejection counters) only records — results are bit-identical
with tracing on or off.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.appliance.scheduler import (
    CompletedRequest,
    RejectedRequest,
    ServiceStats,
    infeasible_reason,
)
from repro.errors import ConfigurationError
from repro.llm.config import LLMConfig
from repro.llm.kvcache import kv_spare_bytes, peak_kv_bytes
from repro.llm.workload import InferenceRequest
from repro.obs.context import get_metrics, get_tracer

#: Iteration sim-spans traced per run; long runs have tens of thousands
#: of near-identical steps, so the trace keeps the first ones and notes
#: the truncation in the span args.
MAX_TRACED_ITERATIONS = 4096


class BatchStepModel(Protocol):
    """What the engine needs from a cost model: per-iteration seconds."""

    def prefill_s(self, input_len: int) -> float:
        """One request's sum stage (produces its first token)."""
        ...

    def decode_step_s(self, batch: int, context_len: int) -> float:
        """One batched gen step at the given mean attention span."""
        ...


def simulated_step_model(config: LLMConfig, device=None,
                         context_quantum: int = 32) -> BatchStepModel:
    """A :class:`BatchStepModel` priced by the instruction-level simulator.

    Alternative to :class:`repro.perf.analytical.BatchStepTimer`: steps
    are costed by scheduling real instruction streams (with unit overlap
    and shared memory bandwidth) instead of summing per-op analytical
    times.  Results are memoized per quantized context, and the
    simulator's own program/duration caches make repeated geometries
    cheap, so long serving runs stay tractable.

    Args:
        config: The model.
        device: A :class:`~repro.accelerator.device.CXLPNMDevice`
            (default: the paper's).
        context_quantum: Context quantization step for memoization.
    """
    from repro.perf.simulator import AcceleratorSimulator, SimulatedStepTimer
    simulator = AcceleratorSimulator(device) if device is not None \
        else AcceleratorSimulator()
    return SimulatedStepTimer(config, simulator=simulator,
                              context_quantum=context_quantum)


@dataclass(eq=False)
class _Running:
    """In-flight request state inside the batch (identity semantics)."""

    request: InferenceRequest
    arrival_s: float
    admitted_s: float
    kv_reserved: int
    slot: int
    generated: int = 0
    first_token_s: Optional[float] = None

    @property
    def context_len(self) -> int:
        """Attention span of this request's next decode step."""
        return self.request.input_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_len


@dataclass
class ContinuousBatchStats(ServiceStats):
    """Service statistics plus the batching-specific aggregates.

    ``num_instances`` is always 1 — the whole point is that one
    instance serves many requests concurrently.
    """

    num_iterations: int = 0
    max_occupancy: int = 0
    busy_s: float = 0.0
    occupancy_time_s: float = 0.0

    @property
    def mean_occupancy(self) -> float:
        """Time-weighted mean batch size while the engine was busy."""
        return self.occupancy_time_s / self.busy_s if self.busy_s else 0.0

    @property
    def instance_utilization(self) -> float:
        """Fraction of the makespan with a non-empty batch.

        Overrides the FCFS definition (per-request busy time summed over
        instances), which would double-count overlapping residents.
        """
        return self.busy_s / self.makespan_s if self.makespan_s else 0.0

    def _ttfts(self) -> np.ndarray:
        return np.array([c.ttft_s for c in self.completed
                         if c.ttft_s is not None])

    @property
    def mean_ttft_s(self) -> float:
        ttfts = self._ttfts()
        return float(ttfts.mean()) if len(ttfts) else 0.0

    @property
    def p95_ttft_s(self) -> float:
        ttfts = self._ttfts()
        return float(np.percentile(ttfts, 95)) if len(ttfts) else 0.0

    @property
    def mean_tbt_s(self) -> float:
        tbts = [c.mean_tbt_s for c in self.completed
                if c.mean_tbt_s is not None]
        return float(np.mean(tbts)) if tbts else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = super().as_dict()
        out.update({
            "num_iterations": float(self.num_iterations),
            "max_occupancy": float(self.max_occupancy),
            "mean_occupancy": self.mean_occupancy,
            "mean_ttft_s": self.mean_ttft_s,
            "p95_ttft_s": self.p95_ttft_s,
            "mean_tbt_s": self.mean_tbt_s,
        })
        return out


@dataclass
class ContinuousBatchScheduler:
    """Iteration-level scheduler forming the batch anew every decode step.

    Attributes:
        step: Per-iteration cost model (prefill and batched decode);
            :class:`repro.perf.analytical.BatchStepTimer` for the
            analytical devices, or any object with the same two methods.
        config: The model being served (drives KV/position budgets).
        memory_bytes: Device memory; parameters are resident, the rest
            is the KV admission budget.
        max_batch: Optional hard cap on concurrent requests (defaults
            to whatever the KV budget allows).
        tracer: Optional span tracer; defaults to the ambient/no-op one.
        metrics: Optional metrics registry, resolved the same way.
    """

    step: BatchStepModel
    config: LLMConfig
    memory_bytes: int
    max_batch: Optional[int] = None
    tracer: Optional[object] = None
    metrics: Optional[object] = None

    def __post_init__(self) -> None:
        if self.max_batch is not None and self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if kv_spare_bytes(self.config, self.memory_bytes) <= 0:
            raise ConfigurationError(
                f"{self.config.name} parameters leave no KV room in "
                f"{self.memory_bytes} bytes")

    def run(self, requests: Sequence[InferenceRequest],
            arrival_times: Optional[Sequence[float]] = None
            ) -> ContinuousBatchStats:
        """Serve ``requests`` with continuous batching; returns stats.

        ``arrival_times`` defaults to all-at-once; pass
        :func:`~repro.appliance.scheduler.poisson_arrivals` for
        open-loop load.  FCFS is preserved: admission considers only the
        head of the waiting queue (head-of-line blocking included).
        """
        if not requests:
            raise ConfigurationError("no requests to schedule")
        if arrival_times is None:
            arrival_times = [0.0] * len(requests)
        if len(arrival_times) != len(requests):
            raise ConfigurationError(
                "arrival_times must match requests in length")
        tracer = get_tracer(self.tracer)
        metrics = get_metrics(self.metrics)
        kv_budget = kv_spare_bytes(self.config, self.memory_bytes)
        waiting = sorted(zip(requests, arrival_times), key=lambda p: p[1])
        head = 0
        running: List[_Running] = []
        free_slots: List[int] = []
        next_slot = 0
        kv_reserved = 0
        completed: List[CompletedRequest] = []
        rejected: List[RejectedRequest] = []
        now = 0.0
        iterations = 0
        max_occupancy = 0
        busy_s = 0.0
        occupancy_time_s = 0.0

        with tracer.span("scheduler.continuous", category="scheduler",
                         requests=len(requests),
                         memory_gb=self.memory_bytes / 1e9):
            while head < len(waiting) or running:
                if not running and head < len(waiting) \
                        and waiting[head][1] > now:
                    now = waiting[head][1]  # idle: jump to next arrival

                # -- admission: FCFS from the queue head ----------------
                admitted: List[_Running] = []
                while head < len(waiting) and waiting[head][1] <= now:
                    request, arrival = waiting[head]
                    reason = infeasible_reason(self.config,
                                               self.memory_bytes, request)
                    if reason is not None:
                        rejected.append(RejectedRequest(
                            request=request, arrival_s=arrival,
                            reason=reason))
                        head += 1
                        if metrics.enabled:
                            metrics.counter("scheduler.rejected").inc()
                        continue
                    peak = peak_kv_bytes(self.config, request.input_len,
                                         request.output_len)
                    if kv_reserved + peak > kv_budget:
                        break  # no KV room: head-of-line waits
                    if self.max_batch is not None \
                            and len(running) >= self.max_batch:
                        break
                    if free_slots:
                        slot = heapq.heappop(free_slots)
                    else:
                        slot = next_slot
                        next_slot += 1
                    entry = _Running(request=request, arrival_s=arrival,
                                     admitted_s=now, kv_reserved=peak,
                                     slot=slot)
                    kv_reserved += peak
                    running.append(entry)
                    admitted.append(entry)
                    head += 1
                    if metrics.enabled:
                        metrics.counter("scheduler.admitted").inc()

                if not running:
                    continue  # everything due by `now` was rejected

                # -- one iteration: prefills, then one decode step ------
                start = now
                cursor = now
                for entry in admitted:
                    cursor += self.step.prefill_s(entry.request.input_len)
                    entry.generated = 1
                    entry.first_token_s = cursor
                decoders = [r for r in running
                            if r not in admitted and not r.done]
                decode_s = 0.0
                if decoders:
                    mean_ctx = int(math.ceil(
                        sum(r.context_len for r in decoders)
                        / len(decoders)))
                    decode_s = self.step.decode_step_s(len(decoders),
                                                       mean_ctx)
                now = cursor + decode_s
                for entry in decoders:
                    entry.generated += 1
                iterations += 1
                occupancy = len(running)
                max_occupancy = max(max_occupancy, occupancy)
                busy_s += now - start
                occupancy_time_s += (now - start) * occupancy

                # -- completions ----------------------------------------
                still: List[_Running] = []
                for entry in running:
                    if not entry.done:
                        still.append(entry)
                        continue
                    kv_reserved -= entry.kv_reserved
                    heapq.heappush(free_slots, entry.slot)
                    completed.append(CompletedRequest(
                        request=entry.request,
                        arrival_s=entry.arrival_s,
                        start_s=entry.admitted_s,
                        finish_s=now,
                        first_token_s=entry.first_token_s))
                    if tracer.enabled:
                        tracer.sim_span(
                            "request", start_s=entry.admitted_s,
                            dur_s=now - entry.admitted_s,
                            track=f"scheduler.slot{entry.slot}",
                            category="scheduler",
                            args={"request_id": entry.request.request_id,
                                  "queue_wait_s":
                                      entry.admitted_s - entry.arrival_s,
                                  "ttft_s": entry.first_token_s
                                  - entry.arrival_s,
                                  "output_tokens":
                                      entry.request.output_len})
                running = still

                # -- observability (records only; never feeds back) -----
                if tracer.enabled and iterations <= MAX_TRACED_ITERATIONS:
                    tracer.sim_span(
                        "batch_step", start_s=start, dur_s=now - start,
                        track="scheduler.batch", category="scheduler",
                        args={"iteration": iterations,
                              "prefills": len(admitted),
                              "decodes": len(decoders),
                              "occupancy": occupancy,
                              "kv_reserved_gb": kv_reserved / 1e9})
                if metrics.enabled:
                    metrics.gauge("scheduler.batch_occupancy").set(
                        occupancy)
                    metrics.counter("scheduler.decode_steps").inc(
                        len(decoders))
                    metrics.counter("scheduler.prefills").inc(
                        len(admitted))

        if metrics.enabled:
            for c in completed:
                if c.ttft_s is not None:
                    metrics.histogram("scheduler.ttft_s").observe(c.ttft_s)
                if c.mean_tbt_s is not None:
                    metrics.histogram("scheduler.tbt_s").observe(
                        c.mean_tbt_s)
                metrics.histogram("scheduler.latency_s").observe(
                    c.total_latency_s)
        makespan = max(c.finish_s for c in completed) if completed else 0.0
        return ContinuousBatchStats(
            completed=completed, makespan_s=makespan, num_instances=1,
            rejected=rejected, num_iterations=iterations,
            max_occupancy=max_occupancy, busy_s=busy_s,
            occupancy_time_s=occupancy_time_s)
