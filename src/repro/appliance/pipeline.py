"""Pipeline parallelism (the other FasterTransformer axis, §VII).

Pipeline parallelism assigns each device a contiguous *range of layers*
rather than a slice of every layer: a token flows through the stages in
sequence, passing one activation tile between neighbours per boundary.
Compared with tensor parallelism it swaps the two all-reduces per layer
for a single point-to-point transfer per stage boundary — cheaper
communication, but single-stream latency no longer improves (a token
still visits every layer serially, plus the boundary hops), and
throughput relies on keeping the pipeline full with concurrent requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ParallelismError
from repro.llm.config import LLMConfig
from repro.llm.graph import gen_stage_ops, sum_stage_ops
from repro.perf.analytical import DevicePerfModel, stage_result

#: Seconds to move one activation tile between neighbouring stages:
#: (payload_bytes) -> seconds.
HopModel = Callable[[float], float]


@dataclass(frozen=True)
class PipelinePlan:
    """A pipeline-parallel execution of one model instance.

    Attributes:
        config: The model.
        num_stages: Pipeline depth (devices per instance).
        model: Per-device performance model.
        hop: Inter-stage activation-transfer cost model.
    """

    config: LLMConfig
    num_stages: int
    model: DevicePerfModel
    hop: HopModel

    def __post_init__(self) -> None:
        if self.num_stages < 1:
            raise ParallelismError("pipeline needs >= 1 stage")
        if self.config.num_layers % self.num_stages:
            raise ParallelismError(
                f"{self.config.name}: {self.config.num_layers} layers not "
                f"divisible into {self.num_stages} stages")

    @property
    def layers_per_stage(self) -> int:
        return self.config.num_layers // self.num_stages

    @property
    def params_per_device(self) -> int:
        """Layer weights of one stage (embeddings live on the ends)."""
        per_layer = self.config.layer_param_bytes
        return self.layers_per_stage * per_layer

    def _hop_payload(self, batch_tokens: int) -> float:
        return float(batch_tokens * self.config.d_model
                     * self.config.dtype_bytes)

    def stage_time(self, context_len: int, batch_tokens: int = 1) -> float:
        """Time one pipeline stage spends on its layer range."""
        if batch_tokens == 1:
            ops = gen_stage_ops(self.config, context_len)
        else:
            ops = sum_stage_ops(self.config, batch_tokens)
        # Per-layer op lists are homogeneous; charge this stage its share
        # of the layer work plus its share of embedding/LM-head ends.
        total = stage_result("stage", ops, self.model).time_s
        return total / self.num_stages

    def token_latency(self, context_len: int) -> float:
        """Gen-token latency: all stages in sequence plus boundary hops."""
        hops = (self.num_stages - 1) * self.hop(self._hop_payload(1))
        return self.num_stages * self.stage_time(context_len) + hops

    def steady_throughput(self, context_len: int) -> float:
        """Tokens/s with the pipeline kept full by concurrent requests."""
        bottleneck = self.stage_time(context_len) \
            + self.hop(self._hop_payload(1))
        return 1.0 / bottleneck

    def pipeline_bubble_fraction(self, tokens_in_flight: int) -> float:
        """Idle fraction when fewer requests than stages are in flight."""
        if tokens_in_flight < 1:
            raise ParallelismError("need at least one token in flight")
        busy = min(tokens_in_flight, self.num_stages)
        return 1.0 - busy / self.num_stages
