"""Parallelism plans for multi-device appliances.

The paper's appliance experiments (§VIII-A, Fig. 11) sweep how eight
devices are split between **data parallelism** (independent model
instances, each serving its own request stream) and **model parallelism**
(tensor-parallel groups splitting each layer).  A
:class:`ParallelismPlan` captures one point of that trade-off and
validates it against the model and the devices' memory capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParallelismError
from repro.llm.config import LLMConfig
from repro.units import GB


@dataclass(frozen=True)
class ParallelismPlan:
    """How an appliance's devices serve a model.

    Attributes:
        data_parallel: Concurrent model instances (``DP``).
        tensor_parallel: Devices per instance splitting each layer
            (``MP`` in the paper's wording).
    """

    data_parallel: int
    tensor_parallel: int

    def __post_init__(self) -> None:
        if self.data_parallel < 1 or self.tensor_parallel < 1:
            raise ParallelismError("parallel degrees must be >= 1")

    @property
    def num_devices(self) -> int:
        return self.data_parallel * self.tensor_parallel

    @property
    def label(self) -> str:
        return f"DP={self.data_parallel} x MP={self.tensor_parallel}"

    def validate_for(self, config: LLMConfig, num_devices: int,
                     device_memory_bytes: int,
                     kv_reserve_bytes: int = 0) -> None:
        """Check the plan fits the appliance and the model.

        ``kv_reserve_bytes`` reserves per-device memory for the KV cache
        and activations on top of the partitioned parameters.
        """
        if self.num_devices != num_devices:
            raise ParallelismError(
                f"{self.label} needs {self.num_devices} devices, appliance "
                f"has {num_devices}")
        if config.num_heads % self.tensor_parallel:
            raise ParallelismError(
                f"{config.name}: {config.num_heads} heads not divisible "
                f"by MP={self.tensor_parallel}")
        if config.d_ff % self.tensor_parallel:
            raise ParallelismError(
                f"{config.name}: d_ff={config.d_ff} not divisible by "
                f"MP={self.tensor_parallel}")
        per_device = params_per_device(config, self.tensor_parallel)
        if per_device + kv_reserve_bytes > device_memory_bytes:
            raise ParallelismError(
                f"{config.name} with {self.label}: {per_device / GB:.1f} GB"
                f" + {kv_reserve_bytes / GB:.1f} GB reserve exceeds device "
                f"memory {device_memory_bytes / GB:.1f} GB")


def params_per_device(config: LLMConfig, tensor_parallel: int) -> int:
    """Parameter bytes resident per device under tensor parallelism.

    Layer weights split evenly; embeddings and the final LayerNorm are
    replicated on every device of the group (FasterTransformer's layout).
    """
    if tensor_parallel < 1:
        raise ParallelismError("tensor_parallel must be >= 1")
    layer_bytes = config.num_layers * config.layer_param_bytes
    replicated = (config.embedding_params + 2 * config.d_model) \
        * config.dtype_bytes
    return layer_bytes // tensor_parallel + replicated


def feasible_plans(config: LLMConfig, num_devices: int,
                   device_memory_bytes: int) -> list:
    """All DP x MP splits of ``num_devices`` that fit the model."""
    plans = []
    for tp in range(1, num_devices + 1):
        if num_devices % tp:
            continue
        plan = ParallelismPlan(data_parallel=num_devices // tp,
                               tensor_parallel=tp)
        try:
            plan.validate_for(config, num_devices, device_memory_bytes)
        except ParallelismError:
            continue
        plans.append(plan)
    return plans
