"""Request-level service scheduler over an appliance.

Turns the per-request performance models into service-level numbers: a
discrete-event simulation of a request queue feeding the appliance's
model instances, with optional batched generation.  Reports the latency
distribution (mean/p50/p95), sustained throughput, and instance
utilization — the quantities a capacity planner would actually read off
a CXL-PNM vs GPU decision.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import AdmissionError, ConfigurationError, ReproError
from repro.llm.config import LLMConfig
from repro.llm.kvcache import request_fits
from repro.llm.workload import InferenceRequest
from repro.obs.context import get_metrics, get_tracer
from repro.perf.analytical import DevicePerfModel, InferenceTimer

#: Seconds to serve one request: (request) -> latency.
ServiceModel = Callable[[InferenceRequest], float]


def timer_service(config: LLMConfig, model: DevicePerfModel,
                  tensor_parallel: int = 1) -> ServiceModel:
    """Service model backed by the analytical inference timer."""
    timer = InferenceTimer(config, model, tensor_parallel=tensor_parallel)

    def _serve(request: InferenceRequest) -> float:
        return timer.run(request.input_len, request.output_len).latency_s

    return _serve


@dataclass
class CompletedRequest:
    """One served request with its timeline.

    ``first_token_s`` is recorded by schedulers that track tokens at
    iteration granularity (the continuous-batching engine); the
    request-exclusive FCFS path leaves it ``None``.  ``failovers``
    counts how many times the request was requeued because its device
    failed mid-flight (continuous engine under a fault plan; always 0
    otherwise).  ``preemptions`` counts evictions by a higher-priority
    tenant class under KV pressure (continuous engine with tenant
    classes; always 0 otherwise).
    """

    request: InferenceRequest
    arrival_s: float
    start_s: float
    finish_s: float
    first_token_s: Optional[float] = None
    failovers: int = 0
    preemptions: int = 0

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def total_latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token, when the scheduler tracked it."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def mean_tbt_s(self) -> Optional[float]:
        """Mean time between tokens after the first, when tracked."""
        if self.first_token_s is None or self.request.output_len < 2:
            return None
        return (self.finish_s - self.first_token_s) \
            / (self.request.output_len - 1)


@dataclass(frozen=True)
class RejectedRequest:
    """One request turned away at admission, with the reason.

    ``error`` carries the typed exception
    (:class:`~repro.errors.AdmissionError` for infeasible requests,
    :class:`~repro.errors.DeviceLostError` when serving capacity died
    mid-run); ``reason`` is its human-readable string.  Schedulers
    record the rejection rather than raising — an admission-controlled
    run that turns work away is a valid, reportable outcome.
    """

    request: InferenceRequest
    arrival_s: float
    reason: str
    error: Optional[ReproError] = None


@dataclass
class ServiceStats:
    """Aggregate statistics of one scheduler run.

    All latency aggregates report 0.0 when nothing completed — an
    admission-controlled run that rejects everything is still a valid,
    reportable outcome (the ``rejected`` list says why).
    """

    completed: List[CompletedRequest]
    makespan_s: float
    num_instances: int
    rejected: List[RejectedRequest] = field(default_factory=list)

    def _latencies(self) -> np.ndarray:
        return np.array([c.total_latency_s for c in self.completed])

    @property
    def mean_latency_s(self) -> float:
        if not self.completed:
            return 0.0
        return float(self._latencies().mean())

    @property
    def p50_latency_s(self) -> float:
        if not self.completed:
            return 0.0
        return float(np.percentile(self._latencies(), 50))

    @property
    def p95_latency_s(self) -> float:
        if not self.completed:
            return 0.0
        return float(np.percentile(self._latencies(), 95))

    @property
    def mean_queue_wait_s(self) -> float:
        if not self.completed:
            return 0.0
        return float(np.mean([c.queue_wait_s for c in self.completed]))

    @property
    def throughput_tokens_per_s(self) -> float:
        tokens = sum(c.request.output_len for c in self.completed)
        return tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def instance_utilization(self) -> float:
        busy = sum(c.finish_s - c.start_s for c in self.completed)
        return busy / (self.makespan_s * self.num_instances) \
            if self.makespan_s else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready flat view, for exporters and benchmarks."""
        return {
            "requests": float(len(self.completed)),
            "rejected": float(len(self.rejected)),
            "num_instances": float(self.num_instances),
            "makespan_s": self.makespan_s,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "instance_utilization": self.instance_utilization,
        }


def infeasible_error(config: Optional[LLMConfig],
                     memory_bytes: Optional[int],
                     request: InferenceRequest
                     ) -> Optional[AdmissionError]:
    """Why a request can *never* be served on the device, as a typed
    :class:`~repro.errors.AdmissionError` — or ``None`` when feasible.

    Checks the two hard limits: the model's position budget and the
    device memory (parameters plus the request's peak KV footprint).
    Used by both the FCFS and continuous-batching schedulers so the two
    serving paths reject identically.
    """
    if config is None:
        return None
    if request.total_tokens > config.max_seq_len:
        return AdmissionError(
            f"input+output={request.total_tokens} tokens exceed "
            f"max_seq_len={config.max_seq_len}")
    if memory_bytes is not None and not request_fits(
            config, memory_bytes, request.input_len, request.output_len):
        return AdmissionError("params + peak KV exceed device memory")
    return None


def infeasible_reason(config: Optional[LLMConfig],
                      memory_bytes: Optional[int],
                      request: InferenceRequest) -> Optional[str]:
    """String form of :func:`infeasible_error`, for reason-only callers."""
    error = infeasible_error(config, memory_bytes, request)
    return None if error is None else str(error)


@dataclass
class RequestScheduler:
    """FCFS scheduler dispatching requests onto N model instances.

    Attributes:
        service: Per-request latency model (one instance, exclusive).
        num_instances: Concurrent model instances (the appliance's DP).
        config: Optional model config; when given, requests that exceed
            ``max_seq_len`` (or, with ``memory_bytes``, whose KV can
            never fit) are rejected instead of served with a fabricated
            latency.
        memory_bytes: Optional per-instance device memory for the KV
            feasibility check.
        tracer: Optional span tracer; defaults to the ambient/no-op one.
        metrics: Optional metrics registry, resolved the same way.
    """

    service: ServiceModel
    num_instances: int
    config: Optional[LLMConfig] = None
    memory_bytes: Optional[int] = None
    tracer: Optional[object] = None
    metrics: Optional[object] = None

    def __post_init__(self) -> None:
        if self.num_instances < 1:
            raise ConfigurationError("need at least one instance")

    def run(self, requests: Sequence[InferenceRequest],
            arrival_times: Optional[Sequence[float]] = None) -> ServiceStats:
        """Serve ``requests`` in arrival order; returns the statistics.

        ``arrival_times`` defaults to all-at-once (a closed batch); pass
        Poisson arrivals from :func:`poisson_arrivals` for open-loop load.
        """
        if not requests:
            raise ConfigurationError("no requests to schedule")
        if arrival_times is None:
            arrival_times = [0.0] * len(requests)
        if len(arrival_times) != len(requests):
            raise ConfigurationError(
                "arrival_times must match requests in length")
        tracer = get_tracer(self.tracer)
        metrics = get_metrics(self.metrics)
        # Instance availability as a min-heap of (free time, instance).
        free_at = [(0.0, i) for i in range(self.num_instances)]
        heapq.heapify(free_at)
        completed: List[CompletedRequest] = []
        rejected: List[RejectedRequest] = []
        with tracer.span("scheduler.run", category="scheduler",
                         requests=len(requests),
                         instances=self.num_instances):
            for request, arrival in sorted(zip(requests, arrival_times),
                                           key=lambda p: p[1]):
                error = infeasible_error(self.config, self.memory_bytes,
                                         request)
                if error is not None:
                    rejected.append(RejectedRequest(
                        request=request, arrival_s=arrival,
                        reason=str(error), error=error))
                    if metrics.enabled:
                        metrics.counter("scheduler.rejected").inc()
                    continue
                instance_free, instance = heapq.heappop(free_at)
                start = max(arrival, instance_free)
                finish = start + self.service(request)
                heapq.heappush(free_at, (finish, instance))
                completed.append(CompletedRequest(
                    request=request, arrival_s=arrival, start_s=start,
                    finish_s=finish))
                if tracer.enabled:
                    tracer.sim_span(
                        "request", start_s=start,
                        dur_s=finish - start,
                        track=f"scheduler.instance{instance}",
                        category="scheduler",
                        args={"request_id": request.request_id,
                              "queue_wait_s": start - arrival,
                              "output_tokens": request.output_len})
                if metrics.enabled:
                    metrics.counter("scheduler.requests").inc()
                    metrics.counter("scheduler.tokens").inc(
                        request.output_len)
                    metrics.histogram("scheduler.queue_wait_s").observe(
                        start - arrival)
                    metrics.histogram("scheduler.latency_s").observe(
                        finish - arrival)
        if metrics.enabled:
            self._observe_queue_depth(metrics, completed)
        makespan = max(c.finish_s for c in completed) if completed else 0.0
        return ServiceStats(completed=completed, makespan_s=makespan,
                            num_instances=self.num_instances,
                            rejected=rejected)

    @staticmethod
    def _observe_queue_depth(metrics, completed: List[CompletedRequest]
                             ) -> None:
        """Sweep arrival/start events and gauge the waiting-queue depth.

        The gauge's min/max envelope captures the deepest backlog of the
        run — an open-loop overload shows up here before it shows up in
        p95 latency.
        """
        gauge = metrics.gauge("scheduler.queue_depth")
        # Arrivals before starts at equal timestamps, so an immediately-
        # dispatched request never drives the gauge negative.
        events = sorted([(c.arrival_s, 1) for c in completed]
                        + [(c.start_s, -1) for c in completed],
                        key=lambda e: (e[0], -e[1]))
        depth = 0
        for _t, delta in events:
            depth += delta
            gauge.set(depth)


def poisson_arrivals(num_requests: int, rate_per_s: float,
                     seed: int = 0) -> List[float]:
    """Cumulative Poisson arrival times at ``rate_per_s``."""
    if num_requests <= 0 or rate_per_s <= 0:
        raise ConfigurationError("need positive request count and rate")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=num_requests)
    return list(np.cumsum(gaps))
