"""Multi-device appliances: parallelism plans, comm models, clusters."""

from repro.appliance.cluster import (
    GpuAppliance,
    PnmAppliance,
    devices_required,
)
from repro.appliance.continuous import (
    ContinuousBatchScheduler,
    ContinuousBatchStats,
    FailoverEvent,
    TenantClass,
    simulated_step_model,
)
from repro.appliance.pipeline import PipelinePlan
from repro.appliance.scheduler import (
    RejectedRequest,
    RequestScheduler,
    ServiceStats,
    poisson_arrivals,
    timer_service,
)
from repro.appliance.comm import CxlCommModel, GpuCommModel
from repro.appliance.parallelism import (
    ParallelismPlan,
    feasible_plans,
    params_per_device,
)

__all__ = [
    "ContinuousBatchScheduler",
    "ContinuousBatchStats",
    "FailoverEvent",
    "PipelinePlan",
    "RejectedRequest",
    "RequestScheduler",
    "ServiceStats",
    "TenantClass",
    "poisson_arrivals",
    "simulated_step_model",
    "timer_service",
    "CxlCommModel",
    "GpuAppliance",
    "GpuCommModel",
    "ParallelismPlan",
    "PnmAppliance",
    "devices_required",
    "feasible_plans",
    "params_per_device",
]
