"""Device-to-device communication models for tensor-parallel groups.

Each decoding layer under tensor parallelism ends in two all-reduces of
the activation tile (after the attention projection and after FC2).  The
platforms implement them differently (paper §V-C):

* **GPU**: NCCL ring all-reduce over NVLink (modelled in
  :mod:`repro.gpu.multi`);
* **CXL-PNM**: the paper *removed* DFX's device-to-device router; instead
  the host orchestrates transfers with each device's DMA engine through
  the unified CXL address space.  Each boundary costs a host software
  overhead plus pipelined link time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cxl.link import CXLLink, GEN5_X16
from repro.errors import ParallelismError
from repro.gpu.device import GPUSpec
from repro.gpu.multi import ALLREDUCES_PER_LAYER, NvlinkAllReduce
from repro.llm.config import LLMConfig
import repro.perf.calibration as cal


@dataclass(frozen=True)
class GpuCommModel:
    """Per-stage NVLink all-reduce cost for a GPU tensor-parallel group."""

    spec: GPUSpec
    config: LLMConfig
    tensor_parallel: int

    def __call__(self, batch_tokens: int) -> float:
        if self.tensor_parallel == 1:
            return 0.0
        payload = batch_tokens * self.config.d_model * self.config.dtype_bytes
        allreduce = NvlinkAllReduce(self.spec, self.tensor_parallel)
        return (self.config.num_layers * ALLREDUCES_PER_LAYER
                * allreduce.time(payload))


@dataclass(frozen=True)
class CxlCommModel:
    """Per-stage host-orchestrated DMA all-reduce for a CXL-PNM group.

    One all-reduce among ``tp`` devices moves ``2 (tp-1)/tp`` of the
    payload through each device's CXL port (ring-equivalent traffic),
    orchestrated by host doorbells — each boundary pays
    ``CXL_D2D_SW_OVERHEAD_S`` of software latency plus two port
    traversals.
    """

    config: LLMConfig
    tensor_parallel: int
    link: CXLLink = GEN5_X16

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ParallelismError("tensor_parallel must be >= 1")

    def allreduce_time(self, payload_bytes: float) -> float:
        if self.tensor_parallel == 1:
            return 0.0
        tp = self.tensor_parallel
        wire = 2.0 * (tp - 1) / tp * payload_bytes
        return (cal.CXL_D2D_SW_OVERHEAD_S
                + 2 * self.link.read_latency_s
                + wire / self.link.effective_bandwidth)

    def __call__(self, batch_tokens: int) -> float:
        if self.tensor_parallel == 1:
            return 0.0
        payload = batch_tokens * self.config.d_model * self.config.dtype_bytes
        return (self.config.num_layers * ALLREDUCES_PER_LAYER
                * self.allreduce_time(payload))
