"""Batched generation: amortizing weight streams across requests.

The paper evaluates single-stream inference (batch 1 per device), where
every gen token re-reads all parameters.  Serving systems batch the gen
stages of *different requests* instead: the weight matrices stream once
per step and multiply against a ``[B, d]`` activation block, while the
attention still runs per request against its own KV cache.  This turns
the weight term from bandwidth-bound GEMV into small-batch GEMM —
exactly the lever the PIM-batching literature the paper cites ([10])
studies, and a natural extension experiment for CXL-PNM: its PE array
can absorb the batched matmuls that DFX could not.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError, ParallelismError
from repro.llm.config import LLMConfig
from repro.llm.graph import StageShape, embedding_ops, lm_head_ops
from repro.llm.kvcache import kv_spare_bytes
from repro.llm.ops import OpKind, OpSpec, matmul_op, vector_op


def batched_gen_layer_ops(config: LLMConfig, context_len: int, batch: int,
                          tensor_parallel: int = 1,
                          layer_name: str = "layer") -> List[OpSpec]:
    """One decoding layer processing one gen token from each of ``batch``
    concurrent requests, all at attention span ``context_len``.

    Weight matmuls are ``[batch x k] @ [k x n]`` GEMMs (weights stream
    once); attention ops scale linearly with the batch because each
    request owns its KV cache.
    """
    if batch < 1:
        raise ConfigurationError(f"batch={batch} must be >= 1")
    if context_len < 1:
        raise ConfigurationError("context_len must be >= 1")
    if tensor_parallel < 1:
        raise ParallelismError("tensor_parallel must be >= 1")
    d = config.d_model
    if config.num_heads % tensor_parallel or config.d_ff % tensor_parallel:
        raise ParallelismError(
            f"{config.name} does not split {tensor_parallel} ways")
    heads = config.num_heads // tensor_parallel
    d_local = heads * config.head_dim
    dff_local = config.d_ff // tensor_parallel
    dtype = config.dtype_bytes
    hd = config.head_dim
    m = batch

    ops: List[OpSpec] = []
    ops.append(vector_op(f"{layer_name}.ln1", OpKind.LAYERNORM,
                         elements=m * d, dtype_bytes=dtype))
    ops.append(matmul_op(f"{layer_name}.qkv", m=m, n=3 * d_local, k=d,
                         dtype_bytes=dtype))
    # Attention: per request, per head [1 x hd] @ [hd x ctx].
    score = matmul_op(f"{layer_name}.attn_score", m=1, n=context_len, k=hd,
                      dtype_bytes=dtype)
    ops.append(OpSpec(name=score.name, kind=OpKind.GEMV,
                      flops=score.flops * heads * batch,
                      weight_bytes=score.weight_bytes * heads * batch,
                      input_bytes=score.input_bytes * heads * batch,
                      output_bytes=score.output_bytes * heads * batch,
                      m=1, n=context_len, k=hd))
    ops.append(vector_op(f"{layer_name}.softmax", OpKind.SOFTMAX,
                         elements=batch * context_len * heads,
                         dtype_bytes=dtype))
    ctx_op = matmul_op(f"{layer_name}.attn_ctx", m=1, n=hd, k=context_len,
                       dtype_bytes=dtype)
    ops.append(OpSpec(name=ctx_op.name, kind=OpKind.GEMV,
                      flops=ctx_op.flops * heads * batch,
                      weight_bytes=ctx_op.weight_bytes * heads * batch,
                      input_bytes=ctx_op.input_bytes * heads * batch,
                      output_bytes=ctx_op.output_bytes * heads * batch,
                      m=1, n=hd, k=context_len))
    ops.append(matmul_op(f"{layer_name}.proj", m=m, n=d, k=d_local,
                         dtype_bytes=dtype))
    ops.append(vector_op(f"{layer_name}.residual1", OpKind.ELEMENTWISE,
                         elements=m * d, dtype_bytes=dtype,
                         flops_per_element=1.0, num_inputs=2))
    ops.append(vector_op(f"{layer_name}.ln2", OpKind.LAYERNORM,
                         elements=m * d, dtype_bytes=dtype))
    ops.append(matmul_op(f"{layer_name}.fc1", m=m, n=dff_local, k=d,
                         dtype_bytes=dtype))
    ops.append(vector_op(f"{layer_name}.gelu", OpKind.GELU,
                         elements=m * dff_local, dtype_bytes=dtype))
    ops.append(matmul_op(f"{layer_name}.fc2", m=m, n=d, k=dff_local,
                         dtype_bytes=dtype))
    ops.append(vector_op(f"{layer_name}.residual2", OpKind.ELEMENTWISE,
                         elements=m * d, dtype_bytes=dtype,
                         flops_per_element=1.0, num_inputs=2))
    return ops


def batched_gen_stage_ops(config: LLMConfig, context_len: int, batch: int,
                          tensor_parallel: int = 1) -> List[OpSpec]:
    """A full batched gen step across all decoding layers plus LM heads."""
    if batch < 1:
        raise ConfigurationError(f"batch={batch} must be >= 1")
    # Embedding: one gather row per request.  StageShape couples rows to
    # the attention span (a B-row stage implies span >= B in the
    # single-request graph), which is wrong here — each request embeds
    # one token at its *own* position — so build from the batch-1 shape
    # and scale the row count instead of widening the span.
    embed = embedding_ops(config, StageShape(batch_tokens=1, context_len=1))
    ops = [OpSpec(name=op.name, kind=op.kind,
                  flops=op.flops * batch,
                  weight_bytes=op.weight_bytes * batch,
                  input_bytes=op.input_bytes * batch,
                  output_bytes=op.output_bytes * batch)
           for op in embed]
    for i in range(config.num_layers):
        ops.extend(batched_gen_layer_ops(config, context_len, batch,
                                         tensor_parallel,
                                         layer_name=f"layer{i}"))
    # One LM head per request in the batch.
    head = lm_head_ops(config, StageShape(batch_tokens=1, context_len=1))
    for op in head:
        ops.append(OpSpec(name=op.name, kind=op.kind,
                          flops=op.flops * batch,
                          weight_bytes=op.weight_bytes,
                          input_bytes=op.input_bytes * batch,
                          output_bytes=op.output_bytes * batch,
                          m=op.m, n=op.n, k=op.k))
    return ops


def batch_kv_bytes(config: LLMConfig, context_len: int, batch: int) -> int:
    """KV-cache footprint of ``batch`` concurrent requests."""
    if batch < 1 or context_len < 1:
        raise ConfigurationError("batch and context must be >= 1")
    return batch * context_len * config.kv_bytes_per_token()


def max_batch_for_memory(config: LLMConfig, memory_bytes: int,
                         context_len: int) -> int:
    """Largest concurrent batch whose params + KV fit in a device."""
    spare = kv_spare_bytes(config, memory_bytes)
    per_request = context_len * config.kv_bytes_per_token()
    return int(spare // per_request)
