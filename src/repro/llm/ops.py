"""Operator-level descriptions of transformer computations.

A decoding layer decomposes into a handful of operator kinds with very
different hardware behaviour (paper §II-B, §III-B):

* **GEMM** — matrix-matrix multiply; compute-bound on wide inputs (the sum
  stage), runs on the GPU's tensor cores or the PNM accelerator's PE array.
* **GEMV** — matrix-vector multiply; memory-bandwidth-bound because every
  weight byte is read once per output token (the gen stage), runs on the
  adder-tree units in the PNM accelerator.
* **Vector ops** — LayerNorm, Softmax, GELU, residual adds; small compared
  to the matmuls but they add kernel-launch overhead on the GPU.

:class:`OpSpec` carries the roofline-relevant quantities: FLOPs, weight
bytes that must be streamed from device memory, and activation bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List


class OpKind(enum.Enum):
    """Hardware-behavioural classes of transformer operators."""

    GEMM = "gemm"
    GEMV = "gemv"
    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    GELU = "gelu"
    ELEMENTWISE = "elementwise"
    EMBEDDING = "embedding"

    @property
    def is_matmul(self) -> bool:
        return self in (OpKind.GEMM, OpKind.GEMV)


@dataclass(frozen=True)
class OpSpec:
    """One operator instance with its roofline quantities.

    Attributes:
        name: Qualified operator name, e.g. ``"layer.qkv"``.
        kind: Behavioural class used by the performance models.
        flops: Floating-point operations (multiply-accumulate counts as 2).
        weight_bytes: Parameter bytes streamed from device memory.  Zero
            for activation-only ops; for attention score/context ops this
            is the KV-cache traffic, which behaves like weights (read once
            per token, never cached on chip across tokens).
        input_bytes: Activation bytes read.
        output_bytes: Activation bytes written.
        m, n, k: Matmul dimensions (``[m x k] @ [k x n]``), zero otherwise.
        elem_bytes: Element size the byte quantities were derived with,
            so models that need element counts back (e.g. per-element
            vector-lane costs) divide by the op's own width instead of
            assuming one global dtype.
    """

    name: str
    kind: OpKind
    flops: float
    weight_bytes: float
    input_bytes: float
    output_bytes: float
    m: int = 0
    n: int = 0
    k: int = 0
    elem_bytes: int = 2

    @property
    def total_bytes(self) -> float:
        """All device-memory traffic the op must sustain."""
        return self.weight_bytes + self.input_bytes + self.output_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of device-memory traffic (roofline x-axis)."""
        traffic = self.total_bytes
        return self.flops / traffic if traffic else 0.0


def matmul_op(name: str, m: int, n: int, k: int, dtype_bytes: int,
              weights_resident: bool = True) -> OpSpec:
    """Describe a ``[m x k] @ [k x n]`` matmul.

    ``weights_resident`` distinguishes parameter matrices (streamed from
    device memory every token in the gen stage) from attention operands
    (KV matrices, also streamed; Q/score operands, activation-sized).
    A matmul with ``m == 1`` is a GEMV.
    """
    kind = OpKind.GEMV if m == 1 else OpKind.GEMM
    flops = 2.0 * m * n * k
    weight_bytes = float(k * n * dtype_bytes) if weights_resident else 0.0
    input_bytes = float(m * k * dtype_bytes)
    if not weights_resident:
        input_bytes += float(k * n * dtype_bytes)
    output_bytes = float(m * n * dtype_bytes)
    return OpSpec(name=name, kind=kind, flops=flops, weight_bytes=weight_bytes,
                  input_bytes=input_bytes, output_bytes=output_bytes,
                  m=m, n=n, k=k, elem_bytes=dtype_bytes)


def vector_op(name: str, kind: OpKind, elements: int, dtype_bytes: int,
              flops_per_element: float = 5.0,
              num_inputs: int = 1) -> OpSpec:
    """Describe an elementwise/reduction vector operator over ``elements``.

    ``flops_per_element`` is a coarse cost model: LayerNorm and Softmax do a
    few passes (mean, variance / max, exp, normalize); GELU evaluates a tanh
    polynomial.  These ops are activation-bound, so the byte terms dominate
    the timing anyway.
    """
    return OpSpec(
        name=name,
        kind=kind,
        flops=flops_per_element * elements,
        weight_bytes=0.0,
        input_bytes=float(num_inputs * elements * dtype_bytes),
        output_bytes=float(elements * dtype_bytes),
        elem_bytes=dtype_bytes,
    )


def total_flops(ops: Iterable[OpSpec]) -> float:
    """Sum of FLOPs over an operator list."""
    return sum(op.flops for op in ops)


def total_weight_bytes(ops: Iterable[OpSpec]) -> float:
    """Sum of streamed parameter/KV bytes over an operator list."""
    return sum(op.weight_bytes for op in ops)


def matmul_ops(ops: Iterable[OpSpec]) -> List[OpSpec]:
    """Filter to GEMM/GEMV operators."""
    return [op for op in ops if op.kind.is_matmul]
