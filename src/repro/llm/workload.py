"""Inference-request workloads and arrival processes.

The paper evaluates "representative text generation workloads in
datacenters": 64 input tokens and up to 1024 output tokens per request
(§VII, citing the GPT-3 paper's service statistics).  This module provides
the request record, deterministic generators for single-point and
distribution-sampled workloads, arrival-process generators for production
traffic shapes (steady Poisson, diurnal waves, flash crowds), Zipf-skewed
tenant assignment, and replayable JSONL trace files.  Everything is
deterministic under a seed so serving experiments replay bit-identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: The paper's evaluation point (§VII).
PAPER_INPUT_TOKENS = 64
PAPER_MAX_OUTPUT_TOKENS = 1024

#: Tenant class used when a request does not name one.
DEFAULT_TENANT_CLASS = "default"

#: Arrival shapes understood by :func:`arrivals_for_shape`.
ARRIVAL_SHAPES = ("steady", "diurnal", "flash-crowd")


@dataclass(frozen=True)
class InferenceRequest:
    """One text-generation request.

    Attributes:
        input_len: Number of prompt tokens (``L_in``).
        output_len: Number of tokens to generate.
        request_id: Stable identifier for scheduling traces.
        tenant: Integer tenant identifier (0 for single-tenant workloads).
        tenant_class: Name of the priority class the tenant belongs to;
            resolved against the scheduler's ``TenantClass`` table.
    """

    input_len: int
    output_len: int
    request_id: int = 0
    tenant: int = 0
    tenant_class: str = DEFAULT_TENANT_CLASS

    def __post_init__(self) -> None:
        if self.input_len <= 0:
            raise ConfigurationError(f"input_len={self.input_len} must be > 0")
        if self.output_len <= 0:
            raise ConfigurationError(
                f"output_len={self.output_len} must be > 0"
            )
        if self.tenant < 0:
            raise ConfigurationError(f"tenant={self.tenant} must be >= 0")
        if not self.tenant_class:
            raise ConfigurationError("tenant_class must be non-empty")

    @property
    def total_tokens(self) -> int:
        return self.input_len + self.output_len


def paper_request(output_len: int = PAPER_MAX_OUTPUT_TOKENS
                  ) -> InferenceRequest:
    """The paper's canonical request: 64 input tokens, ``output_len`` out."""
    return InferenceRequest(input_len=PAPER_INPUT_TOKENS,
                            output_len=output_len)


def output_sweep(points: Sequence[int] = (1, 4, 16, 64, 128, 256, 512, 1024),
                 input_len: int = PAPER_INPUT_TOKENS
                 ) -> List[InferenceRequest]:
    """The Fig. 10 sweep: fixed input length, growing output length."""
    return [InferenceRequest(input_len=input_len, output_len=n,
                             request_id=i)
            for i, n in enumerate(points)]


def sampled_workload(num_requests: int, seed: int = 7,
                     mean_input: int = PAPER_INPUT_TOKENS,
                     mean_output: int = 256,
                     max_total: int = 2048) -> List[InferenceRequest]:
    """Sample a request mix with log-normal-ish length spread.

    Datacenter token-length distributions are heavy-tailed; a clipped
    lognormal around the paper's means gives a realistic mix for the
    scheduler benchmarks without requiring proprietary traces.
    """
    if num_requests <= 0:
        raise ConfigurationError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(num_requests):
        inp = int(np.clip(rng.lognormal(np.log(mean_input), 0.5), 1,
                          max_total // 2))
        out = int(np.clip(rng.lognormal(np.log(mean_output), 0.7), 1,
                          max_total - inp))
        requests.append(InferenceRequest(input_len=inp, output_len=out,
                                         request_id=i))
    return requests


def token_stream(request: InferenceRequest) -> Iterator[int]:
    """Yield the context length ``L`` seen by each gen stage of a request.

    The first generated token comes from the sum stage; each subsequent
    token ``t`` runs a gen stage with context ``input_len + t``.
    """
    for t in range(1, request.output_len):
        yield request.input_len + t


# -- arrival processes ----------------------------------------------------
#
# All generators return absolute arrival times in seconds, non-decreasing,
# one per request, and are deterministic under ``seed``.  The
# nonhomogeneous processes use Lewis-Shedler thinning: draw candidate
# points from a homogeneous Poisson process at the peak rate, then accept
# each with probability rate(t)/peak.


def _check_arrival_args(num_requests: int, rate_per_s: float) -> None:
    if num_requests <= 0:
        raise ConfigurationError("num_requests must be positive")
    if rate_per_s <= 0:
        raise ConfigurationError(f"rate_per_s={rate_per_s} must be > 0")


def steady_arrivals(num_requests: int, rate_per_s: float,
                    seed: int = 0) -> List[float]:
    """Homogeneous Poisson arrivals at ``rate_per_s`` (exponential gaps)."""
    _check_arrival_args(num_requests, rate_per_s)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=num_requests)
    return [float(t) for t in np.cumsum(gaps)]


def _thinned_arrivals(num_requests: int, peak_rate: float, rate_fn,
                      seed: int) -> List[float]:
    """Nonhomogeneous Poisson arrivals by thinning a peak-rate process."""
    rng = np.random.default_rng(seed)
    out: List[float] = []
    t = 0.0
    while len(out) < num_requests:
        t += float(rng.exponential(1.0 / peak_rate))
        if rng.random() * peak_rate <= rate_fn(t):
            out.append(t)
    return out


def diurnal_arrivals(num_requests: int, mean_rate_per_s: float,
                     period_s: float, swing: float = 0.8,
                     seed: int = 0) -> List[float]:
    """Sinusoidal day/night wave around ``mean_rate_per_s``.

    The instantaneous rate is ``mean * (1 + swing * sin(2*pi*t/period))``:
    it starts at the mean, peaks a quarter-period in, and bottoms out at
    ``mean * (1 - swing)`` three quarters in.  ``swing`` must be in
    ``[0, 1)`` so the rate stays positive.
    """
    _check_arrival_args(num_requests, mean_rate_per_s)
    if period_s <= 0:
        raise ConfigurationError(f"period_s={period_s} must be > 0")
    if not 0.0 <= swing < 1.0:
        raise ConfigurationError(f"swing={swing} must be in [0, 1)")
    peak = mean_rate_per_s * (1.0 + swing)

    def rate(t: float) -> float:
        return mean_rate_per_s * (
            1.0 + swing * float(np.sin(2.0 * np.pi * t / period_s)))

    return _thinned_arrivals(num_requests, peak, rate, seed)


def flash_crowd_arrivals(num_requests: int, base_rate_per_s: float,
                         burst_at_s: float, burst_rate_per_s: float,
                         burst_len_s: float, seed: int = 0) -> List[float]:
    """Steady base load with a rectangular burst (a flash crowd).

    The rate is ``base_rate_per_s`` everywhere except the window
    ``[burst_at_s, burst_at_s + burst_len_s)``, where it jumps to
    ``base_rate_per_s + burst_rate_per_s``.
    """
    _check_arrival_args(num_requests, base_rate_per_s)
    if burst_rate_per_s < 0:
        raise ConfigurationError(
            f"burst_rate_per_s={burst_rate_per_s} must be >= 0")
    if burst_at_s < 0 or burst_len_s < 0:
        raise ConfigurationError("burst_at_s/burst_len_s must be >= 0")
    peak = base_rate_per_s + burst_rate_per_s

    def rate(t: float) -> float:
        if burst_at_s <= t < burst_at_s + burst_len_s:
            return peak
        return base_rate_per_s

    return _thinned_arrivals(num_requests, peak, rate, seed)


def arrivals_for_shape(shape: str, num_requests: int, rate_per_s: float,
                       seed: int = 0) -> List[float]:
    """Dispatch to an arrival generator with shape-relative defaults.

    ``rate_per_s`` is the mean offered load for every shape.  The diurnal
    wave completes two periods over the expected span; the flash crowd
    quadruples the rate for 10% of the span, a quarter of the way in.
    """
    span = num_requests / rate_per_s
    if shape == "steady":
        return steady_arrivals(num_requests, rate_per_s, seed=seed)
    if shape == "diurnal":
        return diurnal_arrivals(num_requests, rate_per_s,
                                period_s=span / 2.0, seed=seed)
    if shape == "flash-crowd":
        return flash_crowd_arrivals(
            num_requests, rate_per_s, burst_at_s=span / 4.0,
            burst_rate_per_s=3.0 * rate_per_s,
            burst_len_s=span / 10.0, seed=seed)
    raise ConfigurationError(
        f"unknown arrival shape {shape!r}; expected one of {ARRIVAL_SHAPES}")


# -- tenants --------------------------------------------------------------


def zipf_tenants(num_requests: int, num_tenants: int, skew: float = 1.1,
                 seed: int = 0) -> List[int]:
    """Assign each request a tenant id, Zipf-skewed toward low ranks.

    Tenant ``k`` receives traffic proportional to ``(k+1)**-skew`` —
    tenant 0 is the heavy hitter.  ``skew=0`` degenerates to uniform.
    """
    if num_requests <= 0:
        raise ConfigurationError("num_requests must be positive")
    if num_tenants <= 0:
        raise ConfigurationError(f"num_tenants={num_tenants} must be > 0")
    if skew < 0:
        raise ConfigurationError(f"skew={skew} must be >= 0")
    ranks = np.arange(1, num_tenants + 1, dtype=np.float64)
    pmf = ranks ** -skew
    pmf /= pmf.sum()
    rng = np.random.default_rng(seed)
    return [int(t) for t in rng.choice(num_tenants, size=num_requests, p=pmf)]


def multi_tenant_workload(num_requests: int, num_tenants: int = 8,
                          skew: float = 1.1,
                          class_names: Sequence[str] = (DEFAULT_TENANT_CLASS,),
                          seed: int = 7,
                          mean_input: int = PAPER_INPUT_TOKENS,
                          mean_output: int = 256,
                          max_total: int = 2048) -> List[InferenceRequest]:
    """Sampled-length workload with Zipf-skewed tenants and classes.

    Lengths follow the same clipped lognormal as :func:`sampled_workload`;
    tenants follow :func:`zipf_tenants`; each tenant maps to a class by
    ``class_names[tenant % len(class_names)]``, so with two classes the
    heavy hitter (tenant 0) lands in the first one.
    """
    if not class_names:
        raise ConfigurationError("class_names must be non-empty")
    lengths = sampled_workload(num_requests, seed=seed,
                               mean_input=mean_input,
                               mean_output=mean_output, max_total=max_total)
    tenants = zipf_tenants(num_requests, num_tenants, skew=skew, seed=seed)
    return [InferenceRequest(
        input_len=r.input_len, output_len=r.output_len, request_id=i,
        tenant=t, tenant_class=class_names[t % len(class_names)])
        for i, (r, t) in enumerate(zip(lengths, tenants))]


# -- replayable traces ----------------------------------------------------
#
# One JSON object per line, keys sorted.  Arrival times round-trip through
# ``repr``-exact JSON floats, so a replayed trace reproduces the original
# run bit-identically.

_TRACE_KEYS = ("request_id", "arrival_s", "input_len", "output_len",
               "tenant", "tenant_class")


def write_trace(path: str, requests: Sequence[InferenceRequest],
                arrivals: Sequence[float]) -> int:
    """Write a replayable JSONL trace; returns the number of records."""
    if len(requests) != len(arrivals):
        raise ConfigurationError(
            f"{len(requests)} requests but {len(arrivals)} arrival times")
    with open(path, "w", encoding="utf-8") as fh:
        for request, arrival in zip(requests, arrivals):
            record = {
                "request_id": request.request_id,
                "arrival_s": float(arrival),
                "input_len": request.input_len,
                "output_len": request.output_len,
                "tenant": request.tenant,
                "tenant_class": request.tenant_class,
            }
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(requests)


def read_trace(path: str
               ) -> Tuple[List[InferenceRequest], List[float]]:
    """Read a JSONL trace written by :func:`write_trace`."""
    if not os.path.exists(path):
        raise ConfigurationError(f"trace file not found: {path}")
    requests: List[InferenceRequest] = []
    arrivals: List[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: invalid JSON: {exc}") from exc
            missing = [k for k in _TRACE_KEYS if k not in record]
            if missing:
                raise ConfigurationError(
                    f"{path}:{lineno}: missing trace keys {missing}")
            requests.append(InferenceRequest(
                input_len=int(record["input_len"]),
                output_len=int(record["output_len"]),
                request_id=int(record["request_id"]),
                tenant=int(record["tenant"]),
                tenant_class=str(record["tenant_class"])))
            arrivals.append(float(record["arrival_s"]))
    return requests, arrivals
