"""Inference-request workloads.

The paper evaluates "representative text generation workloads in
datacenters": 64 input tokens and up to 1024 output tokens per request
(§VII, citing the GPT-3 paper's service statistics).  This module provides
the request record plus deterministic generators for single-point and
distribution-sampled workloads used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The paper's evaluation point (§VII).
PAPER_INPUT_TOKENS = 64
PAPER_MAX_OUTPUT_TOKENS = 1024


@dataclass(frozen=True)
class InferenceRequest:
    """One text-generation request.

    Attributes:
        input_len: Number of prompt tokens (``L_in``).
        output_len: Number of tokens to generate.
        request_id: Stable identifier for scheduling traces.
    """

    input_len: int
    output_len: int
    request_id: int = 0

    def __post_init__(self) -> None:
        if self.input_len <= 0:
            raise ConfigurationError(f"input_len={self.input_len} must be > 0")
        if self.output_len <= 0:
            raise ConfigurationError(
                f"output_len={self.output_len} must be > 0"
            )

    @property
    def total_tokens(self) -> int:
        return self.input_len + self.output_len


def paper_request(output_len: int = PAPER_MAX_OUTPUT_TOKENS
                  ) -> InferenceRequest:
    """The paper's canonical request: 64 input tokens, ``output_len`` out."""
    return InferenceRequest(input_len=PAPER_INPUT_TOKENS,
                            output_len=output_len)


def output_sweep(points: Sequence[int] = (1, 4, 16, 64, 128, 256, 512, 1024),
                 input_len: int = PAPER_INPUT_TOKENS
                 ) -> List[InferenceRequest]:
    """The Fig. 10 sweep: fixed input length, growing output length."""
    return [InferenceRequest(input_len=input_len, output_len=n,
                             request_id=i)
            for i, n in enumerate(points)]


def sampled_workload(num_requests: int, seed: int = 7,
                     mean_input: int = PAPER_INPUT_TOKENS,
                     mean_output: int = 256,
                     max_total: int = 2048) -> List[InferenceRequest]:
    """Sample a request mix with log-normal-ish length spread.

    Datacenter token-length distributions are heavy-tailed; a clipped
    lognormal around the paper's means gives a realistic mix for the
    scheduler benchmarks without requiring proprietary traces.
    """
    if num_requests <= 0:
        raise ConfigurationError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(num_requests):
        inp = int(np.clip(rng.lognormal(np.log(mean_input), 0.5), 1,
                          max_total // 2))
        out = int(np.clip(rng.lognormal(np.log(mean_output), 0.7), 1,
                          max_total - inp))
        requests.append(InferenceRequest(input_len=inp, output_len=out,
                                         request_id=i))
    return requests


def token_stream(request: InferenceRequest) -> Iterator[int]:
    """Yield the context length ``L`` seen by each gen stage of a request.

    The first generated token comes from the sum stage; each subsequent
    token ``t`` runs a gen stage with context ``input_len + t``.
    """
    for t in range(1, request.output_len):
        yield request.input_len + t
