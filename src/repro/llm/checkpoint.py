"""Model checkpoint save/load (.npz).

The paper's platform loads pre-trained OPT checkpoints into CXL memory;
the reproduction's equivalent is a simple, dependency-free checkpoint
format — a numpy ``.npz`` of the named tensors plus a JSON-encoded
architecture header — so sessions and examples can persist and reload
models instead of regenerating random weights.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.llm.config import LLMConfig
from repro.llm.reference import LayerWeights, ModelWeights

_CONFIG_KEY = "__config__"
_CONFIG_FIELDS = ("name", "num_layers", "d_model", "num_heads", "d_ff",
                  "vocab_size", "max_seq_len", "dtype_bytes")


def save_checkpoint(weights: ModelWeights,
                    path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a model's config and tensors to an ``.npz`` file."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    config = weights.config
    header = {field: getattr(config, field) for field in _CONFIG_FIELDS}
    arrays = dict(weights.named_tensors())
    arrays[_CONFIG_KEY] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    return path


def load_checkpoint(path: Union[str, pathlib.Path]) -> ModelWeights:
    """Load a model saved by :func:`save_checkpoint`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint {path} does not exist")
    with np.load(path) as data:
        if _CONFIG_KEY not in data:
            raise ConfigurationError(
                f"{path} is not a repro checkpoint (missing header)")
        header = json.loads(bytes(data[_CONFIG_KEY]).decode("utf-8"))
        config = LLMConfig(**header)
        tensors = {name: data[name] for name in data.files
                   if name != _CONFIG_KEY}
    expected = 5 + 12 * config.num_layers
    if len(tensors) != expected:
        raise ConfigurationError(
            f"{path}: expected {expected} tensors for {config.name}, "
            f"found {len(tensors)}")
    layers = []
    for i in range(config.num_layers):
        prefix = f"layer{i}."
        try:
            layers.append(LayerWeights(
                ln1_gamma=tensors[prefix + "ln1_gamma"],
                ln1_beta=tensors[prefix + "ln1_beta"],
                w_qkv=tensors[prefix + "w_qkv"],
                b_qkv=tensors[prefix + "b_qkv"],
                w_proj=tensors[prefix + "w_proj"],
                b_proj=tensors[prefix + "b_proj"],
                ln2_gamma=tensors[prefix + "ln2_gamma"],
                ln2_beta=tensors[prefix + "ln2_beta"],
                w_fc1=tensors[prefix + "w_fc1"],
                b_fc1=tensors[prefix + "b_fc1"],
                w_fc2=tensors[prefix + "w_fc2"],
                b_fc2=tensors[prefix + "b_fc2"],
            ))
        except KeyError as missing:
            raise ConfigurationError(
                f"{path}: missing tensor {missing} for layer {i}")
    return ModelWeights(
        config=config,
        token_embedding=tensors["token_embedding"],
        position_embedding=tensors["position_embedding"],
        layers=layers,
        ln_f_gamma=tensors["ln_f_gamma"],
        ln_f_beta=tensors["ln_f_beta"],
        lm_head=tensors["lm_head"],
    )
