"""LLM architecture configurations and the OPT/GPT-3 model zoo.

The paper evaluates decoder-only transformers: the OPT family (125M .. 66B)
on real hardware and GPT-3-class models (up to 175B, "GPT-3.5") analytically.
:class:`LLMConfig` captures the architectural parameters that determine the
compute and memory behaviour of inference: layer count, embedding width,
head count, FFN width, vocabulary, and the parameter datatype.

Parameter-count arithmetic follows the standard decoder-only layout used by
OPT and GPT-3 (learned positional embeddings, tied or untied LM head folded
into the embedding count, pre-LayerNorm blocks):

* per decoding layer: QKV projection ``3 * d^2 + 3d``, attention output
  projection ``d^2 + d``, FFN ``d*d_ff + d_ff`` and ``d_ff*d + d``, two
  LayerNorms ``4d``;
* embeddings: ``vocab * d`` token plus ``max_seq_len * d`` positional;
* final LayerNorm ``2d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LLMConfig:
    """Architecture of a decoder-only transformer language model.

    Attributes:
        name: Human-readable model name, e.g. ``"OPT-13B"``.
        num_layers: Number of cascaded decoding layers (``M`` in the paper).
        d_model: Embedding dimension (``d_emb``).
        num_heads: Attention head count; ``d_model`` must divide evenly.
        d_ff: Feed-forward inner width; OPT/GPT use ``4 * d_model``.
        vocab_size: Token vocabulary size (OPT uses 50272).
        max_seq_len: Maximum positions with learned embeddings.
        dtype_bytes: Bytes per parameter/activation element (2 for FP16).
    """

    name: str
    num_layers: int
    d_model: int
    num_heads: int
    d_ff: int = 0
    vocab_size: int = 50272
    max_seq_len: int = 2048
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.d_ff == 0:
            object.__setattr__(self, "d_ff", 4 * self.d_model)
        if self.num_layers <= 0 or self.d_model <= 0 or self.num_heads <= 0:
            raise ConfigurationError(
                f"{self.name}: layer/dim/head counts must be positive"
            )
        if self.d_model % self.num_heads != 0:
            raise ConfigurationError(
                f"{self.name}: d_model={self.d_model} not divisible by "
                f"num_heads={self.num_heads}"
            )
        if self.dtype_bytes not in (1, 2, 4):
            raise ConfigurationError(
                f"{self.name}: unsupported dtype_bytes={self.dtype_bytes}"
            )

    @property
    def head_dim(self) -> int:
        """Per-head dimension; a multiple of 64 for all zoo models."""
        return self.d_model // self.num_heads

    @property
    def params_per_layer(self) -> int:
        """Parameter count of one decoding layer."""
        d, dff = self.d_model, self.d_ff
        attention = 3 * d * d + 3 * d + d * d + d
        ffn = d * dff + dff + dff * d + d
        norms = 4 * d
        return attention + ffn + norms

    @property
    def embedding_params(self) -> int:
        """Token plus learned positional embedding parameters."""
        return self.vocab_size * self.d_model + self.max_seq_len * self.d_model

    @property
    def num_params(self) -> int:
        """Total parameter count (layers + embeddings + final LayerNorm)."""
        return (
            self.num_layers * self.params_per_layer
            + self.embedding_params
            + 2 * self.d_model
        )

    @property
    def param_bytes(self) -> int:
        """Bytes needed to store all parameters at ``dtype_bytes``."""
        return self.num_params * self.dtype_bytes

    @property
    def layer_param_bytes(self) -> int:
        """Bytes of one decoding layer's parameters."""
        return self.params_per_layer * self.dtype_bytes

    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes appended per token across all layers.

        Each layer stores one K and one V vector of ``d_model`` elements per
        token (the paper's ``2 x L x d_emb`` per layer).
        """
        return 2 * self.num_layers * self.d_model * self.dtype_bytes

    def working_set_bytes(self, seq_len: int) -> int:
        """Parameters plus KV cache for a context of ``seq_len`` tokens."""
        if seq_len < 0:
            raise ConfigurationError(f"negative seq_len={seq_len}")
        return self.param_bytes + seq_len * self.kv_bytes_per_token()

    def scaled(self, name: str, num_layers: int) -> "LLMConfig":
        """Return a copy with a different depth, for hypothetical models."""
        return replace(self, name=name, num_layers=num_layers)

    def with_dtype(self, dtype_bytes: int, suffix: str = "") -> "LLMConfig":
        """Return a quantized copy (e.g. ``dtype_bytes=1`` for INT8).

        Gen-stage token time is bandwidth-bound, so halving the datatype
        roughly halves latency — the LUT-GEMM-style lever the related
        work applies; our ablation bench quantifies it on CXL-PNM.
        """
        name = self.name + (suffix or f"-{8 * dtype_bytes}bit")
        return replace(self, name=name, dtype_bytes=dtype_bytes)


def _opt(name: str, layers: int, d_model: int, heads: int) -> LLMConfig:
    return LLMConfig(name=name, num_layers=layers, d_model=d_model,
                     num_heads=heads)


#: The OPT model family (Zhang et al., 2022), as evaluated in the paper.
OPT_125M = _opt("OPT-125M", 12, 768, 12)
OPT_350M = _opt("OPT-350M", 24, 1024, 16)
OPT_1_3B = _opt("OPT-1.3B", 24, 2048, 32)
OPT_2_7B = _opt("OPT-2.7B", 32, 2560, 32)
OPT_6_7B = _opt("OPT-6.7B", 32, 4096, 32)
OPT_13B = _opt("OPT-13B", 40, 5120, 40)
OPT_30B = _opt("OPT-30B", 48, 7168, 56)
OPT_66B = _opt("OPT-66B", 64, 9216, 72)
OPT_175B = _opt("OPT-175B", 96, 12288, 96)

#: GPT-3 family points used by Fig. 2 (Brown et al., 2020 table 2.1).
GPT3_SMALL = LLMConfig("GPT-3 Small", 12, 768, 12)
GPT3_MEDIUM = LLMConfig("GPT-3 Medium", 24, 1024, 16)
GPT3_LARGE = LLMConfig("GPT-3 Large", 24, 1536, 16)
GPT3_XL = LLMConfig("GPT-3 XL", 24, 2048, 16)
GPT3_2_7B = LLMConfig("GPT-3 2.7B", 32, 2560, 32)
GPT3_6_7B = LLMConfig("GPT-3 6.7B", 32, 4096, 32)
GPT3_13B = LLMConfig("GPT-3 13B", 40, 5120, 40)
GPT3_175B = LLMConfig("GPT-3 175B (GPT-3.5)", 96, 12288, 96)

MODEL_ZOO: Dict[str, LLMConfig] = {
    cfg.name: cfg
    for cfg in (
        OPT_125M, OPT_350M, OPT_1_3B, OPT_2_7B, OPT_6_7B, OPT_13B,
        OPT_30B, OPT_66B, OPT_175B,
        GPT3_SMALL, GPT3_MEDIUM, GPT3_LARGE, GPT3_XL, GPT3_2_7B,
        GPT3_6_7B, GPT3_13B, GPT3_175B,
    )
}

#: Models the paper's evaluation section runs on real devices.
EVALUATED_MODELS: Tuple[LLMConfig, ...] = (
    OPT_1_3B, OPT_2_7B, OPT_6_7B, OPT_13B, OPT_30B, OPT_66B,
)


def get_model(name: str) -> LLMConfig:
    """Look up a zoo model by name, raising a helpful error if absent."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise ConfigurationError(f"unknown model {name!r}; known: {known}")


def tiny_config(name: str = "tiny", num_layers: int = 2, d_model: int = 64,
                num_heads: int = 4, vocab_size: int = 256,
                max_seq_len: int = 64) -> LLMConfig:
    """A miniature configuration for functional tests and examples.

    Small enough that the functional executor can run full generation in
    milliseconds while exercising every code path of the real models.
    """
    return LLMConfig(name=name, num_layers=num_layers, d_model=d_model,
                     num_heads=num_heads, vocab_size=vocab_size,
                     max_seq_len=max_seq_len)
