"""Golden numpy implementation of decoder-only transformer inference.

This is the functional ground truth for the CXL-PNM accelerator: the
instruction-level executor in :mod:`repro.accelerator.engine` must produce
numerically identical results (same op order, same float32 arithmetic) when
running the compiled acceleration code for the same weights.

The model follows the paper's Fig. 1 structure: token+positional embedding,
``M`` pre-LayerNorm decoding layers (QKV generation, scaled-dot-product
attention with causal mask, projection, residual; FC1, GELU, FC2, residual),
final LayerNorm, and an LM head producing vocabulary logits.  Inference runs
a sum stage over the prompt and then gen stages with an aggregated KV cache,
exactly as §II-B describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ExecutionError
from repro.llm.config import LLMConfig

LN_EPS = 1e-5
_GELU_C = 0.7978845608028654  # sqrt(2/pi)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU, the variant LLM accelerators implement.

    The cube is three multiplies, not ``x ** 3``: ``np.power`` calls libm
    ``pow`` per element (~40x slower) and a real VPU would use the
    multiplier array anyway.
    """
    x = x.astype(np.float32)
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * (x * x * x))))


def layernorm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
              eps: float = LN_EPS) -> np.ndarray:
    """LayerNorm over the last axis: mean/variance, scale by 1/std, bias.

    Mirrors the paper's description of the LayerNorm acceleration code
    ("calculates mean and variance, multiplies each weight by the inverse
    of standard deviation, and adds bias", §VI).
    """
    x = x.astype(np.float32)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (subtract running max, as REDUMAX does)."""
    x = x.astype(np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def causal_mask(rows: int, cols: int, offset: int) -> np.ndarray:
    """Boolean mask allowing row ``i`` to attend to columns ``<= i+offset``."""
    return np.arange(cols)[None, :] <= (np.arange(rows)[:, None] + offset)


@dataclass
class LayerWeights:
    """Parameters of one decoding layer (all float32)."""

    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    w_qkv: np.ndarray      # [d, 3d]
    b_qkv: np.ndarray      # [3d]
    w_proj: np.ndarray     # [d, d]
    b_proj: np.ndarray     # [d]
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    w_fc1: np.ndarray      # [d, d_ff]
    b_fc1: np.ndarray      # [d_ff]
    w_fc2: np.ndarray      # [d_ff, d]
    b_fc2: np.ndarray      # [d]


@dataclass
class ModelWeights:
    """Full parameter set of a decoder-only model."""

    config: LLMConfig
    token_embedding: np.ndarray      # [vocab, d]
    position_embedding: np.ndarray   # [max_seq_len, d]
    layers: List[LayerWeights]
    ln_f_gamma: np.ndarray
    ln_f_beta: np.ndarray
    lm_head: np.ndarray              # [d, vocab]

    def named_tensors(self) -> Dict[str, np.ndarray]:
        """Flat name->array view used by model loaders."""
        tensors = {
            "token_embedding": self.token_embedding,
            "position_embedding": self.position_embedding,
            "ln_f_gamma": self.ln_f_gamma,
            "ln_f_beta": self.ln_f_beta,
            "lm_head": self.lm_head,
        }
        for i, layer in enumerate(self.layers):
            prefix = f"layer{i}."
            tensors.update({
                prefix + "ln1_gamma": layer.ln1_gamma,
                prefix + "ln1_beta": layer.ln1_beta,
                prefix + "w_qkv": layer.w_qkv,
                prefix + "b_qkv": layer.b_qkv,
                prefix + "w_proj": layer.w_proj,
                prefix + "b_proj": layer.b_proj,
                prefix + "ln2_gamma": layer.ln2_gamma,
                prefix + "ln2_beta": layer.ln2_beta,
                prefix + "w_fc1": layer.w_fc1,
                prefix + "b_fc1": layer.b_fc1,
                prefix + "w_fc2": layer.w_fc2,
                prefix + "b_fc2": layer.b_fc2,
            })
        return tensors


def random_weights(config: LLMConfig, seed: int = 0) -> ModelWeights:
    """Deterministic random parameters with a GPT-style init scale."""
    rng = np.random.default_rng(seed)
    d, dff, vocab = config.d_model, config.d_ff, config.vocab_size

    def mat(rows: int, cols: int) -> np.ndarray:
        return (rng.standard_normal((rows, cols)) * 0.02).astype(np.float32)

    def vec(n: int, value: float = 0.0) -> np.ndarray:
        return np.full(n, value, dtype=np.float32)

    layers = []
    for _ in range(config.num_layers):
        layers.append(LayerWeights(
            ln1_gamma=np.ones(d, dtype=np.float32), ln1_beta=vec(d),
            w_qkv=mat(d, 3 * d), b_qkv=vec(3 * d),
            w_proj=mat(d, d), b_proj=vec(d),
            ln2_gamma=np.ones(d, dtype=np.float32), ln2_beta=vec(d),
            w_fc1=mat(d, dff), b_fc1=vec(dff),
            w_fc2=mat(dff, d), b_fc2=vec(d),
        ))
    return ModelWeights(
        config=config,
        token_embedding=mat(vocab, d),
        position_embedding=mat(config.max_seq_len, d),
        layers=layers,
        ln_f_gamma=np.ones(d, dtype=np.float32),
        ln_f_beta=vec(d),
        lm_head=mat(d, vocab),
    )


@dataclass
class KVState:
    """Aggregated per-layer key/value matrices, grown by each stage."""

    keys: List[np.ndarray] = field(default_factory=list)    # [L, d] per layer
    values: List[np.ndarray] = field(default_factory=list)

    @property
    def context_len(self) -> int:
        return 0 if not self.keys else self.keys[0].shape[0]


class ReferenceModel:
    """Plain-numpy decoder-only transformer used as the functional oracle."""

    def __init__(self, weights: ModelWeights):
        self.weights = weights
        self.config = weights.config

    def _attention(self, q: np.ndarray, k: np.ndarray, v: np.ndarray,
                   offset: int) -> np.ndarray:
        """Multi-head scaled-dot-product attention with causal masking.

        ``q`` is [m, d]; ``k``/``v`` are [L, d] aggregated matrices.
        ``offset`` is how many cached tokens precede the first query row.
        """
        cfg = self.config
        m, L = q.shape[0], k.shape[0]
        hd = cfg.head_dim
        out = np.empty_like(q)
        mask = causal_mask(m, L, offset)
        scale = np.float32(1.0 / np.sqrt(hd))
        for h in range(cfg.num_heads):
            sl = slice(h * hd, (h + 1) * hd)
            scores = (q[:, sl] @ k[:, sl].T) * scale
            scores = np.where(mask, scores, np.float32(-1e9))
            out[:, sl] = softmax(scores, axis=-1) @ v[:, sl]
        return out

    def _decoder_layer(self, x: np.ndarray, layer: LayerWeights,
                       kv: KVState, layer_idx: int) -> np.ndarray:
        offset = kv.context_len if len(kv.keys) > layer_idx else 0
        h = layernorm(x, layer.ln1_gamma, layer.ln1_beta)
        qkv = h @ layer.w_qkv + layer.b_qkv
        d = self.config.d_model
        q, k_new, v_new = qkv[:, :d], qkv[:, d:2 * d], qkv[:, 2 * d:]
        if len(kv.keys) > layer_idx:
            k = np.concatenate([kv.keys[layer_idx], k_new], axis=0)
            v = np.concatenate([kv.values[layer_idx], v_new], axis=0)
            kv.keys[layer_idx] = k
            kv.values[layer_idx] = v
        else:
            k, v = k_new, v_new
            kv.keys.append(k)
            kv.values.append(v)
        attn = self._attention(q, k, v, offset)
        x = x + (attn @ layer.w_proj + layer.b_proj)
        h = layernorm(x, layer.ln2_gamma, layer.ln2_beta)
        h = gelu(h @ layer.w_fc1 + layer.b_fc1)
        x = x + (h @ layer.w_fc2 + layer.b_fc2)
        return x

    def _embed(self, tokens: Sequence[int], position0: int) -> np.ndarray:
        cfg = self.config
        for t in tokens:
            if not 0 <= t < cfg.vocab_size:
                raise ExecutionError(f"token {t} outside vocabulary")
        if position0 + len(tokens) > cfg.max_seq_len:
            raise ConfigurationError("sequence exceeds max_seq_len")
        tok = self.weights.token_embedding[np.asarray(tokens, dtype=np.int64)]
        pos = self.weights.position_embedding[
            position0:position0 + len(tokens)]
        return (tok + pos).astype(np.float32)

    def forward(self, tokens: Sequence[int], kv: KVState) -> np.ndarray:
        """Run one stage over ``tokens``; returns the last token's logits.

        With an empty ``kv`` this is the sum stage (tokens = prompt); with a
        populated cache it is a gen stage (tokens = the one new token).
        """
        if not tokens:
            raise ConfigurationError("forward needs at least one token")
        x = self._embed(tokens, position0=kv.context_len)
        for i, layer in enumerate(self.weights.layers):
            x = self._decoder_layer(x, layer, kv, i)
        w = self.weights
        final = layernorm(x[-1:], w.ln_f_gamma, w.ln_f_beta)
        return (final @ w.lm_head)[0]

    def generate(self, prompt: Sequence[int], num_tokens: int
                 ) -> List[int]:
        """Greedy-decode ``num_tokens`` tokens after ``prompt``."""
        if num_tokens <= 0:
            raise ConfigurationError("num_tokens must be positive")
        kv = KVState()
        logits = self.forward(list(prompt), kv)
        out = [int(np.argmax(logits))]
        for _ in range(num_tokens - 1):
            logits = self.forward([out[-1]], kv)
            out.append(int(np.argmax(logits)))
        return out
