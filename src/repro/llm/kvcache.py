"""KV-cache sizing and growth model.

The attention layer of the sum stage produces key and value matrices of
``2 x L_in x d_emb`` per layer (paper §II-B); every gen stage appends one
K and one V vector per layer.  The cache is read in full by every gen
stage's attention, so its size contributes to the memory-bandwidth demand
of token generation on top of the model parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.llm.config import LLMConfig


@dataclass
class KVCache:
    """Tracks the aggregated KV matrices for one inference request."""

    config: LLMConfig
    tokens: int = 0

    def __post_init__(self) -> None:
        if self.tokens < 0:
            raise ConfigurationError(f"negative KV token count {self.tokens}")

    @property
    def bytes_per_token(self) -> int:
        """Cache bytes appended per token across all layers (2 vectors/layer)."""
        return self.config.kv_bytes_per_token()

    @property
    def total_bytes(self) -> int:
        """Current cache footprint."""
        return self.tokens * self.bytes_per_token

    def append(self, num_tokens: int = 1) -> None:
        """Append KV vectors for ``num_tokens`` new tokens."""
        if num_tokens < 0:
            raise ConfigurationError(f"cannot append {num_tokens} tokens")
        if self.tokens + num_tokens > self.config.max_seq_len:
            raise CapacityError(
                f"KV cache for {self.config.name} would exceed max_seq_len="
                f"{self.config.max_seq_len} ({self.tokens}+{num_tokens})"
            )
        self.tokens += num_tokens

    def read_bytes_for_gen(self) -> int:
        """Bytes the next gen stage streams from the cache (reads it all)."""
        return self.total_bytes


def peak_kv_bytes(config: LLMConfig, input_len: int, output_len: int) -> int:
    """Largest cache footprint of a request (after the last token)."""
    total_tokens = input_len + output_len
    if total_tokens > config.max_seq_len:
        raise CapacityError(
            f"{config.name}: {input_len}+{output_len} tokens exceed "
            f"max_seq_len={config.max_seq_len}"
        )
    return total_tokens * config.kv_bytes_per_token()


def kv_spare_bytes(config: LLMConfig, memory_bytes: int) -> int:
    """Device bytes left for KV caches once parameters are resident.

    The admission-control budget of the serving schedulers: zero when the
    parameters alone overflow the device.
    """
    if memory_bytes < 0:
        raise ConfigurationError(f"negative memory_bytes={memory_bytes}")
    return max(0, memory_bytes - config.param_bytes)


def request_fits(config: LLMConfig, memory_bytes: int, input_len: int,
                 output_len: int, batch: int = 1) -> bool:
    """Whether parameters plus ``batch`` requests' peak KV fit in memory."""
    need = config.param_bytes + batch * peak_kv_bytes(config, input_len,
                                                      output_len)
    return need <= memory_bytes
