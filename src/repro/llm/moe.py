"""Mixture-of-Experts models (paper §IX, scalability discussion).

The paper points to MoE as the technique that "curbs further increases in
memory capacity requirements" — more precisely, MoE grows *capacity*
demand (many expert FFNs) while keeping per-token *bandwidth/compute*
demand low (only ``top_k`` experts run per token).  That trade is ideal
for CXL-PNM: a 512 GB module holds experts a GPU cannot, and the gen
stage still streams only the touched experts.

:class:`MoEConfig` wraps a dense backbone: attention is unchanged, each
layer's FFN is replicated into ``num_experts`` experts with a router, and
``top_k`` experts fire per token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.llm.config import LLMConfig
from repro.llm.graph import StageShape, embedding_ops, lm_head_ops
from repro.llm.ops import OpKind, OpSpec, matmul_op, vector_op


@dataclass(frozen=True)
class MoEConfig:
    """A sparsely-gated MoE built on a dense decoder backbone.

    Attributes:
        base: The dense architecture providing attention/embedding shapes.
        num_experts: Expert FFNs per layer.
        top_k: Experts activated per token.
    """

    base: LLMConfig
    num_experts: int
    top_k: int = 2

    def __post_init__(self) -> None:
        if self.num_experts < 2:
            raise ConfigurationError("MoE needs at least 2 experts")
        if not 1 <= self.top_k <= self.num_experts:
            raise ConfigurationError(
                f"top_k={self.top_k} outside [1, {self.num_experts}]")

    @property
    def name(self) -> str:
        return f"{self.base.name}-MoE{self.num_experts}x{self.top_k}"

    @property
    def ffn_params_per_layer(self) -> int:
        d, dff = self.base.d_model, self.base.d_ff
        return d * dff + dff + dff * d + d

    @property
    def router_params_per_layer(self) -> int:
        return self.base.d_model * self.num_experts

    @property
    def num_params(self) -> int:
        """Total (stored) parameters: dense backbone with the FFN of each
        layer replicated ``num_experts`` times, plus routers."""
        dense = self.base.num_params
        extra_ffn = (self.num_experts - 1) * self.ffn_params_per_layer
        return dense + self.base.num_layers * (
            extra_ffn + self.router_params_per_layer)

    @property
    def param_bytes(self) -> int:
        return self.num_params * self.base.dtype_bytes

    @property
    def active_params_per_token(self) -> int:
        """Parameters actually read per gen token: everything stored minus
        the ``num_experts - top_k`` untouched expert FFNs per layer
        (routers are always read)."""
        untouched = (self.num_experts - self.top_k) \
            * self.ffn_params_per_layer
        return self.num_params - self.base.num_layers * untouched

    @property
    def capacity_amplification(self) -> float:
        """Stored bytes per streamed byte — the CXL-PNM-friendly ratio."""
        return self.num_params / self.active_params_per_token


def moe_gen_stage_ops(config: MoEConfig, context_len: int) -> List[OpSpec]:
    """One gen stage of the MoE model: dense attention, top-k expert FFN.

    Router matmul is tiny; the FFN ops carry ``top_k`` experts' weights.
    """
    base = config.base
    shape = StageShape(batch_tokens=1, context_len=context_len)
    d, dff, dtype = base.d_model, base.d_ff, base.dtype_bytes
    heads, hd = base.num_heads, base.head_dim
    ops = embedding_ops(base, shape)
    for i in range(base.num_layers):
        prefix = f"layer{i}"
        ops.append(vector_op(f"{prefix}.ln1", OpKind.LAYERNORM,
                             elements=d, dtype_bytes=dtype))
        ops.append(matmul_op(f"{prefix}.qkv", m=1, n=3 * d, k=d,
                             dtype_bytes=dtype))
        score = matmul_op(f"{prefix}.attn_score", m=1, n=context_len, k=hd,
                          dtype_bytes=dtype)
        ops.append(OpSpec(name=score.name, kind=OpKind.GEMV,
                          flops=score.flops * heads,
                          weight_bytes=score.weight_bytes * heads,
                          input_bytes=score.input_bytes * heads,
                          output_bytes=score.output_bytes * heads,
                          m=1, n=context_len, k=hd))
        ops.append(vector_op(f"{prefix}.softmax", OpKind.SOFTMAX,
                             elements=context_len * heads,
                             dtype_bytes=dtype))
        ctx = matmul_op(f"{prefix}.attn_ctx", m=1, n=hd, k=context_len,
                        dtype_bytes=dtype)
        ops.append(OpSpec(name=ctx.name, kind=OpKind.GEMV,
                          flops=ctx.flops * heads,
                          weight_bytes=ctx.weight_bytes * heads,
                          input_bytes=ctx.input_bytes * heads,
                          output_bytes=ctx.output_bytes * heads,
                          m=1, n=hd, k=context_len))
        ops.append(matmul_op(f"{prefix}.proj", m=1, n=d, k=d,
                             dtype_bytes=dtype))
        ops.append(vector_op(f"{prefix}.residual1", OpKind.ELEMENTWISE,
                             elements=d, dtype_bytes=dtype,
                             flops_per_element=1.0, num_inputs=2))
        ops.append(vector_op(f"{prefix}.ln2", OpKind.LAYERNORM,
                             elements=d, dtype_bytes=dtype))
        ops.append(matmul_op(f"{prefix}.router", m=1, n=config.num_experts,
                             k=d, dtype_bytes=dtype))
        for expert in range(config.top_k):
            ops.append(matmul_op(f"{prefix}.expert{expert}.fc1", m=1,
                                 n=dff, k=d, dtype_bytes=dtype))
            ops.append(vector_op(f"{prefix}.expert{expert}.gelu",
                                 OpKind.GELU, elements=dff,
                                 dtype_bytes=dtype))
            ops.append(matmul_op(f"{prefix}.expert{expert}.fc2", m=1,
                                 n=d, k=dff, dtype_bytes=dtype))
        ops.append(vector_op(f"{prefix}.residual2", OpKind.ELEMENTWISE,
                             elements=d, dtype_bytes=dtype,
                             flops_per_element=1.0, num_inputs=2))
    ops.extend(lm_head_ops(base, shape))
    return ops
