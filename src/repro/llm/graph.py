"""Operator graphs for the summarization and generation stages.

GPT-3 inference (paper Fig. 1) runs a **sum** stage over the ``L_in`` input
tokens — dominated by GEMM — and then one **gen** stage per output token,
each dominated by GEMV over all model parameters plus the growing KV cache.

These builders produce flat :class:`~repro.llm.ops.OpSpec` lists; the
performance models consume them directly, and the accelerator compiler uses
the same shapes when emitting instructions, so functional and timing paths
share one source of truth for shapes.

Tensor-parallel execution is modelled by ``tensor_parallel`` ways: attention
heads and FFN columns are split across devices (Megatron-style), shrinking
the weight/compute of each matmul by the factor while keeping the two
all-reduce points per layer (after attention projection, after FC2), which
:mod:`repro.appliance.comm` charges separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError, ParallelismError
from repro.llm.config import LLMConfig
from repro.llm.ops import OpKind, OpSpec, matmul_op, vector_op


@dataclass(frozen=True)
class StageShape:
    """Token geometry of one stage.

    ``batch_tokens`` is the number of token rows processed at once (``L_in``
    for the sum stage, 1 for a gen stage); ``context_len`` is the attention
    span ``L`` (input tokens plus tokens generated so far).
    """

    batch_tokens: int
    context_len: int

    def __post_init__(self) -> None:
        if self.batch_tokens <= 0 or self.context_len <= 0:
            raise ConfigurationError("stage shape must be positive")
        if self.batch_tokens > self.context_len:
            raise ConfigurationError(
                f"batch_tokens={self.batch_tokens} exceeds "
                f"context_len={self.context_len}"
            )


def _split(value: int, ways: int, what: str) -> int:
    if value % ways != 0:
        raise ParallelismError(
            f"cannot split {what}={value} across {ways} tensor-parallel ways"
        )
    return value // ways


def decoder_layer_ops(config: LLMConfig, shape: StageShape,
                      tensor_parallel: int = 1,
                      layer_name: str = "layer") -> List[OpSpec]:
    """Operator list for one decoding layer at the given stage shape.

    Follows the paper's decomposition: LayerNorm, QKV generation, attention
    (scores, softmax, context), projection, residual, LayerNorm, FC1, GELU,
    FC2, residual.  Per-head attention matmuls are aggregated into one op
    with the summed dimensions (heads are independent and identical).
    """
    if tensor_parallel < 1:
        raise ParallelismError(f"tensor_parallel={tensor_parallel} < 1")
    d = config.d_model
    dtype = config.dtype_bytes
    heads = _split(config.num_heads, tensor_parallel, "num_heads")
    d_local = heads * config.head_dim
    dff_local = _split(config.d_ff, tensor_parallel, "d_ff")
    m = shape.batch_tokens
    ctx = shape.context_len
    hd = config.head_dim

    ops: List[OpSpec] = []
    ops.append(vector_op(f"{layer_name}.ln1", OpKind.LAYERNORM,
                         elements=m * d, dtype_bytes=dtype))
    ops.append(matmul_op(f"{layer_name}.qkv", m=m, n=3 * d_local, k=d,
                         dtype_bytes=dtype))
    # Attention scores: per head [m x hd] @ [hd x ctx]; KV streams from
    # device memory (weights_resident=True models KV-cache traffic).
    score = matmul_op(f"{layer_name}.attn_score", m=m, n=ctx, k=hd,
                      dtype_bytes=dtype)
    ops.append(OpSpec(name=score.name, kind=score.kind,
                      flops=score.flops * heads,
                      weight_bytes=score.weight_bytes * heads,
                      input_bytes=score.input_bytes * heads,
                      output_bytes=score.output_bytes * heads,
                      m=m, n=ctx, k=hd))
    ops.append(vector_op(f"{layer_name}.softmax", OpKind.SOFTMAX,
                         elements=m * ctx * heads, dtype_bytes=dtype))
    context = matmul_op(f"{layer_name}.attn_ctx", m=m, n=hd, k=ctx,
                        dtype_bytes=dtype)
    ops.append(OpSpec(name=context.name, kind=context.kind,
                      flops=context.flops * heads,
                      weight_bytes=context.weight_bytes * heads,
                      input_bytes=context.input_bytes * heads,
                      output_bytes=context.output_bytes * heads,
                      m=m, n=hd, k=ctx))
    ops.append(matmul_op(f"{layer_name}.proj", m=m, n=d, k=d_local,
                         dtype_bytes=dtype))
    ops.append(vector_op(f"{layer_name}.residual1", OpKind.ELEMENTWISE,
                         elements=m * d, dtype_bytes=dtype,
                         flops_per_element=1.0, num_inputs=2))
    ops.append(vector_op(f"{layer_name}.ln2", OpKind.LAYERNORM,
                         elements=m * d, dtype_bytes=dtype))
    ops.append(matmul_op(f"{layer_name}.fc1", m=m, n=dff_local, k=d,
                         dtype_bytes=dtype))
    ops.append(vector_op(f"{layer_name}.gelu", OpKind.GELU,
                         elements=m * dff_local, dtype_bytes=dtype))
    ops.append(matmul_op(f"{layer_name}.fc2", m=m, n=d, k=dff_local,
                         dtype_bytes=dtype))
    ops.append(vector_op(f"{layer_name}.residual2", OpKind.ELEMENTWISE,
                         elements=m * d, dtype_bytes=dtype,
                         flops_per_element=1.0, num_inputs=2))
    return ops


def lm_head_ops(config: LLMConfig, shape: StageShape) -> List[OpSpec]:
    """Final LayerNorm plus the LM-head projection to vocabulary logits.

    Only the last token's logits are needed, so ``m`` is 1 regardless of the
    stage (the sum stage also emits exactly one next token).
    """
    ops = [vector_op("lm_head.ln_f", OpKind.LAYERNORM,
                     elements=shape.batch_tokens * config.d_model,
                     dtype_bytes=config.dtype_bytes)]
    ops.append(matmul_op("lm_head.logits", m=1, n=config.vocab_size,
                         k=config.d_model, dtype_bytes=config.dtype_bytes))
    return ops


def embedding_ops(config: LLMConfig, shape: StageShape) -> List[OpSpec]:
    """Token + positional embedding lookup (a gather, bandwidth only)."""
    elems = shape.batch_tokens * config.d_model
    return [OpSpec(name="embed", kind=OpKind.EMBEDDING, flops=float(elems),
                   weight_bytes=float(elems * config.dtype_bytes),
                   input_bytes=0.0,
                   output_bytes=float(elems * config.dtype_bytes))]


def sum_stage_ops(config: LLMConfig, input_len: int,
                  tensor_parallel: int = 1) -> List[OpSpec]:
    """All operators of the summarization stage over ``input_len`` tokens."""
    shape = StageShape(batch_tokens=input_len, context_len=input_len)
    ops = embedding_ops(config, shape)
    for i in range(config.num_layers):
        ops.extend(decoder_layer_ops(config, shape, tensor_parallel,
                                     layer_name=f"layer{i}"))
    ops.extend(lm_head_ops(config, shape))
    return ops


def gen_stage_ops(config: LLMConfig, context_len: int,
                  tensor_parallel: int = 1) -> List[OpSpec]:
    """All operators of one generation stage at attention span ``context_len``.

    ``context_len`` counts the input tokens plus every token generated so
    far including the one produced by this stage's predecessor (the paper's
    ``L``).
    """
    shape = StageShape(batch_tokens=1, context_len=context_len)
    ops = embedding_ops(config, shape)
    for i in range(config.num_layers):
        ops.extend(decoder_layer_ops(config, shape, tensor_parallel,
                                     layer_name=f"layer{i}"))
    ops.extend(lm_head_ops(config, shape))
    return ops


def inference_op_count(config: LLMConfig, input_len: int,
                       output_len: int) -> int:
    """Number of operator instances in a full inference, for sanity checks."""
    count = len(sum_stage_ops(config, input_len))
    for step in range(output_len - 1):
        count += len(gen_stage_ops(config, input_len + step + 1))
    return count
