"""Transformer model substrate: configs, op graphs, KV cache, workloads."""

from repro.llm.batching import (
    batch_kv_bytes,
    batched_gen_stage_ops,
    max_batch_for_memory,
)
from repro.llm.checkpoint import load_checkpoint, save_checkpoint
from repro.llm.config import (
    EVALUATED_MODELS,
    GPT3_175B,
    LLMConfig,
    MODEL_ZOO,
    OPT_1_3B,
    OPT_2_7B,
    OPT_6_7B,
    OPT_13B,
    OPT_30B,
    OPT_66B,
    OPT_125M,
    OPT_175B,
    get_model,
    tiny_config,
)
from repro.llm.graph import (
    StageShape,
    decoder_layer_ops,
    gen_stage_ops,
    sum_stage_ops,
)
from repro.llm.moe import MoEConfig, moe_gen_stage_ops
from repro.llm.kvcache import KVCache, peak_kv_bytes, request_fits
from repro.llm.ops import OpKind, OpSpec, matmul_op, vector_op
from repro.llm.reference import (
    KVState,
    ModelWeights,
    ReferenceModel,
    random_weights,
)
from repro.llm.workload import (
    PAPER_INPUT_TOKENS,
    PAPER_MAX_OUTPUT_TOKENS,
    InferenceRequest,
    output_sweep,
    paper_request,
    sampled_workload,
)

__all__ = [
    "MoEConfig",
    "batch_kv_bytes",
    "batched_gen_stage_ops",
    "load_checkpoint",
    "max_batch_for_memory",
    "moe_gen_stage_ops",
    "save_checkpoint",
    "EVALUATED_MODELS",
    "GPT3_175B",
    "InferenceRequest",
    "KVCache",
    "KVState",
    "LLMConfig",
    "MODEL_ZOO",
    "ModelWeights",
    "OPT_125M",
    "OPT_13B",
    "OPT_175B",
    "OPT_1_3B",
    "OPT_2_7B",
    "OPT_30B",
    "OPT_66B",
    "OPT_6_7B",
    "OpKind",
    "OpSpec",
    "PAPER_INPUT_TOKENS",
    "PAPER_MAX_OUTPUT_TOKENS",
    "ReferenceModel",
    "StageShape",
    "decoder_layer_ops",
    "gen_stage_ops",
    "get_model",
    "matmul_op",
    "output_sweep",
    "paper_request",
    "peak_kv_bytes",
    "random_weights",
    "request_fits",
    "sampled_workload",
    "sum_stage_ops",
    "tiny_config",
    "vector_op",
]
