"""Multi-GPU parallelism: tensor/pipeline partitioning and all-reduce cost.

FasterTransformer-style tensor parallelism (§VII) splits attention heads
and FFN columns across GPUs; each decoding layer then needs two
all-reduces of the activation tile (after attention projection and after
FC2).  Those collectives ride NVLink and are the device-to-device traffic
the paper identifies as the multi-GPU bottleneck (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParallelismError
from repro.gpu.device import GPUSpec
from repro.llm.config import LLMConfig
import repro.perf.calibration as cal

#: All-reduces per decoding layer under Megatron-style tensor parallelism.
ALLREDUCES_PER_LAYER = 2


@dataclass(frozen=True)
class NvlinkAllReduce:
    """Ring all-reduce cost model over NVLink.

    Ring all-reduce moves ``2 * (n-1) / n`` of the payload through each
    device's links; small payloads are dominated by the per-collective
    latency.
    """

    spec: GPUSpec
    num_devices: int

    def __post_init__(self) -> None:
        if self.num_devices < 2:
            raise ParallelismError("all-reduce needs at least 2 devices")

    def time(self, payload_bytes: float) -> float:
        if payload_bytes < 0:
            raise ParallelismError("negative all-reduce payload")
        n = self.num_devices
        wire_bytes = 2.0 * (n - 1) / n * payload_bytes
        bandwidth = self.spec.nvlink_bandwidth * cal.NVLINK_BW_EFF
        return cal.NVLINK_ALLREDUCE_LATENCY_S + wire_bytes / bandwidth


@dataclass(frozen=True)
class TensorParallelGpu:
    """A tensor-parallel GPU group executing one model instance.

    Attributes:
        spec: The per-device GPU spec.
        num_devices: Tensor-parallel degree (the paper's appliance: 8).
        config: The partitioned model.
    """

    spec: GPUSpec
    num_devices: int
    config: LLMConfig

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ParallelismError("need at least one device")
        if self.config.num_heads % self.num_devices:
            raise ParallelismError(
                f"{self.config.name}: {self.config.num_heads} heads not "
                f"divisible by TP={self.num_devices}")

    @property
    def params_per_device(self) -> float:
        """Parameter bytes resident on each device (layer weights split,
        embeddings replicated)."""
        cfg = self.config
        layer = cfg.num_layers * cfg.layer_param_bytes / self.num_devices
        replicated = (cfg.embedding_params + 2 * cfg.d_model) \
            * cfg.dtype_bytes
        return layer + replicated

    def fits(self) -> bool:
        return self.spec.fits(int(self.params_per_device))

    def comm_time_per_stage(self, batch_tokens: int) -> float:
        """All-reduce time across one stage's decoding layers."""
        if self.num_devices == 1:
            return 0.0
        payload = batch_tokens * self.config.d_model * self.config.dtype_bytes
        allreduce = NvlinkAllReduce(self.spec, self.num_devices)
        return (self.config.num_layers * ALLREDUCES_PER_LAYER
                * allreduce.time(payload))
