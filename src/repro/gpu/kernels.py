"""GPU kernel-time model: GEMM/GEMV rooflines with launch overheads.

Models how a GPU executes the operator graphs of :mod:`repro.llm.graph`
(paper §III-B): GEMMs ride the tensor cores with size-dependent
efficiency; GEMVs are bound by achieved HBM bandwidth; every operator
pays a kernel-launch cost.  The same interface
(:meth:`GpuKernelModel.op_time`) is implemented by the CXL-PNM analytical
model, so the inference timer is device-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.device import GPUSpec
from repro.llm.ops import OpKind, OpSpec
import repro.perf.calibration as cal


@dataclass(frozen=True)
class GpuKernelModel:
    """Per-operator execution-time model for one GPU device."""

    spec: GPUSpec
    launch_overhead_s: float = cal.GPU_KERNEL_LAUNCH_S

    def gemm_flop_efficiency(self, rows: int) -> float:
        """Tensor-core FLOP efficiency as a function of GEMM row count.

        Thin GEMMs (few token rows) underfill the tensor cores; efficiency
        saturates toward ``GPU_GEMM_MAX_EFF`` for large row counts.
        """
        if rows <= 0:
            raise SimulationError(f"non-positive GEMM rows {rows}")
        return cal.GPU_GEMM_MAX_EFF * rows / (rows + cal.GPU_GEMM_HALF_ROWS)

    def gemv_bandwidth_efficiency(self, streamed_bytes: float) -> float:
        """Achieved HBM fraction for a GEMV streaming ``streamed_bytes``.

        Large weight streams reach ``GPU_GEMV_BW_EFF``; small slices (as
        created by high tensor-parallel degrees) lose efficiency to launch
        granularity and DRAM page effects.
        """
        if streamed_bytes <= 0:
            raise SimulationError("GEMV must stream a positive size")
        return cal.GPU_GEMV_BW_EFF * streamed_bytes / (
            streamed_bytes + cal.GPU_GEMV_SIZE_HALF_BYTES)

    def gemm_time(self, op: OpSpec) -> float:
        compute = op.flops / (self.spec.fp16_tensor_flops
                              * self.gemm_flop_efficiency(op.m))
        memory = op.total_bytes / (self.spec.memory_bandwidth
                                   * cal.GPU_VECTOR_BW_EFF)
        return self.launch_overhead_s + max(compute, memory)

    def gemv_time(self, op: OpSpec) -> float:
        eff = self.gemv_bandwidth_efficiency(op.weight_bytes
                                             + op.input_bytes)
        memory = op.total_bytes / (self.spec.memory_bandwidth * eff)
        return self.launch_overhead_s + memory

    def vector_time(self, op: OpSpec) -> float:
        memory = op.total_bytes / (self.spec.memory_bandwidth
                                   * cal.GPU_VECTOR_BW_EFF)
        return self.launch_overhead_s + memory

    def op_time(self, op: OpSpec) -> float:
        """Execution time of one operator on this GPU."""
        if op.kind is OpKind.GEMM:
            return self.gemm_time(op)
        if op.kind is OpKind.GEMV:
            return self.gemv_time(op)
        return self.vector_time(op)

    def op_flop_utilization(self, op: OpSpec) -> float:
        """Achieved fraction of peak FLOPS while the op runs."""
        t = self.op_time(op)
        return op.flops / (t * self.spec.fp16_tensor_flops)

    def op_reported_utilization(self, op: OpSpec) -> float:
        """The 'GPU utilization' a tool like nvidia-smi would report.

        That metric measures SM occupancy, not FLOP efficiency: GEMMs keep
        nearly all SMs busy; bandwidth-bound GEMVs keep a fraction busy
        (Fig. 4a shows ~94% for the sum stage vs <25% for gen stages).
        """
        if op.kind is OpKind.GEMM:
            return 0.94
        if op.kind is OpKind.GEMV:
            return 0.22
        return 0.35
