"""GPU device specifications (the paper's baseline hardware).

The evaluation baseline is an NVIDIA DGX A100 appliance: eight A100 GPUs
with 40 GB HBM2e and 1.555 TB/s each, connected by NVLink, running
FasterTransformer (§VII).  Specs here are public datasheet numbers; the
behavioural parameters (achievable efficiencies, launch overheads) live in
:mod:`repro.perf.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB, GiB, TB


@dataclass(frozen=True)
class GPUSpec:
    """One GPU device.

    Attributes:
        name: Marketing name.
        memory_bytes: HBM capacity.
        memory_bandwidth: Peak HBM bandwidth (bytes/s).
        fp16_tensor_flops: Peak FP16 tensor-core throughput.
        nvlink_bandwidth: Per-GPU aggregate NVLink bandwidth (bytes/s).
        pcie_bandwidth: Host link bandwidth (bytes/s, per direction).
        tdp_watts: Board power limit.
        price_usd: Street price used by Table III ($10,000 for A100).
    """

    name: str
    memory_bytes: int
    memory_bandwidth: float
    fp16_tensor_flops: float
    nvlink_bandwidth: float
    pcie_bandwidth: float
    tdp_watts: float
    price_usd: float

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.memory_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: invalid memory spec")
        if self.fp16_tensor_flops <= 0:
            raise ConfigurationError(f"{self.name}: invalid compute spec")

    def fits(self, working_set_bytes: int) -> bool:
        """Whether a working set fits in device memory (with headroom for
        activations/workspace, ~6%)."""
        return working_set_bytes <= self.memory_bytes * 0.94


#: The paper's baseline device: A100 40 GB (DGX A100, §VII).
A100_40G = GPUSpec(
    name="A100-40G",
    memory_bytes=40 * GiB,
    memory_bandwidth=1.555 * TB,
    fp16_tensor_flops=312e12,
    nvlink_bandwidth=600 * GB,
    pcie_bandwidth=32 * GB,      # PCIe 4.0 x16
    tdp_watts=400.0,
    price_usd=10_000.0,
)

A100_80G = GPUSpec(
    name="A100-80G",
    memory_bytes=80 * GiB,
    memory_bandwidth=2.039 * TB,
    fp16_tensor_flops=312e12,
    nvlink_bandwidth=600 * GB,
    pcie_bandwidth=32 * GB,
    tdp_watts=400.0,
    price_usd=15_000.0,
)

H100_SXM = GPUSpec(
    name="H100-SXM",
    memory_bytes=80 * GiB,
    memory_bandwidth=3.35 * TB,
    fp16_tensor_flops=989e12,
    nvlink_bandwidth=900 * GB,
    pcie_bandwidth=64 * GB,      # PCIe 5.0 x16
    tdp_watts=700.0,
    price_usd=30_000.0,
)
