"""GPU baseline models: devices, kernels, offloading, multi-GPU, power."""

from repro.gpu.device import A100_40G, A100_80G, H100_SXM, GPUSpec
from repro.gpu.kernels import GpuKernelModel
from repro.gpu.multi import (
    ALLREDUCES_PER_LAYER,
    NvlinkAllReduce,
    TensorParallelGpu,
)
from repro.gpu.offload import OffloadModel
from repro.gpu.power import GpuPowerModel

__all__ = [
    "A100_40G",
    "A100_80G",
    "ALLREDUCES_PER_LAYER",
    "GPUSpec",
    "GpuKernelModel",
    "GpuPowerModel",
    "H100_SXM",
    "NvlinkAllReduce",
    "OffloadModel",
    "TensorParallelGpu",
]
