"""Host-memory parameter offloading for models that exceed GPU memory.

When a model's parameters do not fit in a single GPU (paper §III-A,
Fig. 3), frameworks such as DeepSpeed-Inference or FlexGen keep the
parameters in host DRAM/storage and stream each layer's weights to the
GPU right before computing it.  The stream rides PCIe, which is orders of
magnitude slower than HBM — the paper measures ~99% of OPT-30B inference
time going to memcpy on a 40 GB A100.

The model: each stage must copy every non-resident parameter byte over
PCIe once (resident layers stay cached in the GPU's leftover memory);
compute overlaps with the copy, so stage time is
``max(copy_time, compute_time)`` plus the non-overlappable fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.gpu.device import GPUSpec
from repro.gpu.kernels import GpuKernelModel
from repro.llm.config import LLMConfig
from repro.llm.ops import OpSpec
import repro.perf.calibration as cal


@dataclass(frozen=True)
class OffloadModel:
    """Streaming-offload execution model for one oversized model.

    Attributes:
        spec: The GPU device.
        config: The LLM being offloaded.
        h2d_bandwidth: Achieved host-to-device copy bandwidth.  Defaults
            to the pageable-transfer rate the paper's Fig. 3 measurement
            implies; pass ``PCIE_H2D_PINNED_BYTES_S`` for the pinned
            ablation.
        activation_reserve_bytes: GPU memory reserved for activations,
            KV cache, and workspace (not available for weight caching).
    """

    spec: GPUSpec
    config: LLMConfig
    h2d_bandwidth: float = cal.PCIE_H2D_PAGEABLE_BYTES_S
    activation_reserve_bytes: int = 6 * 2**30

    def __post_init__(self) -> None:
        if self.h2d_bandwidth <= 0:
            raise ConfigurationError("h2d bandwidth must be positive")

    @property
    def is_needed(self) -> bool:
        """Whether the model actually overflows the GPU."""
        return not self.spec.fits(self.config.param_bytes)

    @property
    def resident_fraction(self) -> float:
        """Fraction of parameters that stay cached on the GPU."""
        budget = max(0, self.spec.memory_bytes
                     - self.activation_reserve_bytes)
        return min(1.0, budget / self.config.param_bytes)

    @property
    def streamed_bytes_per_stage(self) -> float:
        """Parameter bytes copied over PCIe for each sum/gen stage."""
        return self.config.param_bytes * (1.0 - self.resident_fraction)

    def copy_time_per_stage(self) -> float:
        return self.streamed_bytes_per_stage / self.h2d_bandwidth

    def stage_time(self, ops: Sequence[OpSpec],
                   kernels: GpuKernelModel) -> float:
        """Stage time with weight streaming overlapped against compute."""
        compute = sum(kernels.op_time(op) for op in ops)
        if not self.is_needed:
            return compute
        copy = self.copy_time_per_stage()
        # Prefetch overlap hides compute under the copy; framework
        # scheduling gaps leave a small non-overlapped tail.
        return max(copy, compute) + 0.02 * min(copy, compute)

    def memcpy_fraction(self, ops: Sequence[OpSpec],
                        kernels: GpuKernelModel) -> float:
        """Fraction of stage time attributable to PCIe copies (Fig. 3)."""
        if not self.is_needed:
            return 0.0
        compute = sum(kernels.op_time(op) for op in ops)
        copy = self.copy_time_per_stage()
        total = self.stage_time(ops, kernels)
        return max(0.0, (total - compute) / total) if copy > compute \
            else copy / total
