"""GPU power model.

A data-centre GPU running LLM inference sits far above its idle power
even when stalled on memory: clocks boost, HBM burns refresh and access
energy, and the SM array leaks.  The model is a three-term affine fit —
active-idle + memory-utilization term + compute-utilization term — with
the operating point anchored to the paper's measured 253 W for OPT-13B
inference on an A100 (§VIII-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.device import GPUSpec
import repro.perf.calibration as cal


@dataclass(frozen=True)
class GpuPowerModel:
    """Operating power of one GPU device."""

    spec: GPUSpec
    active_idle_watts: float = cal.GPU_ACTIVE_IDLE_WATTS
    mem_max_watts: float = cal.GPU_MEM_MAX_WATTS
    core_max_watts: float = cal.GPU_CORE_MAX_WATTS

    def power_watts(self, compute_utilization: float,
                    bandwidth_utilization: float) -> float:
        """Board power at the given utilization point, capped at TDP."""
        for name, u in (("compute", compute_utilization),
                        ("bandwidth", bandwidth_utilization)):
            if not 0.0 <= u <= 1.0:
                raise ConfigurationError(
                    f"{name} utilization {u} outside [0, 1]")
        power = (self.active_idle_watts
                 + bandwidth_utilization * self.mem_max_watts
                 + compute_utilization * self.core_max_watts)
        return min(power, self.spec.tdp_watts)
