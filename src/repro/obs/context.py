"""Ambient observability context: the process-wide tracer/metrics pair.

Components take an *injected* tracer/registry and default to ``None``;
at call time they resolve ``None`` through :func:`get_tracer` /
:func:`get_metrics`, which return whatever :func:`observe` installed for
the current context — or the shared no-op singletons when observability
is off.  This is how ``repro run --trace-out`` captures spans from every
layer an experiment touches without threading a tracer through each
harness signature, while still letting tests and libraries inject
private instances.

Built on :mod:`contextvars`, so concurrent contexts (threads spawned
inside an ``observe`` block inherit the installing context only if they
copy it — Python's default for ``Thread`` is a fresh context, which is
why the tracer itself is also thread-safe and can simply be shared).
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator, Optional, Tuple, Union

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

AnyTracer = Union[Tracer, NullTracer]
AnyRegistry = Union[MetricsRegistry, NullMetricsRegistry]

_TRACER: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None)
_METRICS: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_obs_metrics", default=None)


def get_tracer(injected: Optional[AnyTracer] = None) -> AnyTracer:
    """Resolve a component's tracer: injected > ambient > no-op."""
    if injected is not None:
        return injected
    ambient = _TRACER.get()
    return ambient if ambient is not None else NULL_TRACER


def get_metrics(injected: Optional[AnyRegistry] = None) -> AnyRegistry:
    """Resolve a component's registry: injected > ambient > no-op."""
    if injected is not None:
        return injected
    ambient = _METRICS.get()
    return ambient if ambient is not None else NULL_REGISTRY


@contextlib.contextmanager
def observe(tracer: Optional[Tracer] = None,
            metrics: Optional[MetricsRegistry] = None
            ) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Install an ambient tracer/registry for the enclosed block.

    Creates fresh instances when not given ones, and yields the pair so
    the caller can export after the block::

        with observe() as (tracer, metrics):
            run_experiment("fig10")
        write_chrome_trace(tracer, "trace.json")
    """
    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()
    tracer_token = _TRACER.set(tracer)
    metrics_token = _METRICS.set(metrics)
    try:
        yield tracer, metrics
    finally:
        _TRACER.reset(tracer_token)
        _METRICS.reset(metrics_token)
