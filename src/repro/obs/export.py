"""Exporters: Chrome-trace JSON, metrics JSON, and summary tables.

The Chrome-trace exporter emits the classic ``traceEvents`` array of
complete (``"ph": "X"``) events that ``chrome://tracing`` and Perfetto
both load.  The two clocks become two processes:

* pid 1 (**sim**) — simulated device time; each span's ``track`` (a
  hardware unit, a scheduler instance, the CXL link) becomes a named
  thread row, and ``ts``/``dur`` are *simulated nanoseconds* divided by
  1000 (the trace format's microsecond timebase).
* pid 2 (**wall**) — host wall-clock time, one thread row per Python
  thread, nested spans stacking as in any profiler.

Because simulated time starts at zero for every run, loading a trace in
Perfetto shows the device schedule exactly as the timing models computed
it — the reproduction's analog of the paper's Fig. 3/Fig. 10 time
breakdowns.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracer import (
    NullTracer,
    SIM_CLOCK,
    SpanRecord,
    Tracer,
)

SIM_PID = 1
WALL_PID = 2

_PROCESS_NAMES = {SIM_PID: "sim (device time)",
                  WALL_PID: "wall (host time)"}


def chrome_trace_events(tracer: Union[Tracer, NullTracer]
                        ) -> List[Dict[str, Any]]:
    """Flatten a tracer's spans into Chrome trace events."""
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple, int] = {}
    for pid, name in _PROCESS_NAMES.items():
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": name}})
    for span in tracer.spans:
        pid = SIM_PID if span.clock == SIM_CLOCK else WALL_PID
        track_key = (pid, span.track)
        tid = tids.get(track_key)
        if tid is None:
            tid = tids[track_key] = len(tids) + 1
            events.append({"ph": "M", "pid": pid, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": span.track}})
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": span.name,
            "cat": span.category,
            "ts": span.start_ns / 1e3,
            "dur": span.dur_ns / 1e3,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return events


def to_chrome_trace(tracer: Union[Tracer, NullTracer]) -> Dict[str, Any]:
    """The full Chrome-trace JSON object."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs",
                      "sim_timebase": "simulated nanoseconds"},
    }


def write_chrome_trace(tracer: Union[Tracer, NullTracer],
                       path: str) -> str:
    """Write the trace to ``path``; returns the path for chaining."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer), handle)
    return path


def load_chrome_trace(path: str) -> List[Dict[str, Any]]:
    """Load a trace file and return its event list (validating shape)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, list):  # bare-array variant of the format
        return data
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigurationError(
            f"{path} is not a Chrome trace (no traceEvents array)")
    return events


def write_metrics_json(metrics: Union[MetricsRegistry, NullMetricsRegistry],
                       path: str) -> str:
    """Flat JSON dump of every counter/gauge/histogram."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics.as_dict(), handle, indent=2, sort_keys=True)
    return path


def summarize_spans(spans: Iterable[SpanRecord],
                    top_n: int = 20) -> List[Dict[str, Any]]:
    """Aggregate spans by name: the top-N by cumulative simulated time.

    Wall-only names are ranked after simulated ones (by wall time), so a
    purely functional run still yields a useful table.
    """
    rows = _aggregate(
        ((s.name, s.category, s.clock == SIM_CLOCK, s.dur_ns)
         for s in spans))
    return rows[:top_n]


def summarize_trace_file(path: str, top_n: int = 20
                         ) -> List[Dict[str, Any]]:
    """Top-N summary straight from an exported Chrome-trace file."""
    rows = _aggregate(
        ((e.get("name", "?"), e.get("cat", "?"),
          e.get("pid") == SIM_PID, int(e.get("dur", 0) * 1e3))
         for e in load_chrome_trace(path) if e.get("ph") == "X"))
    return rows[:top_n]


def _aggregate(items: Iterable[tuple]) -> List[Dict[str, Any]]:
    """Shared aggregation: (name, category, is_sim, dur_ns) tuples."""
    totals: Dict[tuple, Dict[str, Any]] = {}
    for name, category, is_sim, dur_ns in items:
        entry = totals.setdefault((name, category), {
            "span": name, "category": category, "count": 0,
            "sim_ms": 0.0, "wall_ms": 0.0})
        entry["count"] += 1
        entry["sim_ms" if is_sim else "wall_ms"] += dur_ns / 1e6
    return sorted(totals.values(),
                  key=lambda r: (-r["sim_ms"], -r["wall_ms"], r["span"]))


def render_summary(rows: Sequence[Dict[str, Any]],
                   title: Optional[str] = None) -> str:
    """Aligned text table of a span summary (CLI output)."""
    from repro.experiments.report import text_table
    header = f"== {title} ==\n" if title else ""
    if not rows:
        return header + "(no spans recorded)"
    return header + text_table(
        list(rows), columns=["span", "category", "count", "sim_ms",
                             "wall_ms"])
