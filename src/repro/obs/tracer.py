"""Hierarchical span tracing over two clocks: wall time and device time.

The reproduction runs two kinds of "time".  Wall-clock time is what the
Python process spends (compiling stages, executing numpy kernels);
*simulated* time is what the modelled CXL-PNM hardware would spend (the
schedule the timing simulator computes, the arbiter's service windows,
the scheduler's request timelines).  A :class:`Tracer` records both as
:class:`SpanRecord` entries on a single shared timeline store:

* ``with tracer.span("compile", category="runtime"):`` opens a
  *wall-clock* span.  Nesting is tracked per thread, so spans form a
  tree (``parent_id``/``depth``) and export cleanly to Chrome's trace
  viewer as stacked slices.
* ``tracer.sim_span("MPU_MM", start_s=t0, dur_s=dt, track="pnm.PE")``
  records a *simulated-time* span at an explicit position on a named
  track — the per-unit schedule of the instruction simulator, for
  example.

Disabled tracing must cost (almost) nothing: :data:`NULL_TRACER` is a
shared singleton whose ``span`` returns one reusable no-op context
manager and whose ``sim_span`` is a constant-return method, so
instrumented hot loops pay one attribute check (``tracer.enabled``) or
one no-op call when observability is off.  Instrumented components are
bit-identical with tracing on or off because the tracer only *records*;
it never feeds back into any model.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Clock tags carried by every span record.
WALL_CLOCK = "wall"
SIM_CLOCK = "sim"


@dataclass(frozen=True)
class SpanRecord:
    """One completed span on either clock.

    Attributes:
        span_id: Unique id within the owning tracer.
        parent_id: Enclosing wall-clock span id, or ``None`` at top level
            (sim spans are positioned by ``track``, not by nesting).
        name: What the span covers, e.g. an opcode or a stage name.
        category: The stack layer that emitted it (``"accelerator"``,
            ``"cxl"``, ``"scheduler"``, ``"runtime"``, ...).
        clock: :data:`WALL_CLOCK` or :data:`SIM_CLOCK`.
        start_ns: Start time in integer nanoseconds on that clock
            (wall spans are relative to tracer creation).
        dur_ns: Duration in nanoseconds.
        track: Export track (thread name for wall spans, unit/instance
            name for sim spans).
        depth: Nesting depth of wall spans (0 at top level).
        args: Optional key/value payload shown in trace viewers.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    clock: str
    start_ns: int
    dur_ns: int
    track: str
    depth: int = 0
    args: Optional[Dict[str, Any]] = None


class _NullSpan:
    """Reusable no-op context manager handed out by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **_args: Any) -> None:
        """Discard span arguments."""


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; the default for every component."""

    enabled = False

    def span(self, name: str, category: str = "wall",
             **args: Any) -> _NullSpan:
        return NULL_SPAN

    def sim_span(self, name: str, start_s: float, dur_s: float,
                 track: str, category: str = "sim",
                 args: Optional[Dict[str, Any]] = None) -> None:
        return None

    @property
    def spans(self) -> Tuple[SpanRecord, ...]:
        return ()


NULL_TRACER = NullTracer()


class _SpanHandle:
    """Live wall-clock span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_span_id",
                 "_parent_id", "_depth", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args

    def set(self, **args: Any) -> None:
        """Attach (or update) argument payload while the span is open."""
        self._args.update(args)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1][0] if stack else None
        self._depth = len(stack)
        self._span_id = next(tracer._ids)
        stack.append((self._span_id, self._name))
        self._start_ns = time.perf_counter_ns() - tracer._epoch_ns
        return self

    def __exit__(self, *exc_info) -> bool:
        end_ns = time.perf_counter_ns() - self._tracer._epoch_ns
        tracer = self._tracer
        tracer._stack().pop()
        record = SpanRecord(
            span_id=self._span_id,
            parent_id=self._parent_id,
            name=self._name,
            category=self._category,
            clock=WALL_CLOCK,
            start_ns=self._start_ns,
            dur_ns=end_ns - self._start_ns,
            track=threading.current_thread().name,
            depth=self._depth,
            args=self._args or None)
        with tracer._lock:
            tracer._spans.append(record)
        return False


#: Public name for the live span handle ``Tracer.span`` returns.
Span = _SpanHandle


class Tracer:
    """Collects spans from every instrumented layer of the stack.

    Thread-safe: wall-clock nesting is tracked per thread and the span
    store is guarded by a lock, so a tracer can be shared by the whole
    process (the CLI does exactly that via :mod:`repro.obs.context`).
    """

    enabled = True

    def __init__(self) -> None:
        self._spans: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count()
        self._epoch_ns = time.perf_counter_ns()

    def _stack(self) -> List[Tuple[int, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording ---------------------------------------------------------

    def span(self, name: str, category: str = "wall",
             **args: Any) -> _SpanHandle:
        """Open a wall-clock span; use as a context manager."""
        return _SpanHandle(self, name, category, args)

    def sim_span(self, name: str, start_s: float, dur_s: float,
                 track: str, category: str = "sim",
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a span at an explicit simulated-time position.

        ``start_s``/``dur_s`` are simulated seconds; they are stored as
        integer nanoseconds, the timebase the Chrome-trace exporter uses.
        """
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=None,
            name=name,
            category=category,
            clock=SIM_CLOCK,
            start_ns=int(round(start_s * 1e9)),
            dur_ns=int(round(dur_s * 1e9)),
            track=track,
            depth=0,
            args=args)
        with self._lock:
            self._spans.append(record)

    # -- reading -----------------------------------------------------------

    @property
    def spans(self) -> Tuple[SpanRecord, ...]:
        """Snapshot of every recorded span (order of completion)."""
        with self._lock:
            return tuple(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def categories(self) -> Tuple[str, ...]:
        """Distinct categories seen so far (sorted) — layer coverage."""
        return tuple(sorted({s.category for s in self.spans}))
