"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Instruments the simulation stack with the three classic metric kinds,
keyed by ``(name, sorted label items)`` so one registry can hold, say,
``cxl.arbiter.served_bytes{source=HOST}`` and ``{source=PNM}`` side by
side.  Histograms are fixed-bucket (Prometheus-style): they record
count/sum/min/max plus per-bucket counts and estimate p50/p95/p99 by
linear interpolation inside the containing bucket, so their memory is
O(buckets) regardless of sample count.

Like the tracer, the registry has a shared no-op twin
(:data:`NULL_REGISTRY`) whose factory methods hand back reusable inert
instruments, keeping the disabled path allocation-free.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_metric_key(key: LabelKey) -> str:
    """``name{k=v,...}`` rendering used by the JSON/summary exporters."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def default_time_buckets() -> Tuple[float, ...]:
    """Log-spaced seconds buckets from 1 ns to 100 s (4 per decade)."""
    return tuple(10.0 ** (e / 4.0) for e in range(-36, 9))


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only increase")
        self.value += amount

    def as_dict(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Last-written value, with the min/max envelope seen over the run."""

    __slots__ = ("value", "min", "max", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.updates += 1

    def as_dict(self) -> Dict[str, float]:
        if not self.updates:
            return {"value": 0.0, "min": 0.0, "max": 0.0, "updates": 0}
        return {"value": self.value, "min": self.min, "max": self.max,
                "updates": self.updates}


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are ascending upper bounds; samples above the last bound
    land in an overflow bucket whose percentile estimate clamps to the
    observed maximum.
    """

    __slots__ = ("buckets", "counts", "overflow", "count", "sum",
                 "min", "max")

    def __init__(self, buckets: Optional[Sequence[float]] = None):
        bounds = tuple(buckets) if buckets is not None \
            else default_time_buckets()
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                "histogram buckets must be non-empty and ascending")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first bucket with upper bound >= value
            mid = (lo + hi) // 2
            if self.buckets[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(self.buckets):
            self.overflow += 1
        else:
            self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0..100) from bucket counts.

        Linear interpolation inside the containing bucket; exact to
        within one bucket width against a same-sample numpy reference.
        """
        if not 0.0 <= p <= 100.0:
            raise ConfigurationError(f"percentile {p} outside [0, 100]")
        if self.count == 0:
            return 0.0
        target = p / 100.0 * self.count
        seen = 0.0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= target:
                # If the first non-empty bucket is hit, its lower edge is
                # the observed minimum (the bucket's nominal lower bound
                # may lie far below the data).
                lower = self.buckets[i - 1] if i else self.min
                frac = (target - seen) / c
                value = lower + frac * (self.buckets[i] - lower)
                return min(max(value, self.min), self.max)
            seen += c
        return self.max  # overflow bucket: clamp to observed maximum

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"count": self.count, "sum": self.sum, "mean": self.mean,
                "min": self.min, "max": self.max, "p50": self.p50,
                "p95": self.p95, "p99": self.p99}


class _NullInstrument:
    """Inert counter/gauge/histogram handed out by the null registry."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Registry that discards everything; the default everywhere."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullMetricsRegistry()


class MetricsRegistry:
    """Get-or-create store of metrics keyed by name + labels."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _label_key(name, labels)
        with self._lock:
            try:
                return self._counters[key]
            except KeyError:
                inst = self._counters[key] = Counter()
                return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _label_key(name, labels)
        with self._lock:
            try:
                return self._gauges[key]
            except KeyError:
                inst = self._gauges[key] = Gauge()
                return inst

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        """Get or create; ``buckets`` only applies on first creation."""
        key = _label_key(name, labels)
        with self._lock:
            try:
                return self._histograms[key]
            except KeyError:
                inst = self._histograms[key] = Histogram(buckets)
                return inst

    def _section(self, store: Dict[LabelKey, Any]
                 ) -> Dict[str, Dict[str, Any]]:
        return {format_metric_key(key): inst.as_dict()
                for key, inst in sorted(store.items())}

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Flat JSON-ready dump of every instrument."""
        with self._lock:
            return {
                "counters": self._section(self._counters),
                "gauges": self._section(self._gauges),
                "histograms": self._section(self._histograms),
            }

    def names(self) -> Iterable[str]:
        with self._lock:
            keys = (list(self._counters) + list(self._gauges)
                    + list(self._histograms))
        return sorted(format_metric_key(k) for k in keys)
