"""Observability for the simulation stack: spans, metrics, exporters.

``repro.obs`` is the measurement foundation of the reproduction: a
hierarchical span tracer over wall-clock *and* simulated device time, a
counter/gauge/histogram registry, and exporters to Chrome-trace JSON
(``chrome://tracing`` / Perfetto), flat metrics JSON, and text summary
tables.  Every instrumented component takes an injectable tracer and
registry that default to shared no-ops, so observability off is the
bit-identical (and near-free) default; ``repro run --trace-out`` turns
it on process-wide via :func:`repro.obs.observe`.
"""

from repro.obs.context import get_metrics, get_tracer, observe
from repro.obs.export import (
    chrome_trace_events,
    load_chrome_trace,
    render_summary,
    summarize_spans,
    summarize_trace_file,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SIM_CLOCK,
    Span,
    SpanRecord,
    Tracer,
    WALL_CLOCK,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "SIM_CLOCK",
    "Span",
    "SpanRecord",
    "Tracer",
    "WALL_CLOCK",
    "chrome_trace_events",
    "get_metrics",
    "get_tracer",
    "load_chrome_trace",
    "observe",
    "render_summary",
    "summarize_spans",
    "summarize_trace_file",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
]
