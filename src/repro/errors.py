"""Exception hierarchy for the CXL-PNM reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
subsystem and carry enough context in the message to be actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A model, device, or appliance was configured with invalid parameters."""


class CapacityError(ReproError):
    """A model or buffer does not fit in the targeted memory or register file."""


class FormFactorError(ReproError):
    """A memory-module composition violates a form-factor constraint."""


class AddressError(ReproError):
    """An address is outside a device's mapped range or is misaligned."""


class AllocationError(ReproError):
    """A device-memory or register-file allocation could not be satisfied."""


class ProtocolError(ReproError):
    """A CXL transaction violates the protocol model (bad opcode, size, tag)."""


class IsaError(ReproError):
    """An instruction is malformed or uses operands inconsistently."""


class ExecutionError(ReproError):
    """The functional executor hit an invalid runtime state."""


class DriverError(ReproError):
    """The simulated device driver was used incorrectly (bad register,
    unprogrammed instruction buffer, completion queried before launch)."""


class ParallelismError(ReproError):
    """A parallelism plan is inconsistent with the model or appliance."""


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent schedule."""
