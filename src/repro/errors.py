"""Exception hierarchy for the CXL-PNM reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
subsystem and carry enough context in the message to be actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A model, device, or appliance was configured with invalid parameters."""


class CapacityError(ReproError):
    """A model or buffer does not fit in the targeted memory or register file."""


class FormFactorError(ReproError):
    """A memory-module composition violates a form-factor constraint."""


class AddressError(ReproError):
    """An address is outside a device's mapped range or is misaligned."""


class AllocationError(ReproError):
    """A device-memory or register-file allocation could not be satisfied."""


class ProtocolError(ReproError):
    """A CXL transaction violates the protocol model (bad opcode, size, tag)."""


class IsaError(ReproError):
    """An instruction is malformed or uses operands inconsistently."""


class ExecutionError(ReproError):
    """The functional executor hit an invalid runtime state."""


class UncorrectableMemoryError(ExecutionError):
    """An ECC-protected read hit a double-bit (uncorrectable) error.

    The machine-check the host would see: SECDED detects the corruption
    but cannot repair it, so the read — and the generation in flight —
    fails rather than returning silently wrong data.
    """


class DriverError(ReproError):
    """The simulated device driver was used incorrectly (bad register,
    unprogrammed instruction buffer, completion queried before launch)."""


class TransientDeviceError(ReproError):
    """A device launch failed recoverably (modeled stall or timeout).

    The runtime retries these with bounded backoff; repeated transients
    escalate to :class:`DeviceLostError`.
    """


class DeviceLostError(ReproError):
    """A device failed permanently (or exhausted its transient retries).

    The serving layer responds by failing the device over: its in-flight
    requests are requeued onto the surviving capacity.
    """


class AdmissionError(ReproError):
    """A request was turned away at admission control.

    Carries the reason a request can never be served (position budget,
    KV footprint, or capacity lost to a device failure); schedulers
    record these on :class:`~repro.appliance.scheduler.RejectedRequest`
    instead of fabricating a service latency.
    """


class ParallelismError(ReproError):
    """A parallelism plan is inconsistent with the model or appliance."""


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent schedule."""


class FaultInjectionError(ReproError):
    """A fault plan or injector was configured inconsistently."""


class StaticAnalysisError(ReproError):
    """Base class for errors raised by the :mod:`repro.analysis` layer."""


class ProgramVerificationError(StaticAnalysisError):
    """A compiled program failed static verification (has ERROR
    diagnostics).

    Raised by the ``verify_static=True`` hook on ``ProgramCache`` and by
    ``verify_program`` callers that demand a clean report; the message
    carries the rendered diagnostics.
    """


class PurityError(StaticAnalysisError):
    """The simulation-purity lint found a violated source invariant."""


__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "FormFactorError",
    "AddressError",
    "AllocationError",
    "ProtocolError",
    "IsaError",
    "ExecutionError",
    "UncorrectableMemoryError",
    "DriverError",
    "TransientDeviceError",
    "DeviceLostError",
    "AdmissionError",
    "ParallelismError",
    "SimulationError",
    "FaultInjectionError",
    "StaticAnalysisError",
    "ProgramVerificationError",
    "PurityError",
]
