"""Hardware/operating cost and CO2 model (paper §VIII-B, Table III).

The paper compares appliances on hardware cost (device prices only),
operating cost (electricity at Idaho's 10.35 c/kWh, the cheapest U.S.
rate it cites), and CO2 emission proportional to the consumed energy.
Table III's numbers imply a grid carbon intensity of ~0.057 kg/kWh
(Idaho's hydro-heavy grid), which we adopt as the default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tco.energy import DailyOperation

#: Idaho electricity price the paper uses (USD per kWh).
ELECTRICITY_USD_PER_KWH = 0.1035

#: Grid carbon intensity implied by Table III (kg CO2 per kWh).
CO2_KG_PER_KWH = 2.46 / 43.2


@dataclass(frozen=True)
class CostSummary:
    """One Table III column."""

    name: str
    hardware_cost_usd: float
    tokens_per_day: float
    kwh_per_day: float
    electricity_usd_per_kwh: float = ELECTRICITY_USD_PER_KWH
    co2_kg_per_kwh: float = CO2_KG_PER_KWH

    def __post_init__(self) -> None:
        if self.hardware_cost_usd < 0:
            raise ConfigurationError("hardware cost cannot be negative")

    @property
    def operating_cost_usd_per_day(self) -> float:
        return self.kwh_per_day * self.electricity_usd_per_kwh

    @property
    def co2_kg_per_day(self) -> float:
        return self.kwh_per_day * self.co2_kg_per_kwh

    @property
    def cost_efficiency_tokens_per_usd(self) -> float:
        """Tokens per operating dollar (Table III's 'cost efficiency')."""
        cost = self.operating_cost_usd_per_day
        return self.tokens_per_day / cost if cost else 0.0

    @property
    def co2_efficiency_tokens_per_kg(self) -> float:
        co2 = self.co2_kg_per_day
        return self.tokens_per_day / co2 if co2 else 0.0

    def amortized_cost_per_day(self, lifetime_years: float = 3.0) -> float:
        """Hardware amortization + electricity, the full TCO view."""
        if lifetime_years <= 0:
            raise ConfigurationError("lifetime must be positive")
        amortized_hw = self.hardware_cost_usd / (lifetime_years * 365.0)
        return amortized_hw + self.operating_cost_usd_per_day

    def tco_tokens_per_usd(self, lifetime_years: float = 3.0) -> float:
        """Tokens per total dollar including amortized hardware."""
        return self.tokens_per_day / self.amortized_cost_per_day(
            lifetime_years)


def cost_summary(operation: DailyOperation, hardware_cost_usd: float
                 ) -> CostSummary:
    """Assemble a Table III column from a daily operation projection."""
    return CostSummary(name=operation.name,
                       hardware_cost_usd=hardware_cost_usd,
                       tokens_per_day=operation.tokens_per_day,
                       kwh_per_day=operation.kwh_per_day)
