"""TCO models: energy integration and cost/CO2 accounting (Table III)."""

from repro.tco.cost import (
    CO2_KG_PER_KWH,
    ELECTRICITY_USD_PER_KWH,
    CostSummary,
    cost_summary,
)
from repro.tco.energy import DailyOperation, daily_operation

__all__ = [
    "CO2_KG_PER_KWH",
    "CostSummary",
    "DailyOperation",
    "ELECTRICITY_USD_PER_KWH",
    "cost_summary",
    "daily_operation",
]
