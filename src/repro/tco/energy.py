"""Energy accounting for inference services.

Converts appliance power/throughput into the daily operating quantities
Table III reports: tokens/day, kWh/day, and the derived efficiency
metrics.  A service is modelled as running the appliance continuously at
its steady-state operating point (the paper's Table III does the same:
throughput x 86,400 s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perf.metrics import ApplianceResult
from repro.units import KILOWATT_HOUR, SECONDS_PER_DAY


@dataclass(frozen=True)
class DailyOperation:
    """One appliance's steady-state daily operation."""

    name: str
    tokens_per_day: float
    kwh_per_day: float

    def __post_init__(self) -> None:
        if self.tokens_per_day < 0 or self.kwh_per_day < 0:
            raise ConfigurationError("daily quantities cannot be negative")

    @property
    def tokens_per_kwh(self) -> float:
        return self.tokens_per_day / self.kwh_per_day if self.kwh_per_day \
            else 0.0


def daily_weight_traffic_bytes(tokens_per_day: float, num_params: float,
                               elem_bytes: int = 2) -> float:
    """Daily parameter-stream traffic for a decode-dominated service.

    Element size is a parameter (not a baked-in constant) so the int8
    TCO ablation and the fp16 baseline share this code path — the
    quantized service moves ``elem_bytes=1`` bytes per parameter per
    token instead of the full-width stream.
    """
    from repro.perf.calibration import weight_stream_bytes
    if tokens_per_day < 0:
        raise ConfigurationError("tokens_per_day cannot be negative")
    return tokens_per_day * weight_stream_bytes(num_params, elem_bytes)


def daily_operation(result: ApplianceResult,
                    duty_cycle: float = 1.0) -> DailyOperation:
    """Project an appliance result to continuous daily operation.

    ``duty_cycle`` scales both tokens and energy for services that do not
    run saturated around the clock.
    """
    if not 0.0 < duty_cycle <= 1.0:
        raise ConfigurationError(f"duty_cycle {duty_cycle} not in (0, 1]")
    seconds = SECONDS_PER_DAY * duty_cycle
    tokens = result.throughput_tokens_per_s * seconds
    energy_j = result.appliance_power_w * seconds
    return DailyOperation(name=result.name, tokens_per_day=tokens,
                          kwh_per_day=energy_j / KILOWATT_HOUR)
