"""Determinism lint: AST rules against order-sensitivity bug classes.

Bit-identical replay is the simulator's core guarantee, and it has
already been broken twice by constructs no test suite can pin down for
every future edit: an ``id()``-keyed failover-attribution dict (fixed
in the event-kernel rewrite) and heap events whose ordering fell back
to comparing payload objects.  This pass bans the whole classes:

* **DET501** — ``id()`` used as a lookup key (subscript, dict-literal
  key, ``.get``/``.setdefault``/``.pop`` argument, ``in`` membership)
  or compared with ``==``/``!=``.  CPython reuses addresses, so two
  distinct short-lived objects can collide across a run and the same
  run can attribute state differently between replays.
* **DET502** — iterating directly over a ``set``/``frozenset``
  (literal, constructor call, or ``list(set(...))``-style
  materialization).  Set order depends on hash seeding for strings and
  insertion history for everything else; when the iteration feeds
  event order or stats accumulation the replay is no longer
  bit-identical.  ``sorted(set(...))`` is the sanctioned spelling.
* **DET503** — ``dict.popitem()``: LIFO on the *insertion* order of a
  dict whose population order is rarely an invariant anyone maintains.
* **DET504** — ``heapq.heappush`` of a key tuple with no recognizable
  total-order integer tie-break after the primary key.  Two events at
  the same simulated time fall through to comparing the next tuple
  element; if that is a payload object, heap order (and the whole
  timeline after it) depends on object identity.  The event kernel's
  convention — ``(at_s, priority, seq, ...)`` with a monotonically
  increasing ``seq`` — is what the rule looks for.

Rules select by path relative to ``src/repro`` (:func:`rules_for`):
the timing-critical packages ``perf``, ``cxl``, and ``appliance`` get
all four; ``accelerator`` additionally gets DET501 (its programs feed
the timing simulator).  ``DET500`` reports inputs that do not parse.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .diagnostics import AnalysisReport, Diagnostic, Severity

#: Packages (relative to ``src/repro``) where event/stat order must be
#: reproducible: all DET rules apply.
ORDER_SENSITIVE = ("perf", "cxl", "appliance")

#: Packages that additionally get the ``id()``-key rule (their caches
#: hand objects to the timing layer).
ID_KEY_SENSITIVE = ORDER_SENSITIVE + ("accelerator",)

#: Dict methods whose first argument is a lookup key.
_KEYED_METHODS = frozenset({"get", "setdefault", "pop"})

#: Tie-break name fragments DET504 accepts after the primary key.
#: The event kernel uses ``seq`` from an ``itertools.count``; index-
#: and priority-like names are equally total-ordered integers.
TIE_BREAK_FRAGMENTS = (
    "seq", "serial", "prio", "order", "index", "idx", "slot",
    "instance", "tick", "count", "rank", "tie",
)


def rules_for(relpath: str) -> Tuple[str, ...]:
    """DET rule codes that apply to a file at ``relpath``."""
    rel = relpath.replace("\\", "/")
    top = rel.split("/", 1)[0]
    rules: List[str] = []
    if top in ID_KEY_SENSITIVE:
        rules.append("DET501")
    if top in ORDER_SENSITIVE:
        rules.extend(("DET502", "DET503", "DET504"))
    return tuple(rules)


def _is_id_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1)


def _is_set_expr(node: ast.AST) -> bool:
    """A set literal, comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return False


def _render(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


def _has_tie_break(elements: Sequence[ast.AST]) -> bool:
    """Whether any secondary tuple element is a total-order integer.

    Accepts an integer literal, a ``next(...)`` call (the
    ``itertools.count`` idiom), or a name whose final segment contains
    one of :data:`TIE_BREAK_FRAGMENTS`.
    """
    for element in elements:
        if isinstance(element, ast.Constant) \
                and isinstance(element.value, int) \
                and not isinstance(element.value, bool):
            return True
        if isinstance(element, ast.Call) \
                and isinstance(element.func, ast.Name) \
                and element.func.id == "next":
            return True
        segment = None
        if isinstance(element, ast.Name):
            segment = element.id
        elif isinstance(element, ast.Attribute):
            segment = element.attr
        if segment is not None:
            lowered = segment.lower()
            if any(frag in lowered for frag in TIE_BREAK_FRAGMENTS):
                return True
    return False


class _DetVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str, rules: Sequence[str]):
        self.relpath = relpath
        self.rules = frozenset(rules)
        self.diagnostics: List[Diagnostic] = []

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        if code not in self.rules:
            return
        line = getattr(node, "lineno", 0)
        self.diagnostics.append(Diagnostic(
            code, Severity.ERROR, message,
            location=f"{self.relpath}:{line}", source=self.relpath))

    # -- DET501: id() as a key ----------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _is_id_call(node.slice):
            self._add("DET501", node, (
                f"id()-keyed lookup {_render(node)}: CPython reuses "
                f"addresses, so identity keys can collide across a "
                f"run and differ between replays"))
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and _is_id_call(key):
                self._add("DET501", key, (
                    f"id() as a dict-literal key "
                    f"({_render(key)}); key the state by a stable "
                    f"field (request_id, device index) instead"))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _KEYED_METHODS \
                and node.args and _is_id_call(node.args[0]):
            self._add("DET501", node, (
                f"id()-keyed lookup {_render(node)}: key the state "
                f"by a stable field (request_id, device index) "
                f"instead"))
        # DET502: materializing a set into an ordered sequence.
        if isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple") \
                and len(node.args) == 1 and _is_set_expr(node.args[0]):
            self._add("DET502", node, (
                f"{_render(node)} materializes set order; use "
                f"sorted(...) to fix the sequence"))
        # DET503: dict.popitem().
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "popitem" and not node.args:
            self._add("DET503", node, (
                f"{_render(node)} pops in insertion order, which is "
                f"rarely an invariant; pop an explicit key"))
        # DET504: heap pushes without an integer tie-break.
        self._check_heappush(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for idx, op in enumerate(node.ops):
            left, right = operands[idx], operands[idx + 1]
            if isinstance(op, (ast.Eq, ast.NotEq)) \
                    and (_is_id_call(left) or _is_id_call(right)):
                self._add("DET501", node, (
                    f"comparison on id() ({_render(node)}); compare "
                    f"a stable field instead"))
            if isinstance(op, (ast.In, ast.NotIn)) \
                    and _is_id_call(left):
                self._add("DET501", node, (
                    f"membership test on id() ({_render(node)}); "
                    f"key the container by a stable field instead"))
        self.generic_visit(node)

    # -- DET502: iteration over sets ----------------------------------

    def _check_iter(self, node: ast.AST, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._add("DET502", node, (
                f"iteration over a set ({_render(iter_node)}) has "
                f"hash-dependent order; iterate sorted(...) or a "
                f"sequence"))

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:
            self._check_iter(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set built from a set is unordered either way — the source's
        # iteration order cannot leak; no _check_iter here.
        self.generic_visit(node)

    # -- DET504: heappush tie-breaks ----------------------------------

    def _check_heappush(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in ("heappush", "heappushpop"):
            return
        if len(node.args) < 2:
            return
        item = node.args[1]
        if not isinstance(item, ast.Tuple) or len(item.elts) < 2:
            return
        if not _has_tie_break(item.elts[1:]):
            self._add("DET504", node, (
                f"heap key tuple {_render(item)} has no total-order "
                f"integer tie-break; equal primary keys fall through "
                f"to comparing payload objects (add a seq counter)"))


# -- Entry points ---------------------------------------------------------

def lint_source(source: str, relpath: str) -> List[Diagnostic]:
    """Lint one file's source; ``relpath`` selects the applicable rules."""
    rules = rules_for(relpath)
    if not rules:
        return []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(
            "DET500", Severity.ERROR, f"syntax error: {exc.msg}",
            location=f"{relpath}:{exc.lineno or 0}", source=relpath)]
    visitor = _DetVisitor(relpath, rules)
    visitor.visit(tree)
    visitor.diagnostics.sort(
        key=lambda d: (int(d.location.rsplit(":", 1)[-1] or 0), d.code))
    return visitor.diagnostics


def lint_path(path: Path, relpath: Optional[str] = None
              ) -> List[Diagnostic]:
    """Lint one file on disk."""
    rel = relpath if relpath is not None else path.name
    return lint_source(path.read_text(encoding="utf-8"), rel)


def lint_tree(root: Path) -> AnalysisReport:
    """Lint every ``*.py`` under ``root`` (typically ``src/repro``)."""
    root = Path(root)
    diags: List[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        diags.extend(lint_path(path, rel))
    return AnalysisReport.collect(diags, subject=str(root))
