"""Static verifier for compiled PNM ISA programs.

Combines three analyses into one :class:`AnalysisReport`:

* **Register dataflow** (:mod:`repro.analysis.dataflow`): use-before-def
  (PNM101), use-after-free (PNM102), free-of-unknown (PNM103), dead
  writes (PNM104), leaked registers (PNM105).
* **Register-file pressure**: peak live bytes per bank at the modelled
  FP16 width against the Table II budgets — 48 MB matrix, 14 MB vector,
  1 MB scalar (PNM106).
* **Device address space**: every memory window an instruction touches
  (DMA transfers, streamed weights/bias/LN parameters, aggregated KV
  reads) must be non-negative (PNM201), inside the device address space
  (PNM202), and 4-byte aligned (PNM203); DMA stores between two
  barriers must not overlap (PNM204).  When a :class:`ModelLayout` is
  supplied the checks become layout-aware: windows must stay inside the
  region they start in (PNM205) and stores may only target mutable
  regions — the per-layer KV caches and the I/O buffers (PNM206).
* **Weight dtype** (PNM3xx): an int8 matmul must name its per-channel
  scale tensor (PNM301), and a program must not mix int8 and fp16
  weight matmuls — the MAC datapath's weight precision is a
  program-level mode on the DFX-lineage design (PNM302).

A program **verifies clean** when the report has no ERRORs
(``report.ok``).  Warnings flag legal-but-suspicious constructs that
shipped timing templates intentionally contain — e.g.
``batched_timing_program`` re-stores each request's KV row at the same
fake address, which is exactly what PNM204 describes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.accelerator import isa

from .dataflow import (
    BANK_CAPACITY_BYTES,
    analyze_program,
    register_pressure,
)
from .diagnostics import AnalysisReport, Diagnostic, Severity

#: Functional device memory stores fp32 (timing charges FP16 at the
#: register file; the *address space* is laid out at 4 bytes/element).
DEVICE_BYTES_PER_ELEM = 4

#: Minimum DMA/stream alignment.  Device regions are cacheline-aligned;
#: element-granular sub-offsets (KV rows, position-embedding rows) are
#: always whole fp32 elements, so every legal address is 4-byte aligned.
ADDRESS_ALIGNMENT = 4

#: Default device address-space bound when neither a layout nor a
#: capacity is supplied: a 48-bit host-managed device-memory window.
#: Deliberately generous — timing-only fake layouts for the largest
#: MODEL_ZOO entries (OPT-175B, GPT-3 175B) span ~0.7 TB.
DEFAULT_ADDRESS_SPACE = 1 << 48

#: Region-name suffixes/names a DMA store may legally target.  Weights,
#: biases, LN parameters, and embedding tables are written once at model
#: load and are read-only to compiled programs.
_MUTABLE_SUFFIXES = ("kcache", "vcache")
_MUTABLE_NAMES = ("input_buffer", "output_buffer")


def _region_is_mutable(name: str) -> bool:
    return name.endswith(_MUTABLE_SUFFIXES) or name in _MUTABLE_NAMES


def _numel(shape: Tuple[int, ...]) -> int:
    n = 1
    for dim in shape:
        n *= dim
    return n


def memory_windows(instr) -> List[Tuple[int, int, str]]:
    """``(addr, nbytes, kind)`` windows an instruction touches.

    ``kind`` is ``"load"`` (device -> register / streamed operand) or
    ``"store"`` (register -> device).  Windows are in bytes at the
    functional fp32 width.
    """
    windows: List[Tuple[int, int, str]] = []
    b = DEVICE_BYTES_PER_ELEM
    if isinstance(instr, isa.DmaLoad):
        windows.append((instr.addr, _numel(instr.shape) * b, "load"))
    elif isinstance(instr, isa.DmaStore):
        nbytes = _numel(instr.shape) * b if instr.shape else 0
        windows.append((instr.addr, nbytes, "store"))
    elif isinstance(instr, isa.DmaGather):
        row = instr.row_elems * b
        top = (max(instr.indices) + 1) if instr.indices else 0
        windows.append((instr.table_addr, top * row, "load"))
    elif isinstance(instr, (isa.MpuMv, isa.MpuMmPea)):
        windows.append((instr.weight_addr, instr.k * instr.n * b, "load"))
        # Quantization side streams: per-channel scales and the fused
        # bias live at the functional fp32 width like everything else.
        if instr.scale_addr >= 0:
            windows.append((instr.scale_addr, instr.n * b, "load"))
        if instr.bias_addr >= 0:
            windows.append((instr.bias_addr, instr.n * b, "load"))
    elif isinstance(instr, isa.MpuMaskedMm):
        nbytes = instr.ctx * instr.heads * instr.head_dim * b
        windows.append((instr.k_addr, nbytes, "load"))
    elif isinstance(instr, isa.MpuAttnContext):
        nbytes = instr.ctx * instr.heads * instr.head_dim * b
        windows.append((instr.v_addr, nbytes, "load"))
    elif isinstance(instr, isa.MpuConv2d):
        nbytes = instr.out_ch * instr.in_ch * instr.kh * instr.kw * b
        windows.append((instr.weight_addr, nbytes, "load"))
    elif isinstance(instr, isa.VpuBias):
        windows.append((instr.bias_addr, instr.n * b, "load"))
    elif isinstance(instr, isa.VpuLayerNorm):
        windows.append((instr.gamma_addr, instr.n * b, "load"))
        windows.append((instr.beta_addr, instr.n * b, "load"))
    return windows


def _find_region(regions, addr: int):
    for region in regions:
        if region.addr <= addr < region.end:
            return region
    return None


def address_diagnostics(program, *, layout=None,
                        memory_capacity: Optional[int] = None
                        ) -> List[Diagnostic]:
    """PNM2xx: bounds, alignment, overlap, and layout-aware checks."""
    diags: List[Diagnostic] = []
    regions = list(layout.regions.values()) if layout is not None else []
    if memory_capacity is not None:
        bound = memory_capacity
    elif regions:
        bound = max(r.end for r in regions)
    else:
        bound = DEFAULT_ADDRESS_SPACE
    #: store windows seen since the last barrier: (index, addr, nbytes)
    stores: List[Tuple[int, int, int]] = []
    for idx, instr in enumerate(program):
        if isinstance(instr, isa.Barrier):
            stores.clear()
            continue
        for addr, nbytes, kind in memory_windows(instr):
            loc = f"program[{idx}]"
            op = instr.opcode
            if addr < 0:
                diags.append(Diagnostic(
                    "PNM201", Severity.ERROR,
                    f"negative device address {addr}",
                    location=loc, index=idx, source=op))
                continue
            if addr + nbytes > bound:
                diags.append(Diagnostic(
                    "PNM202", Severity.ERROR,
                    f"window [{addr:#x}, {addr + nbytes:#x}) exceeds the "
                    f"device address space ({bound:#x} bytes)",
                    location=loc, index=idx, source=op))
                continue
            if addr % ADDRESS_ALIGNMENT:
                diags.append(Diagnostic(
                    "PNM203", Severity.ERROR,
                    f"address {addr:#x} is not "
                    f"{ADDRESS_ALIGNMENT}-byte aligned",
                    location=loc, index=idx, source=op))
            if regions and nbytes > 0:
                region = _find_region(regions, addr)
                if region is None:
                    diags.append(Diagnostic(
                        "PNM205", Severity.ERROR,
                        f"window start {addr:#x} falls outside every "
                        f"layout region",
                        location=loc, index=idx, source=op))
                elif addr + nbytes > region.end:
                    diags.append(Diagnostic(
                        "PNM205", Severity.ERROR,
                        f"window [{addr:#x}, {addr + nbytes:#x}) crosses "
                        f"the end of region '{region.name}' "
                        f"({region.end:#x})",
                        location=loc, index=idx, source=op))
                elif kind == "store" and not _region_is_mutable(region.name):
                    diags.append(Diagnostic(
                        "PNM206", Severity.ERROR,
                        f"store into read-only region '{region.name}'",
                        location=loc, index=idx, source=op))
            if kind == "store" and nbytes > 0:
                for prev_idx, prev_addr, prev_bytes in stores:
                    if addr < prev_addr + prev_bytes \
                            and prev_addr < addr + nbytes:
                        diags.append(Diagnostic(
                            "PNM204", Severity.WARNING,
                            f"store window [{addr:#x}, "
                            f"{addr + nbytes:#x}) overlaps the store at "
                            f"program[{prev_idx}] with no intervening "
                            f"barrier",
                            location=loc, index=idx, source=op))
                        break
                stores.append((idx, addr, nbytes))
    return diags


def dtype_diagnostics(program) -> List[Diagnostic]:
    """PNM301/PNM302: weight-dtype consistency for int8 programs.

    * PNM301 — an int8 matmul without a per-channel scale tensor
      (``scale_addr < 0``): the executor cannot dequantize the int32
      accumulator and refuses the instruction at run time.
    * PNM302 — a single program mixing int8 and fp16 weight matmuls:
      the MAC datapath's weight precision is a program-level mode, so a
      compiler must emit a whole stage at one width.
    """
    diags: List[Diagnostic] = []
    seen_dtypes: Dict[str, int] = {}
    for idx, instr in enumerate(program):
        if not isinstance(instr, (isa.MpuMv, isa.MpuMmPea)):
            continue
        loc = f"program[{idx}]"
        if instr.dtype == "int8" and instr.scale_addr < 0:
            diags.append(Diagnostic(
                "PNM301", Severity.ERROR,
                "int8 matmul has no per-channel scale tensor "
                "(scale_addr < 0); the int32 accumulator cannot be "
                "dequantized",
                location=loc, index=idx, source=instr.opcode))
        if instr.dtype not in seen_dtypes:
            seen_dtypes[instr.dtype] = idx
            if len(seen_dtypes) == 2:
                first_dtype, first_idx = next(iter(seen_dtypes.items()))
                diags.append(Diagnostic(
                    "PNM302", Severity.ERROR,
                    f"program mixes weight dtypes: this {instr.dtype} "
                    f"matmul follows the {first_dtype} matmul at "
                    f"program[{first_idx}]",
                    location=loc, index=idx, source=instr.opcode))
    return diags


def dataflow_diagnostics(program) -> List[Diagnostic]:
    """PNM101-PNM105: register def/use/free violations."""
    facts = analyze_program(program)
    diags: List[Diagnostic] = []

    def emit(pairs: Iterable[Tuple[int, str]], code: str,
             severity: Severity, fmt: str) -> None:
        for idx, reg in pairs:
            diags.append(Diagnostic(
                code, severity, fmt.format(reg=reg),
                location=f"program[{idx}]", index=idx,
                source=program[idx].opcode))

    emit(facts.use_before_def, "PNM101", Severity.ERROR,
         "register {reg} read before any write")
    emit(facts.use_after_free, "PNM102", Severity.ERROR,
         "register {reg} accessed after FREE")
    emit(facts.bad_free, "PNM103", Severity.WARNING,
         "FREE of register {reg} which holds no live value")
    emit(facts.dead_writes, "PNM104", Severity.WARNING,
         "value written to {reg} is never read")
    for reg in facts.unfreed:
        last_def = facts.defs[reg][-1]
        diags.append(Diagnostic(
            "PNM105", Severity.WARNING,
            f"register {reg} is still live at program end (never freed)",
            location=f"program[{last_def}]", index=last_def,
            source=program[last_def].opcode))
    diags.sort(key=lambda d: (d.index if d.index is not None else -1,
                              d.code))
    return diags


def pressure_diagnostics(program,
                         budgets: Optional[Dict[str, int]] = None
                         ) -> List[Diagnostic]:
    """PNM106: peak register-file pressure against per-bank budgets."""
    budgets = budgets if budgets is not None else BANK_CAPACITY_BYTES
    report = register_pressure(program)
    diags: List[Diagnostic] = []
    for bank, peak in sorted(report.peak_bytes.items()):
        budget = budgets.get(bank)
        if budget is not None and peak > budget:
            idx = report.peak_index.get(bank)
            diags.append(Diagnostic(
                "PNM106", Severity.ERROR,
                f"peak {bank}-bank pressure {peak} B exceeds the "
                f"{budget} B register-file budget "
                f"({peak / budget:.2f}x)",
                location=f"program[{idx}]" if idx is not None else "",
                index=idx,
                source=program[idx].opcode if idx is not None else None))
    return diags


def verify_program(program, *, layout=None,
                   memory_capacity: Optional[int] = None,
                   budgets: Optional[Dict[str, int]] = None,
                   check_pressure: bool = True,
                   subject: str = "") -> AnalysisReport:
    """Run all static checks over a program; never raises on findings.

    Args:
        program: Any sequence of :class:`repro.accelerator.isa.Instruction`.
        layout: Optional :class:`ModelLayout` (real or fake) enabling the
            layout-aware region checks (PNM205/PNM206) and an exact
            address-space bound.
        memory_capacity: Optional explicit address-space bound in bytes;
            overrides the layout-derived bound.
        budgets: Per-bank register-file budgets (defaults to Table II).
        check_pressure: Disable to skip shape inference (cheapest mode).
        subject: Label for the report (e.g. ``"gen m=1 ctx=576"``).
    """
    diags: List[Diagnostic] = []
    diags.extend(dataflow_diagnostics(program))
    diags.extend(address_diagnostics(
        program, layout=layout, memory_capacity=memory_capacity))
    diags.extend(dtype_diagnostics(program))
    if check_pressure:
        diags.extend(pressure_diagnostics(program, budgets))
    return AnalysisReport.collect(diags, subject=subject)
