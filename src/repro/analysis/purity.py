"""Simulation-purity lint: AST rules pytest cannot express.

The simulator's headline guarantees — deterministic timing, seeded
randomness, observability that is bit-identical when disabled — are
*structural* properties of the source, not behaviours a test can pin
down for every future edit.  This module checks them statically:

* **PUR301** — no wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now``, ...) inside the timing-critical packages
  ``repro.perf``, ``repro.cxl``, and ``repro.appliance``.  Simulated
  time must come from the event clock, never the host.
* **PUR302** — no unseeded randomness: zero-argument
  ``default_rng()``, legacy global-state ``numpy.random.*`` calls, and
  stdlib ``random.*`` module calls are all banned outside
  ``repro.faults`` (whose seeded substreams are the sanctioned source).
* **PUR303** — no shared-state mutation inside observability-enabled
  guards (``if tracer.enabled:`` bodies, and code following an
  ``if not tracer.enabled: return`` early exit).  Such mutations make
  simulation state depend on whether tracing is on, breaking the
  bit-identical-when-off guarantee.
* **PUR304** — no float64 leakage in ``repro.llm.reference``: the
  reference kernels are float32 end-to-end so accelerator outputs can
  be compared bit-for-bit; an explicit ``np.float64``/``dtype=float``
  silently upcasts.

Rules are selected by a file's path relative to ``src/repro`` (see
:func:`rules_for`), so :func:`lint_source` can lint detached snippets
in tests by passing a representative relative path.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .diagnostics import AnalysisReport, Diagnostic, Severity

#: Packages (relative to ``src/repro``) where wall-clock reads are banned.
WALL_CLOCK_BANNED = ("perf", "cxl", "appliance")

#: Package exempt from the unseeded-RNG rule (it owns the seeded streams).
RNG_EXEMPT = ("faults",)

#: The float32-only module.
FLOAT32_ONLY = ("llm/reference.py",)

_WALL_CLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})
_WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: ``numpy.random`` attributes that do NOT touch the legacy global state.
_NP_RANDOM_SEEDED_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "bit_generator", "BitGenerator",
})

#: ``random`` module attributes that construct independent (seedable)
#: generators rather than using the hidden module-global one.
_STDLIB_RANDOM_OK = frozenset({"Random", "SystemRandom"})


def rules_for(relpath: str) -> Tuple[str, ...]:
    """Rule codes that apply to a file at ``relpath`` under src/repro."""
    rel = relpath.replace("\\", "/")
    rules = ["PUR303"]
    top = rel.split("/", 1)[0]
    if top in WALL_CLOCK_BANNED:
        rules.append("PUR301")
    if top not in RNG_EXEMPT:
        rules.append("PUR302")
    if rel in FLOAT32_ONLY:
        rules.append("PUR304")
    return tuple(rules)


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name rendering of an expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


class _Findings:
    def __init__(self, relpath: str, rules: Sequence[str]):
        self.relpath = relpath
        self.rules = frozenset(rules)
        self.diagnostics: List[Diagnostic] = []

    def add(self, code: str, node: ast.AST, message: str) -> None:
        if code not in self.rules:
            return
        line = getattr(node, "lineno", 0)
        self.diagnostics.append(Diagnostic(
            code, Severity.ERROR, message,
            location=f"{self.relpath}:{line}", source=self.relpath))


# -- PUR301 / PUR302 / PUR304: per-call and per-node checks ---------------

def _check_call(call: ast.Call, out: _Findings,
                time_names: frozenset) -> None:
    func = call.func
    name = _dotted(func)
    # PUR301: wall clock.
    if isinstance(func, ast.Attribute):
        base = _dotted(func.value)
        if base == "time" and func.attr in _WALL_CLOCK_TIME_FNS:
            out.add("PUR301", call,
                    f"wall-clock call {name}() in timing code "
                    f"(use the simulated clock)")
        elif func.attr in _WALL_CLOCK_DATETIME_FNS \
                and base.split(".")[-1] in ("datetime", "date"):
            out.add("PUR301", call,
                    f"wall-clock call {name}() in timing code "
                    f"(use the simulated clock)")
    elif isinstance(func, ast.Name) and func.id in time_names:
        out.add("PUR301", call,
                f"wall-clock call {name}() in timing code "
                f"(use the simulated clock)")
    # PUR302: unseeded randomness.
    is_default_rng = (isinstance(func, ast.Name)
                      and func.id == "default_rng") or \
                     (isinstance(func, ast.Attribute)
                      and func.attr == "default_rng")
    if is_default_rng and not call.args and not call.keywords:
        out.add("PUR302", call,
                "default_rng() without a seed draws OS entropy; "
                "derive a seed from repro.faults substreams")
    elif isinstance(func, ast.Attribute):
        base = _dotted(func.value)
        if base in ("np.random", "numpy.random") \
                and func.attr not in _NP_RANDOM_SEEDED_OK:
            out.add("PUR302", call,
                    f"legacy global-state RNG call {name}(); use a "
                    f"seeded Generator")
        elif base == "random" and func.attr not in _STDLIB_RANDOM_OK:
            out.add("PUR302", call,
                    f"stdlib module-global RNG call {name}(); use a "
                    f"seeded random.Random or numpy Generator")


def _check_float64(node: ast.AST, out: _Findings) -> None:
    if isinstance(node, ast.Attribute) and node.attr == "float64":
        out.add("PUR304", node,
                f"{_dotted(node)} in the float32-only reference kernels")
    elif isinstance(node, ast.Constant) and node.value == "float64":
        out.add("PUR304", node,
                "dtype string 'float64' in the float32-only reference "
                "kernels")
    elif isinstance(node, ast.keyword) and node.arg == "dtype" \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "float":
        out.add("PUR304", node.value,
                "dtype=float is float64 in numpy; use np.float32")


# -- PUR303: mutation inside obs-enabled guards ---------------------------

def _is_enabled_attr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "enabled":
        base = _dotted(node.value).lower()
        return "tracer" in base or "metrics" in base
    return False


def _is_enabled_test(node: ast.AST) -> bool:
    """``X.enabled`` or a boolean combination of enabled attributes."""
    if _is_enabled_attr(node):
        return True
    if isinstance(node, ast.BoolOp):
        return all(_is_enabled_test(v) for v in node.values)
    return False


def _is_not_enabled_test(node: ast.AST) -> bool:
    return isinstance(node, ast.UnaryOp) \
        and isinstance(node.op, ast.Not) \
        and _is_enabled_test(node.operand)


def _is_bare_return(body: Sequence[ast.stmt]) -> bool:
    return len(body) == 1 and isinstance(body[0], ast.Return) \
        and (body[0].value is None
             or (isinstance(body[0].value, ast.Constant)
                 and body[0].value.value is None))


def _mutations(stmt: ast.stmt) -> List[Tuple[ast.AST, str]]:
    """Shared-state mutations in one (possibly compound) statement.

    Does not descend into nested function/class definitions — they do
    not execute inside the guard.
    """
    found: List[Tuple[ast.AST, str]] = []

    def walk(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    found.append((node, _dotted(target) or "subscript"))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target = node.target
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                found.append((node, _dotted(target) or "subscript"))
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            found.append((node, ", ".join(node.names)))
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(stmt)
    return found


def _scan_guarded(stmts: Sequence[ast.stmt], guarded: bool,
                  out: _Findings) -> None:
    """Recursive statement-list scan tracking the obs-guard state."""
    for pos, stmt in enumerate(stmts):
        if isinstance(stmt, ast.If):
            if _is_not_enabled_test(stmt.test) \
                    and _is_bare_return(stmt.body):
                # `if not tracer.enabled: return` — the remainder of
                # this block only runs with observability on.
                _scan_guarded(stmt.orelse, guarded, out)
                _scan_guarded(stmts[pos + 1:], True, out)
                return
            if _is_enabled_test(stmt.test):
                _scan_guarded(stmt.body, True, out)
                _scan_guarded(stmt.orelse, guarded, out)
                continue
        if guarded:
            for node, what in _mutations(stmt):
                out.add(
                    "PUR303", node,
                    f"mutation of shared state ({what}) inside an "
                    f"observability-enabled guard breaks the "
                    f"bit-identical-when-off guarantee")
            continue
        # Unguarded: recurse into compound statements' bodies.
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            _scan_guarded(stmt.body, False, out)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While,
                               ast.If)):
            _scan_guarded(stmt.body, guarded, out)
            _scan_guarded(stmt.orelse, guarded, out)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            _scan_guarded(stmt.body, guarded, out)
        elif isinstance(stmt, ast.Try):
            _scan_guarded(stmt.body, guarded, out)
            for handler in stmt.handlers:
                _scan_guarded(handler.body, guarded, out)
            _scan_guarded(stmt.orelse, guarded, out)
            _scan_guarded(stmt.finalbody, guarded, out)


# -- Entry points ---------------------------------------------------------

def lint_source(source: str, relpath: str) -> List[Diagnostic]:
    """Lint one file's source; ``relpath`` selects the applicable rules."""
    rules = rules_for(relpath)
    out = _Findings(relpath, rules)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        out.diagnostics.append(Diagnostic(
            "PUR300", Severity.ERROR, f"syntax error: {exc.msg}",
            location=f"{relpath}:{exc.lineno or 0}", source=relpath))
        return out.diagnostics

    time_names = frozenset(
        alias.asname or alias.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ImportFrom) and node.module == "time"
        for alias in node.names
        if alias.name in _WALL_CLOCK_TIME_FNS)

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            _check_call(node, out, time_names)
        _check_float64(node, out)
    _scan_guarded(tree.body, False, out)
    out.diagnostics.sort(
        key=lambda d: (int(d.location.rsplit(":", 1)[-1] or 0), d.code))
    return out.diagnostics


def lint_path(path: Path, relpath: Optional[str] = None
              ) -> List[Diagnostic]:
    """Lint one file on disk."""
    rel = relpath if relpath is not None else path.name
    return lint_source(path.read_text(encoding="utf-8"), rel)


def lint_tree(root: Path) -> AnalysisReport:
    """Lint every ``*.py`` under ``root`` (typically ``src/repro``)."""
    root = Path(root)
    diags: List[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        diags.extend(lint_path(path, rel))
    return AnalysisReport.collect(diags, subject=str(root))
