"""Register dataflow analysis over compiled accelerator programs.

A single forward pass over a :data:`repro.accelerator.isa.Program`
recovers the register-level facts the verifier's diagnostics are built
from: def/use/free sites per register, RAW/WAR/WAW hazard edges (the
dependencies the timing simulator serializes on), and the *violations*
— reads before any write, accesses after ``FREE``, writes that are
never observed.  A second pass propagates register shapes (the same
rules the timing simulator's shape tracker applies) to produce a
liveness/pressure report: peak live bytes per register bank at the
modelled FP16 datatype, which is what the 63 MB register file of
Table II actually bounds.

The pass is purely syntactic — it never executes instructions — so it
runs on timing-only templates (fake layouts, placeholder tokens) just
as well as on functional programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.accelerator import isa
from repro.accelerator.registers import (
    MATRIX_RF_BYTES,
    SCALAR_RF_BYTES,
    VECTOR_RF_BYTES,
)

#: Modelled bytes per register element: the accelerator datatype is
#: FP16 (functional storage is fp32; ``RegisterFileState`` charges
#: ``nbytes * logical_scale`` — the same 2 bytes/element).
LOGICAL_BYTES_PER_ELEM = 2

#: Table II register-file budgets, keyed by bank letter.
BANK_CAPACITY_BYTES: Dict[str, int] = {
    "m": MATRIX_RF_BYTES,
    "v": VECTOR_RF_BYTES,
    "s": SCALAR_RF_BYTES,
}


@dataclass(frozen=True)
class Access:
    """One register access: ``kind`` is ``read``, ``write``, or ``free``."""

    index: int
    reg: str
    kind: str


@dataclass
class DataflowFacts:
    """Everything the forward dataflow pass learns about a program.

    Violation lists hold ``(instruction index, register)`` pairs; the
    hazard-edge counters count the dependency edges an in-order
    scheduler must respect (they are facts, not defects).
    """

    defs: Dict[str, List[int]] = field(default_factory=dict)
    uses: Dict[str, List[int]] = field(default_factory=dict)
    frees: Dict[str, List[int]] = field(default_factory=dict)
    use_before_def: List[Tuple[int, str]] = field(default_factory=list)
    use_after_free: List[Tuple[int, str]] = field(default_factory=list)
    bad_free: List[Tuple[int, str]] = field(default_factory=list)
    dead_writes: List[Tuple[int, str]] = field(default_factory=list)
    unfreed: List[str] = field(default_factory=list)
    raw_edges: int = 0
    war_edges: int = 0
    waw_edges: int = 0
    live_after: List[int] = field(default_factory=list)

    @property
    def peak_live_registers(self) -> int:
        return max(self.live_after, default=0)


def analyze_program(program) -> DataflowFacts:
    """Forward dataflow pass: def/use chains, hazards, and violations."""
    facts = DataflowFacts()
    #: reg -> (last write index, observed-since-write, freed)
    state: Dict[str, Tuple[int, bool]] = {}
    freed: Dict[str, int] = {}
    for idx, instr in enumerate(program):
        is_free = isinstance(instr, isa.Free)
        reads = instr.regs if is_free else instr.reads()
        if not is_free:
            for reg in reads:
                facts.uses.setdefault(reg, []).append(idx)
                if reg in state:
                    write_idx, _ = state[reg]
                    state[reg] = (write_idx, True)
                    facts.raw_edges += 1
                elif reg in freed:
                    facts.use_after_free.append((idx, reg))
                else:
                    facts.use_before_def.append((idx, reg))
            for reg in instr.writes():
                facts.defs.setdefault(reg, []).append(idx)
                if reg in state:
                    write_idx, observed = state[reg]
                    if observed:
                        facts.war_edges += 1
                    else:
                        facts.waw_edges += 1
                        facts.dead_writes.append((write_idx, reg))
                elif reg in freed:
                    facts.use_after_free.append((idx, reg))
                    freed.pop(reg)
                state[reg] = (idx, False)
        else:
            for reg in instr.regs:
                facts.frees.setdefault(reg, []).append(idx)
                if reg in state:
                    write_idx, observed = state.pop(reg)
                    if not observed:
                        facts.dead_writes.append((write_idx, reg))
                    freed[reg] = idx
                else:
                    facts.bad_free.append((idx, reg))
                    freed[reg] = idx
        facts.live_after.append(len(state))
    for reg, (write_idx, observed) in state.items():
        facts.unfreed.append(reg)
        if not observed:
            facts.dead_writes.append((write_idx, reg))
    facts.unfreed.sort()
    facts.dead_writes.sort()
    return facts


def infer_shapes(program) -> List[Optional[Tuple[int, ...]]]:
    """Output shape written by each instruction (None when unknowable).

    Mirrors the timing simulator's shape tracker, but tolerates unknown
    inputs instead of raising — hand-built fragments analyze fine.
    """
    shapes: Dict[str, Tuple[int, ...]] = {}
    out: List[Optional[Tuple[int, ...]]] = []

    def get(reg: str) -> Optional[Tuple[int, ...]]:
        return shapes.get(reg)

    for instr in program:
        shape: Optional[Tuple[int, ...]] = None
        if isinstance(instr, isa.DmaLoad):
            shape = instr.shape
        elif isinstance(instr, isa.DmaGather):
            shape = (len(instr.indices), instr.row_elems)
        elif isinstance(instr, isa.MpuMmPea):
            shape = (instr.m, instr.n)
            if isinstance(instr, isa.MpuMmRedumaxPea):
                shapes[instr.rowmax_dst] = (instr.m, 1)
        elif isinstance(instr, isa.MpuMv):
            shape = (1, instr.n)
        elif isinstance(instr, isa.MpuMaskedMm):
            shape = (instr.heads, instr.m, instr.ctx)
            if instr.rowmax_dst:
                shapes[instr.rowmax_dst] = (instr.heads, instr.m, 1)
        elif isinstance(instr, isa.MpuAttnContext):
            shape = (instr.m, instr.heads * instr.head_dim)
        elif isinstance(instr, isa.MpuConv2d):
            oh, ow = instr.out_hw
            shape = (instr.out_ch, oh, ow)
        elif isinstance(instr, isa.MpuTranspose):
            src = get(instr.src)
            shape = tuple(reversed(src)) if src is not None else None
        elif isinstance(instr, (isa.VpuAdd, isa.VpuMul)):
            shape = get(instr.a)
        elif isinstance(instr, (isa.VpuScale, isa.VpuGelu, isa.VpuSoftmax,
                                isa.VpuBias, isa.VpuLayerNorm)):
            shape = get(instr.src)
        elif isinstance(instr, isa.VpuSlice):
            src = get(instr.src)
            shape = src[:-1] + (instr.stop - instr.start,) \
                if src is not None else None
        elif isinstance(instr, isa.VpuRow):
            src = get(instr.src)
            shape = (1,) + src[1:] if src is not None else None
        elif isinstance(instr, isa.VpuArgmax):
            shape = (1,)
        elif isinstance(instr, isa.Free):
            for reg in instr.regs:
                shapes.pop(reg, None)
        if shape is not None and instr.writes():
            shapes[instr.writes()[0]] = shape
        out.append(shape)
    return out


def _numel(shape: Tuple[int, ...]) -> int:
    n = 1
    for dim in shape:
        n *= dim
    return n


@dataclass
class PressureReport:
    """Peak register-file pressure of a program, per bank.

    ``peak_bytes`` is at the modelled FP16 width; ``peak_index`` is the
    instruction index where each bank's peak occurred.  Registers whose
    shape could not be inferred contribute zero bytes and are listed in
    ``unknown_shape_regs`` so callers know the bound is partial.
    """

    peak_bytes: Dict[str, int] = field(default_factory=dict)
    peak_index: Dict[str, int] = field(default_factory=dict)
    peak_live_registers: int = 0
    unknown_shape_regs: Tuple[str, ...] = ()

    def utilization(self, bank: str,
                    capacity: Optional[int] = None) -> float:
        cap = capacity if capacity is not None \
            else BANK_CAPACITY_BYTES[bank]
        return self.peak_bytes.get(bank, 0) / cap if cap else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "peak_bytes": dict(self.peak_bytes),
            "peak_index": dict(self.peak_index),
            "peak_live_registers": self.peak_live_registers,
            "unknown_shape_regs": list(self.unknown_shape_regs),
            "utilization": {bank: self.utilization(bank)
                            for bank in BANK_CAPACITY_BYTES},
        }


def register_pressure(program,
                      bytes_per_elem: int = LOGICAL_BYTES_PER_ELEM
                      ) -> PressureReport:
    """Track live register bytes per bank through the program.

    Most registers are charged at ``bytes_per_elem`` (the modelled FP16
    width).  The destination of an int8 matmul is the exception: the
    PE array accumulates at int32, so those outputs occupy 4 bytes per
    element until freed or overwritten.
    """
    shapes = infer_shapes(program)
    live_bytes: Dict[str, int] = {"m": 0, "v": 0, "s": 0}
    reg_bytes: Dict[str, int] = {}
    peak: Dict[str, int] = {"m": 0, "v": 0, "s": 0}
    peak_idx: Dict[str, int] = {}
    unknown: List[str] = []
    live = 0
    peak_live = 0
    for idx, instr in enumerate(program):
        if isinstance(instr, isa.Free):
            for reg in instr.regs:
                nbytes = reg_bytes.pop(reg, None)
                if nbytes is not None:
                    live_bytes[reg[0]] -= nbytes
                    live -= 1
            continue
        writes = instr.writes()
        if not writes:
            continue
        shape = shapes[idx]
        elem_bytes = bytes_per_elem
        if isinstance(instr, (isa.MpuMv, isa.MpuMmPea)) \
                and instr.dtype == "int8":
            elem_bytes = 4  # int32 accumulator before dequant

        for order, reg in enumerate(writes):
            bank = reg[0] if reg[:1] in live_bytes else None
            if bank is None:
                continue
            if order == 0:
                reg_shape = shape
            else:
                # Secondary outputs (REDUMAX row maxima) were recorded
                # by infer_shapes; re-deriving here keeps one source.
                reg_shape = None
            if order == 0 and reg_shape is None:
                if reg not in reg_bytes:
                    unknown.append(reg)
            nbytes = (_numel(reg_shape) * elem_bytes
                      if reg_shape is not None else 0)
            if order > 0:
                # rowmax-style secondary destination: m (or heads*m)
                # elements — small; approximate from the primary shape.
                nbytes = (shape[0] * elem_bytes
                          if shape else elem_bytes)
            old = reg_bytes.get(reg)
            if old is None:
                live += 1
            live_bytes[bank] += nbytes - (old or 0)
            reg_bytes[reg] = nbytes
            if live_bytes[bank] > peak[bank]:
                peak[bank] = live_bytes[bank]
                peak_idx[bank] = idx
        peak_live = max(peak_live, live)
    return PressureReport(
        peak_bytes={b: n for b, n in peak.items() if n},
        peak_index=peak_idx,
        peak_live_registers=peak_live,
        unknown_shape_regs=tuple(sorted(set(unknown))))
