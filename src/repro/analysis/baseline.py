"""Checked-in suppression baseline for the static-analysis suite.

A blocking CI job must land with zero noise, and a lint worth running
occasionally flags code that is *deliberately* written the way it is
(an identity-keyed memo whose values pin their keys alive; an f-string
``as_dict`` key enumerating a fixed enum).  The baseline file records
each such exception explicitly — code, file, the exact source line,
and a human justification — so suppressions are reviewable diffs, not
inline pragma litter.

Matching is by ``(code, path, stripped line text)``, not line number:
moving a line does not invalidate its entry, while *editing* it does —
an edited line must re-earn its suppression.  Entries that no longer
match anything are reported as **stale** and fail the run: a baseline
only shrinks by deleting the entry alongside the fix.

File format (JSON, checked in at ``tools/static_analysis_baseline.json``)::

    {"version": 1,
     "entries": [{"code": "DET501",
                  "path": "accelerator/isa.py",
                  "line": "_VALIDATED[id(program)] = program",
                  "reason": "identity memo; values pin their keys"}]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

from .diagnostics import AnalysisReport, Diagnostic


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed, individually justified diagnostic."""

    code: str
    path: str
    line: str
    reason: str

    def __post_init__(self) -> None:
        if not self.reason.strip():
            raise ConfigurationError(
                f"baseline entry {self.code} at {self.path} has no "
                f"justification; every suppression must say why")

    def as_dict(self) -> Dict[str, str]:
        return {"code": self.code, "path": self.path,
                "line": self.line, "reason": self.reason}


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to an analysis report."""

    report: AnalysisReport
    suppressed: Tuple[Diagnostic, ...] = ()
    stale: Tuple[BaselineEntry, ...] = ()

    @property
    def ok(self) -> bool:
        """Clean after suppression, and no stale entries."""
        return self.report.clean and not self.stale

    def as_dict(self) -> Dict[str, object]:
        out = self.report.as_dict()
        out["suppressed"] = [d.as_dict() for d in self.suppressed]
        out["stale_baseline"] = [e.as_dict() for e in self.stale]
        out["ok"] = self.report.ok and not self.stale
        out["clean"] = self.ok
        return out


class Baseline:
    """A loaded set of suppression entries, applied against a tree."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()):
        self.entries = tuple(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load and validate a baseline file."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read baseline {path}: {exc}")
        if not isinstance(data, dict) or data.get("version") != 1:
            raise ConfigurationError(
                f"baseline {path} must be a version-1 object")
        entries = []
        for raw in data.get("entries", ()):
            missing = {"code", "path", "line", "reason"} - set(raw)
            if missing:
                raise ConfigurationError(
                    f"baseline entry {raw!r} missing {sorted(missing)}")
            entries.append(BaselineEntry(
                code=raw["code"], path=raw["path"],
                line=raw["line"], reason=raw["reason"]))
        return cls(entries)

    def apply(self, report: AnalysisReport, root: Path
              ) -> BaselineResult:
        """Partition a report into kept and suppressed diagnostics.

        ``root`` is the linted tree root: diagnostic locations are
        relative to it, and the matched source line is read from disk
        so an edited line no longer matches its stale entry.
        """
        root = Path(root)
        line_cache: Dict[str, List[str]] = {}

        def source_line(relpath: str, lineno: int) -> Optional[str]:
            lines = line_cache.get(relpath)
            if lines is None:
                try:
                    lines = (root / relpath).read_text(
                        encoding="utf-8").splitlines()
                except OSError:
                    lines = []
                line_cache[relpath] = lines
            if 1 <= lineno <= len(lines):
                return lines[lineno - 1].strip()
            return None

        kept: List[Diagnostic] = []
        suppressed: List[Diagnostic] = []
        used = [False] * len(self.entries)
        for diag in report.diagnostics:
            relpath, _, lineno_text = diag.location.rpartition(":")
            try:
                lineno = int(lineno_text)
            except ValueError:
                relpath, lineno = diag.location, 0
            text = source_line(relpath, lineno)
            match = None
            for idx, entry in enumerate(self.entries):
                if entry.code == diag.code and entry.path == relpath \
                        and text is not None \
                        and entry.line.strip() == text:
                    match = idx
                    break
            if match is None:
                kept.append(diag)
            else:
                used[match] = True
                suppressed.append(diag)
        stale = tuple(entry for idx, entry in enumerate(self.entries)
                      if not used[idx])
        return BaselineResult(
            report=AnalysisReport.collect(kept, subject=report.subject),
            suppressed=tuple(suppressed), stale=stale)
