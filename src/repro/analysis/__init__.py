"""Static analysis for the CXL-PNM simulation stack.

Two prongs, one diagnostic model:

* :mod:`repro.analysis.verifier` + :mod:`repro.analysis.dataflow` — a
  static verifier for compiled PNM ISA programs: register dataflow
  (hazards, use-before-def, dead writes), register-file pressure
  against the Table II budgets, and device address-space checks
  (bounds, alignment, DMA overlap, layout-aware region rules).
* the source-tree lint suite (:mod:`repro.analysis.suite`) — four AST
  passes over ``src/repro``: simulation purity
  (:mod:`repro.analysis.purity`, PUR3xx), dimensional/unit discipline
  inferred from naming conventions (:mod:`repro.analysis.units_lint`,
  UNIT4xx), determinism against order-sensitivity bug classes
  (:mod:`repro.analysis.determinism`, DET5xx), and the cross-model
  step-timer contract checker (:mod:`repro.analysis.contracts`,
  CON6xx), with deliberate exceptions recorded in a checked-in
  suppression baseline (:mod:`repro.analysis.baseline`).

Both report :class:`repro.analysis.diagnostics.Diagnostic` values in an
:class:`repro.analysis.diagnostics.AnalysisReport`; ``report.ok`` means
no errors ("verifies clean"), ``report.clean`` means no findings at
all.  Entry points: ``repro lint`` (tree suite) and ``repro
lint-program`` (program verifier) on the CLI, the opt-in
``verify_static=True`` hook on :class:`repro.accelerator.compiler.ProgramCache`,
and ``tools/static_checks.py`` for the suite in CI.
"""

from .baseline import Baseline, BaselineEntry, BaselineResult
from .dataflow import (
    BANK_CAPACITY_BYTES,
    DataflowFacts,
    PressureReport,
    analyze_program,
    infer_shapes,
    register_pressure,
)
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .purity import lint_path, lint_source, lint_tree, rules_for
from .suite import PASSES, pass_counts, render_result, resolve_passes, run_suite
from .verifier import (
    DEFAULT_ADDRESS_SPACE,
    address_diagnostics,
    dataflow_diagnostics,
    dtype_diagnostics,
    memory_windows,
    pressure_diagnostics,
    verify_program,
)

__all__ = [
    "AnalysisReport",
    "BANK_CAPACITY_BYTES",
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "DEFAULT_ADDRESS_SPACE",
    "DataflowFacts",
    "Diagnostic",
    "PASSES",
    "PressureReport",
    "Severity",
    "address_diagnostics",
    "analyze_program",
    "dataflow_diagnostics",
    "dtype_diagnostics",
    "infer_shapes",
    "lint_path",
    "lint_source",
    "lint_tree",
    "memory_windows",
    "pass_counts",
    "pressure_diagnostics",
    "register_pressure",
    "render_result",
    "resolve_passes",
    "rules_for",
    "run_suite",
    "verify_program",
]
