"""Static analysis for the CXL-PNM simulation stack.

Two prongs, one diagnostic model:

* :mod:`repro.analysis.verifier` + :mod:`repro.analysis.dataflow` — a
  static verifier for compiled PNM ISA programs: register dataflow
  (hazards, use-before-def, dead writes), register-file pressure
  against the Table II budgets, and device address-space checks
  (bounds, alignment, DMA overlap, layout-aware region rules).
* :mod:`repro.analysis.purity` — an AST lint enforcing simulation
  purity across the source tree: no wall-clock in timing code, no
  unseeded RNG, no state mutation inside observability guards, no
  float64 in the float32-only reference kernels.

Both report :class:`repro.analysis.diagnostics.Diagnostic` values in an
:class:`repro.analysis.diagnostics.AnalysisReport`; ``report.ok`` means
no errors ("verifies clean"), ``report.clean`` means no findings at
all.  Entry points: ``repro lint-program`` (CLI), the opt-in
``verify_static=True`` hook on :class:`repro.accelerator.compiler.ProgramCache`,
and ``tools/static_checks.py`` for the purity lint in CI.
"""

from .dataflow import (
    BANK_CAPACITY_BYTES,
    DataflowFacts,
    PressureReport,
    analyze_program,
    infer_shapes,
    register_pressure,
)
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .purity import lint_path, lint_source, lint_tree, rules_for
from .verifier import (
    DEFAULT_ADDRESS_SPACE,
    address_diagnostics,
    dataflow_diagnostics,
    dtype_diagnostics,
    memory_windows,
    pressure_diagnostics,
    verify_program,
)

__all__ = [
    "AnalysisReport",
    "BANK_CAPACITY_BYTES",
    "DEFAULT_ADDRESS_SPACE",
    "DataflowFacts",
    "Diagnostic",
    "PressureReport",
    "Severity",
    "address_diagnostics",
    "analyze_program",
    "dataflow_diagnostics",
    "dtype_diagnostics",
    "infer_shapes",
    "lint_path",
    "lint_source",
    "lint_tree",
    "memory_windows",
    "pressure_diagnostics",
    "register_pressure",
    "rules_for",
    "verify_program",
]
