"""Dimensional lint: unit discipline inferred from naming conventions.

The library's unit contract is written down once (``repro.units``: "all
bandwidths are bytes/second, all capacities bytes, all times seconds")
and carried everywhere else by *names* — ``latency_s``, ``mem_bytes``,
``goodput_tokens_per_s``.  Nothing used to check that the names tell
the truth.  This pass infers a physical dimension for every suffixed
name and flags the three ways the convention silently breaks:

* **UNIT401** — mixed-dimension arithmetic: adding, subtracting, or
  comparing two expressions whose inferred dimensions differ
  (``queue_s + mem_bytes``; ``wait_s + wait_ns`` without a
  ``NANOSECOND`` conversion factor).
* **UNIT402** — unit-dropping assignment/return: a suffixed name (or a
  function whose *name* carries a suffix) receives an expression of a
  different inferred dimension (``total_s = op.total_bytes``; ``def
  decode_step_s(...): return self.mem_bytes``).
* **UNIT403** — bare power-of-ten (or power-of-two) magnitude literals
  (``1e9``, ``10**9``, ``2**30``) in the timing/cost packages
  ``repro.perf``, ``repro.tco``, and ``repro.cxl``, which must spell
  the :mod:`repro.units` constant they mean (``GB``, ``GHZ``,
  ``NANOSECOND``, ...) so seconds/bytes/hertz stay distinguishable.

Inference is deliberately conservative: multiplication and division
erase the inferred dimension (a conversion factor legitimately changes
it), and a finding requires *both* sides to carry a confidently
inferred, conflicting dimension — so the pass stays silent on
dimensionless code instead of guessing.  ``UNIT400`` reports inputs
that do not parse.  Rule selection follows the file's path relative to
``src/repro`` (:func:`rules_for`), mirroring
:mod:`repro.analysis.purity`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .diagnostics import AnalysisReport, Diagnostic, Severity

#: Packages (relative to ``src/repro``) where bare magnitude literals
#: are banned (UNIT403): the packages whose numbers feed the paper's
#: latency/bandwidth/TCO claims.
MAGNITUDE_LITERAL_BANNED = ("perf", "tco", "cxl")

#: Name-suffix token -> dimension.  Scaled variants of one base
#: dimension get distinct tags (``time[s]`` vs ``time[ns]``) so mixing
#: scales without a conversion factor is itself a finding.
SUFFIX_DIMENSIONS = {
    "s": "time[s]",
    "ns": "time[ns]",
    "us": "time[us]",
    "ms": "time[ms]",
    "bytes": "bytes",
    "byte": "bytes",
    "kb": "bytes[kb]",
    "mb": "bytes[mb]",
    "gb": "bytes[gb]",
    "tb": "bytes[tb]",
    "kib": "bytes[kib]",
    "mib": "bytes[mib]",
    "gib": "bytes[gib]",
    "tib": "bytes[tib]",
    "tokens": "tokens",
    "token": "tokens",
    "hz": "frequency[hz]",
    "mhz": "frequency[mhz]",
    "ghz": "frequency[ghz]",
    "j": "energy[j]",
    "joule": "energy[j]",
    "joules": "energy[j]",
    "kwh": "energy[kwh]",
    "w": "power[w]",
    "watts": "power[w]",
    "kw": "power[kw]",
    "usd": "money[usd]",
    "flops": "flops",
    "day": "time[day]",
    "kg": "mass[kg]",
}

#: Whole names that carry a dimension without an underscore-separated
#: suffix (single-letter tokens like a bare ``s`` or loop-variable
#: ``j`` never do — see :func:`dimension_of_name`).
WHOLE_NAME_DIMENSIONS = {
    "seconds": "time[s]",
    "nanoseconds": "time[ns]",
    "joules": "energy[j]",
    "watts": "power[w]",
    "nbytes": "bytes",
    "tokens": "tokens",
}

#: Magnitude literals UNIT403 bans, with the units.py spelling(s) that
#: disambiguate what the number means.
_MAGNITUDES = {
    1e3: "KILO / KB / Kbps / KILOWATT",
    1e6: "MEGA / MB / Mbps / MHZ",
    1e9: "GIGA / GB / Gbps / GHZ",
    1e12: "TERA / TB",
    1e-3: "MILLISECOND",
    1e-6: "MICROSECOND",
    1e-9: "NANOSECOND",
    float(2 ** 10): "KiB",
    float(2 ** 20): "MiB",
    float(2 ** 30): "GiB",
    float(2 ** 40): "TiB",
}

#: Calls that pass their argument's dimension through unchanged.
_TRANSPARENT_CALLS = frozenset({"float", "int", "abs", "round"})

#: Calls whose result carries the common dimension of all arguments.
_REDUCING_CALLS = frozenset({"min", "max", "maximum", "minimum"})


def dimension_of_name(name: str) -> Optional[str]:
    """Infer the dimension a (possibly dotted-last-segment) name claims.

    ``decode_step_s`` -> ``time[s]``; ``goodput_tokens_per_s`` ->
    ``tokens/s`` (a rate); ``batch`` -> ``None``.  Single-token names
    only match via :data:`WHOLE_NAME_DIMENSIONS`, so a loop variable
    ``j`` or a bare ``s`` never acquires a dimension by accident.
    """
    lowered = name.lower()
    if lowered in WHOLE_NAME_DIMENSIONS:
        return WHOLE_NAME_DIMENSIONS[lowered]
    tokens = lowered.split("_")
    if len(tokens) < 2:
        return None
    # Rates: ``<num>_per_<den>`` (``tokens_per_s``, ``usd_per_kwh``).
    if len(tokens) >= 3 and tokens[-2] == "per":
        den = SUFFIX_DIMENSIONS.get(tokens[-1])
        num = SUFFIX_DIMENSIONS.get(tokens[-3])
        if den is not None:
            return f"{num or '?'}/{den}"
        return None
    return SUFFIX_DIMENSIONS.get(tokens[-1])


def _last_segment(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def infer_dimension(node: ast.AST) -> Optional[str]:
    """Best-effort dimension of an expression, ``None`` when unsure.

    Multiplication/division erase the dimension (conversion factors are
    exactly the multiplies we must not flag); addition/subtraction and
    min/max-style reductions preserve a dimension only when every
    operand agrees.
    """
    if isinstance(node, (ast.Name, ast.Attribute)):
        segment = _last_segment(node)
        return dimension_of_name(segment) if segment else None
    if isinstance(node, ast.Subscript):
        return infer_dimension(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.UAdd, ast.USub)):
        return infer_dimension(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)):
        left = infer_dimension(node.left)
        right = infer_dimension(node.right)
        return left if left is not None and left == right else None
    if isinstance(node, ast.IfExp):
        body = infer_dimension(node.body)
        orelse = infer_dimension(node.orelse)
        return body if body is not None and body == orelse else None
    if isinstance(node, ast.Call):
        name = _last_segment(node.func)
        if name is None:
            return None
        if name in _TRANSPARENT_CALLS and len(node.args) == 1:
            return infer_dimension(node.args[0])
        if name in _REDUCING_CALLS and node.args and not node.keywords:
            dims = [infer_dimension(arg) for arg in node.args]
            if dims[0] is not None and all(d == dims[0] for d in dims):
                return dims[0]
            return None
        return dimension_of_name(name)
    return None


def rules_for(relpath: str) -> Tuple[str, ...]:
    """UNIT rule codes that apply to a file at ``relpath``."""
    rel = relpath.replace("\\", "/")
    rules = ["UNIT401", "UNIT402"]
    top = rel.split("/", 1)[0]
    if top in MAGNITUDE_LITERAL_BANNED:
        rules.append("UNIT403")
    return tuple(rules)


def _render(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


def _mix_message(left: ast.AST, right: ast.AST, left_dim: str,
                 right_dim: str, what: str) -> str:
    hint = ""
    if left_dim.startswith("time[") and right_dim.startswith("time["):
        hint = " (convert through a units.py factor such as NANOSECOND)"
    return (f"{what} mixes dimensions {left_dim} and {right_dim}: "
            f"{_render(left)} vs {_render(right)}{hint}")


class _UnitVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str, rules: Sequence[str]):
        self.relpath = relpath
        self.rules = frozenset(rules)
        self.diagnostics: List[Diagnostic] = []
        self._function_stack: List[str] = []

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        if code not in self.rules:
            return
        line = getattr(node, "lineno", 0)
        self.diagnostics.append(Diagnostic(
            code, Severity.ERROR, message,
            location=f"{self.relpath}:{line}", source=self.relpath))

    # -- UNIT401: mixed-dimension arithmetic and comparisons ----------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = infer_dimension(node.left)
            right = infer_dimension(node.right)
            if left is not None and right is not None and left != right:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self._add("UNIT401", node, _mix_message(
                    node.left, node.right, left, right,
                    f"'{op}' arithmetic"))
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for idx, op in enumerate(node.ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            left, right = operands[idx], operands[idx + 1]
            left_dim = infer_dimension(left)
            right_dim = infer_dimension(right)
            if left_dim is not None and right_dim is not None \
                    and left_dim != right_dim:
                self._add("UNIT401", node, _mix_message(
                    left, right, left_dim, right_dim, "comparison"))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            target = infer_dimension(node.target)
            value = infer_dimension(node.value)
            if target is not None and value is not None \
                    and target != value:
                self._add("UNIT401", node, _mix_message(
                    node.target, node.value, target, value,
                    "augmented assignment"))
        self.generic_visit(node)

    # -- UNIT402: unit-dropping assignments and returns ---------------

    def _check_binding(self, node: ast.AST, target: ast.AST,
                       value: Optional[ast.AST]) -> None:
        if value is None:
            return
        target_dim = infer_dimension(target) \
            if isinstance(target, (ast.Name, ast.Attribute)) else None
        value_dim = infer_dimension(value)
        if target_dim is not None and value_dim is not None \
                and target_dim != value_dim:
            self._add("UNIT402", node, (
                f"assignment drops units: {_render(target)} "
                f"({target_dim}) receives {_render(value)} "
                f"({value_dim})"))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_binding(node, target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_binding(node, node.target, node.value)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._function_stack:
            func_name = self._function_stack[-1]
            func_dim = dimension_of_name(func_name)
            value_dim = infer_dimension(node.value)
            if func_dim is not None and value_dim is not None \
                    and func_dim != value_dim:
                self._add("UNIT402", node, (
                    f"return drops units: {func_name}() claims "
                    f"{func_dim} but returns {_render(node.value)} "
                    f"({value_dim})"))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda has no name to claim a dimension; hide the enclosing
        # function's name from its body.
        self._function_stack.append("<lambda>")
        self.generic_visit(node)
        self._function_stack.pop()

    # -- UNIT403: bare magnitude literals -----------------------------

    def _magnitude(self, node: ast.AST) -> Optional[float]:
        """The magnitude a literal expresses, when it is one we ban."""
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, float) \
                and node.value in _MAGNITUDES:
            return node.value
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
            base, exp = node.left, node.right
            sign = 1
            if isinstance(exp, ast.UnaryOp) \
                    and isinstance(exp.op, ast.USub):
                sign, exp = -1, exp.operand
            if isinstance(base, ast.Constant) \
                    and isinstance(exp, ast.Constant) \
                    and isinstance(base.value, int) \
                    and isinstance(exp.value, int):
                value = float(base.value) ** (sign * exp.value)
                if value in _MAGNITUDES:
                    return value
        return None

    def visit_Constant(self, node: ast.Constant) -> None:
        value = self._magnitude(node)
        if value is not None:
            self._add("UNIT403", node, (
                f"bare magnitude literal {node.value!r}; spell the "
                f"repro.units constant it means "
                f"({_MAGNITUDES[value]})"))
        self.generic_visit(node)

    def generic_visit(self, node: ast.AST) -> None:
        # Pow literals (10**9) are BinOps; catch them here so the
        # regular BinOp visitor (Add/Sub only) stays focused.
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
            value = self._magnitude(node)
            if value is not None:
                self._add("UNIT403", node, (
                    f"bare magnitude literal {_render(node)}; spell "
                    f"the repro.units constant it means "
                    f"({_MAGNITUDES[value]})"))
                return  # do not also flag the operand constants
        super().generic_visit(node)


# -- Entry points ---------------------------------------------------------

def lint_source(source: str, relpath: str) -> List[Diagnostic]:
    """Lint one file's source; ``relpath`` selects the applicable rules."""
    rules = rules_for(relpath)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(
            "UNIT400", Severity.ERROR, f"syntax error: {exc.msg}",
            location=f"{relpath}:{exc.lineno or 0}", source=relpath)]
    visitor = _UnitVisitor(relpath, rules)
    visitor.visit(tree)
    visitor.diagnostics.sort(
        key=lambda d: (int(d.location.rsplit(":", 1)[-1] or 0), d.code))
    return visitor.diagnostics


def lint_path(path: Path, relpath: Optional[str] = None
              ) -> List[Diagnostic]:
    """Lint one file on disk."""
    rel = relpath if relpath is not None else path.name
    return lint_source(path.read_text(encoding="utf-8"), rel)


def lint_tree(root: Path) -> AnalysisReport:
    """Lint every ``*.py`` under ``root`` (typically ``src/repro``)."""
    root = Path(root)
    diags: List[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        diags.extend(lint_path(path, rel))
    return AnalysisReport.collect(diags, subject=str(root))
