"""Cross-model contract checker for the two step-timer surfaces.

The continuous-batching engine accepts any ``BatchStepModel`` — in
practice :class:`repro.perf.analytical.BatchStepTimer` (per-op cost
sums) or :class:`repro.perf.simulator.SimulatedStepTimer` (scheduled
instruction streams).  Their agreement is a headline validation result,
and it rests on the two classes exposing the *same* unit-suffixed
surface: the same method names (``prefill_s``, ``decode_step_s``,
``decode_steps_s``), the same parameter names in the same order, the
same declared return types.  Until now that parity was maintained only
by convention; renaming one side's method would silently fall back to
the engine's scalar path (or crash far from the cause).

This pass pins the contract statically:

* **CON601** — a public unit-suffixed method (name carries a
  :mod:`repro.analysis.units_lint` dimension suffix) exists on one
  step timer but not the other.
* **CON602** — a shared unit-suffixed method's signature diverges:
  different parameter names/order, or a different declared return
  annotation.
* **CON603** — an ``as_dict()`` key is not a string literal (in
  ``perf`` and ``appliance``, the modules whose dicts cross the
  model boundary into exporters, benchmarks, and CI asserts).  A
  computed key can change spelling or set membership between runs;
  the key *set* is part of the cross-model contract.

``CON600`` reports inputs that do not parse.  Entry points mirror the
sibling lints: :func:`compare_step_timers` for two sources in tests,
:func:`check_tree` for the shipped pairing over a source tree.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .diagnostics import AnalysisReport, Diagnostic, Severity
from .units_lint import dimension_of_name

#: The shipped contract: (relative path, class name) pairs that must
#: expose identical unit-suffixed surfaces.
STEP_TIMER_CONTRACT = (
    ("perf/analytical.py", "BatchStepTimer"),
    ("perf/simulator.py", "SimulatedStepTimer"),
)

#: Packages whose ``as_dict`` key sets are contract surface (CON603).
AS_DICT_SCOPED = ("perf", "appliance")


def _annotation_text(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<annotation>"


class MethodSurface:
    """One method's externally visible shape.

    Attributes:
        name: Method name.
        params: Parameter names in order, ``self`` excluded.
        returns: Declared return annotation text, or ``None``.
        lineno: Definition line.
    """

    def __init__(self, name: str, params: Tuple[str, ...],
                 returns: Optional[str], lineno: int):
        self.name = name
        self.params = params
        self.returns = returns
        self.lineno = lineno

    def describe(self) -> str:
        ret = f" -> {self.returns}" if self.returns else ""
        return f"{self.name}({', '.join(self.params)}){ret}"


def class_surface(source: str, class_name: str
                  ) -> Dict[str, MethodSurface]:
    """Public unit-suffixed methods of ``class_name`` in ``source``.

    Raises ``ValueError`` when the class is absent — callers decide
    whether a missing class is itself a finding.
    """
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            break
    else:
        raise ValueError(f"class {class_name} not found")
    surface: Dict[str, MethodSurface] = {}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name.startswith("_"):
            continue
        if dimension_of_name(item.name) is None:
            continue
        params = tuple(arg.arg for arg in item.args.args
                       if arg.arg != "self")
        surface[item.name] = MethodSurface(
            item.name, params, _annotation_text(item.returns),
            item.lineno)
    return surface


def compare_step_timers(source_a: str, class_a: str, relpath_a: str,
                        source_b: str, class_b: str, relpath_b: str
                        ) -> List[Diagnostic]:
    """CON601/CON602 findings between two step-timer classes."""
    diags: List[Diagnostic] = []

    def _parse_error(relpath: str, exc: Exception) -> Diagnostic:
        line = getattr(exc, "lineno", 0) or 0
        return Diagnostic("CON600", Severity.ERROR,
                          f"cannot read contract surface: {exc}",
                          location=f"{relpath}:{line}", source=relpath)

    try:
        surface_a = class_surface(source_a, class_a)
    except (SyntaxError, ValueError) as exc:
        return [_parse_error(relpath_a, exc)]
    try:
        surface_b = class_surface(source_b, class_b)
    except (SyntaxError, ValueError) as exc:
        return [_parse_error(relpath_b, exc)]

    sides = ((class_a, relpath_a, surface_a, class_b, surface_b),
             (class_b, relpath_b, surface_b, class_a, surface_a))
    for name, relpath, mine, other_cls, theirs in sides:
        for method in sorted(set(mine) - set(theirs)):
            diags.append(Diagnostic(
                "CON601", Severity.ERROR,
                f"{name}.{method} has no counterpart on {other_cls}: "
                f"the engine's feature detection will silently "
                f"diverge between step models",
                location=f"{relpath}:{mine[method].lineno}",
                source=relpath))
    for method in sorted(set(surface_a) & set(surface_b)):
        mine, theirs = surface_a[method], surface_b[method]
        if mine.params != theirs.params or mine.returns != theirs.returns:
            diags.append(Diagnostic(
                "CON602", Severity.ERROR,
                f"signature mismatch for {method}: "
                f"{class_a}.{mine.describe()} vs "
                f"{class_b}.{theirs.describe()}",
                location=f"{relpath_a}:{mine.lineno}",
                source=relpath_a))
    return diags


# -- CON603: as_dict keys must be string literals -------------------------

def _nonliteral_keys(func: ast.AST) -> List[ast.AST]:
    """Non-literal key expressions written inside an ``as_dict`` body."""
    offenders: List[ast.AST] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is None:
                    continue  # **expansion: keys checked at their source
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    offenders.append(key)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) \
                        and not (isinstance(target.slice, ast.Constant)
                                 and isinstance(target.slice.value, str)):
                    offenders.append(target.slice)
    return offenders


def check_as_dict_keys(source: str, relpath: str) -> List[Diagnostic]:
    """CON603 findings for one file (caller applies path scoping)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Diagnostic(
            "CON600", Severity.ERROR, f"syntax error: {exc.msg}",
            location=f"{relpath}:{exc.lineno or 0}", source=relpath)]
    diags: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name != "as_dict":
            continue
        for key in _nonliteral_keys(node):
            try:
                rendered = ast.unparse(key)
            except Exception:  # pragma: no cover
                rendered = "<key>"
            diags.append(Diagnostic(
                "CON603", Severity.ERROR,
                f"as_dict() key {rendered} is not a string literal; "
                f"computed keys make the exported key set unstable "
                f"across runs and models",
                location=f"{relpath}:{getattr(key, 'lineno', 0)}",
                source=relpath))
    diags.sort(key=lambda d: (int(d.location.rsplit(':', 1)[-1] or 0),
                              d.code))
    return diags


def rules_for(relpath: str) -> Tuple[str, ...]:
    """CON rule codes that apply to a file at ``relpath``."""
    rel = relpath.replace("\\", "/")
    rules: List[str] = []
    if any(rel == path for path, _ in STEP_TIMER_CONTRACT):
        rules.extend(("CON601", "CON602"))
    if rel.split("/", 1)[0] in AS_DICT_SCOPED:
        rules.append("CON603")
    return tuple(rules)


def check_tree(root: Path) -> AnalysisReport:
    """Run the shipped contracts over a source tree.

    The step-timer pairing (:data:`STEP_TIMER_CONTRACT`) is checked
    when both files exist; ``as_dict`` key literalness is checked for
    every file in the scoped packages.
    """
    root = Path(root)
    diags: List[Diagnostic] = []
    (path_a, class_a), (path_b, class_b) = STEP_TIMER_CONTRACT
    file_a, file_b = root / path_a, root / path_b
    if file_a.exists() and file_b.exists():
        diags.extend(compare_step_timers(
            file_a.read_text(encoding="utf-8"), class_a, path_a,
            file_b.read_text(encoding="utf-8"), class_b, path_b))
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel.split("/", 1)[0] not in AS_DICT_SCOPED:
            continue
        diags.extend(check_as_dict_keys(
            path.read_text(encoding="utf-8"), rel))
    return AnalysisReport.collect(diags, subject=str(root))
