"""Shared diagnostic model for the static-analysis layer.

Both analysis prongs — the ISA program verifier
(:mod:`repro.analysis.verifier`) and the simulation-purity lint
(:mod:`repro.analysis.purity`) — report their findings as
:class:`Diagnostic` values collected into an :class:`AnalysisReport`.
A diagnostic carries a stable machine-readable code (``PNM1xx`` for
register dataflow, ``PNM2xx`` for the device address space, ``PUR3xx``
for purity-lint rules; the full table lives in ``docs/ANALYSIS.md``),
a severity, a human-readable message, and a location — an instruction
index for program diagnostics, a ``file:line`` pair for lint findings.

Severity semantics: a program or source tree *verifies clean* when it
has no :attr:`Severity.ERROR` diagnostics (``report.ok``); WARNING
marks constructs that are legal but suspicious (dead writes in
timing-only templates, overlapping DMA windows), and tooling decides
how strict to be — the CI purity job and ``repro lint-program`` treat
any diagnostic as a nonzero exit, while the compiler's
``verify_static`` hook raises only on errors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is; ordered INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Attributes:
        code: Stable identifier (``PNM104``, ``PUR301``, ...).
        severity: How bad it is.
        message: Human-readable description with the offending values.
        location: Where — ``program[12]`` or ``path/to/file.py:45``.
        index: Instruction index for program diagnostics (None for
            source-file findings).
        source: What was analyzed — an opcode for program diagnostics,
            a file path for lint findings.
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    index: Optional[int] = None
    source: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready flat view."""
        out: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
        }
        if self.index is not None:
            out["index"] = self.index
        if self.source is not None:
            out["source"] = self.source
        return out

    def render(self) -> str:
        loc = f" {self.location}" if self.location else ""
        src = f" [{self.source}]" if self.source else ""
        return f"{self.severity.value:<7} {self.code}{loc}{src}: " \
               f"{self.message}"


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics from one analysis run."""

    diagnostics: Tuple[Diagnostic, ...] = ()
    subject: str = ""

    @classmethod
    def collect(cls, diagnostics: Iterable[Diagnostic],
                subject: str = "") -> "AnalysisReport":
        return cls(diagnostics=tuple(diagnostics), subject=subject)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when the subject verifies clean (no errors)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when the analysis produced no diagnostics at all."""
        return not self.diagnostics

    def codes(self) -> Tuple[str, ...]:
        """Distinct diagnostic codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    def merged(self, other: "AnalysisReport") -> "AnalysisReport":
        return AnalysisReport(
            diagnostics=self.diagnostics + other.diagnostics,
            subject=self.subject or other.subject)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view: diagnostics, severity counts, verdicts."""
        return {
            "subject": self.subject,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "counts": self.counts(),
            "ok": self.ok,
            "clean": self.clean,
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        header = f"static analysis: {self.subject}" if self.subject \
            else "static analysis"
        if self.clean:
            return f"{header}: clean"
        lines: List[str] = [header]
        for diag in sorted(self.diagnostics,
                           key=lambda d: (-d.severity.rank, d.code,
                                          d.index if d.index is not None
                                          else -1)):
            lines.append("  " + diag.render())
        counts = self.counts()
        lines.append(f"  {counts['error']} error(s), "
                     f"{counts['warning']} warning(s), "
                     f"{counts['info']} info")
        return "\n".join(lines)
