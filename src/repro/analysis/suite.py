"""The full source-tree static-analysis suite, as one entry point.

Composes the four tree passes — simulation purity (PUR3xx), unit
discipline (UNIT4xx), determinism (DET5xx), and the cross-model
contract checker (CON6xx) — into a single report, then applies the
checked-in suppression baseline (:mod:`repro.analysis.baseline`).
This is what ``repro lint``, ``tools/static_checks.py``, ``make
lint``, and the blocking CI job all run, so "clean" means the same
thing at every surface.

Passes are named for selection (``--select units,det``):
:data:`PASSES` maps name -> tree-runner.  The ISA *program* verifier
is deliberately not part of this suite — it checks compiled programs,
not source, and keeps its own entry point (``repro lint-program``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError

from . import contracts, determinism, purity, units_lint
from .baseline import Baseline, BaselineResult
from .diagnostics import AnalysisReport

#: Selectable tree passes, in report order.
PASSES = {
    "purity": purity.lint_tree,
    "units": units_lint.lint_tree,
    "determinism": determinism.lint_tree,
    "contracts": contracts.check_tree,
}

#: Short aliases accepted by ``--select``.
PASS_ALIASES = {
    "pur": "purity",
    "unit": "units",
    "det": "determinism",
    "con": "contracts",
    "contract": "contracts",
}

#: Diagnostic-code prefixes each pass emits — used to scope the
#: baseline to the selected passes, so running ``--select units``
#: does not report the DET/CON entries as stale.
PASS_CODE_PREFIXES = {
    "purity": ("PUR",),
    "units": ("UNIT",),
    "determinism": ("DET",),
    "contracts": ("CON",),
}


def resolve_passes(names: Optional[Iterable[str]] = None
                   ) -> Tuple[str, ...]:
    """Normalize a pass selection; ``None``/empty means every pass."""
    if not names:
        return tuple(PASSES)
    resolved = []
    for name in names:
        canonical = PASS_ALIASES.get(name.strip().lower(),
                                     name.strip().lower())
        if canonical not in PASSES:
            raise ConfigurationError(
                f"unknown analysis pass {name!r}; "
                f"choose from {', '.join(PASSES)}")
        if canonical not in resolved:
            resolved.append(canonical)
    return tuple(resolved)


def run_suite(root: Path, passes: Optional[Iterable[str]] = None,
              baseline: Optional[Baseline] = None) -> BaselineResult:
    """Run the selected passes over ``root`` and apply the baseline.

    Returns a :class:`~repro.analysis.baseline.BaselineResult` whose
    ``report`` holds only unsuppressed findings; ``suppressed`` and
    ``stale`` expose the baseline's effect so tooling can both honor
    and police it (a stale entry fails CI like a finding does).
    """
    root = Path(root)
    if not root.is_dir():
        raise ConfigurationError(f"no such directory: {root}")
    selected = resolve_passes(passes)
    merged = AnalysisReport(subject=str(root))
    for name in selected:
        merged = merged.merged(PASSES[name](root))
    if baseline is None:
        baseline = Baseline()
    # Scope the baseline to the selected passes: an entry for a pass
    # that did not run cannot match anything, and must not be counted
    # stale for it (``--select units`` with the full checked-in
    # baseline would otherwise always fail).
    prefixes = tuple(p for name in selected
                     for p in PASS_CODE_PREFIXES[name])
    scoped = Baseline(tuple(e for e in baseline.entries
                            if e.code.startswith(prefixes)))
    return scoped.apply(merged, root)


def render_result(result: BaselineResult) -> str:
    """Human-readable suite report, baseline effects included."""
    lines = [result.report.render()]
    if result.suppressed:
        lines.append(f"  {len(result.suppressed)} finding(s) "
                     f"suppressed by baseline")
    for entry in result.stale:
        lines.append(f"  stale baseline entry: {entry.code} "
                     f"{entry.path} ({entry.reason}) — matched "
                     f"nothing; delete it")
    return "\n".join(lines)


def pass_counts(result: BaselineResult) -> Dict[str, int]:
    """Unsuppressed finding count per diagnostic family (for tooling)."""
    counts: Dict[str, int] = {}
    for diag in result.report.diagnostics:
        family = diag.code.rstrip("0123456789")
        counts[family] = counts.get(family, 0) + 1
    return counts
