"""Performance engines: analytical roofline model and cycle simulator.

Exports are resolved lazily (PEP 562) because :mod:`repro.perf.analytical`
imports the GPU kernel models, which themselves import
:mod:`repro.perf.calibration` — eager re-exports here would close an
import cycle.
"""

from repro.perf import calibration

_ANALYTICAL = ("DevicePerfModel", "GpuPerfModel", "InferenceTimer",
               "PnmPerfModel", "no_comm", "stage_result")
_METRICS = ("ApplianceResult", "InferenceResult", "StageResult",
            "relative_delta")
_SIMULATOR = ("AcceleratorSimulator", "SimulationResult")
_ROOFLINE = ("Roofline", "device_roofline", "op_scatter", "roofline_report",
             "stage_intensity")
_POWER = ("PowerSample", "PowerTrace", "power_trace")

__all__ = sorted(("calibration",) + _ANALYTICAL + _METRICS + _SIMULATOR
                 + _ROOFLINE + _POWER)


_SUBMODULE_OF = {}
for _names, _module in ((_ANALYTICAL, "analytical"), (_METRICS, "metrics"),
                        (_SIMULATOR, "simulator"), (_ROOFLINE, "roofline"),
                        (_POWER, "power_trace")):
    for _name in _names:
        _SUBMODULE_OF[_name] = _module


def __getattr__(name):
    # importlib (not `from ... import`) because some exported names equal
    # their submodule's name (power_trace), which would recurse through
    # this hook during the submodule's own import.
    if name in _SUBMODULE_OF:
        import importlib
        module = importlib.import_module(
            f"repro.perf.{_SUBMODULE_OF[name]}")
        return getattr(module, name)
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
