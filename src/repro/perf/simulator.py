"""Instruction-level timing simulator for the CXL-PNM accelerator.

Schedules compiled acceleration code (the same
:class:`~repro.accelerator.isa.Instruction` objects the functional
executor runs) onto the accelerator's resources: the DMA engine, the PE
array, the adder trees, and the VPU, with device-memory bandwidth shared
among the units.  Dependencies come from register dataflow
(read-after-write, and write-after-read/write serialization), so
independent instructions on different units overlap — e.g. the weight
stream of the next matmul behind the VPU work of the previous operator.

This is the reproduction's analog of the paper's cycle-level simulator
(§VII, validated to 0.5% against the FPGA prototype).  Our validation
analog: tests assert agreement with the independent analytical model of
:mod:`repro.perf.analytical` on full decoder stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator import isa
from repro.accelerator.device import CXLPNMDevice
from repro.errors import ConfigurationError, SimulationError
from repro.llm.config import LLMConfig
from repro.obs.context import get_metrics, get_tracer
import repro.perf.calibration as cal


@dataclass
class _ShapeTracker:
    """Propagates register shapes through a program without executing it."""

    shapes: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def get(self, reg: str) -> Tuple[int, ...]:
        try:
            return self.shapes[reg]
        except KeyError:
            raise SimulationError(f"shape of {reg} unknown at schedule time")

    def elems(self, reg: str) -> int:
        n = 1
        for d in self.get(reg):
            n *= d
        return n

    def update(self, instr: isa.Instruction) -> None:
        s = self.shapes
        if isinstance(instr, isa.DmaLoad):
            s[instr.dst] = instr.shape
        elif isinstance(instr, isa.DmaGather):
            s[instr.dst] = (len(instr.indices), instr.row_elems)
        elif isinstance(instr, isa.MpuMmPea):
            s[instr.dst] = (instr.m, instr.n)
            if isinstance(instr, isa.MpuMmRedumaxPea):
                s[instr.rowmax_dst] = (instr.m, 1)
        elif isinstance(instr, isa.MpuMv):
            s[instr.dst] = (1, instr.n)
        elif isinstance(instr, isa.MpuMaskedMm):
            s[instr.dst] = (instr.heads, instr.m, instr.ctx)
            if instr.rowmax_dst:
                s[instr.rowmax_dst] = (instr.heads, instr.m, 1)
        elif isinstance(instr, isa.MpuAttnContext):
            s[instr.dst] = (instr.m, instr.heads * instr.head_dim)
        elif isinstance(instr, isa.MpuConv2d):
            oh, ow = instr.out_hw
            s[instr.dst] = (instr.out_ch, oh, ow)
        elif isinstance(instr, isa.MpuTranspose):
            shape = self.get(instr.src)
            s[instr.dst] = tuple(reversed(shape))
        elif isinstance(instr, (isa.VpuAdd, isa.VpuMul)):
            s[instr.dst] = self.get(instr.a)
        elif isinstance(instr, (isa.VpuScale, isa.VpuGelu, isa.VpuSoftmax)):
            s[instr.dst] = self.get(instr.src)
        elif isinstance(instr, (isa.VpuBias, isa.VpuLayerNorm)):
            s[instr.dst] = self.get(instr.src)
        elif isinstance(instr, isa.VpuSlice):
            shape = self.get(instr.src)
            s[instr.dst] = shape[:-1] + (instr.stop - instr.start,)
        elif isinstance(instr, isa.VpuRow):
            shape = self.get(instr.src)
            s[instr.dst] = (1,) + shape[1:]
        elif isinstance(instr, isa.VpuArgmax):
            s[instr.dst] = (1,)
        elif isinstance(instr, isa.Free):
            for reg in instr.regs:
                s.pop(reg, None)


@dataclass
class SimulationResult:
    """Schedule summary of one program run."""

    total_time_s: float
    instructions: int
    unit_busy_s: Dict[isa.Unit, float]
    mem_bytes: float
    flops: float

    def utilization(self, unit: isa.Unit) -> float:
        if self.total_time_s == 0:
            return 0.0
        return self.unit_busy_s.get(unit, 0.0) / self.total_time_s

    @property
    def bandwidth_utilization_of(self) -> float:
        return self.mem_bytes / self.total_time_s if self.total_time_s \
            else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready flat view, for exporters and benchmarks."""
        out: Dict[str, float] = {
            "total_time_s": self.total_time_s,
            "instructions": float(self.instructions),
            "mem_bytes": self.mem_bytes,
            "flops": self.flops,
        }
        for unit in isa.Unit:
            busy = self.unit_busy_s.get(unit, 0.0)
            out[f"busy_s.{unit.name}"] = busy
            out[f"utilization.{unit.name}"] = self.utilization(unit)
        return out


class AcceleratorSimulator:
    """List scheduler over the accelerator's units and memory bandwidth."""

    def __init__(self, device: Optional[CXLPNMDevice] = None,
                 dtype_bytes: int = 2, tracer=None, metrics=None,
                 memoize: bool = True):
        self.device = device or CXLPNMDevice()
        self.dtype_bytes = dtype_bytes
        self._tracer = tracer
        self._metrics = metrics
        self.memoize = memoize
        self._mpu = self.device.mpu_timing()
        self._vpu = self.device.vpu_timing()
        self._dma = self.device.dma_timing()
        self._clock = self.device.spec.clock_hz
        self._bw = self.device.effective_memory_bandwidth
        #: (instruction, out_elems) -> (busy_s, mem_s, mem_bytes).  The
        #: duration of an instruction is a pure function of its fields,
        #: the shape-tracked output size (VPU cost input), and device
        #: constants, so this key is exact — repeated decode steps reuse
        #: per-instruction costs instead of re-deriving them.
        self._durations: Dict[Tuple[isa.Instruction, int],
                              Tuple[float, float, float]] = {}
        #: CachedProgram.timing_key -> SimulationResult for whole-program
        #: reuse (identical stage geometry schedules identically).
        self._results: Dict[Hashable, SimulationResult] = {}

    def _duration(self, instr: isa.Instruction, out_elems: int
                  ) -> Tuple[float, float, float]:
        """(busy s on the instruction's unit, memory s, memory bytes)."""
        mem_bytes = instr.mem_bytes(self.dtype_bytes)
        if self._mpu.gemm_via_tree:
            # DFX-style GEMM-as-row-sweeps re-streams the memory operand
            # once per activation row (see PnmPerfModel._matmul_time).
            if isinstance(instr, isa.MpuMmPea):
                mem_bytes *= instr.m
            elif isinstance(instr, (isa.MpuMaskedMm, isa.MpuAttnContext)) \
                    and instr.m > 1:
                mem_bytes *= instr.m
        mem_time = mem_bytes / self._bw
        unit = instr.unit
        if unit is isa.Unit.DMA:
            if isinstance(instr, isa.DmaGather):
                row_bytes = instr.row_elems * (
                    1 if instr.dtype == "int8" else self.dtype_bytes)
                busy = self._dma.gather_time(len(instr.indices), row_bytes)
            else:
                busy = self._dma.transfer_time(mem_bytes)
            return busy, busy, mem_bytes
        if unit in (isa.Unit.PE_ARRAY, isa.Unit.ADDER_TREE):
            cycles = self._mpu.cycles(instr)
            busy = max(cycles / self._clock, mem_time) \
                + cal.PNM_INSTRUCTION_OVERHEAD_S
            return busy, mem_time, mem_bytes
        if unit is isa.Unit.VPU:
            cycles = self._vpu.cycles(instr, float(out_elems))
            busy = max(cycles / self._clock, mem_time) \
                + cal.PNM_INSTRUCTION_OVERHEAD_S
            return busy, mem_time, mem_bytes
        return 0.0, 0.0, 0.0  # control instructions

    def _duration_memo(self, instr: isa.Instruction, shapes: _ShapeTracker
                       ) -> Tuple[float, float, float]:
        out_elems = (shapes.elems(instr.writes()[0])
                     if instr.writes() else 0)
        if not self.memoize:
            return self._duration(instr, out_elems)
        key = (instr, out_elems)
        hit = self._durations.get(key)
        if hit is None:
            if len(self._durations) > 65536:
                self._durations.clear()
            hit = self._duration(instr, out_elems)
            self._durations[key] = hit
        return hit

    @staticmethod
    def _copy_result(result: SimulationResult) -> SimulationResult:
        return SimulationResult(
            total_time_s=result.total_time_s,
            instructions=result.instructions,
            unit_busy_s=dict(result.unit_busy_s),
            mem_bytes=result.mem_bytes,
            flops=result.flops)

    def run(self, program: Sequence[isa.Instruction],
            trace_offset_s: float = 0.0) -> SimulationResult:
        """Schedule a program; returns makespan and per-unit busy time.

        ``trace_offset_s`` shifts the emitted observability spans on the
        simulated timeline (callers running many programs back to back —
        e.g. a generation session — lay stages out contiguously).  It
        never affects the returned result.

        Programs produced by a :class:`~repro.accelerator.compiler
        .ProgramCache` carry a ``timing_key`` identifying their stage
        geometry; with ``memoize`` on, re-running the same geometry
        returns a copy of the previously computed result without
        rescheduling.  The bypass is disabled while a tracer or metrics
        registry is active so observability output stays complete.
        """
        if not isinstance(program, tuple):
            program = tuple(program)
        tracer = get_tracer(self._tracer)
        metrics = get_metrics(self._metrics)
        timing_key = getattr(program, "timing_key", None)
        use_result_cache = (self.memoize and timing_key is not None
                            and not tracer.enabled and not metrics.enabled)
        if use_result_cache:
            cached = self._results.get(timing_key)
            if cached is not None:
                # A result-cache hit means a program with this geometry
                # already passed validation on its first run.
                return self._copy_result(cached)
        isa.validate_program_cached(program)
        shapes = _ShapeTracker()
        unit_free: Dict[isa.Unit, float] = {u: 0.0 for u in isa.Unit}
        unit_busy: Dict[isa.Unit, float] = {u: 0.0 for u in isa.Unit}
        mem_free = 0.0
        reg_ready: Dict[str, float] = {}
        reg_last_read: Dict[str, float] = {}
        makespan = 0.0
        total_mem = 0.0
        total_flops = 0.0

        with tracer.span("simulator.run", category="accelerator",
                         instructions=len(program)):
            for instr in program:
                if isinstance(instr, isa.Barrier):
                    unit_free = {u: makespan for u in isa.Unit}
                    mem_free = makespan
                    continue
                shapes.update(instr)
                busy, mem_time, mem_bytes = self._duration_memo(instr,
                                                                shapes)
                ready = unit_free[instr.unit]
                for reg in instr.reads():
                    ready = max(ready, reg_ready.get(reg, 0.0))
                for reg in instr.writes():
                    # WAW / WAR serialization.
                    ready = max(ready, reg_ready.get(reg, 0.0),
                                reg_last_read.get(reg, 0.0))
                if mem_time > 0:
                    ready = max(ready, mem_free)
                end = ready + busy
                unit_free[instr.unit] = end
                unit_busy[instr.unit] += busy
                if mem_time > 0:
                    mem_free = ready + mem_time
                    # Count the bytes the timing model actually streamed
                    # (on gemm_via_tree devices the memory operand is
                    # re-streamed per activation row), so mem_bytes and
                    # bandwidth_utilization_of reflect modelled traffic.
                    total_mem += mem_bytes
                for reg in instr.reads():
                    reg_last_read[reg] = max(reg_last_read.get(reg, 0.0),
                                             end)
                for reg in instr.writes():
                    reg_ready[reg] = end
                total_flops += instr.flops()
                makespan = max(makespan, end)
                if tracer.enabled:
                    tracer.sim_span(
                        instr.opcode, start_s=trace_offset_s + ready,
                        dur_s=busy, track=f"pnm.{instr.unit.name}",
                        category="accelerator")
                if metrics.enabled:
                    metrics.counter("sim.instructions",
                                    opcode=instr.opcode).inc()

        result = SimulationResult(
            total_time_s=makespan,
            instructions=len(program),
            unit_busy_s=unit_busy,
            mem_bytes=total_mem,
            flops=total_flops)
        if metrics.enabled:
            metrics.counter("sim.time_s").inc(makespan)
            metrics.counter("sim.mem_bytes").inc(total_mem)
            metrics.counter("sim.flops").inc(total_flops)
            for unit in isa.Unit:
                if unit_busy.get(unit, 0.0) > 0.0:
                    metrics.counter("sim.unit_busy_s",
                                    unit=unit.name).inc(unit_busy[unit])
                    metrics.gauge("sim.unit_utilization",
                                  unit=unit.name).set(
                        result.utilization(unit))
        if use_result_cache:
            if len(self._results) > 4096:
                self._results.clear()
            self._results[timing_key] = self._copy_result(result)
        return result


@dataclass
class SimulatedStepTimer:
    """Continuous-batching step costs from the instruction-level simulator.

    A drop-in :class:`~repro.appliance.continuous.BatchStepModel`: where
    :class:`~repro.perf.analytical.BatchStepTimer` prices a step by
    summing per-op costs, this schedules a real instruction stream —
    :func:`~repro.accelerator.compiler.timing_program` for prefill and
    :func:`~repro.accelerator.compiler.batched_timing_program` for a
    batched decode step — so unit overlap and the shared memory channel
    are modelled exactly as in stage simulations.  Contexts are
    quantized up to ``context_quantum`` before memoization, mirroring
    the analytical timer.  Single device only (no tensor parallelism).

    Attributes:
        config: The model.
        simulator: Scheduler to price steps with (defaults to a CXL-PNM
            device simulator).
        context_quantum: Context quantization step for memoization.
        quantize: ``"int8"`` prices the int8 weight path (weights stream
            at 1 byte/elem, scales/bias at full width) — the programs it
            times are the ones the quantizing compiler emits.
    """

    config: LLMConfig
    simulator: Optional[AcceleratorSimulator] = None
    context_quantum: int = 32
    quantize: Optional[str] = None
    _prefill_cache: Dict[int, float] = field(
        default_factory=dict, repr=False)
    _decode_cache: Dict[Tuple[int, int], float] = field(
        default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.context_quantum < 1:
            raise ConfigurationError("context_quantum must be >= 1")
        if self.simulator is None:
            self.simulator = AcceleratorSimulator()

    def prefill_s(self, input_len: int) -> float:
        """Seconds to run one request's sum stage (emits its first token)."""
        if input_len < 1:
            raise ConfigurationError("input_len must be >= 1")
        cached = self._prefill_cache.get(input_len)
        if cached is None:
            from repro.accelerator.compiler import timing_program
            program = timing_program(self.config, input_len, ctx_prev=0,
                                     quantize=self.quantize)
            cached = self.simulator.run(program).total_time_s
            self._prefill_cache[input_len] = cached
        return cached

    def _quantize(self, context_len: int) -> int:
        q = self.context_quantum
        quantized = ((context_len + q - 1) // q) * q
        return min(quantized, max(context_len, self.config.max_seq_len))

    def decode_step_s(self, batch: int, context_len: int) -> float:
        """Seconds for one batched gen step at the given attention span."""
        if batch < 1 or context_len < 1:
            raise ConfigurationError("batch and context must be >= 1")
        key = (batch, self._quantize(context_len))
        cached = self._decode_cache.get(key)
        if cached is None:
            from repro.accelerator.compiler import batched_timing_program
            program = batched_timing_program(self.config, batch,
                                             ctx_prev=key[1] - 1,
                                             quantize=self.quantize)
            cached = self.simulator.run(program).total_time_s
            self._decode_cache[key] = cached
        return cached

    def decode_steps_s(self, batch: int,
                       context_lens: Sequence[int]) -> np.ndarray:
        """Seconds for a cohort of decode steps at one batch size.

        Vectorized companion to :meth:`decode_step_s` for the event
        kernel's macro-steps: contexts are quantized in one numpy
        pass and the simulator prices each *unique* quantized context
        once (the simulator's own ``timing_key`` duration cache makes
        repeats across calls cheap too).  Each element is
        bit-identical to the scalar call.
        """
        ctxs = np.asarray(context_lens, dtype=np.int64)
        if ctxs.size == 0:
            return np.empty(0, dtype=float)
        if batch < 1 or int(ctxs.min()) < 1:
            raise ConfigurationError("batch and context must be >= 1")
        q = self.context_quantum
        quantized = np.minimum(-(ctxs // -q) * q,
                               np.maximum(ctxs, self.config.max_seq_len))
        uniques, inverse = np.unique(quantized, return_inverse=True)
        costs = np.array([self.decode_step_s(batch, int(u))
                          for u in uniques], dtype=float)
        return costs[inverse]
