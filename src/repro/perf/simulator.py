"""Instruction-level timing simulator for the CXL-PNM accelerator.

Schedules compiled acceleration code (the same
:class:`~repro.accelerator.isa.Instruction` objects the functional
executor runs) onto the accelerator's resources: the DMA engine, the PE
array, the adder trees, and the VPU, with device-memory bandwidth shared
among the units.  Dependencies come from register dataflow
(read-after-write, and write-after-read/write serialization), so
independent instructions on different units overlap — e.g. the weight
stream of the next matmul behind the VPU work of the previous operator.

This is the reproduction's analog of the paper's cycle-level simulator
(§VII, validated to 0.5% against the FPGA prototype).  Our validation
analog: tests assert agreement with the independent analytical model of
:mod:`repro.perf.analytical` on full decoder stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.accelerator import isa
from repro.accelerator.device import CXLPNMDevice
from repro.errors import SimulationError
from repro.obs.context import get_metrics, get_tracer
import repro.perf.calibration as cal


@dataclass
class _ShapeTracker:
    """Propagates register shapes through a program without executing it."""

    shapes: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def get(self, reg: str) -> Tuple[int, ...]:
        try:
            return self.shapes[reg]
        except KeyError:
            raise SimulationError(f"shape of {reg} unknown at schedule time")

    def elems(self, reg: str) -> int:
        n = 1
        for d in self.get(reg):
            n *= d
        return n

    def update(self, instr: isa.Instruction) -> None:
        s = self.shapes
        if isinstance(instr, isa.DmaLoad):
            s[instr.dst] = instr.shape
        elif isinstance(instr, isa.DmaGather):
            s[instr.dst] = (len(instr.indices), instr.row_elems)
        elif isinstance(instr, isa.MpuMmPea):
            s[instr.dst] = (instr.m, instr.n)
            if isinstance(instr, isa.MpuMmRedumaxPea):
                s[instr.rowmax_dst] = (instr.m, 1)
        elif isinstance(instr, isa.MpuMv):
            s[instr.dst] = (1, instr.n)
        elif isinstance(instr, isa.MpuMaskedMm):
            s[instr.dst] = (instr.heads, instr.m, instr.ctx)
            if instr.rowmax_dst:
                s[instr.rowmax_dst] = (instr.heads, instr.m, 1)
        elif isinstance(instr, isa.MpuAttnContext):
            s[instr.dst] = (instr.m, instr.heads * instr.head_dim)
        elif isinstance(instr, isa.MpuConv2d):
            oh, ow = instr.out_hw
            s[instr.dst] = (instr.out_ch, oh, ow)
        elif isinstance(instr, isa.MpuTranspose):
            shape = self.get(instr.src)
            s[instr.dst] = tuple(reversed(shape))
        elif isinstance(instr, (isa.VpuAdd, isa.VpuMul)):
            s[instr.dst] = self.get(instr.a)
        elif isinstance(instr, (isa.VpuScale, isa.VpuGelu, isa.VpuSoftmax)):
            s[instr.dst] = self.get(instr.src)
        elif isinstance(instr, (isa.VpuBias, isa.VpuLayerNorm)):
            s[instr.dst] = self.get(instr.src)
        elif isinstance(instr, isa.VpuSlice):
            shape = self.get(instr.src)
            s[instr.dst] = shape[:-1] + (instr.stop - instr.start,)
        elif isinstance(instr, isa.VpuRow):
            shape = self.get(instr.src)
            s[instr.dst] = (1,) + shape[1:]
        elif isinstance(instr, isa.VpuArgmax):
            s[instr.dst] = (1,)
        elif isinstance(instr, isa.Free):
            for reg in instr.regs:
                s.pop(reg, None)


@dataclass
class SimulationResult:
    """Schedule summary of one program run."""

    total_time_s: float
    instructions: int
    unit_busy_s: Dict[isa.Unit, float]
    mem_bytes: float
    flops: float

    def utilization(self, unit: isa.Unit) -> float:
        if self.total_time_s == 0:
            return 0.0
        return self.unit_busy_s.get(unit, 0.0) / self.total_time_s

    @property
    def bandwidth_utilization_of(self) -> float:
        return self.mem_bytes / self.total_time_s if self.total_time_s \
            else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready flat view, for exporters and benchmarks."""
        out: Dict[str, float] = {
            "total_time_s": self.total_time_s,
            "instructions": float(self.instructions),
            "mem_bytes": self.mem_bytes,
            "flops": self.flops,
        }
        for unit in isa.Unit:
            busy = self.unit_busy_s.get(unit, 0.0)
            out[f"busy_s.{unit.name}"] = busy
            out[f"utilization.{unit.name}"] = self.utilization(unit)
        return out


class AcceleratorSimulator:
    """List scheduler over the accelerator's units and memory bandwidth."""

    def __init__(self, device: Optional[CXLPNMDevice] = None,
                 dtype_bytes: int = 2, tracer=None, metrics=None):
        self.device = device or CXLPNMDevice()
        self.dtype_bytes = dtype_bytes
        self._tracer = tracer
        self._metrics = metrics
        self._mpu = self.device.mpu_timing()
        self._vpu = self.device.vpu_timing()
        self._dma = self.device.dma_timing()
        self._clock = self.device.spec.clock_hz
        self._bw = self.device.effective_memory_bandwidth

    def _duration(self, instr: isa.Instruction, shapes: _ShapeTracker
                  ) -> Tuple[float, float]:
        """(busy seconds on the instruction's unit, memory seconds)."""
        mem_bytes = instr.mem_elems() * self.dtype_bytes
        if self._mpu.gemm_via_tree:
            # DFX-style GEMM-as-row-sweeps re-streams the memory operand
            # once per activation row (see PnmPerfModel._matmul_time).
            if isinstance(instr, isa.MpuMmPea):
                mem_bytes *= instr.m
            elif isinstance(instr, (isa.MpuMaskedMm, isa.MpuAttnContext)) \
                    and instr.m > 1:
                mem_bytes *= instr.m
        mem_time = mem_bytes / self._bw
        unit = instr.unit
        if unit is isa.Unit.DMA:
            if isinstance(instr, isa.DmaGather):
                busy = self._dma.gather_time(
                    len(instr.indices),
                    instr.row_elems * self.dtype_bytes)
            else:
                busy = self._dma.transfer_time(mem_bytes)
            return busy, busy
        if unit in (isa.Unit.PE_ARRAY, isa.Unit.ADDER_TREE):
            cycles = self._mpu.cycles(instr)
            busy = max(cycles / self._clock, mem_time) \
                + cal.PNM_INSTRUCTION_OVERHEAD_S
            return busy, mem_time
        if unit is isa.Unit.VPU:
            out_elems = (shapes.elems(instr.writes()[0])
                         if instr.writes() else 0)
            cycles = self._vpu.cycles(instr, float(out_elems))
            busy = max(cycles / self._clock, mem_time) \
                + cal.PNM_INSTRUCTION_OVERHEAD_S
            return busy, mem_time
        return 0.0, 0.0  # control instructions

    def run(self, program: Sequence[isa.Instruction],
            trace_offset_s: float = 0.0) -> SimulationResult:
        """Schedule a program; returns makespan and per-unit busy time.

        ``trace_offset_s`` shifts the emitted observability spans on the
        simulated timeline (callers running many programs back to back —
        e.g. a generation session — lay stages out contiguously).  It
        never affects the returned result.
        """
        isa.validate_program(tuple(program))
        tracer = get_tracer(self._tracer)
        metrics = get_metrics(self._metrics)
        shapes = _ShapeTracker()
        unit_free: Dict[isa.Unit, float] = {u: 0.0 for u in isa.Unit}
        unit_busy: Dict[isa.Unit, float] = {u: 0.0 for u in isa.Unit}
        mem_free = 0.0
        reg_ready: Dict[str, float] = {}
        reg_last_read: Dict[str, float] = {}
        makespan = 0.0
        total_mem = 0.0
        total_flops = 0.0

        with tracer.span("simulator.run", category="accelerator",
                         instructions=len(program)):
            for instr in program:
                if isinstance(instr, isa.Barrier):
                    unit_free = {u: makespan for u in isa.Unit}
                    mem_free = makespan
                    continue
                shapes.update(instr)
                busy, mem_time = self._duration(instr, shapes)
                ready = unit_free[instr.unit]
                for reg in instr.reads():
                    ready = max(ready, reg_ready.get(reg, 0.0))
                for reg in instr.writes():
                    # WAW / WAR serialization.
                    ready = max(ready, reg_ready.get(reg, 0.0),
                                reg_last_read.get(reg, 0.0))
                if mem_time > 0:
                    ready = max(ready, mem_free)
                end = ready + busy
                unit_free[instr.unit] = end
                unit_busy[instr.unit] += busy
                if mem_time > 0:
                    mem_free = ready + mem_time
                    total_mem += instr.mem_elems() * self.dtype_bytes
                for reg in instr.reads():
                    reg_last_read[reg] = max(reg_last_read.get(reg, 0.0),
                                             end)
                for reg in instr.writes():
                    reg_ready[reg] = end
                total_flops += instr.flops()
                makespan = max(makespan, end)
                if tracer.enabled:
                    tracer.sim_span(
                        instr.opcode, start_s=trace_offset_s + ready,
                        dur_s=busy, track=f"pnm.{instr.unit.name}",
                        category="accelerator")
                if metrics.enabled:
                    metrics.counter("sim.instructions",
                                    opcode=instr.opcode).inc()

        result = SimulationResult(
            total_time_s=makespan,
            instructions=len(program),
            unit_busy_s=unit_busy,
            mem_bytes=total_mem,
            flops=total_flops)
        if metrics.enabled:
            metrics.counter("sim.time_s").inc(makespan)
            metrics.counter("sim.mem_bytes").inc(total_mem)
            metrics.counter("sim.flops").inc(total_flops)
            for unit in isa.Unit:
                if unit_busy.get(unit, 0.0) > 0.0:
                    metrics.counter("sim.unit_busy_s",
                                    unit=unit.name).inc(unit_busy[unit])
                    metrics.gauge("sim.unit_utilization",
                                  unit=unit.name).set(
                        result.utilization(unit))
        return result
