"""Calibrated behavioural constants, each with its provenance.

The paper's results come from measured hardware (DGX A100 + the FPGA
prototype) and a validated cycle simulator.  Reproducing the *shape* of
those results analytically requires a handful of behavioural constants
that datasheets do not give: achievable bandwidth fractions, kernel-launch
overheads, and power operating points.  Every constant below records what
it models and which paper observation anchors it.  Benchmarks and tests
compare model output against the paper's headline ratios, not absolute
numbers.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# GPU execution behaviour
# --------------------------------------------------------------------------

#: Fixed CPU-side cost per CUDA kernel launch / FasterTransformer op.
#: Anchors: Fig. 10's growing CXL-PNM latency advantage on small OPT models
#: (59%/38%/2% for 1.3B/2.7B/6.7B) is dominated by per-kernel overheads
#: that do not shrink with model size.
GPU_KERNEL_LAUNCH_S = 12e-6

#: Asymptotic fraction of peak HBM bandwidth a very large GEMV stream
#: sustains on the GPU (realized efficiency is derated by stream size via
#: ``GPU_GEMV_SIZE_HALF_BYTES`` and lands at 0.85-0.95 for the weight
#: matrices of the evaluated models).  Anchor: Fig. 10's 10.8%-lower
#: CXL-PNM throughput on OPT-13B requires the A100's achieved gen-stage
#: bandwidth to exceed CXL-PNM's ~1.05 TB/s effective stream.
GPU_GEMV_BW_EFF = 0.98

#: GEMV bandwidth efficiency halves when the streamed matrix shrinks to
#: this many bytes (cache/launch granularity effects under tensor
#: parallelism).
GPU_GEMV_SIZE_HALF_BYTES = 6e6

#: Peak fraction of tensor-core FLOPS a well-shaped large GEMM reaches.
GPU_GEMM_MAX_EFF = 0.85

#: GEMM efficiency half-saturation row count: efficiency ~ max_eff *
#: m / (m + this).  Anchor: sum-stage GEMMs at L_in = 64 run far below
#: peak; Fig. 4a's 94% figure is occupancy, not FLOP efficiency.
GPU_GEMM_HALF_ROWS = 64.0

#: Bandwidth efficiency of elementwise/normalization kernels.
GPU_VECTOR_BW_EFF = 0.75

# --------------------------------------------------------------------------
# Host-offload streaming (Fig. 3 behaviour)
# --------------------------------------------------------------------------

#: Achieved host-to-device copy bandwidth for pageable PyTorch-style
#: transfers (layer-at-a-time, unpinned staging).  Anchor: Fig. 3's ~99%
#: memcpy share for OPT-30B on a 40 GB A100 and the §VIII single-device
#: OPT-30B result (~138.8x CXL-PNM latency advantage) imply an effective
#: H2D rate of ~3 GB/s, far below the PCIe 4.0 peak of 32 GB/s.
PCIE_H2D_PAGEABLE_BYTES_S = 3e9

#: Pinned-buffer H2D rate (used by the offload ablation).
PCIE_H2D_PINNED_BYTES_S = 24e9

# --------------------------------------------------------------------------
# GPU multi-device communication
# --------------------------------------------------------------------------

#: Base latency of one NCCL all-reduce across NVLink (small payloads).
NVLINK_ALLREDUCE_LATENCY_S = 20e-6

#: Achievable fraction of NVLink bandwidth during ring all-reduce.
NVLINK_BW_EFF = 0.75

# --------------------------------------------------------------------------
# GPU power
# --------------------------------------------------------------------------

#: A100 board power when actively clocked but stalled on memory.
#: Anchor: the paper's measured 253 W for OPT-13B inference (§VIII-A),
#: a bandwidth-bound workload: 180 + 0.72 * 100 ~= 252 W.
GPU_ACTIVE_IDLE_WATTS = 180.0

#: Additional power at full memory-bandwidth utilization.
GPU_MEM_MAX_WATTS = 100.0

#: Additional power at full tensor-core utilization (capped by TDP).
GPU_CORE_MAX_WATTS = 160.0

# --------------------------------------------------------------------------
# CXL-PNM execution behaviour
# --------------------------------------------------------------------------

#: Per-instruction dispatch overhead of the accelerator control unit,
#: beyond the modelled pipeline-fill cycles.
PNM_INSTRUCTION_OVERHEAD_S = 0.2e-6

#: Software cost for the host to orchestrate one device-to-device DMA
#: (doorbell write, descriptor, completion) on top of the link time.
#: Anchor: Fig. 11's MP=8 configuration stays 23% faster than the GPU
#: appliance despite 128 boundary transfers per token.
CXL_D2D_SW_OVERHEAD_S = 10e-6

#: Device power when idle (CXL IPs + DRAM standby), Table II context.
PNM_IDLE_WATTS = 20.0

# --------------------------------------------------------------------------
# Derived traffic quantities
# --------------------------------------------------------------------------


def weight_stream_bytes(num_params: float, elem_bytes: int) -> float:
    """Parameter bytes streamed per generated token at ``elem_bytes``.

    The gen stage reads every parameter once per token, so this is the
    bandwidth-bound floor of decode traffic.  Parameterized by element
    size so fp32/fp16/int8 share one code path: the int8 ablation calls
    it with ``elem_bytes=1`` instead of assuming a fixed-width constant.
    """
    if elem_bytes < 1:
        raise ValueError(f"elem_bytes must be >= 1, got {elem_bytes}")
    return float(num_params) * elem_bytes


# --------------------------------------------------------------------------
# Paper anchor values (targets the benchmarks print alongside results)
# --------------------------------------------------------------------------

PAPER_ANCHORS = {
    "fig10_opt13b_throughput_delta": -0.108,
    "fig10_opt13b_energy_eff_ratio": 2.9,
    "fig10_gpu_power_watts": 253.0,
    "fig10_pnm_power_watts": 77.1,
    "fig10_small_model_latency_delta": {"OPT-1.3B": -0.59,
                                        "OPT-2.7B": -0.38,
                                        "OPT-6.7B": -0.02},
    "fig10_opt30b_latency_ratio": 138.8,
    "fig10_opt30b_energy_ratio": 127.9,
    "fig11_dp8_throughput_delta": 0.53,
    "fig11_dp8_energy_ratio": 4.4,
    "fig11_dp4mp2_latency_vs_dp8": -0.44,
    "fig11_dp4mp2_throughput_delta": 0.36,
    "fig11_dp4mp2_energy_ratio": 3.3,
    "fig11_mp8_latency_delta": -0.23,
    "fig11_mp8_throughput_delta": 0.31,
    "fig11_mp8_energy_ratio": 2.9,
    "table3_gpu_tokens_per_day": 3.7e6,
    "table3_pnm_tokens_per_day": 5.65e6,
    "table3_gpu_kwh_per_day": 43.2,
    "table3_pnm_kwh_per_day": 15.4,
    "table3_gpu_cost_per_day": 4.47,
    "table3_pnm_cost_per_day": 1.59,
}
