"""Result records for performance and energy evaluations.

Everything the experiment harnesses report reduces to these records:
per-stage timing/energy, whole-inference latency, and service-level
throughput/efficiency.  Keeping them as dataclasses (instead of ad-hoc
dicts) lets tests assert on named fields and benchmarks print uniform
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.units import s_to_ms


@dataclass(frozen=True)
class StageResult:
    """Timing/energy of one sum or gen stage on one device (or group)."""

    name: str
    time_s: float
    flops: float
    mem_bytes: float
    comm_s: float = 0.0
    energy_j: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.energy_j < 0:
            raise ConfigurationError("stage time/energy cannot be negative")


@dataclass(frozen=True)
class InferenceResult:
    """End-to-end result of one inference request.

    Attributes:
        device_name: e.g. ``"A100-40G"`` or ``"CXL-PNM"``.
        input_len / output_len: Request geometry.
        sum_time_s: Summarization-stage latency.
        gen_time_s: Total generation latency across all gen stages.
        energy_j: Device energy for the request (per model instance).
        mean_power_w: Average device power over the request.
    """

    device_name: str
    input_len: int
    output_len: int
    sum_time_s: float
    gen_time_s: float
    energy_j: float

    @property
    def latency_s(self) -> float:
        return self.sum_time_s + self.gen_time_s

    @property
    def tokens_per_s(self) -> float:
        """Single-stream generation throughput."""
        return self.output_len / self.latency_s

    @property
    def tokens_per_joule(self) -> float:
        return self.output_len / self.energy_j if self.energy_j else 0.0

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / self.latency_s if self.latency_s else 0.0

    @property
    def ms_per_token(self) -> float:
        return s_to_ms(self.latency_s) / self.output_len


@dataclass(frozen=True)
class ApplianceResult:
    """Aggregate behaviour of a multi-device appliance configuration.

    Attributes:
        name: Configuration label, e.g. ``"CXL-PNM DP=4 x MP=2"``.
        num_devices: Devices in the appliance.
        instances: Concurrent model instances (data-parallel streams).
        per_request: The per-instance inference result.
    """

    name: str
    num_devices: int
    instances: int
    per_request: InferenceResult

    @property
    def latency_s(self) -> float:
        """Latency experienced by one request."""
        return self.per_request.latency_s

    @property
    def throughput_tokens_per_s(self) -> float:
        """Appliance-level throughput across all concurrent instances."""
        return self.instances * self.per_request.tokens_per_s

    @property
    def appliance_energy_j(self) -> float:
        """Energy of all devices over one request's duration.

        ``per_request.energy_j`` already covers every device serving one
        instance (its whole model-parallel group).
        """
        return self.per_request.energy_j * self.instances

    @property
    def tokens_per_joule(self) -> float:
        total_tokens = self.instances * self.per_request.output_len
        return total_tokens / self.appliance_energy_j

    @property
    def appliance_power_w(self) -> float:
        return self.appliance_energy_j / self.latency_s


def relative_delta(value: float, baseline: float) -> float:
    """Signed relative difference ``(value - baseline) / baseline``."""
    if baseline == 0:
        raise ConfigurationError("baseline must be non-zero")
    return (value - baseline) / baseline
