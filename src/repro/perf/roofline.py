"""Roofline analysis helpers.

The paper's whole argument is a roofline argument: gen-stage GEMVs sit at
~1 FLOP/byte, far below any device's ridge point, so achieved performance
is bandwidth x intensity and the right machine maximizes *memory
bandwidth per dollar/watt*, not FLOPS.  This module produces
plot-ready roofline data: device ceilings, ridge points, and operator
scatter for a model's sum and gen stages on any device model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.llm.config import LLMConfig
from repro.llm.graph import gen_stage_ops, sum_stage_ops
from repro.llm.ops import OpSpec
from repro.perf.analytical import DevicePerfModel
from repro.units import TERA


@dataclass(frozen=True)
class Roofline:
    """One device's roofline: compute ceiling and memory slope."""

    name: str
    peak_flops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.peak_bandwidth <= 0:
            raise ConfigurationError("roofline needs positive peaks")

    @property
    def ridge_intensity(self) -> float:
        """FLOPs/byte at which the machine turns compute-bound."""
        return self.peak_flops / self.peak_bandwidth

    def attainable_flops(self, intensity: float) -> float:
        """Attainable FLOP/s at an arithmetic intensity (FLOPs/byte)."""
        if intensity < 0:
            raise ConfigurationError("intensity cannot be negative")
        return min(self.peak_flops, intensity * self.peak_bandwidth)

    def bound_of(self, intensity: float) -> str:
        return "compute" if intensity >= self.ridge_intensity else "memory"

    def curve(self, intensities: Sequence[float]) -> List[Dict[str, float]]:
        """Plot-ready (intensity, attainable) pairs."""
        return [{"intensity": float(i),
                 "attainable_tflops": self.attainable_flops(i) / TERA}
                for i in intensities]


def device_roofline(model: DevicePerfModel) -> Roofline:
    """Roofline of any device performance model."""
    return Roofline(name=model.name, peak_flops=model.peak_flops,
                    peak_bandwidth=model.peak_bandwidth)


def op_scatter(ops: Sequence[OpSpec], roofline: Roofline
               ) -> List[Dict[str, float]]:
    """Where each operator lands under a roofline (plot-ready rows)."""
    rows = []
    for op in ops:
        intensity = op.arithmetic_intensity
        rows.append({
            "op": op.name,
            "kind": op.kind.value,
            "intensity": intensity,
            "attainable_tflops": roofline.attainable_flops(intensity) / TERA,
            "bound": roofline.bound_of(intensity),
        })
    return rows


def stage_intensity(config: LLMConfig, context_len: int,
                    sum_stage: bool = False,
                    input_len: int = 64) -> float:
    """Aggregate arithmetic intensity of a stage (FLOPs/byte)."""
    ops = sum_stage_ops(config, input_len) if sum_stage \
        else gen_stage_ops(config, context_len)
    flops = sum(op.flops for op in ops)
    traffic = sum(op.total_bytes for op in ops)
    return flops / traffic


def roofline_report(config: LLMConfig, models: Sequence[DevicePerfModel],
                    context_len: int = 576) -> List[Dict[str, object]]:
    """Rows comparing devices on a model's sum and gen stages.

    Shows the paper's crossover quantitatively: gen-stage intensity sits
    below every ridge point (memory-bound everywhere -> bandwidth wins),
    sum-stage intensity sits above small accelerators' ridge points
    (compute-bound -> FLOPS win).
    """
    gen_i = stage_intensity(config, context_len)
    sum_i = stage_intensity(config, context_len, sum_stage=True)
    rows = []
    for model in models:
        roof = device_roofline(model)
        rows.append({
            "device": roof.name,
            "ridge_intensity": roof.ridge_intensity,
            "gen_intensity": gen_i,
            "gen_bound": roof.bound_of(gen_i),
            "gen_attainable_tflops":
                roof.attainable_flops(gen_i) / TERA,
            "sum_intensity": sum_i,
            "sum_bound": roof.bound_of(sum_i),
            "sum_attainable_tflops":
                roof.attainable_flops(sum_i) / TERA,
        })
    return rows


def log_intensity_grid(lo: float = 0.125, hi: float = 1024.0,
                       points: int = 27) -> List[float]:
    """A log-spaced intensity axis for roofline plots."""
    if lo <= 0 or hi <= lo or points < 2:
        raise ConfigurationError("bad intensity grid")
    return [float(v) for v in np.geomspace(lo, hi, points)]
