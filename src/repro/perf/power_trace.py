"""Power-over-time traces for inference requests.

Fig. 10's energy numbers integrate a power curve the paper measured; this
module reconstructs that curve from the models: per-stage operating
points (compute/bandwidth utilization -> watts) laid out on the request
timeline.  Useful for energy audits ("where do the joules go?") and for
plotting the sum-stage power spike followed by the long bandwidth-bound
generation plateau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.llm.config import LLMConfig
from repro.perf.analytical import DevicePerfModel, InferenceTimer


@dataclass(frozen=True)
class PowerSample:
    """One segment of the power timeline."""

    t_start_s: float
    t_end_s: float
    watts: float
    stage: str

    @property
    def duration_s(self) -> float:
        return self.t_end_s - self.t_start_s

    @property
    def energy_j(self) -> float:
        return self.watts * self.duration_s


@dataclass
class PowerTrace:
    """A request's power timeline plus summary statistics."""

    samples: List[PowerSample]

    @property
    def total_energy_j(self) -> float:
        return sum(s.energy_j for s in self.samples)

    @property
    def total_time_s(self) -> float:
        return self.samples[-1].t_end_s if self.samples else 0.0

    @property
    def mean_power_w(self) -> float:
        return self.total_energy_j / self.total_time_s \
            if self.total_time_s else 0.0

    @property
    def peak_power_w(self) -> float:
        return max((s.watts for s in self.samples), default=0.0)

    def energy_by_stage(self) -> Dict[str, float]:
        """Joules per stage kind ('sum' vs 'gen')."""
        breakdown: Dict[str, float] = {}
        for sample in self.samples:
            kind = sample.stage.split("@")[0]
            breakdown[kind] = breakdown.get(kind, 0.0) + sample.energy_j
        return breakdown

    def rows(self) -> List[Dict[str, float]]:
        """Plot-ready rows."""
        return [{"t_start_s": s.t_start_s, "t_end_s": s.t_end_s,
                 "watts": s.watts, "stage": s.stage}
                for s in self.samples]


def power_trace(config: LLMConfig, model: DevicePerfModel, input_len: int,
                output_len: int, tensor_parallel: int = 1,
                max_segments: int = 64) -> PowerTrace:
    """Build a request's power timeline from the analytical model.

    Gen stages are grouped into at most ``max_segments`` segments (each
    segment's power from its representative context length) so long
    generations stay cheap to trace.
    """
    if input_len <= 0 or output_len <= 0:
        raise ConfigurationError("token counts must be positive")
    if max_segments < 1:
        raise ConfigurationError("need at least one segment")
    timer = InferenceTimer(config, model, tensor_parallel=tensor_parallel)
    samples: List[PowerSample] = []
    clock = 0.0

    sum_r = timer.sum_stage(input_len)
    samples.append(PowerSample(t_start_s=0.0, t_end_s=sum_r.time_s,
                               watts=sum_r.energy_j / sum_r.time_s,
                               stage="sum"))
    clock = sum_r.time_s

    gen_count = output_len - 1
    if gen_count > 0:
        contexts = np.arange(input_len + 1, input_len + output_len)
        groups = np.array_split(contexts,
                                min(max_segments, gen_count))
        for group in groups:
            mid = int(group[len(group) // 2])
            stage = timer.gen_stage(mid)
            duration = stage.time_s * len(group)
            samples.append(PowerSample(
                t_start_s=clock, t_end_s=clock + duration,
                watts=stage.energy_j / stage.time_s,
                stage=f"gen@{mid}"))
            clock += duration
    return PowerTrace(samples=samples)
