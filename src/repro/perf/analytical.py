"""Analytical (roofline + overhead) performance model for both platforms.

Implements a common per-operator interface for the GPU and the CXL-PNM
accelerator and integrates it over the op graphs of a full inference:
one sum stage plus ``output_len - 1`` gen stages with a growing KV cache.
Gen-stage time is affine in the context length between roofline regime
switches, so the integrator samples context lengths and integrates with a
trapezoid rule — exact-summation is available (and tested) for small
token counts.

This is the reproduction analog of the paper's validated performance
simulator (§VII); the instruction-level simulator in
:mod:`repro.perf.simulator` cross-checks it on compiled decoder stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.accelerator.device import CXLPNMDevice
from repro.accelerator.mpu import MpuTiming
from repro.accelerator.vpu import VpuTiming
from repro.errors import ConfigurationError
from repro.gpu.device import GPUSpec
from repro.gpu.kernels import GpuKernelModel
from repro.gpu.power import GpuPowerModel
from repro.llm.batching import batched_gen_stage_ops
from repro.llm.config import LLMConfig
from repro.llm.graph import gen_stage_ops, sum_stage_ops
from repro.llm.ops import OpKind, OpSpec
import repro.perf.calibration as cal
from repro.perf.metrics import InferenceResult, StageResult


class DevicePerfModel(Protocol):
    """What the inference timer needs from a device."""

    name: str

    @property
    def peak_flops(self) -> float: ...

    @property
    def peak_bandwidth(self) -> float: ...

    def op_time(self, op: OpSpec) -> float: ...

    def power_watts(self, compute_utilization: float,
                    bandwidth_utilization: float) -> float: ...


@dataclass(frozen=True)
class GpuPerfModel:
    """GPU implementation of the device performance interface."""

    spec: GPUSpec

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def peak_flops(self) -> float:
        return self.spec.fp16_tensor_flops

    @property
    def peak_bandwidth(self) -> float:
        return self.spec.memory_bandwidth

    def op_time(self, op: OpSpec) -> float:
        return GpuKernelModel(self.spec).op_time(op)

    def power_watts(self, compute_utilization: float,
                    bandwidth_utilization: float) -> float:
        return GpuPowerModel(self.spec).power_watts(
            compute_utilization, bandwidth_utilization)


@dataclass(frozen=True)
class PnmPerfModel:
    """CXL-PNM implementation of the device performance interface.

    Matmuls take ``max(compute, memory-stream)`` with tile-rounded compute
    cycles from :class:`MpuTiming`; vector ops run on the VPU; every
    instruction pays the control unit's dispatch overhead.
    """

    device: CXLPNMDevice

    @property
    def name(self) -> str:
        return "CXL-PNM"

    @property
    def peak_flops(self) -> float:
        spec = self.device.spec
        return spec.peak_gemm_flops + spec.peak_gemv_flops

    @property
    def peak_bandwidth(self) -> float:
        return self.device.peak_memory_bandwidth

    def _matmul_time(self, op: OpSpec) -> float:
        mpu = self.device.mpu_timing()
        clock = self.device.spec.clock_hz
        # Attention ops fold heads into flops; recover the per-matmul
        # shape scale so tile rounding applies per head.
        base_flops = 2.0 * max(op.m, 1) * op.n * op.k
        head_factor = max(1.0, op.flops / base_flops)
        bandwidth = self.device.effective_memory_bandwidth
        if op.kind is OpKind.GEMM:
            # A GEMM can run on the PE array (weights stream once; rows
            # round up to the 64-row array) or as row-by-row GEMV sweeps
            # on the adder trees (each sweep re-streams the weights).
            # The control unit picks the faster datapath; tree-only
            # designs (DFX) have no choice — the memory blow-up the
            # paper's PE array exists to remove.
            sweep_traffic = op.total_bytes + (op.m - 1) * op.weight_bytes
            sweep_cycles = mpu.pipeline_fill_cycles + op.m * (
                mpu.gemv_cycles(op.k, op.n) - mpu.pipeline_fill_cycles)
            tree_time = max(head_factor * sweep_cycles / clock,
                            sweep_traffic / bandwidth)
            if mpu.gemm_via_tree:
                return tree_time + cal.PNM_INSTRUCTION_OVERHEAD_S
            pea_cycles = mpu.gemm_cycles(op.m, op.k, op.n)
            pea_time = max(head_factor * pea_cycles / clock,
                           op.total_bytes / bandwidth)
            return min(pea_time, tree_time) \
                + cal.PNM_INSTRUCTION_OVERHEAD_S
        cycles = mpu.gemv_cycles(op.k, op.n)
        compute = head_factor * cycles / clock
        memory = op.total_bytes / bandwidth
        return max(compute, memory) + cal.PNM_INSTRUCTION_OVERHEAD_S

    def _vector_time(self, op: OpSpec) -> float:
        vpu = self.device.vpu_timing()
        elements = op.output_bytes / op.elem_bytes
        passes = {
            OpKind.SOFTMAX: 3.0, OpKind.LAYERNORM: 3.0, OpKind.GELU: 2.0,
        }.get(op.kind, 1.0)
        cycles = vpu.issue_cycles + passes * elements / vpu.lanes
        compute = cycles / self.device.spec.clock_hz
        memory = op.total_bytes / self.device.effective_memory_bandwidth
        return max(compute, memory) + cal.PNM_INSTRUCTION_OVERHEAD_S

    def op_time(self, op: OpSpec) -> float:
        if op.kind.is_matmul:
            return self._matmul_time(op)
        if op.kind is OpKind.EMBEDDING:
            dma = self.device.dma_timing()
            return dma.transfer_time(op.total_bytes) \
                + cal.PNM_INSTRUCTION_OVERHEAD_S
        return self._vector_time(op)

    def power_watts(self, compute_utilization: float,
                    bandwidth_utilization: float) -> float:
        return self.device.power_watts(compute_utilization,
                                       bandwidth_utilization)


#: Extra time appended to each stage (e.g. tensor-parallel all-reduces).
CommModel = Callable[[int], float]


def no_comm(_batch_tokens: int) -> float:
    return 0.0


def stage_result(name: str, ops: Sequence[OpSpec], model: DevicePerfModel,
                 comm_s: float = 0.0) -> StageResult:
    """Time one stage's operator list on a device and account energy."""
    time_s = sum(model.op_time(op) for op in ops) + comm_s
    flops = sum(op.flops for op in ops)
    mem = sum(op.total_bytes for op in ops)
    cu = min(1.0, flops / (time_s * model.peak_flops)) if time_s else 0.0
    bu = min(1.0, mem / (time_s * model.peak_bandwidth)) if time_s else 0.0
    energy = model.power_watts(cu, bu) * time_s
    return StageResult(name=name, time_s=time_s, flops=flops, mem_bytes=mem,
                       comm_s=comm_s, energy_j=energy)


@dataclass(frozen=True)
class InferenceTimer:
    """Integrates stage times over a full inference request.

    Attributes:
        config: The model.
        model: The device performance model (one device, or one device of
            a tensor-parallel group when ``tensor_parallel > 1``).
        tensor_parallel: Ways the model is split; op graphs shrink
            accordingly and ``comm`` charges the boundary collectives.
        comm: Per-stage communication model (batch tokens -> seconds).
        gen_samples: Context-length sample count for the trapezoid
            integration of gen-stage time (exact when >= output_len).
    """

    config: LLMConfig
    model: DevicePerfModel
    tensor_parallel: int = 1
    comm: CommModel = no_comm
    gen_samples: int = 24

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ConfigurationError("tensor_parallel must be >= 1")
        if self.gen_samples < 2:
            raise ConfigurationError("need at least 2 gen samples")

    def sum_stage(self, input_len: int) -> StageResult:
        ops = sum_stage_ops(self.config, input_len, self.tensor_parallel)
        return stage_result("sum", ops, self.model, self.comm(input_len))

    def gen_stage(self, context_len: int) -> StageResult:
        ops = gen_stage_ops(self.config, context_len, self.tensor_parallel)
        return stage_result(f"gen@{context_len}", ops, self.model,
                            self.comm(1))

    def _gen_total(self, input_len: int, output_len: int, exact: bool
                   ) -> StageResult:
        """Total over gen stages at context input_len+1 .. input_len+
        output_len-1 (the first output token comes from the sum stage)."""
        contexts = np.arange(input_len + 1, input_len + output_len)
        if len(contexts) == 0:
            return StageResult(name="gen", time_s=0.0, flops=0.0,
                               mem_bytes=0.0, energy_j=0.0)
        if exact or len(contexts) <= self.gen_samples:
            results = [self.gen_stage(int(c)) for c in contexts]
            return StageResult(
                name="gen",
                time_s=sum(r.time_s for r in results),
                flops=sum(r.flops for r in results),
                mem_bytes=sum(r.mem_bytes for r in results),
                comm_s=sum(r.comm_s for r in results),
                energy_j=sum(r.energy_j for r in results))
        samples = np.unique(np.linspace(contexts[0], contexts[-1],
                                        self.gen_samples).astype(int))
        sampled = [self.gen_stage(int(c)) for c in samples]

        def integrate(values: List[float]) -> float:
            # Mean stage value via trapezoid over context, times stages.
            return float(np.trapezoid(values, samples)
                         / (samples[-1] - samples[0])) * len(contexts)

        return StageResult(
            name="gen",
            time_s=integrate([r.time_s for r in sampled]),
            flops=integrate([r.flops for r in sampled]),
            mem_bytes=integrate([r.mem_bytes for r in sampled]),
            comm_s=integrate([r.comm_s for r in sampled]),
            energy_j=integrate([r.energy_j for r in sampled]))

    def run(self, input_len: int, output_len: int,
            exact: bool = False) -> InferenceResult:
        """Latency and energy of one request on one model instance.

        Energy covers the whole tensor-parallel group (``tensor_parallel``
        devices each running the shrunken op graph for the same duration).
        """
        if input_len <= 0 or output_len <= 0:
            raise ConfigurationError("token counts must be positive")
        sum_r = self.sum_stage(input_len)
        gen_r = self._gen_total(input_len, output_len, exact)
        group_energy = (sum_r.energy_j + gen_r.energy_j) \
            * self.tensor_parallel
        return InferenceResult(
            device_name=self.model.name,
            input_len=input_len,
            output_len=output_len,
            sum_time_s=sum_r.time_s,
            gen_time_s=gen_r.time_s,
            energy_j=group_energy)


@dataclass
class BatchStepTimer:
    """Per-iteration costs for the continuous-batching scheduler.

    One *decode step* runs a batched gen stage — each running request
    contributes one token row, the weights stream once — so its cost
    comes from :func:`~repro.llm.batching.batched_gen_stage_ops`; one
    *prefill* is the plain sum stage of a newly admitted request.

    Decode cost is affine in the attention span, so the scheduler may
    quote a step at the batch's mean context.  Shapes repeat across
    thousands of simulated iterations; results are memoized after
    quantizing the context up to ``context_quantum`` (set it to 1 for
    exact per-context costing).

    Attributes:
        config: The model.
        model: Device performance model (one device or one tensor-
            parallel shard).
        tensor_parallel: Ways the model is split.
        comm: Per-step communication model (batch tokens -> seconds).
        context_quantum: Context quantization step for memoization.
    """

    config: LLMConfig
    model: DevicePerfModel
    tensor_parallel: int = 1
    comm: CommModel = no_comm
    context_quantum: int = 32
    _prefill_cache: Dict[int, float] = field(
        default_factory=dict, repr=False)
    _decode_cache: Dict[Tuple[int, int], float] = field(
        default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ConfigurationError("tensor_parallel must be >= 1")
        if self.context_quantum < 1:
            raise ConfigurationError("context_quantum must be >= 1")

    def prefill_s(self, input_len: int) -> float:
        """Seconds to run one request's sum stage (emits its first token)."""
        if input_len < 1:
            raise ConfigurationError("input_len must be >= 1")
        cached = self._prefill_cache.get(input_len)
        if cached is None:
            ops = sum_stage_ops(self.config, input_len, self.tensor_parallel)
            cached = sum(self.model.op_time(op) for op in ops) \
                + self.comm(input_len)
            self._prefill_cache[input_len] = cached
        return cached

    def _quantize(self, context_len: int) -> int:
        q = self.context_quantum
        quantized = ((context_len + q - 1) // q) * q
        # Never quantize past the model's position budget (unless the
        # caller's context already exceeds it).
        return min(quantized, max(context_len, self.config.max_seq_len))

    def decode_step_s(self, batch: int, context_len: int) -> float:
        """Seconds for one batched gen step at the given attention span."""
        if batch < 1 or context_len < 1:
            raise ConfigurationError("batch and context must be >= 1")
        key = (batch, self._quantize(context_len))
        cached = self._decode_cache.get(key)
        if cached is None:
            ops = batched_gen_stage_ops(self.config, key[1], batch,
                                        self.tensor_parallel)
            cached = sum(self.model.op_time(op) for op in ops) \
                + self.comm(batch)
            self._decode_cache[key] = cached
        return cached

    def decode_steps_s(self, batch: int,
                       context_lens: Sequence[int]) -> np.ndarray:
        """Seconds for a cohort of decode steps at one batch size.

        Vectorized companion to :meth:`decode_step_s` for the event
        kernel's macro-steps: quantization happens in one numpy pass,
        the underlying cost model is consulted once per *unique*
        quantized context (at most ``len(context_lens) //
        context_quantum + 1`` times for a consecutive run), and each
        returned element is bit-identical to the scalar call.
        """
        ctxs = np.asarray(context_lens, dtype=np.int64)
        if ctxs.size == 0:
            return np.empty(0, dtype=float)
        if batch < 1 or int(ctxs.min()) < 1:
            raise ConfigurationError("batch and context must be >= 1")
        q = self.context_quantum
        quantized = np.minimum(-(ctxs // -q) * q,
                               np.maximum(ctxs, self.config.max_seq_len))
        uniques, inverse = np.unique(quantized, return_inverse=True)
        costs = np.array([self.decode_step_s(batch, int(u))
                          for u in uniques], dtype=float)
        return costs[inverse]
