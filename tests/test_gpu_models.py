"""GPU baseline: device specs, kernel model, offload, multi-GPU, power."""

import pytest

from repro.errors import ParallelismError, SimulationError
from repro.gpu import (
    A100_40G,
    A100_80G,
    GpuKernelModel,
    GpuPowerModel,
    H100_SXM,
    NvlinkAllReduce,
    OffloadModel,
    TensorParallelGpu,
)
from repro.llm import OPT_13B, OPT_30B, OPT_66B, OPT_6_7B
from repro.llm.graph import gen_stage_ops, sum_stage_ops
from repro.llm.ops import matmul_op, vector_op, OpKind
import repro.perf.calibration as cal


class TestSpecs:
    def test_a100_datasheet(self):
        assert A100_40G.memory_bandwidth == pytest.approx(1.555e12)
        assert A100_40G.fp16_tensor_flops == 312e12
        assert A100_40G.price_usd == 10_000.0

    def test_fits_leaves_headroom(self):
        assert A100_40G.fits(int(39e9))
        assert not A100_40G.fits(int(41e9))

    def test_opt13b_fits_single_a100(self):
        assert A100_40G.fits(OPT_13B.param_bytes)

    def test_opt30b_overflows_single_a100(self):
        assert not A100_40G.fits(OPT_30B.param_bytes)
        assert A100_80G.fits(OPT_30B.param_bytes)


class TestKernelModel:
    def test_gemm_efficiency_grows_with_rows(self):
        model = GpuKernelModel(A100_40G)
        assert model.gemm_flop_efficiency(1) \
            < model.gemm_flop_efficiency(64) \
            < model.gemm_flop_efficiency(4096) <= cal.GPU_GEMM_MAX_EFF

    def test_gemv_efficiency_grows_with_stream_size(self):
        model = GpuKernelModel(A100_40G)
        assert model.gemv_bandwidth_efficiency(1e6) \
            < model.gemv_bandwidth_efficiency(1e9)

    def test_every_op_pays_launch_overhead(self):
        model = GpuKernelModel(A100_40G)
        tiny = vector_op("t", OpKind.GELU, elements=1, dtype_bytes=2)
        assert model.op_time(tiny) >= model.launch_overhead_s

    def test_gemv_time_bandwidth_bound(self):
        model = GpuKernelModel(A100_40G)
        op = matmul_op("v", m=1, n=5120, k=5120, dtype_bytes=2)
        t = model.op_time(op) - model.launch_overhead_s
        implied_bw = op.total_bytes / t
        assert implied_bw < A100_40G.memory_bandwidth

    def test_utilization_metrics(self):
        model = GpuKernelModel(A100_40G)
        gemm = matmul_op("g", m=64, n=512, k=512, dtype_bytes=2)
        gemv = matmul_op("v", m=1, n=512, k=512, dtype_bytes=2)
        assert model.op_reported_utilization(gemm) > \
            model.op_reported_utilization(gemv)
        assert 0 < model.op_flop_utilization(gemm) <= 1.0

    def test_invalid_shapes_rejected(self):
        model = GpuKernelModel(A100_40G)
        with pytest.raises(SimulationError):
            model.gemm_flop_efficiency(0)
        with pytest.raises(SimulationError):
            model.gemv_bandwidth_efficiency(0)


class TestOffload:
    def test_needed_only_when_overflowing(self):
        assert OffloadModel(spec=A100_40G, config=OPT_30B).is_needed
        assert not OffloadModel(spec=A100_40G, config=OPT_13B).is_needed

    def test_memcpy_dominates_for_opt30b(self):
        offload = OffloadModel(spec=A100_40G, config=OPT_30B)
        kernels = GpuKernelModel(A100_40G)
        ops = gen_stage_ops(OPT_30B, 128)
        assert offload.memcpy_fraction(ops, kernels) > 0.9

    def test_fitting_model_runs_at_kernel_speed(self):
        offload = OffloadModel(spec=A100_40G, config=OPT_13B)
        kernels = GpuKernelModel(A100_40G)
        ops = gen_stage_ops(OPT_13B, 128)
        kernel_time = sum(kernels.op_time(op) for op in ops)
        assert offload.stage_time(ops, kernels) == pytest.approx(
            kernel_time)
        assert offload.memcpy_fraction(ops, kernels) == 0.0

    def test_pinned_faster_than_pageable(self):
        kernels = GpuKernelModel(A100_40G)
        ops = sum_stage_ops(OPT_30B, 64)
        pageable = OffloadModel(spec=A100_40G, config=OPT_30B)
        pinned = OffloadModel(spec=A100_40G, config=OPT_30B,
                              h2d_bandwidth=cal.PCIE_H2D_PINNED_BYTES_S)
        assert pinned.stage_time(ops, kernels) \
            < pageable.stage_time(ops, kernels) / 2

    def test_resident_fraction_bounds(self):
        offload = OffloadModel(spec=A100_40G, config=OPT_30B)
        assert 0.0 < offload.resident_fraction < 1.0


class TestMultiGpu:
    def test_allreduce_latency_floor(self):
        ar = NvlinkAllReduce(A100_40G, 8)
        assert ar.time(0) == pytest.approx(cal.NVLINK_ALLREDUCE_LATENCY_S)

    def test_allreduce_scales_with_payload(self):
        ar = NvlinkAllReduce(A100_40G, 8)
        assert ar.time(1e9) > 100 * ar.time(1e6) / 200

    def test_allreduce_needs_two_devices(self):
        with pytest.raises(ParallelismError):
            NvlinkAllReduce(A100_40G, 1)

    def test_opt66b_fits_only_split_8_ways(self):
        assert not TensorParallelGpu(A100_40G, 2, OPT_66B).fits()
        assert TensorParallelGpu(A100_40G, 8, OPT_66B).fits()

    def test_tp_must_divide_heads(self):
        with pytest.raises(ParallelismError):
            TensorParallelGpu(A100_40G, 5, OPT_66B)

    def test_comm_time_zero_for_single_device(self):
        tp = TensorParallelGpu(A100_40G, 1, OPT_6_7B)
        assert tp.comm_time_per_stage(64) == 0.0

    def test_comm_time_proportional_to_layers(self):
        t8 = TensorParallelGpu(A100_40G, 8, OPT_66B).comm_time_per_stage(1)
        per_layer = NvlinkAllReduce(A100_40G, 8).time(
            OPT_66B.d_model * OPT_66B.dtype_bytes)
        assert t8 == pytest.approx(OPT_66B.num_layers * 2 * per_layer)


class TestPower:
    def test_anchored_to_paper_measurement(self):
        # Bandwidth-bound OPT-13B inference measured 253 W (§VIII-A).
        power = GpuPowerModel(A100_40G).power_watts(0.005, 0.72)
        assert power == pytest.approx(253.0, rel=0.05)

    def test_capped_at_tdp(self):
        assert GpuPowerModel(A100_40G).power_watts(1.0, 1.0) \
            <= A100_40G.tdp_watts

    def test_h100_has_higher_cap(self):
        assert GpuPowerModel(H100_SXM).power_watts(1.0, 1.0) \
            <= H100_SXM.tdp_watts

    def test_bad_utilization_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            GpuPowerModel(A100_40G).power_watts(2.0, 0.0)
