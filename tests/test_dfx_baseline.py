"""The DFX baseline accelerator and the PE-array ablation behaviour."""

import pytest

from repro.accelerator import CXLPNMDevice
from repro.accelerator.dfx import (
    DFX_SPEC,
    HBM2_DFX,
    dfx_device,
    dfx_memory,
    dfx_mpu_timing,
)
from repro.llm import OPT_6_7B
from repro.perf.analytical import InferenceTimer, PnmPerfModel


class TestDfxConfiguration:
    def test_hbm2_bandwidth_near_paper_460gb(self):
        assert dfx_memory().peak_bandwidth == pytest.approx(460.8e9)

    def test_dfx_memory_capacity_8gb(self):
        assert dfx_memory().capacity_bytes == pytest.approx(8e9)

    def test_dfx_has_no_pe_array(self):
        assert not DFX_SPEC.has_pe_array
        assert DFX_SPEC.peak_gemm_flops == 0.0

    def test_dfx_tree_peak_half_of_cxl_pnm(self):
        assert DFX_SPEC.peak_gemv_flops == pytest.approx(
            CXLPNMDevice().spec.peak_gemv_flops / 2)

    def test_timing_uses_tree_for_gemm(self):
        timing = dfx_mpu_timing()
        assert timing.gemm_via_tree
        # A GEMM costs ~m GEMV sweeps.
        one = timing.gemv_cycles(1024, 1024)
        swept = timing.gemm_cycles(8, 1024, 1024)
        assert swept == pytest.approx(
            timing.pipeline_fill_cycles
            + 8 * (one - timing.pipeline_fill_cycles))

    def test_device_timing_derived_from_spec(self):
        assert dfx_device().mpu_timing().gemm_via_tree
        assert not CXLPNMDevice().mpu_timing().gemm_via_tree


class TestDfxBehaviour:
    """The paper's §V-C motivation, as measurable behaviour."""

    def test_sum_stage_dominates_dfx_at_long_inputs(self):
        dfx = PnmPerfModel(dfx_device())
        timer = InferenceTimer(OPT_6_7B, dfx)
        result = timer.run(512, 256)
        assert result.sum_time_s > result.gen_time_s * 0.5

    def test_pe_array_accelerates_sum_stage(self):
        dfx = InferenceTimer(OPT_6_7B, PnmPerfModel(dfx_device()))
        pnm = InferenceTimer(OPT_6_7B, PnmPerfModel(CXLPNMDevice()))
        assert dfx.sum_stage(256).time_s > 5 * pnm.sum_stage(256).time_s

    def test_gen_stage_gap_tracks_bandwidth(self):
        """For GEMV-bound gen stages DFX loses by roughly the bandwidth
        ratio (1.1 TB/s vs 460 GB/s), not by compute."""
        dfx_dev, pnm_dev = dfx_device(), CXLPNMDevice()
        dfx = InferenceTimer(OPT_6_7B, PnmPerfModel(dfx_dev))
        pnm = InferenceTimer(OPT_6_7B, PnmPerfModel(pnm_dev))
        ratio = dfx.gen_stage(576).time_s / pnm.gen_stage(576).time_s
        bw_ratio = pnm_dev.effective_memory_bandwidth \
            / dfx_dev.effective_memory_bandwidth
        assert ratio == pytest.approx(bw_ratio, rel=0.2)

    def test_opt13b_does_not_fit_dfx_memory(self):
        from repro.llm import OPT_13B
        assert OPT_13B.param_bytes > dfx_memory().capacity_bytes
