"""Pipeline-parallel plans: latency, throughput, bubbles."""

import pytest

from repro.appliance.pipeline import PipelinePlan
from repro.errors import ParallelismError
from repro.gpu import A100_40G, NvlinkAllReduce
from repro.llm import OPT_66B
from repro.perf.analytical import GpuPerfModel


def _nvlink_hop(payload_bytes: float) -> float:
    # One p2p send: half an all-reduce's latency plus wire time.
    return 10e-6 + payload_bytes / (600e9 * 0.75)


@pytest.fixture(scope="module")
def pp8():
    return PipelinePlan(config=OPT_66B, num_stages=8,
                        model=GpuPerfModel(A100_40G), hop=_nvlink_hop)


class TestPlan:
    def test_layers_split_evenly(self, pp8):
        assert pp8.layers_per_stage == 8
        assert pp8.params_per_device == pytest.approx(
            OPT_66B.num_layers * OPT_66B.layer_param_bytes / 8)

    def test_indivisible_layers_rejected(self):
        with pytest.raises(ParallelismError):
            PipelinePlan(config=OPT_66B, num_stages=7,
                         model=GpuPerfModel(A100_40G), hop=_nvlink_hop)

    def test_zero_stages_rejected(self):
        with pytest.raises(ParallelismError):
            PipelinePlan(config=OPT_66B, num_stages=0,
                         model=GpuPerfModel(A100_40G), hop=_nvlink_hop)


class TestTiming:
    def test_token_latency_near_full_model_time(self, pp8):
        """Pipelining does not cut single-token latency: the token still
        visits every layer."""
        single = PipelinePlan(config=OPT_66B, num_stages=1,
                              model=GpuPerfModel(A100_40G),
                              hop=_nvlink_hop)
        assert pp8.token_latency(576) >= single.token_latency(576) * 0.95

    def test_steady_throughput_scales_with_stages(self, pp8):
        """A full pipeline serves ~num_stages tokens concurrently."""
        single = PipelinePlan(config=OPT_66B, num_stages=1,
                              model=GpuPerfModel(A100_40G),
                              hop=_nvlink_hop)
        speedup = pp8.steady_throughput(576) / single.steady_throughput(576)
        assert speedup == pytest.approx(8.0, rel=0.1)

    def test_bubble_fraction(self, pp8):
        assert pp8.pipeline_bubble_fraction(1) == pytest.approx(7 / 8)
        assert pp8.pipeline_bubble_fraction(8) == 0.0
        assert pp8.pipeline_bubble_fraction(20) == 0.0
        with pytest.raises(ParallelismError):
            pp8.pipeline_bubble_fraction(0)

    def test_hop_cost_included(self):
        slow_hop = PipelinePlan(config=OPT_66B, num_stages=8,
                                model=GpuPerfModel(A100_40G),
                                hop=lambda b: 1e-3)
        fast_hop = PipelinePlan(config=OPT_66B, num_stages=8,
                                model=GpuPerfModel(A100_40G),
                                hop=lambda b: 0.0)
        assert slow_hop.token_latency(576) \
            == pytest.approx(fast_hop.token_latency(576) + 7e-3, rel=0.01)
