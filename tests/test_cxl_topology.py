"""Type-3 devices, HDM decode, and the unified multi-device topology."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cxl import CXLType3Device, build_topology
from repro.errors import AddressError, ConfigurationError
from repro.units import GiB


class TestDeviceDecode:
    def test_hdm_range_from_module(self):
        device = CXLType3Device(device_id=0, hdm_base=1 << 40)
        assert device.hdm_size == 512e9
        assert device.contains(1 << 40)
        assert not device.contains((1 << 40) - 1)

    def test_local_host_roundtrip(self):
        device = CXLType3Device(device_id=0, hdm_base=1 << 40)
        local = device.to_local((1 << 40) + 12345)
        assert local == 12345
        assert device.to_host(local) == (1 << 40) + 12345

    def test_out_of_range_rejected(self):
        device = CXLType3Device(device_id=0, hdm_base=0)
        with pytest.raises(AddressError):
            device.to_local(device.hdm_size)
        with pytest.raises(AddressError):
            device.to_host(device.hdm_size)

    def test_register_region_above_hdm(self):
        device = CXLType3Device(device_id=0, hdm_base=0)
        region = device.register_region
        assert region.base == device.hdm_end
        assert region.offset_of(region.base + 8) == 8
        with pytest.raises(AddressError):
            region.offset_of(region.base - 1)

    def test_route_spreads_across_channels(self):
        device = CXLType3Device(device_id=0, hdm_base=0)
        granule = device.interleave.granule_bytes
        channels = {device.route(i * granule)[0] for i in range(64)}
        assert len(channels) == device.interleave.num_channels

    def test_route_out_of_range(self):
        device = CXLType3Device(device_id=0, hdm_base=0)
        with pytest.raises(AddressError):
            device.route(device.hdm_size + 1)


class TestTopology:
    def test_eight_device_appliance_capacity(self):
        topo = build_topology(8)
        assert topo.total_device_capacity == 8 * 512e9

    def test_numa_node_numbering(self):
        topo = build_topology(2, host_dram_bytes=GiB)
        assert topo.numa_node_of(0) == 0
        assert topo.numa_node_of(topo.devices[0].hdm_base) == 1
        assert topo.numa_node_of(topo.devices[1].hdm_base) == 2

    def test_device_ranges_disjoint(self):
        topo = build_topology(4)
        for a in topo.devices:
            for b in topo.devices:
                if a.device_id != b.device_id:
                    assert a.hdm_end <= b.hdm_base or b.hdm_end <= a.hdm_base

    def test_unmapped_address_rejected(self):
        topo = build_topology(1, host_dram_bytes=GiB)
        beyond = topo.devices[-1].register_region.base \
            + topo.devices[-1].register_region.size + GiB
        with pytest.raises(AddressError):
            topo.device_of(beyond)

    def test_transfer_hops(self):
        topo = build_topology(2, host_dram_bytes=GiB)
        host_addr = 0
        dev0 = topo.devices[0].hdm_base
        dev1 = topo.devices[1].hdm_base
        assert topo.transfer_hops(host_addr, host_addr) == 0
        assert topo.transfer_hops(host_addr, dev0) == 1
        assert topo.transfer_hops(dev0, dev1) == 2
        assert topo.transfer_hops(dev0, dev0 + 64) == 0

    def test_d2d_time_scales_with_bytes(self):
        topo = build_topology(2)
        small = topo.d2d_transfer_time(1e6)
        large = topo.d2d_transfer_time(1e9)
        assert large > small * 100

    def test_d2d_zero_free(self):
        assert build_topology(2).d2d_transfer_time(0) == 0.0

    def test_needs_a_device(self):
        with pytest.raises(ConfigurationError):
            build_topology(0)

    @settings(max_examples=20, deadline=None)
    @given(offset=st.integers(0, int(512e9) - 1))
    def test_every_device_byte_decodes_to_its_device(self, offset):
        topo = build_topology(3)
        device = topo.devices[1]
        assert topo.device_of(device.hdm_base + offset) is device
