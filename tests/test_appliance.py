"""Appliance composition: plans, comm models, clusters."""

import pytest

from repro.appliance import (
    CxlCommModel,
    GpuAppliance,
    GpuCommModel,
    ParallelismPlan,
    PnmAppliance,
    devices_required,
    feasible_plans,
    params_per_device,
)
from repro.errors import ParallelismError
from repro.gpu import A100_40G
from repro.llm import OPT_13B, OPT_66B
from repro.units import GB


class TestParallelismPlan:
    def test_num_devices(self):
        assert ParallelismPlan(4, 2).num_devices == 8

    def test_label(self):
        assert ParallelismPlan(4, 2).label == "DP=4 x MP=2"

    def test_degrees_must_be_positive(self):
        with pytest.raises(ParallelismError):
            ParallelismPlan(0, 8)

    def test_validate_device_count(self):
        with pytest.raises(ParallelismError):
            ParallelismPlan(2, 2).validate_for(OPT_66B, 8, 512 * GB)

    def test_validate_head_divisibility(self):
        with pytest.raises(ParallelismError):
            ParallelismPlan(1, 7).validate_for(OPT_66B, 7, 512 * GB)

    def test_validate_memory_capacity(self):
        # OPT-66B (132 GB) does not fit one 40 GB device.
        with pytest.raises(ParallelismError):
            ParallelismPlan(8, 1).validate_for(OPT_66B, 8, int(40e9))

    def test_kv_reserve_counts(self):
        plan = ParallelismPlan(8, 1)
        plan.validate_for(OPT_66B, 8, 512 * GB, kv_reserve_bytes=GB)
        with pytest.raises(ParallelismError):
            plan.validate_for(OPT_66B, 8, int(133e9),
                              kv_reserve_bytes=5 * GB)


class TestPartitioning:
    def test_params_split_evenly_plus_replication(self):
        full = params_per_device(OPT_66B, 1)
        half = params_per_device(OPT_66B, 2)
        replicated = (OPT_66B.embedding_params + 2 * OPT_66B.d_model) * 2
        assert half == pytest.approx((full - replicated) / 2 + replicated,
                                     rel=0.001)

    def test_feasible_plans_for_opt66b(self):
        # On 8x 40 GB GPUs the model must split at least 4 ways; on
        # 8x 512 GB CXL-PNM every DP x MP split fits.
        gpu_plans = feasible_plans(OPT_66B, 8, int(40e9 * 0.94))
        assert {p.tensor_parallel for p in gpu_plans} == {4, 8}
        pnm_plans = feasible_plans(OPT_66B, 8, 512 * GB)
        assert {p.tensor_parallel for p in pnm_plans} == {1, 2, 4, 8}

    def test_devices_required(self):
        assert devices_required(OPT_13B, 512 * GB) == 1
        assert devices_required(OPT_66B, int(40e9)) >= 4

    def test_devices_required_impossible(self):
        with pytest.raises(ParallelismError):
            devices_required(OPT_66B, 1000, kv_reserve_bytes=999)


class TestCommModels:
    def test_single_device_free(self):
        assert CxlCommModel(OPT_66B, 1)(1) == 0.0
        assert GpuCommModel(A100_40G, OPT_66B, 1)(1) == 0.0

    def test_comm_scales_with_batch_tokens(self):
        comm = CxlCommModel(OPT_66B, 8)
        assert comm(64) > comm(1)

    def test_gpu_allreduce_latency_dominated_for_single_token(self):
        comm = GpuCommModel(A100_40G, OPT_66B, 8)
        per_boundary = comm(1) / (OPT_66B.num_layers * 2)
        assert per_boundary == pytest.approx(20e-6, rel=0.2)

    def test_cxl_allreduce_includes_sw_overhead(self):
        comm = CxlCommModel(OPT_66B, 2)
        assert comm.allreduce_time(1024) > 10e-6


class TestAppliances:
    def test_gpu_appliance_cost(self):
        assert GpuAppliance(A100_40G, 8).hardware_cost_usd == 80_000

    def test_pnm_appliance_cost(self):
        assert PnmAppliance(num_devices=8).hardware_cost_usd == 56_000

    def test_dp8_runs_eight_instances(self):
        result = PnmAppliance(num_devices=8).run(
            OPT_66B, ParallelismPlan(8, 1), 64, 64)
        assert result.instances == 8
        assert result.throughput_tokens_per_s == pytest.approx(
            8 * result.per_request.tokens_per_s)

    def test_mp_cuts_latency_dp_raises_throughput(self):
        appliance = PnmAppliance(num_devices=8)
        dp8 = appliance.run(OPT_66B, ParallelismPlan(8, 1), 64, 64)
        mp8 = appliance.run(OPT_66B, ParallelismPlan(1, 8), 64, 64)
        assert mp8.latency_s < dp8.latency_s / 3
        assert dp8.throughput_tokens_per_s > mp8.throughput_tokens_per_s

    def test_gpu_appliance_rejects_undersplit_model(self):
        with pytest.raises(ParallelismError):
            GpuAppliance(A100_40G, 8).run(OPT_66B, ParallelismPlan(8, 1),
                                          64, 64)

    def test_appliance_power_below_device_budgets(self):
        result = PnmAppliance(num_devices=8).run(
            OPT_66B, ParallelismPlan(8, 1), 64, 64)
        assert result.appliance_power_w <= 8 * 150.0
