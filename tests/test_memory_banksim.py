"""Trace-driven bank simulator: hit rates, balance, pattern validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.memory import MODULE_LOCAL_INTERLEAVE, SEQUENTIAL_STREAM
from repro.memory.banksim import (
    BankGeometry,
    BankSimulator,
    random_trace,
    sequential_trace,
    strided_trace,
)
from repro.memory.interleave import InterleaveScheme


@pytest.fixture(scope="module")
def sim():
    return BankSimulator(MODULE_LOCAL_INTERLEAVE)


class TestGeometry:
    def test_decode_rotates_banks_per_row(self):
        geo = BankGeometry(num_banks=4, row_bytes=1024)
        assert geo.decode(0) == (0, 0)
        assert geo.decode(1024) == (1, 0)
        assert geo.decode(4 * 1024) == (0, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BankGeometry(num_banks=0)
        with pytest.raises(ConfigurationError):
            BankGeometry(t_rc_cycles=0)


class TestTraces:
    def test_sequential_trace_shape(self):
        trace = sequential_trace(0, 1024, step=64)
        assert len(trace) == 16
        assert trace[1] - trace[0] == 64

    def test_trace_validation(self):
        with pytest.raises(ConfigurationError):
            sequential_trace(0, 0)
        with pytest.raises(ConfigurationError):
            strided_trace(0, 5, 0)
        with pytest.raises(ConfigurationError):
            random_trace(32, 10)


class TestStreamingBehaviour:
    def test_sequential_stream_is_page_friendly(self, sim):
        """Validates the analytical SEQUENTIAL_STREAM assumption: a long
        weight stream should hit the row buffer ~98% of the time."""
        trace = sequential_trace(0, 8 << 20)
        result = sim.run(trace)
        assert result.row_hit_rate >= SEQUENTIAL_STREAM.row_hit_rate - 0.01

    def test_sequential_stream_balances_channels(self, sim):
        result = sim.run(sequential_trace(0, 16 << 20))
        assert result.channel_balance() > 0.95

    def test_random_traffic_hits_less(self, sim):
        seq = sim.run(sequential_trace(0, 4 << 20))
        rand = sim.run(random_trace(1 << 30, 50_000, seed=1))
        assert rand.row_hit_rate < seq.row_hit_rate

    def test_pathological_stride_conflicts(self, sim):
        """A stride equal to (channels x banks x row) hammers one row
        position of one bank set -- near-zero hits."""
        geo = sim.geometry
        stride = sim.scheme.num_channels * sim.scheme.granule_bytes \
            * geo.num_banks
        result = sim.run(strided_trace(0, 2_000, stride))
        assert result.row_hit_rate < 0.2

    def test_cycles_track_hits(self, sim):
        seq = sim.run(sequential_trace(0, 4 << 20))
        rand = sim.run(random_trace(1 << 30, 50_000, seed=2))
        assert seq.cycles_per_access < rand.cycles_per_access

    @settings(max_examples=15, deadline=None)
    @given(base=st.integers(0, 1 << 24))
    def test_hit_rate_independent_of_base(self, base):
        sim = BankSimulator(InterleaveScheme(num_channels=8,
                                             granule_bytes=4096))
        result = sim.run(sequential_trace(base, 1 << 20))
        assert result.row_hit_rate > 0.9

    def test_empty_trace(self, sim):
        result = sim.run([])
        assert result.accesses == 0
        assert result.row_hit_rate == 0.0
        assert result.channel_balance() == 0.0
