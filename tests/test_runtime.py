"""Software stack: driver semantics, library layer APIs, sessions."""

import numpy as np
import pytest

from repro.accelerator import ControlRegister, DeviceMemory, Status, isa
from repro.errors import CapacityError, ConfigurationError, DriverError
from repro.llm import random_weights, tiny_config
from repro.llm.reference import gelu, layernorm, softmax
from repro.runtime import (
    CompletionMode,
    CxlPnmDriver,
    CxlPnmLibrary,
    InferenceSession,
)
from repro.units import MiB


@pytest.fixture()
def driver():
    return CxlPnmDriver(DeviceMemory(32 * MiB))


@pytest.fixture()
def library(driver):
    return CxlPnmLibrary(driver)


def _simple_program(mem):
    region = mem.store_named("x", np.ones((2, 2), dtype=np.float32))
    return (
        isa.DmaLoad(dst="m0", addr=region.addr, shape=(2, 2)),
        isa.VpuGelu(dst="m1", src="m0"),
        isa.Free(regs=("m0", "m1")),
    )


class TestDriver:
    def test_launch_runs_and_interrupts(self, driver):
        seen = []
        driver.interrupts.register_isr(lambda: seen.append(1))
        driver.program(_simple_program(driver.memory))
        stats = driver.launch()
        assert stats.instructions == 3
        assert seen == [1]
        assert driver.control.status is Status.DONE

    def test_acknowledge_resets_to_idle(self, driver):
        driver.program(_simple_program(driver.memory))
        driver.launch()
        driver.acknowledge()
        assert driver.control.status is Status.IDLE

    def test_acknowledge_without_done_raises(self, driver):
        with pytest.raises(DriverError):
            driver.acknowledge()

    def test_polling_mode(self):
        driver = CxlPnmDriver(DeviceMemory(32 * MiB),
                              completion_mode=CompletionMode.POLLING)
        driver.program(_simple_program(driver.memory))
        driver.launch()
        assert driver.poll() is True
        assert driver.interrupts.delivered == 0

    def test_poll_in_interrupt_mode_raises(self, driver):
        with pytest.raises(DriverError):
            driver.poll()

    def test_launch_without_program_raises(self, driver):
        with pytest.raises(DriverError):
            driver.launch()

    def test_error_status_on_bad_program(self, driver):
        # Address out of range triggers ExecutionError -> ERROR status.
        bad = (isa.DmaLoad(dst="m0", addr=driver.memory.capacity,
                           shape=(2, 2)),)
        driver.program(bad)
        with pytest.raises(Exception):
            driver.launch()
        assert driver.control.status is Status.ERROR

    def test_configure_registers(self, driver):
        driver.configure(ControlRegister.NUM_LAYERS, 12)
        assert driver.read_register(ControlRegister.NUM_LAYERS) == 12


class TestLibrary:
    def test_from_to_numpy_roundtrip(self, library):
        data = np.random.default_rng(0).standard_normal((3, 5)).astype(
            np.float32)
        tensor = library.from_numpy(data)
        np.testing.assert_array_equal(library.to_numpy(tensor), data)

    def test_layernorm_api(self, library):
        x = np.random.default_rng(1).standard_normal((4, 8)).astype(
            np.float32)
        g = np.full(8, 2.0, np.float32)
        b = np.full(8, 0.1, np.float32)
        out = library.layernorm(library.from_numpy(x),
                                library.from_numpy(g),
                                library.from_numpy(b))
        np.testing.assert_array_equal(library.to_numpy(out),
                                      layernorm(x, g, b))

    def test_gelu_and_softmax_apis(self, library):
        x = np.random.default_rng(2).standard_normal((2, 6)).astype(
            np.float32)
        t = library.from_numpy(x)
        np.testing.assert_array_equal(library.to_numpy(library.gelu(t)),
                                      gelu(x))
        np.testing.assert_array_equal(library.to_numpy(library.softmax(t)),
                                      softmax(x))

    def test_conv1d_api_is_matmul_plus_bias(self, library):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        w = rng.standard_normal((4, 5)).astype(np.float32)
        b = rng.standard_normal(5).astype(np.float32)
        out = library.conv1d(library.from_numpy(x), library.from_numpy(w),
                             library.from_numpy(b))
        np.testing.assert_array_equal(library.to_numpy(out), x @ w + b)

    def test_conv1d_single_row_uses_adder_tree(self, library):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((1, 4)).astype(np.float32)
        w = rng.standard_normal((4, 3)).astype(np.float32)
        out = library.matmul(library.from_numpy(x), library.from_numpy(w))
        np.testing.assert_array_equal(library.to_numpy(out), x @ w)

    def test_masked_mm_api(self, library):
        rng = np.random.default_rng(4)
        q = rng.standard_normal((3, 4)).astype(np.float32)
        k = rng.standard_normal((5, 4)).astype(np.float32)
        out = library.masked_mm(library.from_numpy(q),
                                library.from_numpy(k), scale=0.5,
                                mask_offset=2)
        from repro.llm.reference import causal_mask
        expect = np.where(causal_mask(3, 5, 2),
                          (q @ k.T) * np.float32(0.5), np.float32(-1e9))
        np.testing.assert_array_equal(library.to_numpy(out), expect)

    def test_conv2d_api(self, library):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((1, 4, 4)).astype(np.float32)
        w = rng.standard_normal((2, 1, 2, 2)).astype(np.float32)
        out = library.conv2d(library.from_numpy(x), library.from_numpy(w))
        assert out.shape == (2, 3, 3)

    def test_add_api(self, library):
        a = np.ones((2, 2), dtype=np.float32)
        b = np.full((2, 2), 3.0, dtype=np.float32)
        out = library.add(library.from_numpy(a), library.from_numpy(b))
        np.testing.assert_array_equal(library.to_numpy(out), a + b)

    def test_shape_mismatches_rejected(self, library):
        a = library.from_numpy(np.ones((2, 2), dtype=np.float32))
        b = library.from_numpy(np.ones((3, 2), dtype=np.float32))
        with pytest.raises(ConfigurationError):
            library.add(a, b)
        with pytest.raises(ConfigurationError):
            library.conv1d(a, b)


class TestSession:
    def test_session_counts_context(self):
        # KV rows: 3 prompt + 3 fed-back tokens (the 4th is emitted only).
        session = InferenceSession(random_weights(tiny_config(), seed=1),
                                   simulate_timing=False)
        session.generate([1, 2, 3], 4)
        assert session.context_len == 6

    def test_session_reset(self):
        session = InferenceSession(random_weights(tiny_config(), seed=1),
                                   simulate_timing=False)
        session.generate([1], 2)
        session.reset()
        assert session.context_len == 0

    def test_session_trace_timing(self):
        session = InferenceSession(random_weights(tiny_config(), seed=2))
        trace = session.generate([1, 2], 3)
        assert len(trace.stage_times_s) == 3
        assert trace.total_time_s > 0
        assert trace.sum_time_s > 0

    def test_session_rejects_overlong(self):
        cfg = tiny_config(max_seq_len=8)
        session = InferenceSession(random_weights(cfg, seed=3),
                                   simulate_timing=False)
        with pytest.raises(CapacityError):
            session.generate([1, 2, 3, 4], 8)

    def test_session_rejects_empty_prompt(self):
        session = InferenceSession(random_weights(tiny_config(), seed=4),
                                   simulate_timing=False)
        with pytest.raises(ConfigurationError):
            session.generate([], 4)
