"""CXL link model: bandwidth, flits, latency."""

import pytest

from repro.cxl import FLIT_PAYLOAD_BYTES, GEN4_X16, GEN5_X16, CXLLink
from repro.errors import ConfigurationError
from repro.units import GB


class TestBandwidth:
    def test_gen5_x16_raw_near_63_gb_s(self):
        assert GEN5_X16.raw_bandwidth / GB == pytest.approx(63.0, abs=1.0)

    def test_effective_below_raw(self):
        assert GEN5_X16.effective_bandwidth < GEN5_X16.raw_bandwidth

    def test_gen4_half_of_gen5(self):
        assert GEN4_X16.raw_bandwidth == pytest.approx(
            GEN5_X16.raw_bandwidth / 2)

    def test_lane_scaling(self):
        x8 = CXLLink(lanes=8)
        assert x8.raw_bandwidth == pytest.approx(GEN5_X16.raw_bandwidth / 2)

    def test_invalid_lane_count(self):
        with pytest.raises(ConfigurationError):
            CXLLink(lanes=12)


class TestLatencyAndFlits:
    def test_read_latency_in_cxl_range(self):
        # Loaded CXL.mem reads measure ~150-400 ns in real systems.
        assert 100e-9 < GEN5_X16.read_latency_s < 500e-9

    def test_num_flits_rounds_up(self):
        assert GEN5_X16.num_flits(0) == 0
        assert GEN5_X16.num_flits(1) == 1
        assert GEN5_X16.num_flits(FLIT_PAYLOAD_BYTES) == 1
        assert GEN5_X16.num_flits(FLIT_PAYLOAD_BYTES + 1) == 2

    def test_negative_payload_rejected(self):
        from repro.errors import ProtocolError
        with pytest.raises(ProtocolError):
            GEN5_X16.num_flits(-1)


class TestTransferTime:
    def test_zero_bytes_is_free(self):
        assert GEN5_X16.transfer_time(0) == 0.0

    def test_pipelined_pays_latency_once(self):
        small = GEN5_X16.transfer_time(64)
        big = GEN5_X16.transfer_time(64 * 1000)
        assert big < 1000 * small

    def test_nonpipelined_pays_latency_per_line(self):
        pipelined = GEN5_X16.transfer_time(64 * 100, pipelined=True)
        dependent = GEN5_X16.transfer_time(64 * 100, pipelined=False)
        assert dependent > 10 * pipelined

    def test_large_transfer_approaches_effective_bandwidth(self):
        size = 1e9
        t = GEN5_X16.transfer_time(size)
        assert size / t == pytest.approx(GEN5_X16.effective_bandwidth,
                                         rel=0.01)

    def test_negative_transfer_rejected(self):
        with pytest.raises(ConfigurationError):
            GEN5_X16.transfer_time(-5)
