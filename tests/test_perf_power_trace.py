"""Power traces: timeline structure and energy consistency."""

import pytest

from repro.accelerator import CXLPNMDevice
from repro.errors import ConfigurationError
from repro.gpu import A100_40G
from repro.llm import OPT_13B, OPT_1_3B
from repro.perf.analytical import GpuPerfModel, InferenceTimer, PnmPerfModel
from repro.perf.power_trace import power_trace


@pytest.fixture(scope="module")
def pnm_trace():
    return power_trace(OPT_13B, PnmPerfModel(CXLPNMDevice()), 64, 256)


class TestTimeline:
    def test_segments_contiguous(self, pnm_trace):
        samples = pnm_trace.samples
        for prev, cur in zip(samples, samples[1:]):
            assert cur.t_start_s == pytest.approx(prev.t_end_s)

    def test_first_segment_is_sum_stage(self, pnm_trace):
        assert pnm_trace.samples[0].stage == "sum"

    def test_total_time_matches_timer(self, pnm_trace):
        timer = InferenceTimer(OPT_13B, PnmPerfModel(CXLPNMDevice()))
        reference = timer.run(64, 256)
        assert pnm_trace.total_time_s == pytest.approx(
            reference.latency_s, rel=0.02)

    def test_total_energy_matches_timer(self, pnm_trace):
        timer = InferenceTimer(OPT_13B, PnmPerfModel(CXLPNMDevice()))
        reference = timer.run(64, 256)
        assert pnm_trace.total_energy_j == pytest.approx(
            reference.energy_j, rel=0.02)

    def test_segment_cap_respected(self):
        trace = power_trace(OPT_1_3B, PnmPerfModel(CXLPNMDevice()), 16,
                            512, max_segments=8)
        gen_segments = [s for s in trace.samples if s.stage != "sum"]
        assert len(gen_segments) <= 8


class TestPowerShape:
    def test_power_within_device_envelope(self, pnm_trace):
        assert pnm_trace.peak_power_w <= 150.0
        assert pnm_trace.mean_power_w > 0

    def test_gen_dominates_energy_for_long_outputs(self, pnm_trace):
        by_stage = pnm_trace.energy_by_stage()
        assert by_stage["gen"] > 5 * by_stage["sum"]

    def test_gpu_power_higher_than_pnm(self):
        gpu = power_trace(OPT_13B, GpuPerfModel(A100_40G), 64, 128)
        pnm = power_trace(OPT_13B, PnmPerfModel(CXLPNMDevice()), 64, 128)
        assert gpu.mean_power_w > 2 * pnm.mean_power_w

    def test_rows_plot_ready(self, pnm_trace):
        rows = pnm_trace.rows()
        assert len(rows) == len(pnm_trace.samples)
        assert set(rows[0]) == {"t_start_s", "t_end_s", "watts", "stage"}


class TestValidation:
    def test_bad_inputs(self):
        model = PnmPerfModel(CXLPNMDevice())
        with pytest.raises(ConfigurationError):
            power_trace(OPT_13B, model, 0, 10)
        with pytest.raises(ConfigurationError):
            power_trace(OPT_13B, model, 10, 10, max_segments=0)

    def test_single_token_has_only_sum(self):
        trace = power_trace(OPT_1_3B, PnmPerfModel(CXLPNMDevice()), 16, 1)
        assert len(trace.samples) == 1
        assert trace.samples[0].stage == "sum"
