"""Shared fixtures: tiny models, devices, and loaded sessions."""

from __future__ import annotations

import pytest

from repro.accelerator import CXLPNMDevice, DeviceMemory, load_model
from repro.llm import ReferenceModel, random_weights, tiny_config
from repro.units import MiB


@pytest.fixture(scope="session")
def tiny_cfg():
    return tiny_config()


@pytest.fixture(scope="session")
def tiny_weights(tiny_cfg):
    return random_weights(tiny_cfg, seed=7)


@pytest.fixture(scope="session")
def reference_model(tiny_weights):
    return ReferenceModel(tiny_weights)


@pytest.fixture()
def device_memory():
    return DeviceMemory(64 * MiB)


@pytest.fixture()
def loaded_layout(device_memory, tiny_weights):
    return load_model(device_memory, tiny_weights)


@pytest.fixture(scope="session")
def pnm_device():
    return CXLPNMDevice()
