"""Continuous-batching engine: admission control, timelines, obs."""

import pytest

from repro.accelerator import CXLPNMDevice
from repro.appliance import (
    ContinuousBatchScheduler,
    RequestScheduler,
    poisson_arrivals,
    timer_service,
)
from repro.errors import ConfigurationError
from repro.llm import (
    OPT_1_3B,
    InferenceRequest,
    max_batch_for_memory,
    peak_kv_bytes,
    tiny_config,
)
from repro.obs import MetricsRegistry, Tracer, observe
from repro.perf.analytical import BatchStepTimer, PnmPerfModel


class ConstStep:
    """Hand-computable step model: fixed prefill and decode costs."""

    def __init__(self, prefill=1.0, decode=0.5):
        self.prefill = prefill
        self.decode = decode
        self.decode_calls = []

    def prefill_s(self, input_len):
        return self.prefill

    def decode_step_s(self, batch, context_len):
        self.decode_calls.append((batch, context_len))
        return self.decode


CFG = tiny_config()


def _memory_for(batch, input_len=4, output_len=3):
    """Device bytes fitting params plus exactly ``batch`` peak KVs."""
    return CFG.param_bytes + batch * peak_kv_bytes(CFG, input_len,
                                                   output_len)


def _requests(n, input_len=4, output_len=3):
    return [InferenceRequest(input_len, output_len, request_id=i)
            for i in range(n)]


class TestTimeline:
    def test_closed_batch_hand_computed(self):
        """4 requests at t=0: one prefill iteration, then 2 decode steps."""
        step = ConstStep(prefill=1.0, decode=0.5)
        engine = ContinuousBatchScheduler(step, CFG, _memory_for(8))
        stats = engine.run(_requests(4))
        # Prefills run back-to-back in the first iteration (4s), then
        # output_len - 1 = 2 shared decode steps of 0.5s each.
        assert stats.makespan_s == pytest.approx(4.0 + 2 * 0.5)
        assert stats.num_iterations == 3
        assert stats.max_occupancy == 4
        # First tokens appear at the end of each request's own prefill.
        firsts = sorted(c.first_token_s for c in stats.completed)
        assert firsts == pytest.approx([1.0, 2.0, 3.0, 4.0])
        # Decode steps saw the whole batch at the tiny config's context.
        assert step.decode_calls == [(4, 5), (4, 6)]

    def test_single_request_tbt_is_decode_time(self):
        step = ConstStep(prefill=2.0, decode=0.25)
        engine = ContinuousBatchScheduler(step, CFG, _memory_for(8))
        stats = engine.run(_requests(1, output_len=5))
        (c,) = stats.completed
        assert c.ttft_s == pytest.approx(2.0)
        assert c.mean_tbt_s == pytest.approx(0.25)
        assert stats.mean_tbt_s == pytest.approx(0.25)

    def test_idle_gap_jumps_to_arrival(self):
        step = ConstStep(prefill=1.0, decode=0.5)
        engine = ContinuousBatchScheduler(step, CFG, _memory_for(8))
        stats = engine.run(_requests(2), arrival_times=[0.0, 100.0])
        late = max(stats.completed, key=lambda c: c.finish_s)
        assert late.start_s == pytest.approx(100.0)
        assert late.queue_wait_s == 0.0

    def test_deterministic(self):
        arrivals = poisson_arrivals(6, 1.0, seed=4)
        runs = []
        for _ in range(2):
            engine = ContinuousBatchScheduler(ConstStep(), CFG,
                                              _memory_for(8))
            runs.append(engine.run(_requests(6), arrivals).as_dict())
        assert runs[0] == runs[1]


class TestAdmissionControl:
    def test_kv_budget_caps_occupancy(self):
        """Only 2 peak KVs fit: occupancy must never exceed 2."""
        memory = _memory_for(2)
        engine = ContinuousBatchScheduler(ConstStep(), CFG, memory)
        stats = engine.run(_requests(6))
        assert stats.max_occupancy == 2
        assert len(stats.completed) == 6
        # Homogeneous requests: the peak-reservation rule equals the
        # max_batch_for_memory capacity at the common total context.
        assert stats.max_occupancy == max_batch_for_memory(CFG, memory, 7)

    def test_max_batch_parameter(self):
        engine = ContinuousBatchScheduler(ConstStep(), CFG,
                                          _memory_for(8), max_batch=1)
        stats = engine.run(_requests(3))
        assert stats.max_occupancy == 1
        assert len(stats.completed) == 3

    def test_fcfs_order_preserved_under_pressure(self):
        engine = ContinuousBatchScheduler(ConstStep(), CFG,
                                          _memory_for(1))
        stats = engine.run(_requests(4))
        starts = [c.start_s for c in sorted(
            stats.completed, key=lambda c: c.request.request_id)]
        assert starts == sorted(starts)

    def test_oversize_request_rejected(self):
        # input + output exceed the tiny config's max_seq_len of 64.
        bad = InferenceRequest(60, 10, request_id=7)
        engine = ContinuousBatchScheduler(ConstStep(), CFG, _memory_for(4))
        stats = engine.run([bad] + _requests(2))
        assert len(stats.completed) == 2
        (rej,) = stats.rejected
        assert rej.request.request_id == 7
        assert "max_seq_len" in rej.reason

    def test_kv_never_fits_rejected(self):
        memory = CFG.param_bytes + peak_kv_bytes(CFG, 4, 3) // 2
        engine = ContinuousBatchScheduler(ConstStep(), CFG, memory)
        stats = engine.run(_requests(2))
        assert not stats.completed
        assert len(stats.rejected) == 2
        assert all("memory" in r.reason for r in stats.rejected)
        # An all-rejected run is still reportable: zeros, not NaNs.
        assert stats.makespan_s == 0.0
        assert stats.mean_latency_s == 0.0
        assert stats.as_dict()["rejected"] == 2.0

    def test_params_overflow_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            ContinuousBatchScheduler(ConstStep(), CFG,
                                     CFG.param_bytes // 2)

    def test_validation(self):
        engine = ContinuousBatchScheduler(ConstStep(), CFG, _memory_for(2))
        with pytest.raises(ConfigurationError):
            engine.run([])
        with pytest.raises(ConfigurationError):
            engine.run(_requests(2), arrival_times=[0.0])
        with pytest.raises(ConfigurationError):
            ContinuousBatchScheduler(ConstStep(), CFG, _memory_for(2),
                                     max_batch=0)


class TestAnalyticalService:
    """The acceptance comparison on the real perf models, scaled down."""

    def test_beats_fcfs_exclusive_at_same_arrival_rate(self):
        device = CXLPNMDevice()
        perf = PnmPerfModel(device)
        requests = [InferenceRequest(16, 16, request_id=i)
                    for i in range(8)]
        service = timer_service(OPT_1_3B, perf)
        rate = 4.0 / service(requests[0])
        arrivals = poisson_arrivals(len(requests), rate, seed=1)
        fcfs = RequestScheduler(service, num_instances=1,
                                config=OPT_1_3B,
                                memory_bytes=device.memory_capacity
                                ).run(requests, arrivals)
        engine = ContinuousBatchScheduler(
            BatchStepTimer(OPT_1_3B, perf), OPT_1_3B,
            device.memory_capacity)
        cont = engine.run(requests, arrivals)
        assert cont.throughput_tokens_per_s \
            > fcfs.throughput_tokens_per_s
        assert len(cont.completed) == len(requests)

    def test_step_timer_quantization_is_conservative(self):
        perf = PnmPerfModel(CXLPNMDevice())
        exact = BatchStepTimer(OPT_1_3B, perf, context_quantum=1)
        coarse = BatchStepTimer(OPT_1_3B, perf, context_quantum=64)
        for ctx in (17, 33, 100):
            assert coarse.decode_step_s(4, ctx) \
                >= exact.decode_step_s(4, ctx) * 0.999

    def test_step_timer_validation(self):
        perf = PnmPerfModel(CXLPNMDevice())
        with pytest.raises(ConfigurationError):
            BatchStepTimer(OPT_1_3B, perf, context_quantum=0)
        timer = BatchStepTimer(OPT_1_3B, perf)
        with pytest.raises(ConfigurationError):
            timer.decode_step_s(0, 16)
        with pytest.raises(ConfigurationError):
            timer.prefill_s(0)


class TestObservability:
    def _run(self, tracer=None, metrics=None):
        engine = ContinuousBatchScheduler(
            ConstStep(), CFG, _memory_for(2), tracer=tracer,
            metrics=metrics)
        arrivals = poisson_arrivals(6, 2.0, seed=2)
        return engine.run(_requests(6), arrivals)

    def test_bit_identical_with_obs_on(self):
        bare = self._run()
        with observe():
            traced = self._run()
        assert bare.as_dict() == traced.as_dict()
        assert [(c.start_s, c.finish_s, c.first_token_s)
                for c in bare.completed] \
            == [(c.start_s, c.finish_s, c.first_token_s)
                for c in traced.completed]

    def test_occupancy_gauge_bounded(self):
        metrics = MetricsRegistry()
        self._run(metrics=metrics)
        gauge = metrics.gauge("scheduler.batch_occupancy")
        assert gauge.min >= 0
        assert gauge.max <= 2  # the KV admission cap

    def test_counters_and_histograms(self):
        metrics = MetricsRegistry()
        stats = self._run(metrics=metrics)
        assert metrics.counter("scheduler.admitted").value == 6
        assert metrics.histogram("scheduler.ttft_s").count == 6
        assert metrics.histogram("scheduler.tbt_s").count == 6
        assert metrics.counter("scheduler.prefills").value == 6
        assert metrics.counter("scheduler.decode_steps").value \
            == sum(c.request.output_len - 1 for c in stats.completed)

    def test_spans_on_tracks(self):
        tracer = Tracer()
        stats = self._run(tracer=tracer)
        sims = [s for s in tracer.spans if s.clock == "sim"]
        steps = [s for s in sims if s.name == "batch_step"]
        # The event kernel emits one span per device unit; a unit
        # covers `steps` decode iterations (macro-steps bundle several).
        assert sum(s.args["steps"] for s in steps) == stats.num_iterations
        assert all(s.track.startswith("scheduler.dev") for s in steps)
        request_spans = [s for s in sims if s.name == "request"]
        assert len(request_spans) == len(stats.completed)
        assert all(s.track.startswith("scheduler.slot")
                   for s in request_spans)
