"""Compiler: layouts, stage structure, capacity errors."""

import pytest

from repro.accelerator import (
    DeviceMemory,
    StageCompiler,
    isa,
    load_model,
    timing_program,
)
from repro.errors import CapacityError, ConfigurationError
from repro.llm import OPT_1_3B, random_weights, tiny_config
from repro.units import KiB, MiB


class TestLoadModel:
    def test_layout_has_all_weight_tensors(self, loaded_layout, tiny_cfg):
        for name in ("token_embedding", "lm_head", "layer0.w_qkv",
                     f"layer{tiny_cfg.num_layers - 1}.b_fc2"):
            assert loaded_layout.addr(name) >= 0

    def test_layout_has_kv_caches_and_buffers(self, loaded_layout,
                                              tiny_cfg):
        for i in range(tiny_cfg.num_layers):
            assert f"layer{i}.kcache" in loaded_layout.regions
            assert f"layer{i}.vcache" in loaded_layout.regions
        assert loaded_layout.input_region.nbytes > 0
        assert loaded_layout.output_region.nbytes > 0

    def test_missing_tensor_raises(self, loaded_layout):
        with pytest.raises(ConfigurationError):
            loaded_layout.addr("layer99.w_qkv")

    def test_model_too_big_for_memory(self, tiny_weights):
        with pytest.raises(Exception):
            load_model(DeviceMemory(4 * KiB), tiny_weights)


class TestStageStructure:
    def test_sum_stage_uses_pe_array(self, loaded_layout):
        code = StageCompiler(loaded_layout).compile_sum_stage([1, 2, 3, 4])
        opcodes = {instr.opcode for instr in code}
        assert "MPU_MM_PEA" in opcodes
        assert "MPU_MASKEDMM_REDUMAX_PEA" in opcodes
        assert "MPU_MV" in opcodes  # the LM head is single-row

    def test_gen_stage_uses_adder_trees(self, loaded_layout):
        code = StageCompiler(loaded_layout).compile_gen_stage(
            5, context_len=4)
        opcodes = {instr.opcode for instr in code}
        assert "MPU_MM_PEA" not in opcodes
        assert "MPU_MV" in opcodes
        assert "MPU_MASKEDMV" in opcodes

    def test_stage_ends_with_output_store_and_barrier(self, loaded_layout):
        code = StageCompiler(loaded_layout).compile_sum_stage([1])
        assert isinstance(code[-1], isa.Barrier)
        stores = [i for i in code if isinstance(i, isa.DmaStore)]
        assert stores[-1].addr == loaded_layout.output_region.addr

    def test_kv_append_addresses_advance_with_context(self, loaded_layout,
                                                      tiny_cfg):
        compiler = StageCompiler(loaded_layout)
        code_a = compiler.compile_gen_stage(1, context_len=3)
        code_b = compiler.compile_gen_stage(1, context_len=4)
        kaddr = loaded_layout.addr("layer0.kcache")

        def kv_store_addr(code):
            for instr in code:
                if isinstance(instr, isa.DmaStore) and \
                        kaddr <= instr.addr < kaddr + \
                        tiny_cfg.max_seq_len * tiny_cfg.d_model * 4:
                    return instr.addr
            raise AssertionError("no KV store found")

        assert kv_store_addr(code_b) - kv_store_addr(code_a) \
            == tiny_cfg.d_model * 4

    def test_instruction_count_linear_in_layers(self, tiny_cfg):
        deep_cfg = tiny_config(num_layers=4)
        mem = DeviceMemory(64 * MiB)
        layout = load_model(mem, random_weights(deep_cfg, seed=1))
        code = StageCompiler(layout).compile_gen_stage(1, context_len=2)
        shallow = timing_program(tiny_config(num_layers=2), 1, 1)
        assert len(code) > len(shallow)

    def test_programs_validate(self, loaded_layout):
        compiler = StageCompiler(loaded_layout)
        isa.validate_program(compiler.compile_sum_stage([1, 2]))
        isa.validate_program(compiler.compile_gen_stage(0, context_len=3))


class TestStageErrors:
    def test_empty_stage_rejected(self, loaded_layout):
        with pytest.raises(ConfigurationError):
            StageCompiler(loaded_layout).compile_stage([], ctx_prev=0)

    def test_context_overflow_rejected(self, loaded_layout, tiny_cfg):
        with pytest.raises(CapacityError):
            StageCompiler(loaded_layout).compile_stage(
                [1], ctx_prev=tiny_cfg.max_seq_len)

    def test_gen_stage_needs_context(self, loaded_layout):
        with pytest.raises(ConfigurationError):
            StageCompiler(loaded_layout).compile_gen_stage(1, context_len=0)


class TestTimingProgram:
    def test_timing_program_without_real_memory(self):
        code = timing_program(OPT_1_3B, batch_tokens=1, ctx_prev=63)
        assert len(code) > OPT_1_3B.num_layers * 10
        isa.validate_program(code)

    def test_timing_program_matches_compiled_structure(self, loaded_layout,
                                                       tiny_cfg):
        real = StageCompiler(loaded_layout).compile_gen_stage(
            0, context_len=4)
        fake = timing_program(tiny_cfg, batch_tokens=1, ctx_prev=3)
        assert [i.opcode for i in real] == [i.opcode for i in fake]
