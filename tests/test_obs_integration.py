"""Instrumentation is behaviour-preserving and covers the whole stack.

Two contracts are asserted here:

* **bit-identical results** — running a session or an experiment under
  an ambient tracer/registry produces exactly the numbers an untraced
  run produces (observability only records; it never feeds back);
* **coverage** — ``repro run service --trace-out`` / ``repro generate
  --trace-out`` emit Chrome-trace JSON whose complete events span at
  least three stack layers (accelerator, CXL, scheduler/runtime).
"""

import json

import pytest

from repro.accelerator.compiler import timing_program
from repro.cli import main
from repro.experiments.registry import run_experiment
from repro.llm import random_weights, tiny_config
from repro.llm.config import OPT_1_3B
from repro.obs import observe
from repro.perf.simulator import AcceleratorSimulator
from repro.runtime.session import InferenceSession


@pytest.fixture(scope="module")
def weights():
    return random_weights(tiny_config(), seed=0)


def _generate(weights, **session_kwargs):
    session = InferenceSession(weights, **session_kwargs)
    return session.generate([1, 2, 3], 5)


class TestBehaviourPreserving:
    def test_session_identical_with_tracing_on_vs_off(self, weights):
        baseline = _generate(weights)
        with observe() as (tracer, metrics):
            traced = _generate(weights)
        assert traced.tokens == baseline.tokens
        assert traced.stage_times_s == baseline.stage_times_s  # bitwise
        assert traced.instructions == baseline.instructions
        assert len(tracer.spans) > 0
        assert metrics.counter("driver.launches").value > 0

    def test_experiment_identical_with_tracing_on_vs_off(self):
        baseline = run_experiment("fig10")
        with observe():
            traced = run_experiment("fig10")
        assert traced.rows == baseline.rows  # bitwise float equality
        assert traced.anchors == baseline.anchors

    def test_simulator_identical_with_tracing_on_vs_off(self):
        program = timing_program(OPT_1_3B, batch_tokens=1, ctx_prev=32)
        baseline = AcceleratorSimulator().run(program)
        with observe():
            traced = AcceleratorSimulator().run(program)
        assert traced.total_time_s == baseline.total_time_s
        assert traced.unit_busy_s == baseline.unit_busy_s
        assert traced.as_dict() == baseline.as_dict()

    def test_injected_tracer_equivalent_to_ambient(self, weights):
        from repro.obs import MetricsRegistry, Tracer
        tracer, metrics = Tracer(), MetricsRegistry()
        injected = _generate(weights, tracer=tracer, metrics=metrics)
        baseline = _generate(weights)
        assert injected.tokens == baseline.tokens
        assert injected.stage_times_s == baseline.stage_times_s
        assert {"runtime", "accelerator", "cxl"} <= set(
            tracer.categories())


class TestNoOpPath:
    def test_nothing_recorded_without_observe(self, weights):
        from repro.obs import get_metrics, get_tracer
        from repro.obs.metrics import NULL_REGISTRY
        from repro.obs.tracer import NULL_TRACER
        _generate(weights)
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_REGISTRY
        assert NULL_TRACER.spans == ()

    def test_timing_disabled_trace_reports_zero(self, weights):
        trace = _generate(weights, simulate_timing=False)
        assert not trace.has_timing
        assert trace.stage_times_s == []
        assert trace.sum_time_s == 0.0
        assert trace.gen_time_s == 0.0
        assert trace.total_time_s == 0.0
        assert len(trace.tokens) == 5


class TestCliTraceExport:
    @pytest.fixture(scope="class")
    def service_trace(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs")
        trace_path = tmp / "service_trace.json"
        metrics_path = tmp / "service_metrics.json"
        assert main(["run", "service",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
        return trace_path, metrics_path

    def test_run_emits_three_layer_chrome_trace(self, service_trace):
        trace_path, _ = service_trace
        with open(trace_path) as handle:
            doc = json.load(handle)
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events, "trace must contain complete events"
        categories = {e["cat"] for e in events}
        assert {"accelerator", "cxl", "scheduler"} <= categories

    def test_run_emits_metrics_dump(self, service_trace):
        _, metrics_path = service_trace
        with open(metrics_path) as handle:
            dump = json.load(handle)
        assert dump["counters"]["scheduler.requests"]["value"] == 48
        assert dump["histograms"]["scheduler.latency_s"]["count"] == 48
        assert dump["gauges"]["scheduler.queue_depth"]["min"] >= 0

    def test_trace_summarize_cli(self, service_trace, capsys):
        trace_path, _ = service_trace
        assert main(["trace", "summarize", str(trace_path),
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "sim_ms" in out
        assert "request" in out

    def test_generate_emits_runtime_layers(self, tmp_path):
        trace_path = tmp_path / "gen_trace.json"
        assert main(["generate", "--num-tokens", "4",
                     "--trace-out", str(trace_path)]) == 0
        with open(trace_path) as handle:
            doc = json.load(handle)
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        categories = {e["cat"] for e in events}
        assert {"accelerator", "cxl", "runtime"} <= categories


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
