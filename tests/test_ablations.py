"""Ablation studies: each design choice must pay off measurably."""

import pytest

from repro.experiments import ablations


class TestPeArrayAblation:
    def test_speedup_grows_with_input_length(self):
        rows = ablations.pe_array_ablation().rows
        speedups = [r["speedup"] for r in rows]
        assert speedups[-1] > speedups[0]
        assert speedups[-1] > 5.0

    def test_dfx_sum_share_grows(self):
        rows = ablations.pe_array_ablation().rows
        shares = [r["dfx_sum_share_of_e2e"] for r in rows]
        assert shares == sorted(shares)
        assert shares[-1] > 0.4


class TestTileDimAblation:
    def test_bigger_tile_fewer_cycles(self):
        rows = ablations.tile_dim_ablation().rows
        times = {r["tile_dim"]: r["matmul_compute_ms"] for r in rows}
        assert times[128] < times[64] < times[32]


class TestRedumaxAblation:
    def test_fusion_saves_about_a_third(self):
        rows = ablations.redumax_ablation().rows
        big = [r for r in rows if r["context_len"] == 2048][0]
        assert big["cycles_saved_pct"] == pytest.approx(33.3, abs=5.0)


class TestBatchingAblation:
    def test_pnm_throughput_grows_with_batch(self):
        rows = ablations.batching_ablation().rows
        b1 = [r for r in rows if r["batch"] == 1][0]
        b64 = [r for r in rows if r["batch"] == 64][0]
        assert b64["pnm_tokens_per_s"] > 3 * b1["pnm_tokens_per_s"]

    def test_pnm_per_token_cost_drops_at_large_batch(self):
        """Once the batch fills the PE array's 64 rows, weight streams
        amortize and per-token time falls well below single-stream."""
        rows = ablations.batching_ablation().rows
        b1 = [r for r in rows if r["batch"] == 1][0]
        b64 = [r for r in rows if r["batch"] == 64][0]
        assert b64["pnm_step_ms"] / 64 < 0.5 * b1["pnm_step_ms"]

    def test_gpu_batches_better_than_pnm(self):
        """The 4.1 TFLOPS PE array caps PNM batching long before the
        312 TFLOPS GPU saturates -- the design targets single-stream
        latency, not batched throughput."""
        rows = ablations.batching_ablation().rows
        b64 = [r for r in rows if r["batch"] == 64][0]
        assert b64["gpu_tokens_per_s"] > 2 * b64["pnm_tokens_per_s"]

    def test_memory_allows_large_batches(self):
        result = ablations.batching_ablation()
        assert result.anchors["cxl_pnm_max_batch_by_memory"] > 100


class TestQuantizationAblation:
    def test_int8_near_2x(self):
        rows = ablations.quantization_ablation().rows
        speedup = [r for r in rows if r["dtype"] == "INT8 speedup"][0]
        assert speedup["tokens_per_s"] == pytest.approx(2.0, rel=0.15)


class TestMoEAblation:
    def test_large_moe_fits_one_device(self):
        rows = ablations.moe_ablation().rows
        biggest = rows[-1]
        assert biggest["fits_one_cxl_pnm"]
        assert biggest["a100_40g_needed"] >= 8

    def test_gen_token_time_flat_across_expert_counts(self):
        rows = ablations.moe_ablation().rows
        times = [r["pnm_gen_token_ms"] for r in rows]
        assert max(times) / min(times) < 1.2


class TestDmaBufferAblation:
    def test_bigger_buffer_higher_efficiency(self):
        rows = ablations.dma_buffer_ablation().rows
        effs = [r["efficiency"] for r in rows]
        assert effs == sorted(effs)
        one_mb = [r for r in rows if r["buffer_KiB"] == 1024][0]
        assert one_mb["efficiency"] > 0.9


class TestParallelismStrategyAblation:
    def test_tp_wins_latency_pp_wins_saturated_throughput(self):
        rows = {r["strategy"]: r
                for r in ablations.parallelism_strategy_ablation().rows}
        tp = rows["tensor parallel (TP=8)"]
        pp = rows["pipeline parallel (PP=8)"]
        assert tp["token_latency_ms"] < pp["token_latency_ms"]
        assert pp["full_pipeline_tokens_per_s"] \
            > tp["full_pipeline_tokens_per_s"]

    def test_both_fit_40gb_devices(self):
        for row in ablations.parallelism_strategy_ablation().rows:
            assert row["params_per_device_gb"] < 40


class TestCxlExpansionAblation:
    def test_strict_ordering_of_configurations(self):
        rows = ablations.cxl_expansion_ablation().rows
        times = [r["gen_token_ms"] for r in rows]
        # offload > expander > PNM, each by a large factor.
        assert times[0] > 10 * times[1]
        assert times[1] > 10 * times[2]


def test_bundle_runs_every_study():
    result = ablations.run()
    assert len(result.rows) == 9
