"""Operator descriptions: FLOPs, bytes, roofline quantities."""

import pytest
from hypothesis import given, strategies as st

from repro.llm.ops import (
    OpKind,
    matmul_op,
    matmul_ops,
    total_flops,
    total_weight_bytes,
    vector_op,
)


class TestMatmulOp:
    def test_gemm_flops(self):
        op = matmul_op("x", m=4, n=8, k=16, dtype_bytes=2)
        assert op.flops == 2 * 4 * 8 * 16
        assert op.kind is OpKind.GEMM

    def test_gemv_detected_by_single_row(self):
        op = matmul_op("x", m=1, n=8, k=16, dtype_bytes=2)
        assert op.kind is OpKind.GEMV

    def test_weight_bytes_resident(self):
        op = matmul_op("x", m=2, n=8, k=16, dtype_bytes=2)
        assert op.weight_bytes == 8 * 16 * 2
        assert op.input_bytes == 2 * 16 * 2
        assert op.output_bytes == 2 * 8 * 2

    def test_non_resident_weights_count_as_input(self):
        op = matmul_op("x", m=2, n=8, k=16, dtype_bytes=2,
                       weights_resident=False)
        assert op.weight_bytes == 0
        assert op.input_bytes == (2 * 16 + 16 * 8) * 2

    def test_total_bytes_sums_all_traffic(self):
        op = matmul_op("x", m=2, n=8, k=16, dtype_bytes=2)
        assert op.total_bytes == \
            op.weight_bytes + op.input_bytes + op.output_bytes

    @given(m=st.integers(1, 64), n=st.integers(1, 64), k=st.integers(1, 64))
    def test_arithmetic_intensity_bounded_by_min_dim(self, m, n, k):
        op = matmul_op("x", m=m, n=n, k=k, dtype_bytes=2)
        # FLOPs/byte of a matmul cannot exceed min(m, n, k) at 2B/elem.
        assert op.arithmetic_intensity <= min(m, n, k) + 1e-9


class TestVectorOp:
    def test_layernorm_bytes(self):
        op = vector_op("ln", OpKind.LAYERNORM, elements=128, dtype_bytes=2)
        assert op.input_bytes == 128 * 2
        assert op.output_bytes == 128 * 2
        assert op.weight_bytes == 0

    def test_residual_counts_two_inputs(self):
        op = vector_op("res", OpKind.ELEMENTWISE, elements=64, dtype_bytes=2,
                       num_inputs=2)
        assert op.input_bytes == 2 * 64 * 2

    def test_zero_traffic_intensity_is_zero(self):
        from repro.llm.ops import OpSpec
        op = OpSpec(name="z", kind=OpKind.ELEMENTWISE, flops=0.0,
                    weight_bytes=0.0, input_bytes=0.0, output_bytes=0.0)
        assert op.arithmetic_intensity == 0.0


class TestAggregates:
    def test_totals(self):
        ops = [matmul_op("a", 2, 4, 8, 2), vector_op("b", OpKind.GELU, 16, 2)]
        assert total_flops(ops) == ops[0].flops + ops[1].flops
        assert total_weight_bytes(ops) == ops[0].weight_bytes

    def test_matmul_filter(self):
        ops = [matmul_op("a", 2, 4, 8, 2), vector_op("b", OpKind.GELU, 16, 2)]
        assert matmul_ops(ops) == [ops[0]]

    def test_matmul_kind_property(self):
        assert OpKind.GEMM.is_matmul and OpKind.GEMV.is_matmul
        assert not OpKind.SOFTMAX.is_matmul
