"""TCO sensitivity: the conclusion must survive the whole swept space."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("sensitivity")


class TestSensitivity:
    def test_full_grid_covered(self, result):
        assert len(result.rows) == 3 * 3 * 3

    def test_pnm_wins_every_point(self, result):
        assert all(row["pnm_advantage"] > 1.0 for row in result.rows)
        assert result.anchors["worst_case_pnm_advantage"] > 1.3

    def test_expensive_electricity_amplifies_advantage(self, result):
        fixed = [r for r in result.rows
                 if r["pnm_device_usd"] == 7000.0
                 and r["lifetime_years"] == 3.0]
        ordered = sorted(fixed, key=lambda r: r["usd_per_kwh"])
        advantages = [r["pnm_advantage"] for r in ordered]
        assert advantages == sorted(advantages)

    def test_pricier_pnm_devices_shrink_advantage(self, result):
        fixed = [r for r in result.rows
                 if r["usd_per_kwh"] == 0.1035
                 and r["lifetime_years"] == 3.0]
        ordered = sorted(fixed, key=lambda r: r["pnm_device_usd"])
        advantages = [r["pnm_advantage"] for r in ordered]
        assert advantages == sorted(advantages, reverse=True)

    def test_longer_lifetime_shifts_weight_to_energy(self, result):
        """As hardware amortizes away, the energy advantage dominates,
        so the PNM edge grows with lifetime."""
        fixed = [r for r in result.rows
                 if r["usd_per_kwh"] == 0.1035
                 and r["pnm_device_usd"] == 7000.0]
        ordered = sorted(fixed, key=lambda r: r["lifetime_years"])
        advantages = [r["pnm_advantage"] for r in ordered]
        assert advantages == sorted(advantages)
