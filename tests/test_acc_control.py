"""Control unit: registers, instruction buffer, status machine."""

import pytest

from repro.accelerator import ControlRegister, ControlUnit, Status, isa
from repro.errors import DriverError


def _nop_program():
    return (isa.DmaLoad(dst="m0", addr=0, shape=(1,)), isa.Barrier())


class TestRegisters:
    def test_write_read_roundtrip(self):
        cu = ControlUnit()
        cu.write_register(ControlRegister.NUM_LAYERS, 40)
        assert cu.read_register(ControlRegister.NUM_LAYERS) == 40

    def test_values_are_32_bit(self):
        cu = ControlUnit()
        cu.write_register(ControlRegister.MODEL_BASE_ADDR, (1 << 40) + 5)
        assert cu.read_register(ControlRegister.MODEL_BASE_ADDR) == 5

    def test_negative_value_rejected(self):
        with pytest.raises(DriverError):
            ControlUnit().write_register(ControlRegister.NUM_LAYERS, -1)

    def test_exactly_ten_registers(self):
        # §VI: "ten 32-bit registers".
        assert len(ControlRegister) == 10

    def test_int_register_index_accepted(self):
        cu = ControlUnit()
        cu.write_register(0, 7)
        assert cu.read_register(0) == 7


class TestInstructionBuffer:
    def test_program_and_readback(self):
        cu = ControlUnit()
        program = _nop_program()
        cu.program(program)
        assert cu.instruction_buffer == program
        assert cu.read_register(ControlRegister.INSTRUCTION_COUNT) == 2

    def test_empty_program_rejected(self):
        with pytest.raises(DriverError):
            ControlUnit().program(())

    def test_unprogrammed_buffer_raises(self):
        with pytest.raises(DriverError):
            _ = ControlUnit().instruction_buffer

    def test_oversized_program_rejected(self):
        cu = ControlUnit(max_instructions=1)
        with pytest.raises(DriverError):
            cu.program(_nop_program())

    def test_invalid_program_rejected_at_program_time(self):
        bad = (isa.VpuGelu(dst="m1", src="m0"),)
        with pytest.raises(Exception):
            ControlUnit().program(bad)

    def test_cannot_program_while_running(self):
        cu = ControlUnit()
        cu.program(_nop_program())
        cu.set_status(Status.RUNNING)
        with pytest.raises(DriverError):
            cu.program(_nop_program())


class TestStatus:
    def test_initial_idle(self):
        assert ControlUnit().status is Status.IDLE

    def test_interrupt_enable_flag(self):
        cu = ControlUnit()
        assert not cu.interrupts_enabled
        cu.write_register(ControlRegister.INTERRUPT_ENABLE, 1)
        assert cu.interrupts_enabled
