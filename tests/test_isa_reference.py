"""Generated ISA reference: completeness against the implementation."""

from repro.accelerator import isa, timing_program
from repro.accelerator.isa_reference import (
    NEW_PEA_MNEMONICS,
    isa_reference,
    pea_instructions_present,
    render_isa_reference,
)
from repro.cli import main
from repro.llm import tiny_config


class TestReferenceTable:
    def test_every_row_documented(self):
        for row in isa_reference():
            assert row["mnemonic"]
            assert row["unit"] != ""
            assert row["semantics"], f"{row['class']} lacks a docstring"

    def test_all_six_pea_instructions_listed(self):
        assert pea_instructions_present()
        rendered = render_isa_reference()
        for mnemonic in NEW_PEA_MNEMONICS:
            assert mnemonic in rendered

    def test_reference_covers_compiled_programs(self):
        """Every opcode the compiler can emit appears in the reference."""
        program = timing_program(tiny_config(), batch_tokens=4, ctx_prev=0)
        rendered = render_isa_reference()
        for instr in program:
            base = instr.opcode.split(" ")[0]
            assert base in rendered, f"{base} missing from ISA reference"

    def test_abstract_classes_excluded(self):
        classes = {row["class"] for row in isa_reference()}
        assert "Instruction" not in classes
        assert "VpuBinary" not in classes

    def test_units_are_real(self):
        valid = {u.value for u in isa.Unit} | {
            "pe-array / adder-tree (by m)"}
        for row in isa_reference():
            assert row["unit"] in valid


class TestCliCommands:
    def test_isa_command(self, capsys):
        assert main(["isa"]) == 0
        out = capsys.readouterr().out
        assert "MPU_MM_PEA" in out and "VPU_LAYERNORM" in out

    def test_roofline_command(self, capsys):
        assert main(["roofline", "OPT-13B"]) == 0
        out = capsys.readouterr().out
        assert "CXL-PNM" in out and "memory" in out
