"""Determinism lint: rule units on synthetic sources + the real tree.

Each DET5xx rule gets known-bad snippets asserting the exact code and
line — including the two bug classes this repo has actually shipped
(an ``id()``-keyed attribution dict, fixed in the event-kernel
rewrite; heap keys that fall through to payload comparison).  The
integration test asserts the real ``src/repro`` tree is clean modulo
the checked-in baseline.
"""

import textwrap
from pathlib import Path

from repro.analysis.determinism import lint_source, lint_tree, rules_for

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"


def _diags(source, relpath="appliance/example.py"):
    return lint_source(textwrap.dedent(source), relpath)


def _codes(source, relpath="appliance/example.py"):
    return [d.code for d in _diags(source, relpath)]


class TestRuleSelection:
    def test_order_rules_in_timing_packages(self):
        for rel in ("perf/simulator.py", "cxl/arbiter.py",
                    "appliance/continuous.py"):
            assert rules_for(rel) == ("DET501", "DET502", "DET503",
                                      "DET504")

    def test_accelerator_gets_only_id_rule(self):
        assert rules_for("accelerator/isa.py") == ("DET501",)

    def test_out_of_scope_packages_unchecked(self):
        assert rules_for("obs/tracer.py") == ()
        assert rules_for("cli.py") == ()
        src = """
        def f(requests):
            return {id(r): r for r in requests}
        """
        assert _codes(src, "obs/example.py") == []


class TestDet501IdKeys:
    def test_id_subscript_store(self):
        # The PR 6 bug class: id()-keyed failover attribution.
        src = (
            "def track(failovers, request):\n"
            "    failovers[id(request)] = 1\n"
        )
        diags = lint_source(src, "appliance/example.py")
        assert [(d.code, d.location) for d in diags] \
            == [("DET501", "appliance/example.py:2")]

    def test_id_dict_literal_key(self):
        src = """
        def snapshot(request):
            return {id(request): request}
        """
        assert _codes(src) == ["DET501"]

    def test_id_get_call(self):
        src = """
        def lookup(table, request):
            return table.get(id(request), 0)
        """
        assert _codes(src) == ["DET501"]

    def test_id_setdefault_and_pop(self):
        src = """
        def churn(table, request):
            table.setdefault(id(request), 0)
            return table.pop(id(request))
        """
        assert _codes(src) == ["DET501", "DET501"]

    def test_id_equality_compare(self):
        src = """
        def same(a, b):
            return id(a) == id(b)
        """
        assert _codes(src) == ["DET501"]

    def test_id_membership(self):
        src = """
        def seen(request, visited):
            return id(request) in visited
        """
        assert _codes(src) == ["DET501"]

    def test_id_for_logging_clean(self):
        # id() not used as a key or compared is fine (repr, debugging).
        src = """
        def label(request):
            return f"req-{id(request):x}"
        """
        assert _codes(src) == []

    def test_stable_key_clean(self):
        src = """
        def track(failovers, request):
            failovers[request.request_id] = 1
        """
        assert _codes(src) == []


class TestDet502SetIteration:
    def test_for_over_set_call(self):
        src = (
            "def drain(pending):\n"
            "    for item in set(pending):\n"
            "        item.close()\n"
        )
        diags = lint_source(src, "cxl/example.py")
        assert [(d.code, d.location) for d in diags] \
            == [("DET502", "cxl/example.py:2")]

    def test_comprehension_over_frozenset(self):
        src = """
        def names(items):
            return [i.name for i in frozenset(items)]
        """
        assert _codes(src) == ["DET502"]

    def test_list_materializes_set(self):
        src = """
        def order(pending):
            return list({p.key for p in pending})
        """
        # The set comprehension inside list() is the finding; a set
        # built from a set stays unordered and is exempt.
        assert _codes(src) == ["DET502"]

    def test_sorted_set_clean(self):
        src = """
        def order(pending):
            return sorted(set(pending))
        """
        assert _codes(src) == []

    def test_for_over_list_clean(self):
        src = """
        def drain(pending):
            for item in pending:
                item.close()
        """
        assert _codes(src) == []


class TestDet503Popitem:
    def test_popitem_flagged(self):
        src = """
        def evict(cache):
            return cache.popitem()
        """
        diags = _diags(src)
        assert [d.code for d in diags] == ["DET503"]

    def test_pop_explicit_key_clean(self):
        src = """
        def evict(cache, key):
            return cache.pop(key)
        """
        assert _codes(src) == []


class TestDet504HeapTieBreaks:
    def test_payload_tuple_without_tie_break(self):
        src = (
            "import heapq\n"
            "def push(heap, at_s, request):\n"
            "    heapq.heappush(heap, (at_s, request))\n"
        )
        diags = lint_source(src, "appliance/example.py")
        assert [(d.code, d.location) for d in diags] \
            == [("DET504", "appliance/example.py:3")]

    def test_seq_counter_accepted(self):
        # The event kernel's convention: (at_s, priority, seq, payload).
        src = """
        import heapq
        def push(heap, at_s, prio, seq, request):
            heapq.heappush(heap, (at_s, prio, seq, request))
        """
        assert _codes(src) == []

    def test_next_counter_accepted(self):
        src = """
        import heapq
        def push(heap, at_s, counter, request):
            heapq.heappush(heap, (at_s, next(counter), request))
        """
        assert _codes(src) == []

    def test_int_literal_accepted(self):
        src = """
        import heapq
        def push(heap, at_s, request):
            heapq.heappush(heap, (at_s, 0, request))
        """
        assert _codes(src) == []

    def test_bool_literal_not_a_tie_break(self):
        src = """
        import heapq
        def push(heap, at_s, request):
            heapq.heappush(heap, (at_s, True, request))
        """
        assert _codes(src) == ["DET504"]

    def test_heappushpop_checked(self):
        src = """
        import heapq
        def rotate(heap, at_s, request):
            return heapq.heappushpop(heap, (at_s, request))
        """
        assert _codes(src) == ["DET504"]

    def test_scalar_push_clean(self):
        src = """
        import heapq
        def push(heap, at_s):
            heapq.heappush(heap, at_s)
        """
        assert _codes(src) == []


class TestSyntaxError:
    def test_unparsable_source_reports_det500(self):
        diags = lint_source("def f(:\n", "perf/example.py")
        assert [d.code for d in diags] == ["DET500"]

    def test_out_of_scope_syntax_error_silent(self):
        # No rules apply -> the file is not even parsed.
        assert lint_source("def f(:\n", "obs/example.py") == []


class TestRealTree:
    def test_tree_clean_modulo_baseline(self):
        from repro.analysis.baseline import Baseline
        report = lint_tree(REPO_SRC)
        baseline = Baseline.load(
            REPO_ROOT / "tools" / "static_analysis_baseline.json")
        result = baseline.apply(report, REPO_SRC)
        assert result.report.clean, result.report.render()

    def test_known_exceptions_are_the_isa_identity_memo(self):
        report = lint_tree(REPO_SRC)
        assert [d.code for d in report.diagnostics] \
            == ["DET501", "DET501"]
        assert all(d.location.startswith("accelerator/isa.py")
                   for d in report.diagnostics)
