"""ECC-protected memory region: correction, detection, scrubbing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator import DeviceMemory
from repro.errors import (ConfigurationError, ExecutionError,
                          UncorrectableMemoryError)
from repro.memory.reliable import ReliableRegion
from repro.units import MiB


@pytest.fixture()
def region():
    return ReliableRegion(DeviceMemory(1 * MiB), "protected",
                          data_words=64)


class TestCleanPath:
    def test_word_roundtrip(self, region):
        region.write_word(3, 0xDEAD_BEEF_0123_4567)
        assert region.read_word(3) == 0xDEAD_BEEF_0123_4567

    def test_array_roundtrip(self, region):
        values = np.arange(16, dtype=np.uint64) * 0x0101_0101
        region.write_array(values)
        np.testing.assert_array_equal(region.read_array(16), values)

    def test_overhead_is_one_ninth(self, region):
        assert region.overhead_fraction == pytest.approx(1 / 9)

    def test_index_bounds(self, region):
        with pytest.raises(ConfigurationError):
            region.read_word(64)
        with pytest.raises(ConfigurationError):
            ReliableRegion(DeviceMemory(1 * MiB), "x", data_words=0)


class TestFaults:
    def test_single_bit_fault_corrected_transparently(self, region):
        region.write_word(5, 12345)
        code = region._load_code(5)
        code[17] ^= 1
        region._store_code(5, code)
        assert region.read_word(5) == 12345
        assert region.corrected_total == 1

    def test_double_bit_fault_detected(self, region):
        region.write_word(7, 999)
        code = region._load_code(7)
        code[0] ^= 1
        code[40] ^= 1
        region._store_code(7, code)
        with pytest.raises(ExecutionError):
            region.read_word(7)

    def test_random_injection_survivable(self, region):
        values = np.arange(64, dtype=np.uint64)
        region.write_array(values)
        region.inject_faults(num_flips=10, seed=4)
        # Re-injecting into distinct words keeps each at <= 1 flip with
        # high probability for this seed; all reads must round-trip.
        recovered = region.read_array(64)
        np.testing.assert_array_equal(recovered, values)

    def test_negative_injection_rejected(self, region):
        with pytest.raises(ConfigurationError):
            region.inject_faults(-1)


class TestScrub:
    def test_scrub_repairs_single_bit_upsets(self, region):
        values = np.arange(64, dtype=np.uint64) + 7
        region.write_array(values)
        affected = region.inject_faults(num_flips=8, seed=9)
        report = region.scrub()
        assert report.words_scanned == 64
        assert report.corrected >= len(set(affected)) - report.uncorrectable
        # After scrubbing, the stored codewords are clean again.
        second = region.scrub()
        assert second.corrected == 0

    def test_scrub_prevents_error_accumulation(self, region):
        """The ECS argument: scrub between single upsets and a second
        upset in the same word never becomes uncorrectable."""
        region.write_word(11, 42)
        for round_ in range(4):
            code = region._load_code(11)
            code[round_ * 13 % 72] ^= 1
            region._store_code(11, code)
            region.scrub()
        assert region.read_word(11) == 42

    @settings(max_examples=10, deadline=None)
    @given(word=st.integers(0, (1 << 64) - 1),
           bit=st.integers(0, 71))
    def test_scrub_property(self, word, bit):
        region = ReliableRegion(DeviceMemory(64 * 1024), "p", data_words=2)
        region.write_word(0, word)
        code = region._load_code(0)
        code[bit] ^= 1
        region._store_code(0, code)
        report = region.scrub()
        assert report.corrected == 1
        assert region.read_word(0) == word


class TestEdgePaths:
    def test_scrub_racing_double_bit_counts_without_raising(self, region):
        """A scrub that arrives *after* the second flip logs the word as
        uncorrectable and keeps walking — it never repairs it, so the
        next demand read still machine-checks."""
        region.write_array(np.arange(64, dtype=np.uint64))
        region.inject_double_bit(20)
        report = region.scrub()
        assert report.uncorrectable == 1
        assert report.corrected == 0
        # Scrubbing did not mask the error: the read still raises, and
        # a second scrub still sees the same stuck word.
        with pytest.raises(UncorrectableMemoryError):
            region.read_word(20)
        assert region.scrub().uncorrectable == 1
        # Every other word is untouched.
        for index in (0, 19, 21, 63):
            assert region.read_word(index) == index

    def test_parity_bit_fault_corrected_like_data_bit(self, region):
        """SECDED covers its own parity: flipping a stored parity bit
        (Hamming positions 0, 1, 3, 7, ... plus overall 71) corrects on
        read exactly like a data-bit flip, without altering the word."""
        region.write_word(9, 0xAAAA_5555_0F0F_F0F0)
        for parity_bit in (0, 1, 3, 7, 15, 31, 63, 71):
            code = region._load_code(9)
            code[parity_bit] ^= 1
            region._store_code(9, code)
            assert region.read_word(9) == 0xAAAA_5555_0F0F_F0F0
            region.scrub()  # repair before the next injected flip
        # Data-bit flip for comparison: positions 2 and 4 carry data.
        code = region._load_code(9)
        code[2] ^= 1
        region._store_code(9, code)
        assert region.read_word(9) == 0xAAAA_5555_0F0F_F0F0

    def test_inject_double_bit_targets_data_bits(self, region):
        region.write_word(0, 7)
        region.inject_double_bit(0)
        result = None
        with pytest.raises(UncorrectableMemoryError) as excinfo:
            result = region.read_word(0)
        assert result is None
        assert "word 0" in str(excinfo.value)
        assert isinstance(excinfo.value, ExecutionError)

    def test_scrub_report_accounting_matches_corrected_total(self, region):
        """corrected_total accumulates demand-read corrections AND scrub
        repairs; the scrub report itemizes one pass exactly."""
        region.write_array(np.arange(64, dtype=np.uint64))
        # One single-bit flip in each of three distinct words, plus one
        # double-bit word.
        for index, bit in ((2, 10), (30, 40), (50, 70)):
            code = region._load_code(index)
            code[bit] ^= 1
            region._store_code(index, code)
        region.inject_double_bit(40)
        before = region.corrected_total
        report = region.scrub()
        assert report.words_scanned == 64
        assert report.corrected == 3
        assert report.uncorrectable == 1
        assert region.corrected_total == before + 3
        # The scrubbed words are clean: a follow-up pass finds nothing
        # new to repair, and demand reads of them correct nothing.
        assert region.scrub().corrected == 0
        for index in (2, 30, 50):
            assert region.read_word(index) == index
        assert region.corrected_total == before + 3
