"""Static program verifier: known-bad programs and clean-sweep property.

Two halves.  First, hand-built programs seeded with exactly one defect
each — RAW-violating use-before-def, use-after-free, dead write,
overlapping DMA windows, a misaligned KV append, an out-of-bounds DMA —
must each yield the expected diagnostic code *at the expected
instruction index*.  Second, the property the verifier exists to
enforce: every program the shipped compiler emits, across a
batch/context sweep and through the ``ProgramCache`` patching fast
path, verifies clean.
"""

import pytest

from repro.accelerator import isa
from repro.accelerator.compiler import (
    ProgramCache,
    StageCompiler,
    batched_timing_program,
    timing_layout,
    timing_program,
)
from repro.analysis import (
    AnalysisReport,
    Severity,
    analyze_program,
    infer_shapes,
    register_pressure,
    verify_program,
)
from repro.errors import IsaError, ProgramVerificationError
from repro.llm import get_model, random_weights, tiny_config
from repro.runtime.session import InferenceSession
from repro.units import KiB


def _load(dst, addr=0, shape=(4, 4)):
    return isa.DmaLoad(dst=dst, addr=addr, shape=shape)


class TestKnownBadPrograms:
    def test_use_before_def_raw_hazard(self):
        # m1 is consumed before anything wrote it: the RAW dependency
        # has no producer.
        program = (
            _load("m0"),
            isa.VpuAdd(dst="m2", a="m0", b="m1"),
        )
        report = verify_program(program)
        diags = report.by_code("PNM101")
        assert len(diags) == 1
        assert diags[0].index == 1
        assert diags[0].severity is Severity.ERROR
        assert "m1" in diags[0].message
        assert not report.ok

    def test_use_after_free(self):
        program = (
            _load("m0"),
            isa.Free(regs=("m0",)),
            isa.VpuGelu(dst="m1", src="m0"),
        )
        report = verify_program(program)
        diags = report.by_code("PNM102")
        assert len(diags) == 1
        assert diags[0].index == 2
        assert not report.ok

    def test_dead_write(self):
        # m0 is written twice with no read in between: the first write
        # is dead.
        program = (
            _load("m0"),
            _load("m0", addr=64),
            isa.DmaStore(src="m0", addr=1024, shape=(4, 4)),
            isa.Free(regs=("m0",)),
        )
        report = verify_program(program)
        diags = report.by_code("PNM104")
        assert len(diags) == 1
        assert diags[0].index == 0  # the overwritten write, not the killer
        assert diags[0].severity is Severity.WARNING
        assert report.ok  # warnings only: still verifies clean

    def test_overlapping_dma_store_windows(self):
        program = (
            _load("m0", shape=(4, 4)),
            isa.DmaStore(src="m0", addr=256, shape=(4, 4)),
            isa.DmaStore(src="m0", addr=288, shape=(4, 4)),  # overlaps
            isa.Free(regs=("m0",)),
        )
        report = verify_program(program)
        diags = report.by_code("PNM204")
        assert len(diags) == 1
        assert diags[0].index == 2
        assert "program[1]" in diags[0].message

    def test_barrier_separates_store_windows(self):
        program = (
            _load("m0", shape=(4, 4)),
            isa.DmaStore(src="m0", addr=256, shape=(4, 4)),
            isa.Barrier(),
            isa.DmaStore(src="m0", addr=256, shape=(4, 4)),
            isa.Free(regs=("m0",)),
        )
        assert not verify_program(program).by_code("PNM204")

    def test_misaligned_kv_append(self):
        # A KV append whose row offset is not element-aligned.
        program = (
            _load("m0", shape=(1, 16)),
            isa.DmaStore(src="m0", addr=4 * KiB + 2, shape=(1, 16)),
            isa.Free(regs=("m0",)),
        )
        report = verify_program(program)
        diags = report.by_code("PNM203")
        assert len(diags) == 1
        assert diags[0].index == 1
        assert not report.ok

    def test_out_of_bounds_dma(self):
        program = (_load("m0", addr=2 ** 50, shape=(8, 8)),
                   isa.Free(regs=("m0",)))
        report = verify_program(program)
        diags = report.by_code("PNM202")
        assert len(diags) == 1
        assert diags[0].index == 0
        assert not report.ok

    def test_negative_address(self):
        program = (isa.DmaStore(src="m0", addr=-4, shape=(1,)),)
        report = verify_program(program)
        assert report.by_code("PNM201")[0].index == 0

    def test_leaked_register(self):
        program = (_load("m0"), isa.VpuGelu(dst="m1", src="m0"),
                   isa.Free(regs=("m0",)))
        report = verify_program(program)
        codes = report.codes()
        assert "PNM105" in codes  # m1 never freed
        assert report.ok

    def test_free_of_unknown_register(self):
        program = (isa.Free(regs=("m9",)),)
        report = verify_program(program)
        assert report.by_code("PNM103")[0].index == 0


class TestLayoutAwareChecks:
    def test_window_crossing_region_boundary(self):
        cfg = tiny_config()
        layout = timing_layout(cfg)
        region = layout.regions["token_embedding"]
        # Start inside the embedding table but read past its end.
        elems = region.nbytes // 4
        program = (
            isa.DmaLoad(dst="m0", addr=region.addr, shape=(elems + 4,)),
            isa.Free(regs=("m0",)),
        )
        report = verify_program(program, layout=layout)
        diags = report.by_code("PNM205")
        assert len(diags) == 1 and diags[0].index == 0

    def test_store_to_read_only_region(self):
        cfg = tiny_config()
        layout = timing_layout(cfg)
        program = (
            isa.DmaLoad(dst="m0", addr=layout.addr("input_buffer"),
                        shape=(1, cfg.d_model)),
            isa.DmaStore(src="m0", addr=layout.addr("layer0.w_qkv"),
                         shape=(1, cfg.d_model)),
            isa.Free(regs=("m0",)),
        )
        report = verify_program(program, layout=layout)
        diags = report.by_code("PNM206")
        assert len(diags) == 1 and diags[0].index == 1
        assert "w_qkv" in diags[0].message

    def test_kv_cache_store_is_legal(self):
        cfg = tiny_config()
        layout = timing_layout(cfg)
        program = (
            isa.DmaLoad(dst="m0", addr=layout.addr("input_buffer"),
                        shape=(1, cfg.d_model)),
            isa.DmaStore(src="m0", addr=layout.addr("layer0.kcache"),
                         shape=(1, cfg.d_model)),
            isa.Free(regs=("m0",)),
        )
        assert verify_program(program, layout=layout).clean


class TestRegisterPressure:
    """Subsumes the ad-hoc budget checks in test_register_pressure.py:
    the same hoarding construction now yields a PNM106 diagnostic
    statically, before anything executes."""

    def test_hoarding_exceeds_budget(self):
        # 16 live 256x256 fp16 tensors = 2 MiB logical; budget 1 MiB.
        program = tuple(_load(f"m{i}", shape=(256, 256))
                        for i in range(16))
        report = verify_program(program,
                                budgets={"m": 1024 * KiB})
        diags = report.by_code("PNM106")
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR
        assert not report.ok

    def test_freeing_stays_under_budget(self):
        code = []
        for i in range(16):
            code.append(_load(f"m{i}", shape=(256, 256)))
            code.append(isa.Free(regs=(f"m{i}",)))
        report = verify_program(tuple(code), budgets={"m": 1024 * KiB})
        assert not report.by_code("PNM106")

    def test_compiled_stage_fits_table_ii_budgets(self):
        cfg = tiny_config()
        program = timing_program(cfg, batch_tokens=4, ctx_prev=8)
        pressure = register_pressure(program)
        assert not pressure.unknown_shape_regs
        assert 0 < pressure.utilization("m") < 1.0

    def test_pressure_report_peaks(self):
        program = (_load("m0", shape=(64, 64)),
                   _load("v0", shape=(64,)),
                   isa.Free(regs=("m0", "v0")))
        pressure = register_pressure(program)
        assert pressure.peak_bytes["m"] == 64 * 64 * 2
        assert pressure.peak_bytes["v"] == 64 * 2
        assert pressure.peak_live_registers == 2


class TestDataflowFacts:
    def test_hazard_edge_counts(self):
        program = (
            _load("m0"),
            isa.VpuGelu(dst="m1", src="m0"),   # RAW on m0
            _load("m0", addr=64),              # WAR on m0
            isa.VpuGelu(dst="m1", src="m0"),   # RAW on m0, WAW on m1
            isa.Free(regs=("m0", "m1")),
        )
        facts = analyze_program(program)
        assert facts.raw_edges == 2
        assert facts.war_edges == 1
        assert facts.waw_edges == 1
        # m1's write at [1] is killed by [3]; the value from [3] is
        # freed unread — both are dead writes.
        assert facts.dead_writes == [(1, "m1"), (3, "m1")]

    def test_shape_inference_matches_simulator_rules(self):
        cfg = tiny_config()
        program = timing_program(cfg, batch_tokens=2, ctx_prev=4)
        shapes = infer_shapes(program)
        for instr, shape in zip(program, shapes):
            if isinstance(instr, isa.DmaLoad):
                assert shape == instr.shape
            elif isinstance(instr, isa.MpuMaskedMm):
                assert shape == (instr.heads, instr.m, instr.ctx)


class TestCompilerOutputsVerifyClean:
    """The property the verifier enforces: shipped programs are clean."""

    @pytest.mark.parametrize("m", [1, 2, 4])
    @pytest.mark.parametrize("ctx_prev", [0, 3, 17])
    def test_stage_sweep_clean(self, m, ctx_prev):
        cfg = tiny_config()
        layout = timing_layout(cfg)
        program = StageCompiler(layout).compile_stage([1] * m, ctx_prev)
        report = verify_program(program, layout=layout)
        assert report.clean, report.render()

    def test_program_cache_patched_programs_clean(self):
        cfg = tiny_config()
        layout = timing_layout(cfg)
        cache = ProgramCache(StageCompiler(layout))
        for ctx_prev in (2, 5, 9):
            program = cache.stage((7,), ctx_prev)
            report = verify_program(program, layout=layout)
            assert report.clean, report.render()
        assert cache.hits >= 2

    def test_opt13b_service_geometry_clean(self):
        cfg = get_model("OPT-13B")
        program = timing_program(cfg, batch_tokens=1, ctx_prev=576)
        report = verify_program(program, layout=timing_layout(cfg))
        assert report.clean, report.render()

    def test_batched_decode_no_errors(self):
        cfg = tiny_config()
        program = batched_timing_program(cfg, batch=4, ctx_prev=8)
        report = verify_program(program, layout=timing_layout(cfg))
        assert report.ok, report.render()
        # The per-request loop intentionally reuses registers and
        # re-stores KV rows at the same fake addresses; the verifier
        # must describe that as warnings, nothing else.
        assert set(report.codes()) == {"PNM104", "PNM204"}


class TestVerifyStaticHook:
    def test_results_bit_identical_with_hook_on(self):
        cfg = tiny_config()
        weights = random_weights(cfg, seed=3)
        plain = InferenceSession(weights)
        checked = InferenceSession(weights, verify_static=True)
        t_plain = plain.generate([1, 2, 3], 6)
        t_checked = checked.generate([1, 2, 3], 6)
        assert t_plain.tokens == t_checked.tokens
        assert t_plain.stage_times_s == t_checked.stage_times_s

    def test_hook_checks_once_per_timing_key(self):
        cfg = tiny_config()
        layout = timing_layout(cfg)
        cache = ProgramCache(StageCompiler(layout), verify_static=True)
        cache.stage((1,), 4)
        cache.stage((2,), 4)  # same key (m=1, ctx_prev=4): no re-verify
        assert len(cache._static_ok) == 1
        cache.stage((1,), 5)
        assert len(cache._static_ok) == 2

    def test_hook_raises_on_bad_program(self):
        cfg = tiny_config()
        layout = timing_layout(cfg)
        cache = ProgramCache(StageCompiler(layout), verify_static=True)

        real_compile = cache.compiler.compile_stage
        weights_addr = layout.addr("layer0.w_qkv")

        def bad_compile(tokens, ctx_prev):
            # Structurally valid (passes isa.validate_program) but
            # stores into a read-only weights region: only the
            # layout-aware static verifier can catch it.
            prologue = (
                isa.DmaLoad(dst="m999", addr=weights_addr,
                            shape=(1, cfg.d_model)),
                isa.DmaStore(src="m999", addr=weights_addr,
                             shape=(1, cfg.d_model)),
                isa.Free(regs=("m999",)),
            )
            return prologue + real_compile(tokens, ctx_prev)

        cache.compiler.compile_stage = bad_compile
        with pytest.raises(ProgramVerificationError, match="PNM206"):
            cache.stage((1,), 4)


class TestValidateProgramAddressRegression:
    """Satellite: ``isa.validate_program`` surfaces the verifier's
    bounds/alignment diagnostics (when repro.analysis is importable)."""

    def test_out_of_bounds_dma_rejected(self):
        bad = (isa.DmaLoad(dst="m0", addr=2 ** 50, shape=(4, 4)),)
        with pytest.raises(IsaError, match="PNM202"):
            isa.validate_program(bad)

    def test_misaligned_dma_rejected(self):
        bad = (isa.DmaLoad(dst="m0", addr=6, shape=(2,)),)
        with pytest.raises(IsaError, match="PNM203"):
            isa.validate_program(bad)

    def test_negative_address_rejected(self):
        bad = (isa.DmaLoad(dst="m0", addr=-64, shape=(2,)),)
        with pytest.raises(IsaError, match="PNM201"):
            isa.validate_program(bad)

    def test_clean_program_still_validates(self):
        cfg = tiny_config()
        program = timing_program(cfg, batch_tokens=1, ctx_prev=2)
        isa.validate_program(program)  # should not raise


class TestReportModel:
    def test_as_dict_round_trip(self):
        program = (_load("m0", addr=2 ** 50),)
        report = verify_program(program, subject="bad")
        data = report.as_dict()
        assert data["subject"] == "bad"
        assert data["ok"] is False and data["clean"] is False
        assert data["counts"]["error"] >= 1
        first = data["diagnostics"][0]
        assert {"code", "severity", "message", "location"} <= set(first)

    def test_render_sorts_errors_first(self):
        program = (
            _load("m0"),
            _load("m0", addr=2 ** 50),       # dead write + OOB
            isa.VpuAdd(dst="m1", a="m0", b="m9"),  # use-before-def m9
        )
        rendered = verify_program(program).render()
        lines = [ln for ln in rendered.splitlines() if "PNM" in ln]
        assert "error" in lines[0]
        assert lines[-1].startswith("  warning") or "warning" in lines[-1]

    def test_merged_reports(self):
        a = verify_program((_load("m0"), isa.Free(regs=("m0",))))
        b = verify_program((_load("m0", addr=-4),))
        merged = a.merged(b)
        assert isinstance(merged, AnalysisReport)
        assert not merged.ok
