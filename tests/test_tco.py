"""TCO models: daily operation, cost, CO2, efficiency metrics."""

import pytest

from repro.appliance import GpuAppliance, ParallelismPlan, PnmAppliance
from repro.errors import ConfigurationError
from repro.gpu import A100_40G
from repro.llm import OPT_66B
from repro.tco import (
    CO2_KG_PER_KWH,
    CostSummary,
    ELECTRICITY_USD_PER_KWH,
    cost_summary,
    daily_operation,
)


@pytest.fixture(scope="module")
def pnm_result():
    return PnmAppliance(num_devices=8).run(OPT_66B, ParallelismPlan(8, 1),
                                           64, 1024)


class TestDailyOperation:
    def test_projection_scales_throughput(self, pnm_result):
        op = daily_operation(pnm_result)
        assert op.tokens_per_day == pytest.approx(
            pnm_result.throughput_tokens_per_s * 86_400)

    def test_duty_cycle_scales_both(self, pnm_result):
        full = daily_operation(pnm_result)
        half = daily_operation(pnm_result, duty_cycle=0.5)
        assert half.tokens_per_day == pytest.approx(full.tokens_per_day / 2)
        assert half.kwh_per_day == pytest.approx(full.kwh_per_day / 2)

    def test_bad_duty_cycle(self, pnm_result):
        with pytest.raises(ConfigurationError):
            daily_operation(pnm_result, duty_cycle=0.0)

    def test_tokens_per_kwh(self, pnm_result):
        op = daily_operation(pnm_result)
        assert op.tokens_per_kwh == pytest.approx(
            op.tokens_per_day / op.kwh_per_day)


class TestCostSummary:
    def test_electricity_at_idaho_rate(self, pnm_result):
        summary = cost_summary(daily_operation(pnm_result), 56_000)
        assert summary.operating_cost_usd_per_day == pytest.approx(
            summary.kwh_per_day * ELECTRICITY_USD_PER_KWH)

    def test_co2_proportional_to_energy(self, pnm_result):
        summary = cost_summary(daily_operation(pnm_result), 56_000)
        assert summary.co2_kg_per_day == pytest.approx(
            summary.kwh_per_day * CO2_KG_PER_KWH)

    def test_table3_implied_carbon_intensity(self):
        # 2.46 kg over 43.2 kWh (Table III) ~ Idaho's hydro grid.
        assert CO2_KG_PER_KWH == pytest.approx(0.0569, abs=0.001)

    def test_efficiency_metrics(self, pnm_result):
        summary = cost_summary(daily_operation(pnm_result), 56_000)
        assert summary.cost_efficiency_tokens_per_usd == pytest.approx(
            summary.tokens_per_day / summary.operating_cost_usd_per_day)
        assert summary.co2_efficiency_tokens_per_kg > 0

    def test_amortized_tco_includes_hardware(self, pnm_result):
        summary = cost_summary(daily_operation(pnm_result), 56_000)
        amortized = summary.amortized_cost_per_day(lifetime_years=3)
        assert amortized == pytest.approx(
            56_000 / (3 * 365) + summary.operating_cost_usd_per_day)
        assert summary.tco_tokens_per_usd(3) \
            < summary.cost_efficiency_tokens_per_usd

    def test_bad_lifetime(self, pnm_result):
        summary = cost_summary(daily_operation(pnm_result), 56_000)
        with pytest.raises(ConfigurationError):
            summary.amortized_cost_per_day(0)

    def test_negative_hardware_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostSummary(name="x", hardware_cost_usd=-1, tokens_per_day=1,
                        kwh_per_day=1)


class TestCrossApplianceTco:
    def test_pnm_wins_on_every_tco_axis(self, pnm_result):
        gpu_result = GpuAppliance(A100_40G, 8).run(
            OPT_66B, ParallelismPlan(1, 8), 64, 1024)
        gpu = cost_summary(daily_operation(gpu_result), 80_000)
        pnm = cost_summary(daily_operation(pnm_result), 56_000)
        assert pnm.hardware_cost_usd < gpu.hardware_cost_usd
        assert pnm.operating_cost_usd_per_day \
            < gpu.operating_cost_usd_per_day
        assert pnm.co2_kg_per_day < gpu.co2_kg_per_day
        assert pnm.cost_efficiency_tokens_per_usd \
            > 3 * gpu.cost_efficiency_tokens_per_usd
        assert pnm.tco_tokens_per_usd(3) > gpu.tco_tokens_per_usd(3)
