"""§V-A disadvantage quantification."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def rows():
    return {r["disadvantage"]: r
            for r in run_experiment("disadvantages").rows}


class TestDisadvantages:
    def test_d1_commodity_packaging_cheaper(self, rows):
        row = rows["D1 packaging-cost factor"]
        assert row["cxl_pnm"] < row["dimm_or_pim"]

    def test_d2_bandwidth_order_of_magnitude(self, rows):
        """Paper: CXL-PNM exposes 10x the DDR5 DIMM-PNM bandwidth."""
        row = rows["D2 PNM bandwidth (GB/s)"]
        assert row["advantage"] >= 10.0

    def test_d2_capacity_advantage(self, rows):
        row = rows["D2 PNM capacity (GB)"]
        assert row["advantage"] > 5.0

    def test_d3_host_starvation_under_blocking(self, rows):
        bw = rows["D3 host bandwidth under PNM load (GB/s)"]
        assert bw["cxl_pnm"] > 100 * bw["dimm_or_pim"]
        wait = rows["D3 mean host wait (us)"]
        assert wait["dimm_or_pim"] > 100.0   # polling-bound, ~ms
        assert wait["cxl_pnm"] < 1.0          # hardware arbiter, ~ns

    def test_d4_full_region_visibility(self, rows):
        row = rows["D4 accessible fraction of a 1 GiB region"]
        assert row["cxl_pnm"] > 0.99
        assert row["dimm_or_pim"] == pytest.approx(0.125, abs=0.01)
