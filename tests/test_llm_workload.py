"""Workload generators and request records."""

import pytest

from repro.errors import ConfigurationError
from repro.llm import (
    InferenceRequest,
    PAPER_INPUT_TOKENS,
    output_sweep,
    paper_request,
    sampled_workload,
)
from repro.llm.workload import token_stream


class TestInferenceRequest:
    def test_total_tokens(self):
        req = InferenceRequest(input_len=64, output_len=1024)
        assert req.total_tokens == 1088

    @pytest.mark.parametrize("inp,out", [(0, 1), (1, 0), (-1, 5)])
    def test_rejects_nonpositive(self, inp, out):
        with pytest.raises(ConfigurationError):
            InferenceRequest(input_len=inp, output_len=out)


class TestGenerators:
    def test_paper_request_defaults(self):
        req = paper_request()
        assert req.input_len == PAPER_INPUT_TOKENS == 64
        assert req.output_len == 1024

    def test_output_sweep_covers_fig10_points(self):
        sweep = output_sweep()
        assert [r.output_len for r in sweep][:3] == [1, 4, 16]
        assert sweep[-1].output_len == 1024
        assert all(r.input_len == 64 for r in sweep)

    def test_sampled_workload_deterministic(self):
        a = sampled_workload(20, seed=3)
        b = sampled_workload(20, seed=3)
        assert a == b

    def test_sampled_workload_respects_max_total(self):
        for req in sampled_workload(200, max_total=512):
            assert req.total_tokens <= 512

    def test_sampled_workload_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            sampled_workload(0)


class TestTokenStream:
    def test_context_lengths(self):
        req = InferenceRequest(input_len=10, output_len=4)
        assert list(token_stream(req)) == [11, 12, 13]

    def test_single_token_request_has_no_gen_stage(self):
        req = InferenceRequest(input_len=10, output_len=1)
        assert list(token_stream(req)) == []
