"""Suite composition and the suppression baseline's lifecycle.

The baseline is a policy mechanism, so its semantics get direct tests:
match by (code, path, stripped line text) — a moved line stays
suppressed, an edited line goes stale — plus the loader's validation
(version, required fields, non-empty justification) and the suite's
pass selection and report merging.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.suite import (
    PASSES,
    pass_counts,
    render_result,
    resolve_passes,
    run_suite,
)
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"
BASELINE_FILE = REPO_ROOT / "tools" / "static_analysis_baseline.json"

#: A perf-package file with one violation per lint family.
DIRTY = textwrap.dedent("""
    '''doc.'''
    def f(table, request, rate):
        table[id(request)] = rate / 1e9
""")


def _write_dirty(tmp_path):
    pkg = tmp_path / "perf"
    pkg.mkdir()
    (pkg / "bad.py").write_text(DIRTY)
    return tmp_path


def _baseline_file(tmp_path, entries):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": entries}))
    return path


class TestResolvePasses:
    def test_default_is_all_in_order(self):
        assert resolve_passes(None) == tuple(PASSES)
        assert resolve_passes([]) == tuple(PASSES)

    def test_aliases(self):
        assert resolve_passes(["det", "con"]) \
            == ("determinism", "contracts")
        assert resolve_passes(["unit", "pur"]) == ("units", "purity")

    def test_duplicates_collapse(self):
        assert resolve_passes(["units", "unit"]) == ("units",)

    def test_unknown_pass_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_passes(["spelling"])


class TestRunSuite:
    def test_dirty_tree_reports_both_families(self, tmp_path):
        result = run_suite(_write_dirty(tmp_path))
        codes = sorted(d.code for d in result.report.diagnostics)
        assert codes == ["DET501", "UNIT403"]
        assert not result.ok

    def test_pass_selection_limits_findings(self, tmp_path):
        result = run_suite(_write_dirty(tmp_path), passes=["units"])
        assert [d.code for d in result.report.diagnostics] \
            == ["UNIT403"]

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_suite(tmp_path / "nowhere")

    def test_pass_counts_by_family(self, tmp_path):
        result = run_suite(_write_dirty(tmp_path))
        assert pass_counts(result) == {"DET": 1, "UNIT": 1}


class TestBaselineMatching:
    def test_matching_entry_suppresses(self, tmp_path):
        root = _write_dirty(tmp_path)
        baseline = Baseline((
            BaselineEntry("DET501", "perf/bad.py",
                          "table[id(request)] = rate / 1e9",
                          "test exception"),
            BaselineEntry("UNIT403", "perf/bad.py",
                          "table[id(request)] = rate / 1e9",
                          "test exception"),
        ))
        result = run_suite(root, baseline=baseline)
        assert result.ok
        assert len(result.suppressed) == 2 and not result.stale

    def test_edited_line_goes_stale(self, tmp_path):
        root = _write_dirty(tmp_path)
        baseline = Baseline((
            BaselineEntry("DET501", "perf/bad.py",
                          "some other line text", "test exception"),
        ))
        result = run_suite(root, passes=["determinism"],
                           baseline=baseline)
        # The finding is kept AND the entry is stale: both fail.
        assert not result.ok
        assert [d.code for d in result.report.diagnostics] \
            == ["DET501"]
        assert len(result.stale) == 1
        assert "stale baseline entry" in render_result(result)

    def test_stale_entry_alone_fails_clean_tree(self, tmp_path):
        pkg = tmp_path / "perf"
        pkg.mkdir()
        (pkg / "ok.py").write_text("'''doc.'''\nX = 1\n")
        baseline = Baseline((
            BaselineEntry("DET501", "perf/ok.py", "gone = True",
                          "obsolete"),
        ))
        result = run_suite(tmp_path, baseline=baseline)
        assert result.report.clean and not result.ok
        assert result.as_dict()["ok"] is False
        assert result.as_dict()["stale_baseline"][0]["code"] == "DET501"

    def test_out_of_scope_entries_not_stale_under_selection(self, tmp_path):
        # An entry for a pass that did not run matches nothing by
        # construction; scoping must keep it from reading as stale.
        root = _write_dirty(tmp_path)
        baseline = Baseline((
            BaselineEntry("UNIT403", "perf/bad.py",
                          "table[id(request)] = rate / 1e9",
                          "test exception"),
            BaselineEntry("DET501", "perf/bad.py",
                          "table[id(request)] = rate / 1e9",
                          "test exception"),
        ))
        result = run_suite(root, passes=["units"], baseline=baseline)
        assert result.ok, render_result(result)
        assert len(result.suppressed) == 1 and not result.stale

    def test_shipped_baseline_not_stale_per_pass(self):
        # Every single-pass run of the real tree must stay clean with
        # the full checked-in baseline applied.
        baseline = Baseline.load(BASELINE_FILE)
        for name in PASSES:
            result = run_suite(REPO_SRC, passes=[name],
                               baseline=baseline)
            assert result.ok, f"{name}: {render_result(result)}"
            assert not result.stale

    def test_wrong_code_does_not_match(self, tmp_path):
        root = _write_dirty(tmp_path)
        baseline = Baseline((
            BaselineEntry("UNIT403", "perf/bad.py",
                          "table[id(request)] = rate / 1e9",
                          "suppresses only the magnitude"),
        ))
        result = run_suite(root, baseline=baseline)
        assert [d.code for d in result.report.diagnostics] \
            == ["DET501"]


class TestBaselineLoader:
    def test_round_trip(self, tmp_path):
        path = _baseline_file(tmp_path, [
            {"code": "DET501", "path": "a.py", "line": "x = id(y)",
             "reason": "why"}])
        baseline = Baseline.load(path)
        assert len(baseline.entries) == 1
        assert baseline.entries[0].reason == "why"

    def test_blank_reason_rejected(self, tmp_path):
        path = _baseline_file(tmp_path, [
            {"code": "DET501", "path": "a.py", "line": "x", "reason": " "}])
        with pytest.raises(ConfigurationError):
            Baseline.load(path)

    def test_missing_field_rejected(self, tmp_path):
        path = _baseline_file(tmp_path, [
            {"code": "DET501", "path": "a.py", "line": "x"}])
        with pytest.raises(ConfigurationError):
            Baseline.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 2, "entries": []}))
        with pytest.raises(ConfigurationError):
            Baseline.load(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Baseline.load(tmp_path / "missing.json")


class TestShippedBaseline:
    def test_suite_clean_with_shipped_baseline(self):
        result = run_suite(REPO_SRC,
                           baseline=Baseline.load(BASELINE_FILE))
        assert result.ok, render_result(result)
        assert not result.stale

    def test_at_most_ten_individually_justified_entries(self):
        baseline = Baseline.load(BASELINE_FILE)
        assert 0 < len(baseline.entries) <= 10
        for entry in baseline.entries:
            assert len(entry.reason.split()) >= 5, (
                f"{entry.code} at {entry.path}: justification too thin")

    def test_every_entry_is_used(self):
        # No speculative suppressions: each entry must match a live
        # finding (run_suite fails stale entries, assert it directly).
        result = run_suite(REPO_SRC,
                           baseline=Baseline.load(BASELINE_FILE))
        baseline = Baseline.load(BASELINE_FILE)
        assert len(result.suppressed) == len(baseline.entries)
