"""Token-loop fast path is invisible to results.

The decode fast path stacks a program cache (compile once, patch
immediates), validate-once registration, a memoized duration model,
whole-program timing reuse, and vectorized executor kernels.  Every test
here pins the same property from a different angle: with all caches on,
generations are token-exact and simulated numbers are bit-identical to
the uncached seed behaviour.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator import DeviceMemory, Executor, isa
from repro.accelerator.compiler import (ProgramCache, batched_timing_program,
                                        timing_program)
from repro.accelerator.dfx import dfx_device
from repro.accelerator.engine import (_fast_gelu, _fast_layernorm,
                                      _fast_softmax)
from repro.appliance import simulated_step_model
from repro.errors import ConfigurationError
from repro.experiments.sweep import run_sweep
from repro.llm import ReferenceModel, random_weights, tiny_config
from repro.llm.reference import gelu, layernorm, softmax
from repro.perf.simulator import AcceleratorSimulator, SimulatedStepTimer
from repro.runtime import InferenceSession
from repro.units import MiB


@pytest.fixture(scope="module")
def weights():
    return random_weights(tiny_config(), seed=3)


class TestProgramCache:
    def test_patched_equals_fresh_compile(self, weights):
        session = InferenceSession(weights, simulate_timing=False)
        # verify=True recompiles on every patch and raises on divergence.
        cache = ProgramCache(session.compiler, verify=True)
        for tokens, ctx_prev in [((5, 9, 2), 0), ((7,), 3), ((1,), 4),
                                 ((8,), 5), ((3, 3), 6), ((11,), 8)]:
            patched = cache.stage(tokens, ctx_prev)
            fresh = session.compiler.compile_stage(list(tokens), ctx_prev)
            assert tuple(patched) == tuple(fresh)
        assert cache.misses == 3  # one template per batch size (3, 1, 2)
        assert cache.hits == 3

    def test_template_identity_on_exact_repeat(self, weights):
        session = InferenceSession(weights, simulate_timing=False)
        cache = ProgramCache(session.compiler)
        first = cache.gen_stage(7, context_len=4)
        again = cache.gen_stage(7, context_len=4)
        assert again is first

    def test_session_fast_vs_slow_multiturn(self, weights):
        fast = InferenceSession(weights, fast_path=True)
        slow = InferenceSession(weights, fast_path=False)
        for prompt, n in [([3, 1, 4], 4), ([9], 3), ([2, 7], 5)]:
            tf = fast.extend(prompt, n)
            ts = slow.extend(prompt, n)
            assert tf.tokens == ts.tokens
            assert tf.stage_times_s == ts.stage_times_s
        assert fast.program_cache.hits > 0

    def test_fast_path_matches_reference(self, weights):
        session = InferenceSession(weights, simulate_timing=False,
                                   fast_path=True)
        reference = ReferenceModel(weights)
        prompt = [5, 100, 42]
        assert session.generate(prompt, 8).tokens == \
            reference.generate(prompt, 8)


class TestDurationMemo:
    @settings(max_examples=12, deadline=None)
    @given(batch=st.integers(1, 3), ctx_prev=st.integers(0, 12))
    def test_memo_never_changes_makespan(self, batch, ctx_prev):
        program = timing_program(tiny_config(), batch, ctx_prev)
        memo = AcceleratorSimulator(memoize=True).run(program)
        plain = AcceleratorSimulator(memoize=False).run(program)
        assert memo.total_time_s == plain.total_time_s
        assert memo.mem_bytes == plain.mem_bytes
        assert memo.flops == plain.flops
        assert memo.unit_busy_s == plain.unit_busy_s

    def test_result_cache_returns_identical_copies(self, weights):
        session = InferenceSession(weights, simulate_timing=False)
        cache = ProgramCache(session.compiler)
        program = cache.gen_stage(7, context_len=4)
        assert program.timing_key is not None
        sim = AcceleratorSimulator(memoize=True)
        first = sim.run(program)
        second = sim.run(program)
        assert second == first
        # Cached results are copies: mutating one must not leak.
        second.unit_busy_s[isa.Unit.DMA] = -1.0
        assert sim.run(program) == first


class TestDfxMemBytes:
    def test_gemm_via_tree_bytes_match_modelled_traffic(self):
        """Regression: DFX re-streams the GEMM memory operand ``m``
        times for timing; ``SimulationResult.mem_bytes`` must count the
        same traffic, not the single-pass bytes."""
        m, k, n = 3, 16, 8
        program = (
            isa.DmaLoad(dst="m0", addr=0, shape=(m, k)),
            isa.MpuMmPea(dst="m1", act="m0", weight_addr=4096,
                         m=m, k=k, n=n),
        )
        dtype_bytes = 2
        load_bytes = program[0].mem_elems() * dtype_bytes
        gemm_bytes = program[1].mem_elems() * dtype_bytes
        dfx = AcceleratorSimulator(dfx_device(),
                                   dtype_bytes=dtype_bytes).run(program)
        assert dfx.mem_bytes == load_bytes + gemm_bytes * m
        pnm = AcceleratorSimulator(dtype_bytes=dtype_bytes).run(program)
        assert pnm.mem_bytes == load_bytes + gemm_bytes


class TestVectorizedKernels:
    def test_fast_vpu_kernels_bitwise(self):
        rng = np.random.default_rng(11)
        for shape in [(1, 64), (3, 33), (5, 128)]:
            x = rng.standard_normal(shape).astype(np.float32) * 3
            gamma = rng.standard_normal(shape[-1]).astype(np.float32)
            beta = rng.standard_normal(shape[-1]).astype(np.float32)
            np.testing.assert_array_equal(_fast_gelu(x), gelu(x))
            np.testing.assert_array_equal(_fast_softmax(x), softmax(x))
            np.testing.assert_array_equal(
                _fast_layernorm(x, gamma, beta, 1e-5),
                layernorm(x, gamma, beta))

    @pytest.mark.parametrize("m,mask_offset", [(3, 1), (1, 4), (4, 3)])
    def test_attention_vectorized_matches_loops(self, m, mask_offset):
        heads, hd, ctx = 4, 8, 5
        rng = np.random.default_rng(m)
        mem = DeviceMemory(1 * MiB)
        q = rng.standard_normal((m, heads * hd)).astype(np.float32)
        keys = rng.standard_normal((ctx, heads * hd)).astype(np.float32)
        values = rng.standard_normal((ctx, heads * hd)).astype(np.float32)
        qr = mem.store_named("q", q)
        kr = mem.store_named("k", keys)
        vr = mem.store_named("v", values)
        program = (
            isa.DmaLoad(dst="m0", addr=qr.addr, shape=(m, heads * hd)),
            isa.MpuMaskedMm(dst="m1", q="m0", k_addr=kr.addr, heads=heads,
                            head_dim=hd, ctx=ctx, m=m, scale=0.25,
                            mask_offset=mask_offset),
            isa.VpuSoftmax(dst="m2", src="m1"),
            isa.MpuAttnContext(dst="m3", probs="m2", v_addr=vr.addr,
                               heads=heads, head_dim=hd, ctx=ctx, m=m),
        )
        vec = Executor(mem, vectorized=True)
        loop = Executor(mem, vectorized=False)
        vec.execute(program)
        loop.execute(program)
        for reg in ("m1", "m2", "m3"):
            np.testing.assert_array_equal(vec.registers.read(reg),
                                          loop.registers.read(reg))

    def test_gather_vectorized_matches_loops(self):
        mem = DeviceMemory(1 * MiB)
        table = np.arange(40, dtype=np.float32).reshape(10, 4)
        region = mem.store_named("table", table)
        program = (isa.DmaGather(dst="m0", table_addr=region.addr,
                                 row_elems=4, indices=(9, 0, 4, 9)),)
        vec = Executor(mem, vectorized=True)
        loop = Executor(mem, vectorized=False)
        vec.execute(program)
        loop.execute(program)
        np.testing.assert_array_equal(vec.registers.read("m0"),
                                      loop.registers.read("m0"))
        np.testing.assert_array_equal(vec.registers.read("m0"),
                                      table[[9, 0, 4, 9]])


class TestReadCacheCoherence:
    def test_own_store_invalidates_cached_read(self):
        mem = DeviceMemory(1 * MiB)
        a = mem.store_named("a", np.ones(16, dtype=np.float32))
        b = mem.store_named("b", np.full(16, 7.0, dtype=np.float32))
        ex = Executor(mem, cache_reads=True)
        ex.execute((
            isa.DmaLoad(dst="m0", addr=a.addr, shape=(16,)),  # caches a
            isa.DmaLoad(dst="m1", addr=b.addr, shape=(16,)),
            isa.DmaStore(src="m1", addr=a.addr, shape=(16,)),  # clobbers a
            isa.DmaLoad(dst="m2", addr=a.addr, shape=(16,)),
        ))
        np.testing.assert_array_equal(ex.registers.read("m2"),
                                      np.full(16, 7.0, dtype=np.float32))

    def test_external_write_invalidates_cached_read(self):
        mem = DeviceMemory(1 * MiB)
        a = mem.store_named("a", np.ones(16, dtype=np.float32))
        ex = Executor(mem, cache_reads=True)
        load = (isa.DmaLoad(dst="m0", addr=a.addr, shape=(16,)),)
        ex.execute(load)
        # A host-side store between launches bumps the memory version.
        mem.write_tensor(a.addr, np.full(16, 5.0, dtype=np.float32))
        ex.execute(load)
        np.testing.assert_array_equal(ex.registers.read("m0"),
                                      np.full(16, 5.0, dtype=np.float32))


class TestSimulatedStepTimer:
    def test_quantized_memoization(self):
        timer = SimulatedStepTimer(tiny_config())
        p = timer.prefill_s(4)
        assert p > 0
        assert timer.prefill_s(4) == p
        d_near = timer.decode_step_s(2, 5)
        d_far = timer.decode_step_s(2, 20)
        assert d_near == d_far  # same 32-token quantum
        assert len(timer._decode_cache) == 1

    def test_factory_builds_working_model(self):
        model = simulated_step_model(tiny_config())
        assert model.prefill_s(3) > 0
        assert model.decode_step_s(1, 1) > 0

    def test_batched_timing_program_validates(self):
        program = batched_timing_program(tiny_config(), batch=3, ctx_prev=7)
        isa.validate_program(program)  # register discipline holds


class TestSweepRunner:
    def test_parallel_matches_serial(self):
        ids = ["fig3", "table1"]
        serial = run_sweep(ids, jobs=1)
        parallel = run_sweep(ids, jobs=2)
        assert [r.experiment_id for r in serial] == ids
        assert serial == parallel

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(["fig99"])

    def test_bad_job_count_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(["fig3"], jobs=0)
